"""A/B benchmark: Volcano interpreter vs the columnar batch executor.

Both executors run the *same* optimized logical plans over the same
corpus; the difference is purely physical (tuple-at-a-time closures vs
binary-search range slicing + vector filters over parallel arrays).  Two
workloads from the paper's experiment suite:

* the Figure 6(b)-style **rare-tag scans** — a rare tag probed alone and
  reached through a ``//S//<tag>`` descendant join (the case the columnar
  per-tree partition slicing accelerates most);
* the Figure 9-style **scalability scan** — a broad two-step descendant
  query as the corpus is replicated 0.5x-2x.

The test asserts the columnar executor beats the Volcano interpreter on
the rare-tag scan suite (and stays ahead as data scales); both executors
must agree on every result size.
"""

from collections import Counter

from repro.bench import datasets
from repro.bench.harness import paper_timing

SCAN_FACTORS = (0.5, 1.0, 2.0)
SCAN_QUERY = "//S//NP"


def _rare_tags(trees, count: int = 3) -> list[str]:
    """The rarest element tags that still occur a handful of times."""
    frequencies = Counter()
    for tree in trees:
        for node in tree.nodes:
            frequencies[node.label] += 1
    eligible = [tag for tag, n in frequencies.most_common() if n >= 5]
    return eligible[-count:]


def _ab_row(label: str, query: str, volcano, columnar, repeats: int):
    # Warm both plan caches so the timings measure execution, not the
    # parse -> lower -> optimize pipeline (the paper's repeated-query
    # protocol; see repro.bench.harness).
    volcano.count(query)
    columnar.count(query)
    volcano_seconds, volcano_size = paper_timing(
        lambda: volcano.count(query), repeats
    )
    columnar_seconds, columnar_size = paper_timing(
        lambda: columnar.count(query), repeats
    )
    assert volcano_size == columnar_size, (
        f"executors disagree on {query}: {volcano_size} vs {columnar_size}"
    )
    speedup = volcano_seconds / columnar_seconds if columnar_seconds else float("inf")
    return (label, query, volcano_seconds, columnar_seconds, speedup, volcano_size)


def _format(rows) -> str:
    header = (
        f"{'workload':18s} {'query':22s} {'volcano (s)':>12s} "
        f"{'columnar (s)':>13s} {'speedup':>8s} {'rows':>6s}"
    )
    lines = [header, "-" * len(header)]
    for label, query, volcano_s, columnar_s, speedup, size in rows:
        lines.append(
            f"{label:18s} {query:22s} {volcano_s:12.5f} "
            f"{columnar_s:13.5f} {speedup:7.2f}x {size:6d}"
        )
    return "\n".join(lines)


def test_columnar_ab(benchmark, write_result, repeats):
    volcano = datasets.lpath_engine("wsj", 1.0)
    columnar = datasets.lpath_engine("wsj", 1.0, "columnar")
    rare = _rare_tags(datasets.corpus("wsj"))

    rows = []
    rare_volcano = rare_columnar = 0.0
    for tag in rare:
        for query in (f"//{tag}", f"//S//{tag}"):
            row = _ab_row("fig6b rare-tag", query, volcano, columnar, repeats)
            rows.append(row)
            rare_volcano += row[2]
            rare_columnar += row[3]

    for factor in SCAN_FACTORS:
        row = _ab_row(
            f"fig9 scale {factor}x",
            SCAN_QUERY,
            datasets.lpath_engine("wsj", factor),
            datasets.lpath_engine("wsj", factor, "columnar"),
            repeats,
        )
        rows.append(row)

    table = _format(rows)
    summary = (
        f"\nrare-tag suite: volcano {rare_volcano:.5f}s, "
        f"columnar {rare_columnar:.5f}s "
        f"({rare_volcano / rare_columnar:.2f}x)"
    )
    write_result("columnar_ab.txt", "Columnar vs Volcano A/B\n" + table + summary)

    # Regression benchmark: the columnar executor on the rare-tag join.
    benchmark(lambda: columnar.count(f"//S//{rare[-1]}"))

    # Acceptance: batch execution must beat the interpreter on the
    # fig6b rare-tag scan suite.
    assert rare_columnar < rare_volcano, (
        f"columnar executor did not beat Volcano on the rare-tag scans: "
        f"{rare_columnar:.5f}s vs {rare_volcano:.5f}s"
    )
