"""Shared benchmark fixtures and result-file plumbing.

Environment knobs:

* ``REPRO_BENCH_SENTENCES`` — corpus size per profile (default 2000);
* ``REPRO_BENCH_REPEATS``   — repeats for the paper-protocol harness
  (default 3 here; the paper used 7 — set 7 to match exactly).

Every bench module writes its paper-style table into
``benchmarks/results/*.txt`` so EXPERIMENTS.md can be assembled from a
single run.  Machine-readable results go to
``benchmarks/results/BENCH_<name>.json`` via the ``write_json`` fixture —
each document carries the corpus size/repeat knobs so CI can track the
perf trajectory across commits (the smoke job uploads them as artifacts).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import resource
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", 3))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    def writer(name: str, text: str) -> None:
        path = results_dir / name
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return writer


def kernel_environment() -> dict:
    """The kernel backend and toolchain versions a timing depends on —
    two documents with different backends time different machine code,
    so ``diff_bench.py`` comparisons need the provenance recorded."""
    from repro.columnar.kernels import kernel_info

    info = kernel_info()
    compiler = platform.python_compiler()
    return {
        "backend": info["backend"],
        "mode": info["mode"],
        "native_available": info["native_available"],
        "cffi": info["cffi"],
        "compiler": compiler or None,
    }


def peak_rss_kb() -> int:
    """The process's peak resident set size in kibibytes (Linux reports
    ``ru_maxrss`` in KiB already; macOS reports bytes).

    This is the *process-lifetime* high-water mark — it never decreases,
    so when several bench modules run in one pytest session, a later
    document's reading includes every earlier benchmark's peak.  Compare
    documents produced by the same session layout (CI runs each bench
    module as its own pytest process, so its gate is unaffected); treat
    within-session readings as an upper bound, not a per-test figure."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return peak


@pytest.fixture(scope="session")
def write_json(results_dir):
    """Write one machine-readable ``BENCH_<name>.json`` result document.

    ``payload`` is the benchmark's own structure (lists/dicts of timings);
    the wrapper adds the environment every reading depends on, so two
    documents are only comparable when their knobs match — plus the
    process's peak RSS at write time, so ``diff_bench.py`` flags memory
    regressions (and, together with the ``*_seconds`` open timings the
    store benchmarks record, cold-start regressions) alongside the
    query-time ones.
    """
    from repro.bench.datasets import bench_sentences

    def writer(name: str, payload) -> pathlib.Path:
        path = results_dir / f"BENCH_{name}.json"
        document = {
            "bench": name,
            "unix_time": int(time.time()),
            "python": platform.python_version(),
            "sentences": bench_sentences(),
            "repeats": bench_repeats(),
            "max_rss_kb": peak_rss_kb(),
            "kernels": kernel_environment(),
            "results": payload,
        }
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"\n[JSON results written to {path}]")
        return path

    return writer


@pytest.fixture(scope="session")
def repeats() -> int:
    return bench_repeats()
