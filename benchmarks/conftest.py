"""Shared benchmark fixtures and result-file plumbing.

Environment knobs:

* ``REPRO_BENCH_SENTENCES`` — corpus size per profile (default 2000);
* ``REPRO_BENCH_REPEATS``   — repeats for the paper-protocol harness
  (default 3 here; the paper used 7 — set 7 to match exactly).

Every bench module writes its paper-style table into
``benchmarks/results/*.txt`` so EXPERIMENTS.md can be assembled from a
single run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", 3))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    def writer(name: str, text: str) -> None:
        path = results_dir / name
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return writer


@pytest.fixture(scope="session")
def repeats() -> int:
    return bench_repeats()
