"""Shared benchmark fixtures and result-file plumbing.

Environment knobs:

* ``REPRO_BENCH_SENTENCES`` — corpus size per profile (default 2000);
* ``REPRO_BENCH_REPEATS``   — repeats for the paper-protocol harness
  (default 3 here; the paper used 7 — set 7 to match exactly).

Every bench module writes its paper-style table into
``benchmarks/results/*.txt`` so EXPERIMENTS.md can be assembled from a
single run.  Machine-readable results go to
``benchmarks/results/BENCH_<name>.json`` via the ``write_json`` fixture —
each document carries the corpus size/repeat knobs so CI can track the
perf trajectory across commits (the smoke job uploads them as artifacts).
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_REPEATS", 3))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_result(results_dir):
    def writer(name: str, text: str) -> None:
        path = results_dir / name
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return writer


@pytest.fixture(scope="session")
def write_json(results_dir):
    """Write one machine-readable ``BENCH_<name>.json`` result document.

    ``payload`` is the benchmark's own structure (lists/dicts of timings);
    the wrapper adds the environment every reading depends on, so two
    documents are only comparable when their knobs match.
    """
    from repro.bench.datasets import bench_sentences

    def writer(name: str, payload) -> pathlib.Path:
        path = results_dir / f"BENCH_{name}.json"
        document = {
            "bench": name,
            "unix_time": int(time.time()),
            "python": platform.python_version(),
            "sentences": bench_sentences(),
            "repeats": bench_repeats(),
            "results": payload,
        }
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"\n[JSON results written to {path}]")
        return path

    return writer


@pytest.fixture(scope="session")
def repeats() -> int:
    return bench_repeats()
