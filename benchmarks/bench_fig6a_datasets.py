"""Figure 6(a): characteristics of the two benchmark datasets.

The paper reports file size, node count, unique tags and maximum depth for
WSJ and SWB; we report the same for the generated substitutes (plus tree
and word counts) and benchmark the statistics pass.
"""

from repro.bench import datasets
from repro.corpus import corpus_stats, format_stats_table


def test_fig6a_dataset_characteristics(benchmark, write_result):
    wsj = list(datasets.corpus("wsj"))
    swb = list(datasets.corpus("swb"))

    def compute():
        return {
            "WSJ-like": corpus_stats(wsj),
            "SWB-like": corpus_stats(swb),
        }

    rows = benchmark(compute)
    paper_note = (
        "\nPaper (Treebank-3): WSJ 35983kB / 3,484,899 nodes / 1274 tags / depth 36;"
        "\n                    SWB 35880kB / 3,972,148 nodes /  715 tags / depth 36."
        "\nGenerated corpora are scaled down (REPRO_BENCH_SENTENCES) but keep the"
        "\nsame qualitative profile differences."
    )
    write_result(
        "fig6a_datasets.txt",
        "Figure 6(a): Test Data Sets\n" + format_stats_table(rows) + paper_note,
    )
    assert rows["WSJ-like"].tree_nodes > 0
    assert rows["SWB-like"].unique_tags > 20
