"""Figure 9 rerun over the segmented corpus architecture.

The paper's scalability experiment replicates WSJ 0.5x-4x and watches
query time grow; this module reruns that sweep with the corpus sharded
into 1/2/4/8 independent segments and the per-segment plans fanned out on
a worker pool.  Two views:

* a **scaling series** per Figure 9 query: the single-segment default
  engine (Volcano — the pre-segmentation baseline configuration), the
  single-segment columnar engine, and the sharded multi-worker columnar
  engine across every replication factor;
* a **segment x worker grid** at the largest factor for the columnar
  executor, showing where sharding pays and where it just adds per-shard
  constant costs (tiny shards, sequential drivers).

Acceptance: the multi-worker columnar configuration must beat the
single-segment baseline on the largest dataset (summed over the Figure 9
queries), and every configuration must agree on every result size.
Results also land in machine-readable ``BENCH_segments.json`` so CI can
track the trajectory across commits.
"""

from repro.bench import by_id, datasets
from repro.bench.harness import paper_timing
from repro.bench.report import scaling_table

FACTORS = (0.5, 1.0, 2.0, 4.0)
FIGURE9_QUERIES = (3, 6, 11)
SEGMENT_SWEEP = (1, 2, 4, 8)
WORKER_SWEEP = (1, 4)
#: The sharded configuration the headline series tracks.
SEGMENTS, WORKERS = 8, 4


def _timed(engine, query: str, repeats: int) -> tuple[float, int]:
    engine.count(query)  # warm the plan cache; time execution only
    return paper_timing(lambda: engine.count(query), repeats)


def _engine(factor: float, executor: str, segments: int, workers: int):
    # workers only sizes the fan-out pool; normalize the sequential cases
    # to None so this module shares lru_cache entries (and engines) with
    # the other bench modules instead of rebuilding identical ones.
    effective = workers if segments > 1 and workers > 1 else None
    return datasets.lpath_engine(
        "wsj", factor, executor, segments=segments, workers=effective
    )


def test_fig9_segment_scaling(benchmark, write_result, write_json, repeats):
    configs = {
        "1seg-volcano": ("volcano", 1, 1),
        "1seg-columnar": ("columnar", 1, 1),
        f"{SEGMENTS}seg-columnar-w{WORKERS}": ("columnar", SEGMENTS, WORKERS),
    }
    baseline_name = "1seg-volcano"
    sharded_name = f"{SEGMENTS}seg-columnar-w{WORKERS}"

    sections, json_series = [], {}
    totals = {name: 0.0 for name in configs}
    for qid in FIGURE9_QUERIES:
        query = by_id(qid).lpath
        series = {name: [] for name in configs}
        sizes = {}
        for factor in FACTORS:
            for name, (executor, segments, workers) in configs.items():
                seconds, size = _timed(
                    _engine(factor, executor, segments, workers), query, repeats
                )
                series[name].append((factor, seconds))
                sizes.setdefault(factor, size)
                assert size == sizes[factor], (
                    f"{name} disagrees on Q{qid} at {factor}x: "
                    f"{size} vs {sizes[factor]}"
                )
                if factor == FACTORS[-1]:
                    totals[name] += seconds
        sections.append(
            scaling_table(series, f"Figure 9 Q{qid}: time (s) vs scale, segmented")
        )
        json_series[f"Q{qid}"] = {
            name: [
                {"factor": factor, "seconds": seconds}
                for factor, seconds in points
            ]
            for name, points in series.items()
        }

    # Segment x worker grid at the largest factor (columnar executor).
    grid_query = by_id(FIGURE9_QUERIES[-1]).lpath
    grid_rows, json_grid = [], []
    for segments in SEGMENT_SWEEP:
        for workers in WORKER_SWEEP:
            seconds, size = _timed(
                _engine(FACTORS[-1], "columnar", segments, workers),
                grid_query,
                repeats,
            )
            grid_rows.append(
                f"  segments={segments:<2d} workers={workers:<2d} "
                f"{seconds:10.5f}s  ({size} rows)"
            )
            json_grid.append(
                {"segments": segments, "workers": workers, "seconds": seconds}
            )
    sections.append(
        f"Segment x worker grid at {FACTORS[-1]:g}x (columnar, "
        f"Q{FIGURE9_QUERIES[-1]}):\n" + "\n".join(grid_rows)
    )

    summary = "".join(
        f"\n{name}: {seconds:.5f}s at {FACTORS[-1]:g}x (sum of "
        f"Q{'/Q'.join(str(q) for q in FIGURE9_QUERIES)})"
        for name, seconds in totals.items()
    )
    write_result(
        "fig9_segments.txt", "\n\n".join(sections) + "\n" + summary
    )
    write_json(
        "segments",
        {
            "configs": {
                name: {
                    "executor": executor,
                    "segments": segments,
                    "workers": workers,
                }
                for name, (executor, segments, workers) in configs.items()
            },
            "scaling": json_series,
            "grid": json_grid,
            "totals_at_largest_factor": totals,
        },
    )

    # Regression benchmark: the sharded engine on the largest dataset.
    sharded = _engine(FACTORS[-1], *configs[sharded_name])
    benchmark(lambda: sharded.count(grid_query))

    # Acceptance: the multi-worker columnar configuration beats the
    # single-segment baseline on the largest fig. 9 dataset.
    assert totals[sharded_name] < totals[baseline_name], (
        f"sharded columnar ({totals[sharded_name]:.5f}s) did not beat the "
        f"single-segment baseline ({totals[baseline_name]:.5f}s) at "
        f"{FACTORS[-1]:g}x"
    )
