"""Figure 6(c): the 23-query evaluation set and its result sizes.

Runs every query of the set on both generated corpora with the LPath
engine and tabulates result sizes next to the paper's (which are on the
~50x larger Treebank-3 corpora — the *relative* selectivity pattern is
the reproduction target).
"""

from repro.bench import PAPER_RESULT_SIZES, QUERY_SET, datasets


def render_table(sizes_wsj, sizes_swb) -> str:
    lines = [
        "Figure 6(c): Test Query Set and Result Sizes",
        f"{'Q':<4}{'LPath query':<42}{'WSJ-like':>10}{'paper':>9}"
        f"{'SWB-like':>10}{'paper':>9}",
    ]
    for query in QUERY_SET:
        index = query.qid - 1
        lines.append(
            f"Q{query.qid:<3}{query.lpath:<42}"
            f"{sizes_wsj[index]:>10}{PAPER_RESULT_SIZES['WSJ'][index]:>9}"
            f"{sizes_swb[index]:>10}{PAPER_RESULT_SIZES['SWB'][index]:>9}"
        )
    return "\n".join(lines)


def test_fig6c_query_set_result_sizes(benchmark, write_result):
    wsj_engine = datasets.lpath_engine("wsj")
    swb_engine = datasets.lpath_engine("swb")

    def run_set() -> list[int]:
        return [wsj_engine.count(query.lpath) for query in QUERY_SET]

    sizes_wsj = benchmark(run_set)
    sizes_swb = [swb_engine.count(query.lpath) for query in QUERY_SET]
    write_result("fig6c_queries.txt", render_table(sizes_wsj, sizes_swb))

    by_id = {q.qid: s for q, s in zip(QUERY_SET, sizes_wsj)}
    # Selectivity shape: high-frequency structural queries dwarf rare-tag ones.
    assert by_id[2] > 20 * max(by_id[15], 1)       # //VB->NP >> //WHPP
    assert by_id[9] > by_id[18]                    # not(//JJ) >> deep NP chain
    # Containment invariants the paper's figures rely on.
    assert by_id[4] <= by_id[3]                    # scoping shrinks Q3
    assert by_id[5] <= by_id[6]                    # rightmost child ⊆ descendant
