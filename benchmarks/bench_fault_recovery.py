"""Fault-recovery cost: executor respawn tail latency and quarantine
isolation.

Two gates turn the PR's robustness story into numbers:

* **Post-kill p99.**  SIGKILLing every process-pool worker mid-run must
  cost one recovery round trip, not a degraded steady state — the p99
  over the post-kill request window stays within 2x the fault-free p99
  (the recovery requests themselves sit above p99 by construction and
  are reported separately as ``recovery_seconds``).
* **Quarantine isolation.**  With one store quarantined (real on-disk
  corruption caught by the readiness probe) and shed clients hammering
  it, the 503 path must be cheap enough that the healthy store keeps
  >= 90% of its solo QPS.  The shed arm models impatient-but-bounded
  retry clients: far above what a Retry-After honoring client would
  generate, far below a load test of the shed path itself.

Both arms of each gate are measured ``repeats`` times and compared at
the median, so a single scheduler hiccup can't fail (or pass) a gate;
gates are asserted only on multi-core hosts, single-core runs record
the numbers without gating (matching ``bench_serving``).  The healthy
QPS is a closed-loop single client's ``1 / median latency`` — per-thread
medians are far more stable than multi-client wall-clock throughput.

Knobs: ``REPRO_BENCH_FAULT_REQUESTS`` (default 400, clamped to >= 200 so
the recovery spikes stay above the p99 index) and
``REPRO_BENCH_REQUESTS`` for the QPS arms.
"""

from __future__ import annotations

import os
import shutil
import signal
import statistics
import tempfile
import threading
import time

import pytest

from repro import store
from repro.bench import datasets
from repro.labeling import label_corpus
from repro.lpath import LPathEngine
from repro.serve import QueryServer, QueryService, ServeClient, ServeClientError

from bench_serving import percentile

#: Cheap nested-path queries, alternated so both windows mix plans.
WORKLOAD = ("//VP//NP", "//NP")

FAULT_REQUESTS = max(
    200, int(os.environ.get("REPRO_BENCH_FAULT_REQUESTS", 400))
)
QPS_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", 200))

P99_FACTOR_CEILING = 2.0
QPS_RETENTION_FLOOR = 0.90

#: One shed request per hammer thread per this interval — ~50/s total
#: (everything shares one GIL, so shed traffic must stay a small
#: fraction of the ~2500/s cache-hit capacity for retention to measure
#: the shed path's cost, not its volume; a per-request disk re-probe
#: regression would still cost several ms each and crater retention).
SHED_INTERVAL_SECONDS = 0.04
SHED_CLIENTS = 2


@pytest.fixture(scope="module")
def store_file():
    trees = datasets.corpus("wsj")
    handle, path = tempfile.mkstemp(suffix=".lpdb")
    try:
        with os.fdopen(handle, "wb") as stream:
            store.save_labels(
                list(label_corpus(trees)), stream, segments=2,
                format="lpdb0004",
            )
        yield path
    finally:
        os.unlink(path)


def _multicore() -> bool:
    return (os.cpu_count() or 1) >= 2


# -- gate 1: post-kill tail latency ---------------------------------------


def _kill_workers(engine) -> None:
    executor = engine._pool()
    for pid in list(executor._processes):
        os.kill(pid, signal.SIGKILL)


def _timed_window(engine, expected, requests: int, kill_at=()) -> list:
    timings = []
    for index in range(requests):
        if index in kill_at:
            _kill_workers(engine)
        query = WORKLOAD[index % len(WORKLOAD)]
        started = time.perf_counter()
        rows = engine.query(query)
        timings.append(time.perf_counter() - started)
        assert rows == expected[query]
    return timings


def test_post_kill_p99_within_2x(
    store_file, write_result, write_json, repeats
):
    with LPathEngine.open(store_file) as plain:
        expected = {query: plain.query(query) for query in WORKLOAD}

    requests = FAULT_REQUESTS
    # The kill costs one above-p99 recovery request per window; the p99
    # index excludes it (plus a spare sample for a respawned worker's
    # first warm request) as long as the window holds >= 200 requests.
    kill_at = {requests // 2}

    rounds = max(2, repeats)
    fault_free_p99s, post_kill_p99s = [], []
    recovery = 0.0
    with LPathEngine.open(store_file, workers=2, mode="process") as engine:
        for query in WORKLOAD:  # warm the pool and the plan cache
            assert engine.query(query) == expected[query]
        # Alternate the arms so drift hits both equally; compare medians.
        for _ in range(rounds):
            fault_free = sorted(_timed_window(engine, expected, requests))
            fault_free_p99s.append(percentile(fault_free, 0.99))
            post_kill = sorted(
                _timed_window(engine, expected, requests, kill_at=kill_at)
            )
            post_kill_p99s.append(percentile(post_kill, 0.99))
            recovery = max(recovery, post_kill[-1])
        stats = engine._pool.stats()

    p99_fault_free = statistics.median(fault_free_p99s)
    p99_post_kill = statistics.median(post_kill_p99s)
    factor = p99_post_kill / p99_fault_free if p99_fault_free else 0.0

    gated = _multicore()
    write_result(
        "fault_recovery.txt",
        "\n".join([
            f"Post-kill tail latency: {rounds} x {requests} requests per "
            f"arm, all workers SIGKILLed mid-window (median p99):",
            f"  fault-free p99: {p99_fault_free * 1000:.2f}ms",
            f"  post-kill  p99: {p99_post_kill * 1000:.2f}ms "
            f"({factor:.2f}x)",
            f"  slowest recovery request: {recovery * 1000:.2f}ms",
            f"  pool: {stats['respawns']} respawns, mode {stats['mode']}",
            f"  gate: p99 factor <= {P99_FACTOR_CEILING:g}"
            + ("" if gated else " (recorded only: single-core host)"),
        ]),
    )
    write_json(
        "fault_recovery",
        {
            "requests_per_window": requests,
            "rounds": rounds,
            "p99_fault_free_seconds": p99_fault_free,
            "p99_post_kill_seconds": p99_post_kill,
            "recovery_seconds": recovery,
            "p99_factor": factor,
            "respawns": stats["respawns"],
            "degraded": stats["degraded"],
            "cores": os.cpu_count() or 1,
            "gated": gated,
        },
    )

    # Recovery happened on the process path — no silent degradation.
    assert stats["respawns"] >= rounds
    assert stats["mode"] == "process"
    assert stats["degraded"] is False
    if gated:
        assert p99_post_kill <= P99_FACTOR_CEILING * p99_fault_free, (
            f"post-kill p99 {p99_post_kill * 1000:.2f}ms is "
            f"{factor:.2f}x the fault-free "
            f"{p99_fault_free * 1000:.2f}ms (ceiling "
            f"{P99_FACTOR_CEILING:g}x)"
        )


# -- gate 2: quarantined-store 503s leave healthy QPS alone ---------------


def _flip_sidecar_byte(path: str, offset: int = 64) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ 0xFF]))


def _healthy_arm(server, healthy: str, expected: dict, rounds: int):
    """One closed-loop client against the healthy store, ``rounds``
    times; returns (qps from the median per-request latency, that
    median, the p99 of the pooled timings)."""
    medians, pooled = [], []
    for _ in range(rounds):
        timings = []
        with ServeClient(server.url, max_retries=0) as client:
            for index in range(QPS_REQUESTS):
                query = WORKLOAD[index % len(WORKLOAD)]
                started = time.perf_counter()
                count = client.count(query, store=healthy)
                timings.append(time.perf_counter() - started)
                assert count == expected[query]
        medians.append(statistics.median(timings))
        pooled.extend(timings)
    median = statistics.median(medians)
    return 1.0 / median, median, percentile(sorted(pooled), 0.99)


def test_quarantined_store_does_not_drag_healthy_qps(
    store_file, tmp_path, write_result, write_json, repeats
):
    healthy = str(tmp_path / "healthy.lpdb")
    doomed = str(tmp_path / "doomed.lpdb")
    shutil.copy(store_file, healthy)
    shutil.copy(store_file, doomed)

    # A long cooldown pins the quarantine for the whole mixed arm: shed
    # requests must be answered from the handle's state, never re-probed.
    service = QueryService(
        [healthy, doomed], max_inflight=1 + SHED_CLIENTS,
        max_queue=64, store_retry_after=300.0,
    )
    rounds = max(2, repeats)
    with QueryServer(service).start() as server:
        with ServeClient(server.url) as warmup:
            expected = {
                query: warmup.count(query, store=healthy)
                for query in WORKLOAD
            }
            _flip_sidecar_byte(doomed)
            probe = warmup.ready()
            assert probe["ready"] is True  # healthy store still serves
            assert probe["healthy_stores"] == 1

        qps_alone, median_alone, p99_alone = _healthy_arm(
            server, healthy, expected, rounds
        )

        stop = threading.Event()
        shed_statuses: list = []

        def hammer() -> None:
            with ServeClient(server.url, max_retries=0) as client:
                while not stop.is_set():
                    try:
                        client.count(WORKLOAD[0], store=doomed)
                        shed_statuses.append(200)
                    except ServeClientError as error:
                        shed_statuses.append(error.status)
                    stop.wait(SHED_INTERVAL_SECONDS)

        threads = [
            threading.Thread(target=hammer) for _ in range(SHED_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        try:
            qps_mixed, median_mixed, p99_mixed = _healthy_arm(
                server, healthy, expected, rounds
            )
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        stats = service.stats()

    # Every shed request was refused with the quarantine 503 — none
    # executed, none succeeded, none crashed the daemon.
    assert shed_statuses, "the shed arm never got a request through"
    assert set(shed_statuses) == {503}

    retention = qps_mixed / qps_alone if qps_alone else 0.0
    gated = _multicore()
    write_result(
        "quarantine_isolation.txt",
        "\n".join([
            f"Quarantine isolation: closed-loop client, {rounds} x "
            f"{QPS_REQUESTS} requests per arm, {SHED_CLIENTS} shed "
            f"clients at {1 / SHED_INTERVAL_SECONDS:.0f}/s each "
            f"(QPS = 1 / median latency):",
            f"  healthy store alone: {qps_alone:,.0f} QPS "
            f"(median {median_alone * 1000:.2f}ms, "
            f"p99 {p99_alone * 1000:.2f}ms)",
            f"  with quarantined store shedding "
            f"{len(shed_statuses)} x 503: {qps_mixed:,.0f} QPS "
            f"(median {median_mixed * 1000:.2f}ms, "
            f"p99 {p99_mixed * 1000:.2f}ms)",
            f"  retention: {retention:.1%}",
            f"  gate: >= {QPS_RETENTION_FLOOR:.0%} retention"
            + ("" if gated else " (recorded only: single-core host)"),
        ]),
    )
    write_json(
        "quarantine_isolation",
        {
            "requests_per_round": QPS_REQUESTS,
            "rounds": rounds,
            "shed_clients": SHED_CLIENTS,
            "shed_requests": len(shed_statuses),
            "qps_alone": qps_alone,
            "qps_mixed": qps_mixed,
            "retention": retention,
            "median_alone_seconds": median_alone,
            "median_mixed_seconds": median_mixed,
            "p99_alone_seconds": p99_alone,
            "p99_mixed_seconds": p99_mixed,
            "quarantines": stats["server"]["quarantines"],
            "cores": os.cpu_count() or 1,
            "gated": gated,
        },
    )

    assert stats["server"]["quarantines"] >= 1
    if gated:
        assert qps_mixed >= QPS_RETENTION_FLOOR * qps_alone, (
            f"healthy-store QPS fell to {retention:.1%} of its solo "
            f"{qps_alone:,.0f} QPS under quarantined-store load "
            f"(floor {QPS_RETENTION_FLOOR:.0%})"
        )
