"""LPDB0004 zero-copy store: cold-start and multi-core acceptance gates.

Two claims ride on the mmap layout, both measured on the Figure 9
scalability corpus (WSJ replicated to the largest factor, sharded):

* **cold open** — adopting an ``LPDB0004`` file via ``mmap`` must be at
  least 10x faster than the ``LPDB0003`` path (varint-decode every row,
  clustered-sort every segment, rebuild projections/bitmaps/statistics),
  because the mapped open does O(segments + names) work instead of
  O(rows);
* **multi-core throughput** — with the same worker count, ``process``
  fan-out must beat ``thread`` fan-out by at least 1.5x on a multi-core
  runner, because the columnar executor is CPU-bound pure Python and a
  thread pool serializes on the GIL.  Single-core runners (where process
  workers cannot physically run in parallel) record the ratio but skip
  the assertion — the claim is about cores, not about fork overhead.

Results land in ``BENCH_mmap_store.json`` (open timings under
``*_seconds``, file sizes under ``*_kb``) so CI's ``diff_bench.py`` gate
also watches cold-start and on-disk-size regressions across commits.
"""

import os
import time

from repro.bench import by_id, datasets
from repro.bench.datasets import bench_sentences
from repro.bench.harness import paper_timing
from repro.lpath import LPathEngine

FACTOR = 4.0
#: The fig9 largest-factor corpus, floored so the per-segment work is big
#: enough for the GIL-vs-cores comparison to measure execution rather
#: than pool handoff (same clamp idea as the structural-join A/B).
SENTENCES = max(1000, bench_sentences())
SEGMENTS = 8
WORKERS = 4
FIGURE9_QUERIES = (3, 6, 11)
OPEN_SPEEDUP_FLOOR = 10.0
PROCESS_SPEEDUP_FLOOR = 1.5
OPEN_REPEATS = 3


def _timed_open(open_engine) -> float:
    """Best-of-N wall time to open (and close) a store-backed engine."""
    best = None
    for _ in range(OPEN_REPEATS):
        started = time.perf_counter()
        engine = open_engine()
        elapsed = time.perf_counter() - started
        engine.close()
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_cold_open_mmap_vs_decode(write_result, write_json):
    path3 = datasets.compiled_corpus_path(
        "wsj", FACTOR, SEGMENTS, format="lpdb0003", sentences=SENTENCES
    )
    path4 = datasets.compiled_corpus_path(
        "wsj", FACTOR, SEGMENTS, format="lpdb0004", sentences=SENTENCES
    )

    decode_seconds = _timed_open(lambda: LPathEngine.open(path3))
    mmap_seconds = _timed_open(lambda: LPathEngine.from_store_mmap(path4))
    speedup = decode_seconds / mmap_seconds

    # Sanity: both opens produce working engines that agree.
    probe = by_id(FIGURE9_QUERIES[0]).lpath
    with LPathEngine.open(path3) as decoded:
        expected = decoded.count(probe)
    with LPathEngine.from_store_mmap(path4) as mapped:
        assert mapped.count(probe) == expected

    lines = [
        f"Cold store open, fig9 corpus at {FACTOR:g}x, {SEGMENTS} segments:",
        f"  LPDB0003 decode+build: {decode_seconds:10.5f}s "
        f"({os.path.getsize(path3)} bytes)",
        f"  LPDB0004 mmap adopt:   {mmap_seconds:10.5f}s "
        f"({os.path.getsize(path4)} bytes)",
        f"  speedup: {speedup:.1f}x (floor {OPEN_SPEEDUP_FLOOR:g}x)",
    ]
    write_result("mmap_open.txt", "\n".join(lines))
    write_json(
        "mmap_store_open",
        {
            "factor": FACTOR,
            "sentences_floor": SENTENCES,
            "segments": SEGMENTS,
            "open": {
                "lpdb0003_seconds": decode_seconds,
                "lpdb0004_seconds": mmap_seconds,
                "speedup": speedup,
            },
            "file_size": {
                "lpdb0003_kb": os.path.getsize(path3) // 1024,
                "lpdb0004_kb": os.path.getsize(path4) // 1024,
            },
        },
    )
    assert speedup >= OPEN_SPEEDUP_FLOOR, (
        f"LPDB0004 mmap open ({mmap_seconds:.5f}s) is only {speedup:.1f}x "
        f"faster than the LPDB0003 decode path ({decode_seconds:.5f}s); "
        f"the floor is {OPEN_SPEEDUP_FLOOR:g}x"
    )


def test_process_fanout_beats_threads(benchmark, write_result, write_json,
                                      repeats):
    thread_engine = datasets.mmap_engine(
        "wsj", FACTOR, SEGMENTS, workers=WORKERS, mode="thread",
        sentences=SENTENCES,
    )
    process_engine = datasets.mmap_engine(
        "wsj", FACTOR, SEGMENTS, workers=WORKERS, mode="process",
        sentences=SENTENCES,
    )
    sequential = datasets.mmap_engine("wsj", FACTOR, SEGMENTS,
                                      sentences=SENTENCES)

    queries = [by_id(qid).lpath for qid in FIGURE9_QUERIES]
    totals = {"thread": 0.0, "process": 0.0}
    per_query = []
    for qid, query in zip(FIGURE9_QUERIES, queries):
        expected = sequential.count(query)
        # Warm both pools and both plan caches (worker processes compile
        # on their first sight of a query); correctness check rides along.
        assert thread_engine.count(query) == expected, f"Q{qid} (thread)"
        assert process_engine.count(query) == expected, f"Q{qid} (process)"
        thread_seconds, _ = paper_timing(
            lambda: thread_engine.count(query), repeats
        )
        process_seconds, _ = paper_timing(
            lambda: process_engine.count(query), repeats
        )
        totals["thread"] += thread_seconds
        totals["process"] += process_seconds
        per_query.append({
            "query": f"Q{qid}",
            "thread_seconds": thread_seconds,
            "process_seconds": process_seconds,
        })

    cores = os.cpu_count() or 1
    ratio = totals["thread"] / totals["process"]
    multicore = cores >= WORKERS
    lines = [
        f"Fig9 queries at {FACTOR:g}x, {SEGMENTS} segments, "
        f"workers={WORKERS} ({cores} cores):",
        *(
            f"  {entry['query']}: thread {entry['thread_seconds']:.5f}s  "
            f"process {entry['process_seconds']:.5f}s"
            for entry in per_query
        ),
        f"  total: thread {totals['thread']:.5f}s  "
        f"process {totals['process']:.5f}s  ({ratio:.2f}x)",
        (
            f"  gate: process must win >= {PROCESS_SPEEDUP_FLOOR:g}x"
            if multicore
            else f"  gate skipped: {cores} core(s) < {WORKERS} workers "
                 f"(recorded only)"
        ),
    ]
    write_result("mmap_process_fanout.txt", "\n".join(lines))
    write_json(
        "mmap_store_fanout",
        {
            "factor": FACTOR,
            "sentences_floor": SENTENCES,
            "segments": SEGMENTS,
            "workers": WORKERS,
            "cores": cores,
            "queries": per_query,
            "totals": {
                "thread_seconds": totals["thread"],
                "process_seconds": totals["process"],
            },
            "thread_over_process": ratio,
            "gated": multicore,
        },
    )

    benchmark(lambda: process_engine.count(queries[-1]))

    if multicore:
        assert ratio >= PROCESS_SPEEDUP_FLOOR, (
            f"process fan-out ({totals['process']:.5f}s) only "
            f"{ratio:.2f}x over thread fan-out ({totals['thread']:.5f}s) "
            f"with {WORKERS} workers on {cores} cores; the floor is "
            f"{PROCESS_SPEEDUP_FLOOR:g}x"
        )
