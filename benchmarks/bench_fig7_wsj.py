"""Figure 7: query execution time on the WSJ-like dataset.

LPath engine vs TGrep2 vs CorpusSearch across all 23 queries, using the
paper's trimmed-mean protocol; the pytest-benchmark entry times the LPath
engine on the full set for regression tracking.

Expected shape (paper): LPath fastest on most queries, TGrep2 competitive
on low-selectivity tag scans, CorpusSearch slowest overall.
"""

from repro.bench import QUERY_SET, datasets, run_suite
from repro.bench.report import log_bar_chart, speedup_summary, timing_table

PROFILE = "wsj"


def _systems(profile):
    lpath = datasets.lpath_engine(profile)
    tgrep = datasets.tgrep2_engine(profile)
    corpussearch = datasets.corpussearch_engine(profile)
    queries = {q.qid: q for q in QUERY_SET}
    return {
        "LPath": lambda qid: (lambda: lpath.count(queries[qid].lpath)),
        "TGrep2": lambda qid: (lambda: tgrep.count(queries[qid].tgrep2))
        if queries[qid].tgrep2 else None,
        "CorpusSearch": lambda qid: (lambda: corpussearch.count(queries[qid].corpussearch))
        if queries[qid].corpussearch else None,
    }


def test_fig7_wsj_query_times(benchmark, write_result, repeats):
    systems = _systems(PROFILE)
    measurements = run_suite(systems, [q.qid for q in QUERY_SET], repeats=repeats)
    table = timing_table(
        measurements, f"Figure 7: Query Execution Time, {PROFILE.upper()}-like (s)"
    )
    chart = log_bar_chart(measurements, "Figure 7 (log-scale bars)")
    summary = "\n".join(
        [
            speedup_summary(measurements, "TGrep2", "LPath"),
            speedup_summary(measurements, "CorpusSearch", "LPath"),
        ]
    )
    write_result("fig7_wsj.txt", f"{table}\n\n{summary}\n\n{chart}")

    lpath = datasets.lpath_engine(PROFILE)
    benchmark(lambda: sum(lpath.count(q.lpath) for q in QUERY_SET))

    by_system = {}
    for measurement in measurements:
        if not measurement.unsupported:
            by_system.setdefault(measurement.system, []).append(measurement.seconds)
    # CorpusSearch must be the slowest system in total (paper's headline).
    totals = {system: sum(times) for system, times in by_system.items()}
    assert totals["CorpusSearch"] > totals["LPath"]
