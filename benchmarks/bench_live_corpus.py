"""Live-corpus serving cost: append-to-visible latency and query
throughput retention while the compactor runs.

Two gates turn the crash-safe live-corpus story into numbers:

* **Append -> visible.**  A durable append is a WAL frame + fsync + an
  engine swap; the next query must see the rows (read-your-writes).
  The timed window covers the whole pipeline — parse, frame, fsync,
  swap, and the first query observing the new count — and the median
  must stay under ``APPEND_VISIBLE_CEILING_SECONDS``.  An fsync on CI
  disks is hundreds of microseconds; the ceiling catches a regression
  to re-labeling or re-saving the base corpus per append (which would
  cost the full corpus build, orders of magnitude above it).

* **QPS retention under compaction.**  Compaction's heavy phase (the
  new base-segment build) runs outside the corpus lock so readers keep
  answering.  With a delta of ~40% of the corpus compacting in a
  background thread, closed-loop query latency may degrade to GIL
  sharing but no further: retained QPS (baseline median latency over
  during-compaction median latency) must stay >=
  ``QPS_RETENTION_FLOOR``.  The gate is asserted on multi-core hosts
  only (single-core runners record the numbers without gating,
  matching ``bench_serving``); medians keep one scheduler hiccup from
  deciding it.

Knobs: ``REPRO_BENCH_SENTENCES`` (corpus size), ``REPRO_BENCH_REPEATS``
(append samples are ``8 * repeats``), ``REPRO_BENCH_APPEND_CEILING``
(seconds, default 1.0).
"""

from __future__ import annotations

import io
import os
import shutil
import statistics
import tempfile
import threading
import time

from repro import live
from repro.bench import datasets
from repro.labeling import label_corpus
from repro.tree import write_trees

WORKLOAD = ("//VP//NP", "//NP")

APPEND_VISIBLE_CEILING_SECONDS = float(
    os.environ.get("REPRO_BENCH_APPEND_CEILING", "1.0")
)
QPS_RETENTION_FLOOR = 0.80
#: Fraction of the base corpus appended as the to-be-compacted delta.
DELTA_FRACTION = 0.4


def _multicore() -> bool:
    return (os.cpu_count() or 1) >= 2


def _bracketed(trees) -> str:
    out = io.StringIO()
    write_trees(trees, out)
    return out.getvalue()


def _median_query_seconds(engine, requests: int) -> float:
    timings = []
    for index in range(requests):
        started = time.perf_counter()
        engine.query(WORKLOAD[index % len(WORKLOAD)])
        timings.append(time.perf_counter() - started)
    return statistics.median(timings)


def test_live_corpus_gates(benchmark, write_result, write_json, repeats):
    trees = list(datasets.corpus("wsj"))
    split = max(1, int(len(trees) * (1.0 - DELTA_FRACTION)))
    base, delta = trees[:split], trees[split:]
    # One bracketed line per appended tree: the append gate feeds trees
    # one at a time, the compaction gate feeds the whole block.
    delta_lines = [_bracketed([tree]) for tree in delta]

    root = tempfile.mkdtemp(prefix="bench-live-")
    path = os.path.join(root, "live.lpdb")
    try:
        live.create_live_corpus(
            path, list(label_corpus(base)), segments=2
        )
        manager = live.LiveEngineManager(path)
        try:
            # -- gate 1: append -> visible --------------------------------
            samples = min(len(delta_lines), max(4, 8 * repeats))
            append_timings = []
            for line in delta_lines[:samples]:
                before = len(manager.engine.query("//_"))
                started = time.perf_counter()
                ack = manager.append_trees(line)
                visible = len(manager.engine.query("//_"))
                append_timings.append(time.perf_counter() - started)
                # //_ matches element rows only (@lex attribute rows are
                # part of the ack but not of the match set), so the
                # visibility check is growth, not exact row arithmetic.
                assert ack["rows"] > 0 and visible > before
            append_visible = statistics.median(append_timings)

            # -- gate 2: QPS retention while compacting -------------------
            # Fold the remaining delta in so the compactor has real work.
            rest = delta_lines[samples:]
            if rest:
                manager.append_trees("".join(rest))
            baseline = _median_query_seconds(manager.engine, 40)

            during: list[float] = []
            compact_status: dict = {}

            def compact() -> None:
                compact_status.update(manager.compact())

            worker = threading.Thread(target=compact)
            worker.start()
            while worker.is_alive():
                started = time.perf_counter()
                manager.engine.query(WORKLOAD[len(during) % len(WORKLOAD)])
                during.append(time.perf_counter() - started)
            worker.join()
            compact_seconds = compact_status.get("seconds", 0.0)
            # Compaction must actually have happened, and answers after
            # it must match answers before it.
            assert compact_status.get("compacted_rows", 0) > 0
            assert manager.status()["delta_rows"] == 0
            after = _median_query_seconds(manager.engine, 40)

            if len(during) >= 5:
                during_median = statistics.median(during)
                retention = baseline / during_median
            else:
                # Compaction finished inside a handful of queries: there
                # was no sustained contention window to measure.
                during_median = baseline
                retention = 1.0

            # pytest-benchmark's own table gets the steady-state query
            # figure on the fully compacted store.
            benchmark(lambda: manager.engine.query("//NP"))
        finally:
            manager.close()
    finally:
        shutil.rmtree(root)

    lines = [
        "Live corpus: append->visible latency and compaction retention",
        f"corpus: {len(base)} base trees, {len(delta)} appended",
        f"append -> visible (median of {len(append_timings)}): "
        f"{append_visible * 1000.0:.2f} ms "
        f"(ceiling {APPEND_VISIBLE_CEILING_SECONDS * 1000.0:.0f} ms)",
        f"query median before compaction: {baseline * 1000.0:.2f} ms",
        f"query median during compaction: {during_median * 1000.0:.2f} ms "
        f"({len(during)} samples over {compact_seconds:.3f}s)",
        f"query median after compaction:  {after * 1000.0:.2f} ms",
        f"QPS retention while compacting: {retention:.2%} "
        f"(floor {QPS_RETENTION_FLOOR:.0%})",
    ]
    write_result("live_corpus.txt", "\n".join(lines))
    write_json("live_corpus", {
        "append_visible_seconds": append_visible,
        "append_samples": len(append_timings),
        "query_baseline_seconds": baseline,
        "query_during_compaction_seconds": during_median,
        "query_after_compaction_seconds": after,
        "compaction_seconds": compact_seconds,
        "compaction_samples": len(during),
        "qps_retention": retention,
    })

    assert append_visible <= APPEND_VISIBLE_CEILING_SECONDS
    if _multicore():
        assert retention >= QPS_RETENTION_FLOOR, (
            f"query QPS retained only {retention:.2%} while compacting "
            f"(floor {QPS_RETENTION_FLOOR:.0%})"
        )

