"""Figure 8: query execution time on the SWB-like dataset.

Same protocol as Figure 7 on the conversational corpus.  Expected shape
(paper): the LPath engine wins across the board, because the tags the
query set uses are much rarer in SWB, so its name-driven index probes
touch little data.
"""

from repro.bench import QUERY_SET, datasets, run_suite
from repro.bench.report import log_bar_chart, speedup_summary, timing_table
from bench_fig7_wsj import _systems

PROFILE = "swb"


def test_fig8_swb_query_times(benchmark, write_result, repeats):
    systems = _systems(PROFILE)
    measurements = run_suite(systems, [q.qid for q in QUERY_SET], repeats=repeats)
    table = timing_table(
        measurements, f"Figure 8: Query Execution Time, {PROFILE.upper()}-like (s)"
    )
    chart = log_bar_chart(measurements, "Figure 8 (log-scale bars)")
    summary = "\n".join(
        [
            speedup_summary(measurements, "TGrep2", "LPath"),
            speedup_summary(measurements, "CorpusSearch", "LPath"),
        ]
    )
    write_result("fig8_swb.txt", f"{table}\n\n{summary}\n\n{chart}")

    lpath = datasets.lpath_engine(PROFILE)
    benchmark(lambda: sum(lpath.count(q.lpath) for q in QUERY_SET))

    totals: dict[str, float] = {}
    for measurement in measurements:
        if not measurement.unsupported:
            totals[measurement.system] = totals.get(measurement.system, 0.0) + measurement.seconds
    assert totals["CorpusSearch"] > totals["LPath"]
