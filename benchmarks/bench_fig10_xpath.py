"""Figure 10: LPath labeling scheme vs the XPath (start/end) labeling scheme.

The 11 XPath-expressible queries run on both engines over the same
WSJ-like corpus with identical physical design.  Expected shape (paper):
"the performance of these two labeling schemes is almost the same" — the
LPath scheme supports 12 more queries at no cost on the shared ones.
"""

from repro.bench import datasets, xpath_queries
from repro.bench.harness import measure
from repro.bench.report import speedup_summary, timing_table


def test_fig10_labeling_scheme_comparison(benchmark, write_result, repeats):
    lpath = datasets.lpath_engine("wsj")
    xpath = datasets.xpath_engine("wsj")
    queries = xpath_queries()
    assert len(queries) == 11  # the paper's count

    measurements = []
    for query in queries:
        # Both engines must agree exactly before we compare their speed.
        assert lpath.query(query.lpath) == xpath.query(query.lpath), query.lpath
        measurements.append(
            measure("LPath-labels", query.qid,
                    lambda q=query: lpath.count(q.lpath), repeats)
        )
        measurements.append(
            measure("XPath-labels", query.qid,
                    lambda q=query: xpath.count(q.lpath), repeats)
        )
    table = timing_table(
        measurements,
        "Figure 10: LPath vs XPath labeling, WSJ-like (s), 11 shared queries",
    )
    summary = speedup_summary(measurements, "XPath-labels", "LPath-labels")
    write_result("fig10_xpath.txt", f"{table}\n\n{summary}")

    benchmark(lambda: sum(xpath.count(q.lpath) for q in queries))

    # Shape: same ballpark — total runtimes within 3x of each other.
    totals: dict[str, float] = {}
    for m in measurements:
        totals[m.system] = totals.get(m.system, 0.0) + m.seconds
    ratio = totals["LPath-labels"] / totals["XPath-labels"]
    assert 1 / 3 < ratio < 3, f"labeling schemes diverged: ratio {ratio:.2f}"
