"""Ablation: physical-design and planning choices the paper calls out.

Three ablations beyond the paper's figures (indexed in DESIGN.md):

1. **Reverse-axis index** — the paper's clustering leads on ``left``, so
   immediate-preceding probes must range-scan and filter on ``right``.
   Adding a ``{name, tid, right}`` index turns them into equality probes.
2. **Value-driven seeding** — wildcard value queries (``//_[@lex=w]``)
   can seed from the ``{value, tid, id}`` index instead of scanning every
   element row; this is what makes the high-selectivity Q12/Q13 fast.
3. **Pivot join ordering** — starting a chain at its rarest tag and
   traversing inverted axes leftward, instead of always joining left to
   right as the paper's translation does.
"""

from repro.bench import datasets
from repro.bench.harness import paper_timing
from repro.lpath import LPathEngine

PRECEDING_QUERY = "//NP<-VB"
VALUE_QUERY = "//_[@lex=rapprochement]"
PIVOT_QUERY = "//S//NP//WHPP"


def test_ablation_reverse_axis_index(benchmark, write_result, repeats):
    trees = list(datasets.corpus("wsj"))
    plain = LPathEngine(trees, keep_trees=False)
    extra = LPathEngine(trees, extra_indexes=True, keep_trees=False)
    assert plain.query(PRECEDING_QUERY) == extra.query(PRECEDING_QUERY)
    assert plain.query(PIVOT_QUERY, pivot=True) == plain.query(PIVOT_QUERY)

    plain_seconds, size = paper_timing(lambda: plain.count(PRECEDING_QUERY), repeats)
    extra_seconds, _ = paper_timing(lambda: extra.count(PRECEDING_QUERY), repeats)

    value_scan_seconds, value_size = paper_timing(
        lambda: plain.count(VALUE_QUERY), repeats
    )

    default_seconds, pivot_size = paper_timing(
        lambda: plain.count(PIVOT_QUERY), repeats
    )
    pivot_seconds, _ = paper_timing(
        lambda: len(plain.query(PIVOT_QUERY, pivot=True)), repeats
    )

    lines = [
        "Ablation: physical design and planning",
        f"query {PRECEDING_QUERY} ({size} results)",
        f"  paper physical design (range scan + filter): {plain_seconds:.4f}s",
        f"  + {{name,tid,right}} index (equality probe):  {extra_seconds:.4f}s",
        f"query {VALUE_QUERY} ({value_size} results)",
        f"  with {{value,tid,id}} seeding:                {value_scan_seconds:.4f}s",
        f"query {PIVOT_QUERY} ({pivot_size} results)",
        f"  left-to-right join order (paper):            {default_seconds:.4f}s",
        f"  pivot join order (rarest tag first):         {pivot_seconds:.4f}s",
    ]
    write_result("ablation_indexes.txt", "\n".join(lines))

    benchmark(lambda: extra.count(PRECEDING_QUERY))
    # The reverse index must never lose; usually it wins.
    assert extra_seconds <= plain_seconds * 1.5
    assert pivot_seconds <= default_seconds * 1.5
