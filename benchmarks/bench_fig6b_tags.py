"""Figure 6(b): the ten most frequent tags in each dataset.

The paper's qualitative signature — NP leads WSJ while -DFL- (disfluency)
is at/near the top for SWB — must hold on the generated corpora.
"""

from repro.bench import datasets
from repro.corpus import format_top_tags_table, top_tags


def test_fig6b_top_tags(benchmark, write_result):
    wsj = list(datasets.corpus("wsj"))
    swb = list(datasets.corpus("swb"))

    def compute():
        return {
            "WSJ-like": top_tags(wsj, 10),
            "SWB-like": top_tags(swb, 10),
        }

    rows = benchmark(compute)
    paper_note = (
        "\nPaper top-3: WSJ = NP, VP, NN; SWB = -DFL-, VP, NP-SBJ."
    )
    write_result(
        "fig6b_tags.txt",
        "Figure 6(b): Top 10 Frequent Tags\n"
        + format_top_tags_table(rows) + paper_note,
    )
    assert rows["WSJ-like"][0][0] == "NP"
    assert "-DFL-" in [tag for tag, _ in rows["SWB-like"]]
