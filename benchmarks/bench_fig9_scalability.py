"""Figure 9: query time as the WSJ-like dataset is replicated 0.5x-4x.

The paper replicates WSJ between 0.5 and 4 times and plots Q3, Q6 and Q11
for the three systems.  Expected shape: near-linear growth for every
system, with the LPath engine keeping the lowest curve on the
high-selectivity Q11.
"""

from repro.bench import by_id, datasets
from repro.bench.harness import paper_timing
from repro.bench.report import scaling_table

FACTORS = (0.5, 1.0, 2.0, 4.0)
FIGURE9_QUERIES = (3, 6, 11)


def _series_for(qid: int, repeats: int) -> dict[str, list[tuple[float, float]]]:
    query = by_id(qid)
    series: dict[str, list[tuple[float, float]]] = {
        "LPath": [], "TGrep2": [], "CorpusSearch": [],
    }
    for factor in FACTORS:
        lpath = datasets.lpath_engine("wsj", factor)
        tgrep = datasets.tgrep2_engine("wsj", factor)
        corpussearch = datasets.corpussearch_engine("wsj", factor)
        seconds, _ = paper_timing(lambda: lpath.count(query.lpath), repeats)
        series["LPath"].append((factor, seconds))
        seconds, _ = paper_timing(lambda: tgrep.count(query.tgrep2), repeats)
        series["TGrep2"].append((factor, seconds))
        seconds, _ = paper_timing(
            lambda: corpussearch.count(query.corpussearch), repeats
        )
        series["CorpusSearch"].append((factor, seconds))
    return series


def test_fig9_scalability(benchmark, write_result, repeats):
    sections = []
    all_series = {}
    for qid in FIGURE9_QUERIES:
        series = _series_for(qid, repeats)
        all_series[qid] = series
        sections.append(
            scaling_table(series, f"Figure 9 Q{qid}: time (s) vs WSJ-like scale")
        )
    write_result("fig9_scalability.txt", "\n\n".join(sections))

    # Regression benchmark: the LPath engine at the largest factor.
    query = by_id(11)
    lpath = datasets.lpath_engine("wsj", FACTORS[-1])
    benchmark(lambda: lpath.count(query.lpath))

    # Shape: every system grows with data size (monotone within noise:
    # the 4x point must exceed the 0.5x point).
    for qid, series in all_series.items():
        for system, points in series.items():
            by_factor = dict(points)
            assert by_factor[FACTORS[-1]] > by_factor[FACTORS[0]] * 0.8, (
                f"{system} Q{qid} did not scale with data size"
            )
