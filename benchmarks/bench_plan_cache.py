"""Plan-cache effectiveness on repeated queries (the Figure 6/9 hot loop).

The paper's protocol reruns every query 7 times and reports a trimmed
mean, so repeated evaluation of the same query text is the benchmark hot
path.  Since the unified-IR refactor each engine keeps compiled plans in
an LRU cache keyed on the unparsed query, and repetitions skip
parse → lower → optimize → closure-compile entirely.  This benchmark
reports the full fig6c query set and a high-selectivity (rare-tag) probe
with a warm cache vs. recompiling every round.
"""

import time

from repro.bench import QUERY_SET, datasets

#: Cheap, high-selectivity queries where compilation is a large fraction
#: of total latency — the cache's best case.
RARE_QUERY = "//WHPP"


def _best_of(run, rounds: int = 5) -> float:
    timings = []
    for _ in range(rounds):
        started = time.perf_counter()
        run()
        timings.append(time.perf_counter() - started)
    return min(timings)


def render_table(rows) -> str:
    lines = [
        "Plan cache: repeated-query latency (warm cache vs recompile)",
        f"{'workload':<28}{'warm':>12}{'cold':>12}{'speedup':>9}",
    ]
    for name, warm, cold in rows:
        lines.append(
            f"{name:<28}{warm * 1000:>10.2f}ms{cold * 1000:>10.2f}ms"
            f"{cold / warm:>8.2f}x"
        )
    return "\n".join(lines)


def test_plan_cache_repeated_queries(benchmark, write_result):
    engine = datasets.lpath_engine("wsj")

    def run_set() -> list[int]:
        return [engine.count(query.lpath) for query in QUERY_SET]

    def run_set_cold() -> list[int]:
        engine.plan_cache.clear()
        return [engine.count(query.lpath) for query in QUERY_SET]

    def run_rare() -> int:
        return engine.count(RARE_QUERY)

    def run_rare_cold() -> int:
        engine.plan_cache.clear()
        return engine.count(RARE_QUERY)

    run_set()                        # warm the cache
    warm_set = _best_of(run_set)
    cold_set = _best_of(run_set_cold)
    run_rare()
    warm_rare = _best_of(run_rare, rounds=20)
    cold_rare = _best_of(run_rare_cold, rounds=20)

    benchmark(run_set)

    write_result(
        "plan_cache.txt",
        render_table(
            [
                ("fig6c set (23 queries)", warm_set, cold_set),
                (f"rare tag {RARE_QUERY}", warm_rare, cold_rare),
            ]
        )
        + f"\ncache stats: {engine.plan_cache.stats}",
    )

    # The correctness claim — repetitions hit the cache — is asserted
    # directly; the timing comparison lives in the written report because
    # wall-clock ratios are too noisy to gate CI on.
    assert engine.plan_cache.hits > 0
