"""Shared-scan batch execution and top-k early termination, timed.

Two perf claims ride on the batch compiler (``repro.plan.batch``):

* **Shared scans.** A fig. 6c-style suite of ten queries over the same
  deep ``//S//VP//NP//NP`` prefix compiles into one DAG whose shared
  scan/join spine executes once; only the cheap per-query tail joins
  fan out.  Executed as a batch it must beat the same ten queries run
  sequentially by >= 2x.
* **Top-k early termination.** A fig. 9 deep-chain query with ``limit=10``
  pushes per-segment k-limits into the structural-join sweeps and stops
  each sweep once k rows are in hand, so it must beat full
  materialization by >= 3x.

Both claims are gated on byte-identity first: the batch results must
equal the per-query results exactly, and the top-k rows must be the
sorted prefix of the full result — a fast wrong answer is no answer.

``BENCH_batch.json`` records ``sequential_seconds``/``batch_seconds``
and ``full_seconds``/``topk_seconds`` plus both speedups so CI can diff
runs against the uploaded baseline artifact (``benchmarks/diff_bench.py``).
"""

from repro.bench import datasets
from repro.bench.datasets import bench_sentences
from repro.bench.harness import paper_timing
from repro.lpath.engine import LPathEngine

#: The top-k claim needs a corpus large enough that materializing the
#: full deep-chain result dwarfs the chunked driver's fixed per-query
#: overhead; the shared-scan claim holds at any size but sharpens here.
LARGE_SENTENCES = max(4000, bench_sentences())

#: Ten queries over one expensive four-step spine, differing only in a
#: rare final tag — the shape batch execution is built for: the shared
#: prefix dominates, the per-query tails are nearly free.
BATCH_TAIL_TAGS = (
    "WHPP", "MD", "ADVP", "WP", "WDT", "WHNP", "PRP", "RB", "CD", "SBAR",
)
BATCH_SUITE = tuple(f"//S//VP//NP//NP//{tag}" for tag in BATCH_TAIL_TAGS)

#: Fig. 9 deep chain for the early-termination claim.
DEEP_QUERY = "//S//VP//NP//NN"
TOP_K = 10

BATCH_SPEEDUP_FLOOR = 2.0
TOPK_SPEEDUP_FLOOR = 3.0


def _engine() -> LPathEngine:
    trees = datasets.corpus("wsj", LARGE_SENTENCES)
    return LPathEngine(list(trees), keep_trees=False, executor="columnar")


def test_batch_and_topk(benchmark, write_result, write_json, repeats):
    engine = _engine()
    suite = list(BATCH_SUITE)

    # Correctness gates before any timing: batch == per-query, top-k ==
    # sorted prefix of the full materialization.
    per_query = [engine.query(query) for query in suite]
    assert engine.query_batch(suite) == per_query, (
        "batch execution diverged from per-query execution"
    )
    full_rows = engine.query(DEEP_QUERY)
    assert engine.query(DEEP_QUERY, limit=TOP_K) == \
        sorted(full_rows)[:TOP_K], (
        "top-k rows are not the sorted prefix of the full result"
    )

    # The plan cache is warm from the correctness pass; time the steady
    # state the claims are about.
    sequential_s, _ = paper_timing(
        lambda: [engine.query(query) for query in suite], repeats
    )
    batch_s, _ = paper_timing(lambda: engine.query_batch(suite), repeats)
    full_s, _ = paper_timing(lambda: engine.query(DEEP_QUERY), repeats)
    topk_s, _ = paper_timing(
        lambda: engine.query(DEEP_QUERY, limit=TOP_K), repeats
    )

    batch_speedup = sequential_s / batch_s if batch_s else float("inf")
    topk_speedup = full_s / topk_s if topk_s else float("inf")

    table = "\n".join(
        [
            f"shared-scan batch ({len(suite)} queries, "
            f"{sum(len(rows) for rows in per_query)} rows total)",
            f"  sequential {sequential_s:.5f}s  batch {batch_s:.5f}s  "
            f"({batch_speedup:.2f}x; gate >= {BATCH_SPEEDUP_FLOOR:g}x)",
            f"top-k early termination ({DEEP_QUERY}, k={TOP_K}, "
            f"{len(full_rows)} rows full)",
            f"  full {full_s:.5f}s  top-k {topk_s:.5f}s  "
            f"({topk_speedup:.2f}x; gate >= {TOPK_SPEEDUP_FLOOR:g}x)",
            f"over {LARGE_SENTENCES} sentences",
        ]
    )
    write_result(
        "batch_topk.txt",
        "Shared-scan batch execution and top-k early termination\n" + table,
    )
    write_json(
        "batch",
        {
            "sentences": LARGE_SENTENCES,
            "batch_queries": len(suite),
            "batch_rows": sum(len(rows) for rows in per_query),
            "sequential_seconds": sequential_s,
            "batch_seconds": batch_s,
            "batch_speedup": batch_speedup,
            "topk_query": DEEP_QUERY,
            "topk_k": TOP_K,
            "full_rows": len(full_rows),
            "full_seconds": full_s,
            "topk_seconds": topk_s,
            "topk_speedup": topk_speedup,
            "gated": True,
        },
    )

    # Regression benchmark: the batched suite end to end.
    benchmark(lambda: engine.query_batch(suite))

    assert batch_speedup >= BATCH_SPEEDUP_FLOOR, (
        f"shared-scan batch fell below the {BATCH_SPEEDUP_FLOOR}x floor: "
        f"sequential {sequential_s:.5f}s vs batch {batch_s:.5f}s "
        f"({batch_speedup:.2f}x)"
    )
    assert topk_speedup >= TOPK_SPEEDUP_FLOOR, (
        f"top-k early termination fell below the {TOPK_SPEEDUP_FLOOR}x "
        f"floor on {DEEP_QUERY}: full {full_s:.5f}s vs top-k {topk_s:.5f}s "
        f"({topk_speedup:.2f}x)"
    )
