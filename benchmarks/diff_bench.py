"""Compare two machine-readable benchmark documents for perf regressions.

CI runs every benchmark into ``benchmarks/results/BENCH_<name>.json`` and
uploads the documents as artifacts.  This tool diffs a fresh document
against the baseline artifact from a previous run and fails (exit 1) when
any shared timing regressed beyond the tolerance::

    python benchmarks/diff_bench.py baseline/BENCH_structural_join.json \\
        benchmarks/results/BENCH_structural_join.json --tolerance 1.5

Two documents are only comparable when their environment knobs match
(corpus size, repeats); mismatched knobs downgrade the diff to a report
without failing, since the numbers mean different workloads.  Timings are
found by walking the ``results`` payload for numeric keys ending in
``_seconds`` (plus ``seconds``), keyed by their JSON path.  Memory
metrics — keys ending in ``_kb``, plus the envelope's ``max_rss_kb`` peak
RSS — diff under the same tolerance, so a memory or cold-start regression
fails the gate exactly like a slow query would.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

COMPARABLE_KNOBS = ("sentences", "repeats", "python")


def timings(document: dict) -> dict[str, float]:
    """``json-path -> seconds`` for every timing in the results payload."""
    found: dict[str, float] = {}

    def walk(node, path: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{path}.{key}" if path else key)
        elif isinstance(node, list):
            for index, value in enumerate(node):
                label = index
                if isinstance(value, dict):
                    label = value.get("query", value.get("suite", index))
                walk(value, f"{path}[{label}]")
        elif isinstance(node, (int, float)) and not isinstance(node, bool):
            leaf = path.rsplit(".", 1)[-1]
            if (
                leaf == "seconds"
                or leaf.endswith("_seconds")
                or leaf.endswith("_kb")
            ):
                found[path] = float(node)

    walk(document.get("results", {}), "")
    if isinstance(document.get("max_rss_kb"), (int, float)):
        found["max_rss_kb"] = float(document["max_rss_kb"])
    return found


def diff(baseline: dict, current: dict, tolerance: float) -> tuple[list[str], bool]:
    lines: list[str] = []
    comparable = all(
        baseline.get(knob) == current.get(knob) for knob in COMPARABLE_KNOBS
    )
    if not comparable:
        lines.append(
            "knobs differ ("
            + ", ".join(
                f"{knob}: {baseline.get(knob)} -> {current.get(knob)}"
                for knob in COMPARABLE_KNOBS
                if baseline.get(knob) != current.get(knob)
            )
            + "); reporting only, not failing"
        )
    old, new = timings(baseline), timings(current)
    regressed = False

    def fmt(path: str, value: float) -> str:
        if path.rsplit(".", 1)[-1].endswith("_kb") or path == "max_rss_kb":
            return f"{value:.0f}kb"
        return f"{value:.5f}s"

    for path in sorted(old.keys() & new.keys()):
        was, now = old[path], new[path]
        # A zero baseline (e.g. a sub-KiB file size) carries no signal;
        # only flag it when the current value actually appeared.
        ratio = now / was if was else (float("inf") if now else 1.0)
        marker = ""
        if ratio > tolerance and was:
            marker = f"  <-- regression (> {tolerance:.2f}x)"
            regressed = True
        lines.append(
            f"{path}: {fmt(path, was)} -> {fmt(path, now)} ({ratio:.2f}x)"
            f"{marker}"
        )
    for path in sorted(new.keys() - old.keys()):
        lines.append(f"{path}: (new) {fmt(path, new[path])}")
    for path in sorted(old.keys() - new.keys()):
        lines.append(f"{path}: (gone, was {fmt(path, old[path])})")
    if not (old.keys() & new.keys()):
        lines.append("no shared timings to compare")
    return lines, regressed and comparable


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="baseline BENCH_*.json")
    parser.add_argument("current", type=Path, help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--tolerance", type=float, default=1.5,
        help="fail when a timing grows beyond this factor (default 1.5)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    lines, regressed = diff(baseline, current, args.tolerance)
    name = current.get("bench", args.current.name)
    print(f"benchmark diff for {name}:")
    for line in lines:
        print(f"  {line}")
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
