"""A/B benchmark: native cffi kernels vs the pure-Python columnar loops.

Both backends execute the *same* compiled plans over the same columnar
store — the ``REPRO_KERNELS`` knob pins the dispatch, so the comparison
isolates the hot-loop implementation (per-shape structural joins, the
vectorized scan filters and the batch output gather).  The workload is
the fig. 9 deep-chain territory on the large WSJ profile, with the
structural merge join forced on so every query spends its time in the
loops the C side replaces.

Assertions:

* with the extension built, the native backend beats the pure-Python
  loops by >= 3x in aggregate over the deep-chain suite — on runners
  without a working toolchain the ratio is recorded, not asserted
  (the claim is about the kernels, not about the runner's compiler);
* both backends agree on every result size (byte-identity is the fuzz
  suite's job; the size check here catches a silently wrong build).

``BENCH_kernels.json`` carries the per-query timings plus the kernel
provenance block (backend, cffi and compiler versions) so CI can diff
runs against the uploaded baseline artifact (``benchmarks/diff_bench.py``).
"""

import os
from contextlib import contextmanager

from repro.bench import datasets
from repro.bench.datasets import bench_sentences
from repro.bench.harness import paper_timing
from repro.columnar.kernels import KERNELS_ENV, native_kernels
from repro.lpath.engine import LPathEngine

#: Like the structural-join A/B: the kernel claim is about corpora large
#: enough for per-row interpreter overhead to dominate.
LARGE_SENTENCES = max(1000, bench_sentences())

#: Fig. 9-style deep descendant chains (the asserted suite) plus broad
#: two-step scans (reported — their cost is output-dominated).
DEEP_QUERIES = ("//S//NP//NN", "//NP//NP", "//S//VP//NP//NN", "//VP//NP//PP")
SCAN_QUERIES = ("//S//NP", "//S//VP//NP")

SPEEDUP_FLOOR = 3.0


@contextmanager
def _pinned(variable: str, value: str):
    previous = os.environ.get(variable)
    os.environ[variable] = value
    try:
        yield
    finally:
        if previous is None:
            del os.environ[variable]
        else:
            os.environ[variable] = previous


def _engine() -> LPathEngine:
    trees = datasets.corpus("wsj", LARGE_SENTENCES)
    return LPathEngine(list(trees), keep_trees=False, executor="columnar")


def _timed(engine: LPathEngine, query: str, backend: str, repeats: int):
    with _pinned("REPRO_FORCE_JOIN", "merge"), _pinned(KERNELS_ENV, backend):
        engine.count(query)  # warm the plan cache for this backend
        return paper_timing(lambda: engine.count(query), repeats)


def _format(rows) -> str:
    header = (
        f"{'suite':10s} {'query':18s} {'python (s)':>11s} "
        f"{'native (s)':>11s} {'speedup':>8s} {'rows':>7s}"
    )
    lines = [header, "-" * len(header)]
    for suite, query, python_s, native_s, size in rows:
        speedup = python_s / native_s if native_s else float("inf")
        lines.append(
            f"{suite:10s} {query:18s} {python_s:11.5f} "
            f"{native_s:11.5f} {speedup:7.2f}x {size:7d}"
        )
    return "\n".join(lines)


def test_native_kernels_ab(benchmark, write_result, write_json, repeats):
    native_built = native_kernels() is not None
    engine = _engine()

    rows = []
    payload = []
    deep_python = deep_native = 0.0
    for suite, queries in (("deep-chain", DEEP_QUERIES), ("fig9 scan", SCAN_QUERIES)):
        for query in queries:
            python_s, python_n = _timed(engine, query, "python", repeats)
            if native_built:
                native_s, native_n = _timed(engine, query, "native", repeats)
            else:
                native_s, native_n = python_s, python_n
            assert python_n == native_n, (
                f"kernel backends disagree on {query}: {python_n} vs {native_n}"
            )
            rows.append((suite, query, python_s, native_s, python_n))
            payload.append(
                {
                    "suite": suite,
                    "query": query,
                    "python_seconds": python_s,
                    "native_seconds": native_s if native_built else None,
                    "speedup": python_s / native_s if native_s else None,
                    "rows": python_n,
                }
            )
            if suite == "deep-chain":
                deep_python += python_s
                deep_native += native_s

    speedup = deep_python / deep_native if deep_native else float("inf")
    table = _format(rows)
    summary = (
        f"\ndeep-chain suite: python {deep_python:.5f}s, native "
        f"{deep_native:.5f}s ({speedup:.2f}x) over {LARGE_SENTENCES} "
        f"sentences\n"
        + (
            f"gate: native must win >= {SPEEDUP_FLOOR:g}x"
            if native_built
            else "gate skipped: cffi extension unavailable (recorded only)"
        )
    )
    write_result(
        "kernels_ab.txt",
        "Native cffi kernels vs pure-Python columnar loops\n" + table + summary,
    )
    write_json(
        "kernels",
        {
            "sentences": LARGE_SENTENCES,
            "native_built": native_built,
            "queries": payload,
            "deep_chain_speedup": speedup if native_built else None,
            "gated": native_built,
        },
    )

    # Regression benchmark: the default (auto) backend on the deepest chain.
    with _pinned("REPRO_FORCE_JOIN", "merge"):
        benchmark(lambda: engine.count(DEEP_QUERIES[2]))

    if native_built:
        assert speedup >= SPEEDUP_FLOOR, (
            f"native kernels fell below the {SPEEDUP_FLOOR}x floor on the "
            f"deep-chain suite: python {deep_python:.5f}s vs native "
            f"{deep_native:.5f}s ({speedup:.2f}x)"
        )
