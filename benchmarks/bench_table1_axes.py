"""Table 1: the LPath axis inventory, plus an axis-decision microbenchmark.

Regenerates the paper's Table 1 (axes, abbreviations, closures, Core XPath
support) from the implementation's single source of truth, and times how
fast the Table 2 label comparisons decide axes — the primitive operation
every join in the engine performs.
"""

import random

from repro.labeling import label_tree, predicates
from repro.lpath.axes import AXIS_INFO, TABLE_1
from repro.tree import figure1_tree


def render_table1() -> str:
    lines = [
        "Table 1: LPath Navigation Axes",
        f"{'Type':<12}{'Axis':<30}{'Abbrev':<15}{'Closure of':<28}{'Core XPath'}",
    ]
    for info in TABLE_1:
        closure = info.closure_of.value if info.closure_of else ""
        lines.append(
            f"{info.navigation.value:<12}{info.axis.value:<30}"
            f"{info.abbreviation or '':<15}{closure:<28}"
            f"{'yes' if info.core_xpath else 'no'}"
        )
    return "\n".join(lines)


def test_table1_axis_inventory(benchmark, write_result):
    write_result("table1_axes.txt", render_table1())
    rows = [r for r in label_tree(figure1_tree()) if not r.is_attribute]
    rng = random.Random(5)
    pairs = [(rng.choice(rows), rng.choice(rows)) for _ in range(512)]
    checks = [
        predicates.is_child,
        predicates.is_descendant,
        predicates.is_immediate_following,
        predicates.is_following,
        predicates.is_immediate_following_sibling,
        predicates.is_preceding_sibling,
    ]

    def decide_all() -> int:
        hits = 0
        for x, y in pairs:
            for check in checks:
                if check(x, y):
                    hits += 1
        return hits

    total = benchmark(decide_all)
    assert total > 0
    assert len(AXIS_INFO) == 14  # the Table 1 rows
