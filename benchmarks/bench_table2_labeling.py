"""Table 2: the labeling scheme — construction cost and axis conditions.

Regenerates the axis-to-label-comparison mapping and benchmarks the single
depth-first labeling pass of Definition 4.1 over the benchmark corpus.
"""

from repro.bench import datasets
from repro.labeling import label_tree
from repro.lpath.axes import CONDITIONS, OR_SELF_BASES, Axis


def render_table2() -> str:
    lines = [
        "Table 2: Axes and Label Comparisons (x <axis> y)",
        f"{'Axis':<30}{'Conditions (plus x.tid = y.tid)'}",
    ]
    for axis in Axis:
        base = OR_SELF_BASES.get(axis)
        conditions = " AND ".join(
            f"x.{c.column} {c.op} y.{c.context_column}"
            for c in CONDITIONS[base if base is not None else axis]
        )
        if base is not None:
            conditions = f"({conditions}) OR x.id = y.id"
        lines.append(f"{axis.value:<30}{conditions}")
    return "\n".join(lines)


def test_table2_labeling_pass(benchmark, write_result):
    write_result("table2_labeling.txt", render_table2())
    trees = list(datasets.corpus("wsj", sentences=500))

    def label_all() -> int:
        rows = 0
        for tree in trees:
            rows += len(label_tree(tree))
        return rows

    total = benchmark(label_all)
    assert total > 0
