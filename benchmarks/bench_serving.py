"""Serving throughput and tail latency for the query daemon.

The serving workload is the paper's Figure 6b "rare tag" pattern turned
operational: many concurrent clients asking a small set of
high-selectivity queries (``//ADVP-LOC-CLR``, ``//WHPP``) over one
compiled corpus.  After the first execution each query is a result-cache
hit, so steady state measures the daemon itself — HTTP keep-alive
round trips, admission control, cache lookups — not plan execution.

Reported: sustained QPS and the p50/p95/p99 per-request latencies (as
``*_seconds``, so ``diff_bench.py`` gates tail-latency regressions in
CI).  The throughput floor (>= 500 QPS, p99 < 50 ms) is asserted only on
multi-core hosts; single-core runs record the numbers without gating.

Knobs: ``REPRO_BENCH_CLIENTS`` (default 4 load-generator threads) and
``REPRO_BENCH_REQUESTS`` (default 300 requests per client).
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro import store
from repro.bench import datasets
from repro.labeling import label_corpus
from repro.serve import QueryServer, QueryService, ServeClient

#: The fig6b rare-tag workload: cheap queries, hot in the result cache.
WORKLOAD = ("//ADVP-LOC-CLR", "//WHPP")

CLIENTS = int(os.environ.get("REPRO_BENCH_CLIENTS", 4))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_REQUESTS", 300))

QPS_FLOOR = 500.0
P99_CEILING_SECONDS = 0.050


def percentile(sorted_timings: list[float], fraction: float) -> float:
    index = min(
        int(fraction * len(sorted_timings)), len(sorted_timings) - 1
    )
    return sorted_timings[index]


def test_serving_throughput_and_tail_latency(write_result, write_json):
    trees = datasets.corpus("wsj")
    handle, path = tempfile.mkstemp(suffix=".lpdb")
    try:
        with os.fdopen(handle, "wb") as stream:
            store.save_labels(
                list(label_corpus(trees)), stream, segments=2,
                format="lpdb0004",
            )
        service = QueryService(path, max_inflight=CLIENTS, max_queue=64)
        with QueryServer(service).start() as server:
            _drive(server, service, write_result, write_json)
    finally:
        os.unlink(path)


def _drive(server, service, write_result, write_json) -> None:
    # Warm: first sight of each query executes and fills the result
    # cache; correctness rides along via the count round trip.
    with ServeClient(server.url) as warmup:
        expected = {query: warmup.count(query) for query in WORKLOAD}

    def load(seed: int) -> list[float]:
        timings = []
        with ServeClient(server.url) as client:
            for index in range(REQUESTS_PER_CLIENT):
                query = WORKLOAD[(seed + index) % len(WORKLOAD)]
                started = time.perf_counter()
                count = client.count(query)
                timings.append(time.perf_counter() - started)
                assert count == expected[query]
        return timings

    started = time.perf_counter()
    with ThreadPoolExecutor(CLIENTS) as pool:
        per_client = list(pool.map(load, range(CLIENTS)))
    wall_seconds = time.perf_counter() - started

    timings = sorted(t for client in per_client for t in client)
    total = len(timings)
    qps = total / wall_seconds
    p50 = percentile(timings, 0.50)
    p95 = percentile(timings, 0.95)
    p99 = percentile(timings, 0.99)
    stats = service.stats()

    cores = os.cpu_count() or 1
    multicore = cores >= 2
    gate = (
        f"gate: >= {QPS_FLOOR:g} QPS and p99 < "
        f"{P99_CEILING_SECONDS * 1000:g}ms"
        if multicore
        else "gate: recorded only (single-core host)"
    )
    write_result(
        "serving.txt",
        "\n".join([
            f"Serving: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests "
            f"over {', '.join(WORKLOAD)} ({cores} cores):",
            f"  throughput: {qps:,.0f} QPS over {wall_seconds:.2f}s "
            f"({total} requests)",
            f"  latency: p50 {p50 * 1000:.2f}ms  p95 {p95 * 1000:.2f}ms  "
            f"p99 {p99 * 1000:.2f}ms",
            f"  result cache: {stats['result_cache']['hits']} hits / "
            f"{stats['result_cache']['misses']} misses",
            f"  {gate}",
        ]),
    )
    write_json(
        "serving",
        {
            "clients": CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "workload": list(WORKLOAD),
            "total_requests": total,
            "wall_seconds": wall_seconds,
            "qps": qps,
            "p50_seconds": p50,
            "p95_seconds": p95,
            "p99_seconds": p99,
            "result_cache": stats["result_cache"],
            # uptime_seconds/timeout_seconds are config and wall-clock
            # noise, not timings; keep them away from diff_bench's
            # *_seconds gate.
            "server": {
                key: value
                for key, value in stats["server"].items()
                if not key.endswith("_seconds")
            },
            "cores": cores,
            "gated": multicore,
        },
    )

    # Every request succeeded and the books balance: each landed as a
    # result-cache hit or an executed query, with no rejections.
    cache = stats["result_cache"]
    assert stats["server"]["rejected"] == 0
    assert stats["server"]["timeouts"] == 0
    assert cache["hits"] + cache["misses"] == total + len(WORKLOAD)
    if multicore:
        assert qps >= QPS_FLOOR, (
            f"serving sustained only {qps:,.0f} QPS "
            f"(floor {QPS_FLOOR:g}) on {cores} cores"
        )
        assert p99 < P99_CEILING_SECONDS, (
            f"p99 latency {p99 * 1000:.2f}ms breaches the "
            f"{P99_CEILING_SECONDS * 1000:g}ms ceiling"
        )
