"""A/B benchmark: set-at-a-time structural merge joins vs per-binding probes.

Both physical joins execute the *same* optimized logical plans over the
same columnar store; the ``REPRO_FORCE_JOIN`` knob pins the choice so the
comparison isolates the join algorithm.  The workload is the paper's
deep-axis territory — fig. 6(b)/6(c)-style descendant chains (three-plus
hierarchical steps) plus fig. 9-style broad scans — where binding-at-a-
time probing pays ``O(|bindings| * log n)`` binary-search work that the
sorted-span merge replaces with one forward pass per partition.

Assertions:

* the structural merge join beats the per-binding probe join by >= 2x in
  aggregate over the deep-axis suite;
* the optimizer's *unforced* cost-based choice picks ``merge`` for every
  deep-axis query here (the statistics say the bindings are plentiful),
  visible in ``explain()``;
* both join algorithms agree on every result size.

``BENCH_structural_join.json`` carries the per-query timings so CI can
diff runs against the uploaded baseline artifact
(``benchmarks/diff_bench.py``).
"""

import os

from repro.bench import datasets
from repro.bench.datasets import bench_sentences
from repro.bench.harness import paper_timing
from repro.lpath.engine import LPathEngine

#: The deep-axis suite must not shrink with the CI smoke corpus: the
#: merge join's advantage is a statement about corpora large enough for
#: per-binding probe overhead to dominate ("the large profile").
LARGE_SENTENCES = max(1000, bench_sentences())

#: Deep descendant chains (the asserted suite) and broad scans
#: (reported, not asserted — their cost is output-dominated).
DEEP_QUERIES = ("//S//NP//NN", "//NP//NP", "//S//VP//NP//NN", "//VP//NP//PP")
SCAN_QUERIES = ("//S//NP", "//S//VP//NP")

SPEEDUP_FLOOR = 2.0


def _engine() -> LPathEngine:
    trees = datasets.corpus("wsj", LARGE_SENTENCES)
    return LPathEngine(list(trees), keep_trees=False, executor="columnar")


def _forced(engine: LPathEngine, query: str, mode: str, repeats: int):
    os.environ["REPRO_FORCE_JOIN"] = mode
    try:
        engine.count(query)  # warm the plan cache for this mode
        return paper_timing(lambda: engine.count(query), repeats)
    finally:
        del os.environ["REPRO_FORCE_JOIN"]


def _format(rows) -> str:
    header = (
        f"{'suite':10s} {'query':18s} {'probe (s)':>11s} "
        f"{'merge (s)':>11s} {'speedup':>8s} {'rows':>7s}"
    )
    lines = [header, "-" * len(header)]
    for suite, query, probe_s, merge_s, size in rows:
        speedup = probe_s / merge_s if merge_s else float("inf")
        lines.append(
            f"{suite:10s} {query:18s} {probe_s:11.5f} "
            f"{merge_s:11.5f} {speedup:7.2f}x {size:7d}"
        )
    return "\n".join(lines)


def test_structural_join_ab(benchmark, write_result, write_json, repeats):
    engine = _engine()

    rows = []
    payload = []
    deep_probe = deep_merge = 0.0
    for suite, queries in (("deep-axis", DEEP_QUERIES), ("fig9 scan", SCAN_QUERIES)):
        for query in queries:
            probe_s, probe_n = _forced(engine, query, "probe", repeats)
            merge_s, merge_n = _forced(engine, query, "merge", repeats)
            assert probe_n == merge_n, (
                f"join algorithms disagree on {query}: {probe_n} vs {merge_n}"
            )
            rows.append((suite, query, probe_s, merge_s, probe_n))
            payload.append(
                {
                    "suite": suite,
                    "query": query,
                    "probe_seconds": probe_s,
                    "merge_seconds": merge_s,
                    "speedup": probe_s / merge_s if merge_s else None,
                    "rows": probe_n,
                }
            )
            if suite == "deep-axis":
                deep_probe += probe_s
                deep_merge += merge_s

    # The optimizer's own statistics-driven choice must pick the merge
    # join for the deep-axis chains (no forcing involved).
    choices = []
    for query in DEEP_QUERIES:
        plan = engine.explain(query)
        assert "[merge" in plan, (
            f"cost model did not pick the structural merge join for {query}:\n{plan}"
        )
        choices.append(f"{query}: merge (cost-based)")

    speedup = deep_probe / deep_merge if deep_merge else float("inf")
    table = _format(rows)
    summary = (
        f"\ndeep-axis suite: probe {deep_probe:.5f}s, merge {deep_merge:.5f}s "
        f"({speedup:.2f}x) over {LARGE_SENTENCES} sentences\n"
        + "\n".join(choices)
    )
    write_result(
        "structural_join_ab.txt",
        "Structural merge join vs per-binding probe join\n" + table + summary,
    )
    write_json(
        "structural_join",
        {
            "sentences": LARGE_SENTENCES,
            "queries": payload,
            "deep_axis_speedup": speedup,
        },
    )

    # Regression benchmark: the merge join on the deepest chain.
    os.environ["REPRO_FORCE_JOIN"] = "merge"
    try:
        benchmark(lambda: engine.count(DEEP_QUERIES[2]))
    finally:
        del os.environ["REPRO_FORCE_JOIN"]

    assert speedup >= SPEEDUP_FLOOR, (
        f"structural merge join fell below the {SPEEDUP_FLOOR}x floor on the "
        f"deep-axis suite: probe {deep_probe:.5f}s vs merge {deep_merge:.5f}s "
        f"({speedup:.2f}x)"
    )
