"""Tests for the synthetic treebank generator."""

import random

import pytest

from repro.corpus import (
    QUERY_TAGS,
    corpus_stats,
    generate_corpus,
    generate_tree,
    replicate_corpus,
    swb_profile,
    tag_frequencies,
    top_tags,
    wsj_profile,
)
from repro.corpus.grammar import Grammar, GrammarError, Production
from repro.tree import validate


class TestGrammar:
    def test_profiles_validate(self):
        wsj_profile()
        swb_profile()

    def test_missing_symbol_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("S", [Production("S", ("NP",), 1.0)], {"NN"})

    def test_missing_shallow_production_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("S", [Production("S", ("S",), 1.0)], {"NN"})

    def test_pos_lhs_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("S", [Production("NN", ("NN",), 1.0)], {"NN"})

    def test_empty_rhs_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("S", [Production("S", (), 1.0)], {"NN"})

    def test_unknown_start_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("X", [Production("S", ("NN",), 1.0)], {"NN"})


class TestGeneration:
    def test_deterministic(self):
        a = generate_corpus("wsj", sentences=50, seed=123)
        b = generate_corpus("wsj", sentences=50, seed=123)
        from repro.tree import format_tree

        assert [format_tree(t) for t in a] == [format_tree(t) for t in b]

    def test_seeds_differ(self):
        from repro.tree import format_tree

        a = generate_corpus("wsj", sentences=20, seed=1)
        b = generate_corpus("wsj", sentences=20, seed=2)
        assert [format_tree(t) for t in a] != [format_tree(t) for t in b]

    def test_trees_are_valid(self):
        for tree in generate_corpus("wsj", sentences=40, seed=9):
            validate(tree)
        for tree in generate_corpus("swb", sentences=40, seed=9):
            validate(tree)

    def test_tids_sequential(self):
        corpus = generate_corpus("wsj", sentences=10, seed=0, start_tid=5)
        assert [t.tid for t in corpus] == list(range(5, 15))

    def test_depth_capped(self):
        corpus = generate_corpus("wsj", sentences=150, seed=3, max_depth=6)
        stats = corpus_stats(corpus)
        # POS level may exceed the cap by one.
        assert stats.max_depth <= 7

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            generate_corpus("ptb", sentences=1)

    def test_single_tree_generation(self):
        grammar, lexicon = wsj_profile()
        tree = generate_tree(grammar, lexicon, random.Random(4), tid=3)
        assert tree.tid == 3
        assert tree.root.label == "S"
        validate(tree)


class TestProfileShapes:
    """The statistical drivers DESIGN.md commits to."""

    @pytest.fixture(scope="class")
    def wsj(self):
        return generate_corpus("wsj", sentences=1500, seed=11)

    @pytest.fixture(scope="class")
    def swb(self):
        return generate_corpus("swb", sentences=1500, seed=11)

    def test_all_query_tags_generable(self, wsj, swb):
        wsj_tags = set(tag_frequencies(wsj))
        swb_tags = set(tag_frequencies(swb))
        missing = [
            tag for tag in QUERY_TAGS
            if tag not in wsj_tags and tag not in swb_tags
        ]
        assert not missing

    def test_np_is_most_frequent_wsj_tag(self, wsj):
        assert top_tags(wsj, 1)[0][0] == "NP"

    def test_dfl_prominent_in_swb_only(self, wsj, swb):
        assert tag_frequencies(wsj).get("-DFL-", 0) == 0
        swb_top = [tag for tag, _ in top_tags(swb, 10)]
        assert "-DFL-" in swb_top

    def test_selectivity_split(self, wsj):
        frequency = tag_frequencies(wsj)
        for frequent in ("NP", "VP", "NN", "IN"):
            assert frequency[frequent] > 500
        for rare in ("WHPP", "RRC", "UCP-PRD", "ADVP-LOC-CLR"):
            assert 0 < frequency.get(rare, 1) < 100

    def test_query_tags_much_rarer_in_swb(self, wsj, swb):
        """The Figure 8 driver: WSJ-heavy tags drop in SWB."""
        wsj_frequency = tag_frequencies(wsj)
        swb_frequency = tag_frequencies(swb)
        for tag in ("IN", "DT", "NN"):
            assert swb_frequency[tag] < wsj_frequency[tag]

    def test_required_words_present(self, wsj):
        from collections import Counter

        words = Counter(word for tree in wsj for word in tree.words())
        for word in ("saw", "of", "what", "building"):
            assert words[word] > 0

    def test_deep_np_chains_occur(self, wsj):
        from repro.lpath import LPathEngine

        engine = LPathEngine(wsj, keep_trees=False)
        assert engine.count("//NP/NP/NP") > 0
        assert engine.count("//VP/VP") > 0


class TestReplication:
    def test_doubling(self):
        corpus = generate_corpus("wsj", sentences=30, seed=5)
        doubled = replicate_corpus(corpus, 2.0)
        assert len(doubled) == 60
        assert [t.tid for t in doubled] == list(range(60))

    def test_halving(self):
        corpus = generate_corpus("wsj", sentences=30, seed=5)
        assert len(replicate_corpus(corpus, 0.5)) == 15

    def test_copies_are_structural(self):
        from repro.tree import format_tree

        corpus = generate_corpus("wsj", sentences=3, seed=5)
        replicated = replicate_corpus(corpus, 2.0)
        assert format_tree(replicated[0]) == format_tree(replicated[3])
        assert replicated[0].root is not replicated[3].root

    def test_query_counts_scale(self):
        from repro.lpath import LPathEngine

        corpus = generate_corpus("wsj", sentences=100, seed=6)
        doubled = replicate_corpus(corpus, 2.0)
        single = LPathEngine(corpus, keep_trees=False).count("//NP")
        double = LPathEngine(doubled, keep_trees=False).count("//NP")
        assert double == 2 * single
