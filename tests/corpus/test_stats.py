"""Tests for corpus statistics and the Figure 6(a)/6(b) table renderers."""

from repro.corpus import (
    CorpusStats,
    corpus_stats,
    format_stats_table,
    format_top_tags_table,
    generate_corpus,
    tag_frequencies,
    top_tags,
)
from repro.tree import figure1_tree, tree_from_spec


class TestCorpusStats:
    def test_figure1_stats(self):
        stats = corpus_stats([figure1_tree()])
        assert stats.tree_count == 1
        assert stats.tree_nodes == 16
        assert stats.word_count == 9
        assert stats.unique_tags == 9   # S NP VP V Det Adj N PP Prep
        assert stats.max_depth == 6

    def test_unique_tags_exact(self):
        stats = corpus_stats([figure1_tree()])
        labels = {node.label for node in figure1_tree().nodes}
        assert stats.unique_tags == len(labels)

    def test_file_size_matches_bracketed_text(self):
        from repro.tree import format_tree

        tree = figure1_tree()
        stats = corpus_stats([tree])
        assert stats.file_size_bytes == len(format_tree(tree, wrap=True)) + 1
        assert stats.file_size_kb() == round(stats.file_size_bytes / 1024)

    def test_multiple_trees_accumulate(self):
        single = corpus_stats([figure1_tree()])
        double = corpus_stats([figure1_tree(tid=0), figure1_tree(tid=1)])
        assert double.tree_nodes == 2 * single.tree_nodes
        assert double.word_count == 2 * single.word_count

    def test_empty_corpus(self):
        stats = corpus_stats([])
        assert stats.tree_nodes == 0
        assert stats.max_depth == 0


class TestTagFrequencies:
    def test_counts(self):
        frequency = tag_frequencies([figure1_tree()])
        assert frequency["NP"] == 5
        assert frequency["Det"] == 2
        assert frequency["S"] == 1

    def test_top_tags_sorted(self):
        tags = top_tags([figure1_tree()], 3)
        assert tags[0] == ("NP", 5)
        assert len(tags) == 3

    def test_attributes_not_counted(self):
        frequency = tag_frequencies([figure1_tree()])
        assert "@lex" not in frequency


class TestRenderers:
    def test_stats_table_layout(self):
        rows = {
            "A": CorpusStats(2048, 10, 100, 50, 7, 5),
            "B": CorpusStats(4096, 20, 200, 100, 9, 6),
        }
        text = format_stats_table(rows)
        assert "2kB" in text and "4kB" in text
        assert "Tree Nodes" in text
        lines = text.splitlines()
        assert all(len(line.rstrip()) <= len(lines[0]) + 30 for line in lines)

    def test_top_tags_table_uneven_lists(self):
        text = format_top_tags_table({
            "A": [("NP", 10), ("VP", 5)],
            "B": [("X", 1)],
        })
        assert "NP" in text and "X" in text
        assert text.splitlines()[2].startswith("2")

    def test_round_trip_with_generator(self):
        corpus = generate_corpus("wsj", sentences=30, seed=2)
        text = format_stats_table({"wsj": corpus_stats(corpus)})
        assert "30" in text  # tree count appears

    def test_figure1_depth(self):
        # depth chain: S=1 VP=2 NP=3 PP=4 NP=5 Det=6
        tree = tree_from_spec(("A", ("B", ("C", "x"))))
        assert corpus_stats([tree]).max_depth == 3
