"""Query fuzzing: random LPath ASTs, unparse/parse round trips, and
three-backend differential evaluation on random corpora."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lpath import LPathEngine, parse
from repro.lpath.ast import (
    Comparison,
    Literal,
    NodeTest,
    NotExpr,
    Path,
    PathExists,
    Scope,
    Step,
)
from repro.lpath.axes import Axis
from tests.strategies import LABELS, WORDS, corpora

#: Axes safe anywhere in a path (attribute/self handled separately).
_CHAIN_AXES = [
    Axis.CHILD,
    Axis.DESCENDANT,
    Axis.PARENT,
    Axis.ANCESTOR,
    Axis.IMMEDIATE_FOLLOWING,
    Axis.FOLLOWING,
    Axis.FOLLOWING_OR_SELF,
    Axis.IMMEDIATE_PRECEDING,
    Axis.PRECEDING,
    Axis.PRECEDING_OR_SELF,
    Axis.IMMEDIATE_FOLLOWING_SIBLING,
    Axis.FOLLOWING_SIBLING,
    Axis.FOLLOWING_SIBLING_OR_SELF,
    Axis.IMMEDIATE_PRECEDING_SIBLING,
    Axis.PRECEDING_SIBLING,
    Axis.PRECEDING_SIBLING_OR_SELF,
]

node_tests = st.one_of(
    st.sampled_from(LABELS).map(NodeTest),
    st.just(NodeTest("_")),
)


@st.composite
def predicates(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        # [@lex = word]
        attr = Step(Axis.ATTRIBUTE, NodeTest("lex", is_attribute=True))
        return Comparison(
            PathExists(Path((attr,))), "=", Literal(draw(st.sampled_from(WORDS)))
        )
    axis = draw(st.sampled_from(_CHAIN_AXES))
    inner = Step(axis, draw(node_tests))
    exists = PathExists(Path((inner,)))
    if kind == 1:
        return exists
    if kind == 2:
        return NotExpr(exists)
    second = Step(draw(st.sampled_from(_CHAIN_AXES)), draw(node_tests))
    return PathExists(Path((inner, Step(Axis.CHILD, draw(node_tests))))) \
        if draw(st.booleans()) else PathExists(Path((inner, second)))


@st.composite
def steps(draw, first: bool):
    axis = Axis.DESCENDANT if first else draw(st.sampled_from(_CHAIN_AXES))
    if first and draw(st.integers(0, 4)) == 0:
        axis = Axis.CHILD
    preds = tuple(draw(st.lists(predicates(), max_size=2)))
    return Step(
        axis,
        draw(node_tests),
        left_aligned=draw(st.integers(0, 9)) == 0,
        right_aligned=draw(st.integers(0, 9)) == 0,
        predicates=preds,
    )


@st.composite
def queries(draw):
    items = [draw(steps(first=True))]
    for _ in range(draw(st.integers(0, 2))):
        items.append(draw(steps(first=False)))
    if draw(st.integers(0, 3)) == 0:
        scope_body = [draw(steps(first=False))]
        items.append(Scope(Path(tuple(scope_body))))
    return Path(tuple(items), absolute=True)


class TestQueryFuzzing:
    @given(queries())
    @settings(max_examples=150, deadline=None)
    def test_unparse_parse_round_trip(self, path):
        assert parse(str(path)) == path

    @given(corpora(max_trees=2, max_depth=4), st.lists(queries(), min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_plan_equals_treewalk(self, trees, paths):
        engine = LPathEngine(trees)
        for path in paths:
            assert engine.query(path, backend="plan") == engine.query(
                path, backend="treewalk"
            ), str(path)

    @given(corpora(max_trees=2, max_depth=3), st.lists(queries(), min_size=1, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_sqlite_agrees(self, trees, paths):
        with LPathEngine(trees) as engine:
            for path in paths:
                assert engine.query(path, backend="plan") == engine.query(
                    path, backend="sqlite"
                ), str(path)
