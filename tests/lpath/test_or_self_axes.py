"""Tests for the or-self horizontal and sibling axes (Section 3).

The paper includes ``following-or-self``, ``preceding-or-self``,
``following-sibling-or-self`` and ``preceding-sibling-or-self`` so that
the axis set carries both primitives and their closures.  All three
backends must agree, and the or-self axis must equal base-axis ∪ self.
"""

import pytest
from hypothesis import given, settings

from repro.lpath import LPathEngine
from repro.tree import figure1_tree
from tests.strategies import corpora

OR_SELF_QUERIES = [
    ("//NP/following-or-self::NP", "//NP-->NP", "//NP/self::NP"),
    ("//NP/preceding-or-self::NP", "//NP<--NP", "//NP/self::NP"),
    ("//NP/following-sibling-or-self::NP", "//NP==>NP", "//NP/self::NP"),
    ("//NP/preceding-sibling-or-self::NP", "//NP<==NP", "//NP/self::NP"),
    ("//V/following-or-self::N", "//V-->N", "//V/self::N"),
    ("//Det/preceding-sibling-or-self::_", "//Det<==_", "//Det/self::_"),
]


@pytest.fixture(scope="module")
def engine():
    return LPathEngine([figure1_tree()])


class TestOrSelfSemantics:
    @pytest.mark.parametrize("or_self, base, self_only", OR_SELF_QUERIES)
    def test_union_identity(self, engine, or_self, base, self_only):
        combined = set(engine.query(base)) | set(engine.query(self_only))
        assert set(engine.query(or_self)) == combined

    @pytest.mark.parametrize("or_self, base, self_only", OR_SELF_QUERIES)
    def test_backends_agree(self, engine, or_self, base, self_only):
        plan = engine.query(or_self, backend="plan")
        assert plan == engine.query(or_self, backend="treewalk")
        assert plan == engine.query(or_self, backend="sqlite")

    def test_root_is_its_own_sibling_or_self(self, engine):
        assert engine.count("/S/following-sibling-or-self::S") == 1

    @given(corpora(max_trees=2, max_depth=4))
    @settings(max_examples=15, deadline=None)
    def test_random_corpora(self, trees):
        engine = LPathEngine(trees)
        for or_self, base, self_only in OR_SELF_QUERIES:
            combined = set(engine.query(base)) | set(engine.query(self_only))
            assert set(engine.query(or_self)) == combined
            assert engine.query(or_self) == engine.query(or_self, backend="treewalk")


class TestClosureLaws:
    """Table 1's closure column, checked semantically: the closure axis is
    the transitive closure of the primitive."""

    @given(corpora(max_trees=2, max_depth=4))
    @settings(max_examples=15, deadline=None)
    def test_following_is_transitive_closure_of_immediate(self, trees):
        engine = LPathEngine(trees)
        # One application of -> is contained in -->.
        assert set(engine.query("//_->_")) <= set(engine.query("//_-->_"))
        # -> composed with --> stays within -->.
        assert set(engine.query("//_->_-->_")) <= set(engine.query("//_-->_"))

    @given(corpora(max_trees=2, max_depth=4))
    @settings(max_examples=15, deadline=None)
    def test_sibling_closure(self, trees):
        engine = LPathEngine(trees)
        assert set(engine.query("//_=>_")) <= set(engine.query("//_==>_"))
        assert set(engine.query("//_=>_==>_")) <= set(engine.query("//_==>_"))
