"""Tests for pivot (selectivity-driven) join ordering."""

import pytest
from hypothesis import given, settings

from repro.corpus import generate_corpus
from repro.lpath import LPathEngine
from repro.tree import figure1_tree
from tests.strategies import corpora

#: Plain chain queries where pivoting may apply.
CHAIN_QUERIES = [
    "//S//V",
    "//NP/N",
    "//S//NP//Det",
    "//V->NP",
    "//NP<-V",
    "//VP/V-->N",
    "//S//NP=>PP",
    "//N\\NP\\ancestor::S",
    "//NP/NP/NP",
    "//S//PP/Prep",
    "//_//Det",
    "//S//NP[//Det]/N",
]


@pytest.fixture(scope="module")
def engine():
    return LPathEngine([figure1_tree()])


class TestPivotCorrectness:
    @pytest.mark.parametrize("query", CHAIN_QUERIES)
    def test_pivot_matches_default_plan(self, engine, query):
        assert engine.query(query, pivot=True) == engine.query(query)

    @given(corpora(max_trees=3, max_depth=4))
    @settings(max_examples=25, deadline=None)
    def test_random_corpora(self, trees):
        engine = LPathEngine(trees, keep_trees=False)
        for query in CHAIN_QUERIES:
            assert engine.query(query, pivot=True) == engine.query(query), query

    def test_non_chain_queries_fall_back(self, engine):
        # Scopes, alignment and positional predicates disable pivoting but
        # must still answer correctly via the default plan.
        for query in ("//VP{/NP$}", "//^NP/N", "//NP/_[last()]/..",
                      "//VP{//NP$}"):
            try:
                assert engine.query(query, pivot=True) == engine.query(query)
            except Exception as error:  # pragma: no cover
                raise AssertionError(f"{query}: {error}") from error


class TestPivotPlanShape:
    def test_pivot_starts_from_rarest_tag(self):
        corpus = generate_corpus("wsj", sentences=300, seed=5)
        engine = LPathEngine(corpus, keep_trees=False)
        text = engine.compile("//S//NP//WHPP", pivot=True).explain()
        assert "pivot" in text
        assert "elements named WHPP" in text

    def test_single_step_not_pivoted(self, engine):
        text = engine.compile("//WHPP", pivot=True).explain()
        assert "pivot" not in text

    def test_leading_rare_tag_not_pivoted(self, engine):
        # Pivot index 0 means the default plan is already selectivity-first.
        text = engine.compile("//Adj\\NP", pivot=True).explain()
        assert "pivot" not in text

    def test_root_constraint_preserved(self):
        corpus = generate_corpus("wsj", sentences=200, seed=8)
        engine = LPathEngine(corpus, keep_trees=False)
        query = "/S//WHPP"
        assert engine.query(query, pivot=True) == engine.query(query)


class TestPivotSpeed:
    def test_rare_tail_tag_wins(self):
        import time

        corpus = generate_corpus("wsj", sentences=1500, seed=12)
        engine = LPathEngine(corpus, keep_trees=False)
        query = "//S//NP//WHPP"

        def best_of(pivot: bool) -> float:
            timings = []
            for _ in range(3):
                started = time.perf_counter()
                engine.query(query, pivot=pivot)
                timings.append(time.perf_counter() - started)
            return min(timings)

        default_seconds = best_of(False)
        pivot_seconds = best_of(True)
        assert engine.query(query, pivot=True) == engine.query(query)
        # The pivot plan probes from ~a dozen WHPPs instead of ~10^4 NPs.
        assert pivot_seconds < default_seconds
