"""Tests for the engine facade, the plan compiler, and the SQL generator."""

import pytest

from repro.lpath import (
    LPathCompileError,
    LPathEngine,
    LPathError,
    SQLGenerator,
    engine_from_bracketed,
    parse,
)
from repro.tree import figure1_tree


@pytest.fixture(scope="module")
def engine():
    return LPathEngine([figure1_tree()])


class TestEngineAPI:
    def test_duplicate_tids_rejected(self):
        with pytest.raises(LPathError):
            LPathEngine([figure1_tree(tid=1), figure1_tree(tid=1)])

    def test_unknown_backend_rejected(self, engine):
        with pytest.raises(LPathError):
            engine.query("//NP", backend="oracle")

    def test_count_matches_query_length(self, engine):
        assert engine.count("//NP") == len(engine.query("//NP"))

    def test_nodes_requires_trees(self):
        engine = LPathEngine([figure1_tree()], keep_trees=False)
        with pytest.raises(LPathError):
            engine.nodes("//NP")
        with pytest.raises(LPathError):
            engine.treewalk

    def test_context_manager_closes_sqlite(self):
        with LPathEngine([figure1_tree()]) as engine:
            engine.query("//NP", backend="sqlite")
        assert engine._sqlite is None

    def test_engine_from_bracketed(self):
        engine = engine_from_bracketed("(S (NP (PRP I)) (VP (VBD ran)))")
        assert engine.count("//VBD") == 1

    def test_accepts_parsed_ast(self, engine):
        path = parse("//NP")
        assert engine.count(path) == 5

    def test_explain_mentions_plan_operators(self, engine):
        text = engine.explain("//VP/V-->N")
        assert "IndexNestedLoopJoin" in text
        assert "Distinct" in text


class TestClose:
    def test_close_is_idempotent(self):
        engine = LPathEngine([figure1_tree()])
        engine.query("//NP", backend="sqlite")
        engine.close()
        engine.close()
        engine.close()

    def test_close_releases_relational_store_and_rows(self):
        engine = LPathEngine([figure1_tree()])
        engine.query("//NP")
        engine.close()
        assert engine.database is None
        assert engine.node_table is None
        assert engine._rows is None
        assert engine._compiler is None
        assert len(engine.plan_cache) == 0

    def test_closed_engine_rejects_queries_on_every_backend(self):
        engine = LPathEngine([figure1_tree()])
        engine.close()
        for backend in ("plan", "sqlite", "treewalk"):
            with pytest.raises(LPathError, match="closed"):
                engine.query("//NP", backend=backend)

    def test_closed_engine_is_collectable(self):
        import gc
        import weakref

        engine = LPathEngine([figure1_tree()])
        engine.query("//NP")
        table_ref = weakref.ref(engine.node_table)
        database_ref = weakref.ref(engine.database)
        engine.close()
        gc.collect()
        assert table_ref() is None
        assert database_ref() is None

    def test_close_shuts_down_worker_pool(self):
        engine = LPathEngine(
            [figure1_tree(tid=tid) for tid in range(4)],
            segments=2, workers=2,
        )
        engine.query("//NP")  # spins the pool up
        executor = engine._pool()
        assert executor is not None
        engine.close()
        assert executor._shutdown
        # A shut-down pool stays sequential instead of resurrecting.
        assert engine._pool() is None

    def test_compiled_plan_survives_close_without_new_pool(self):
        engine = LPathEngine(
            [figure1_tree(tid=tid) for tid in range(4)],
            segments=2, workers=2,
        )
        plan = engine.compile("//NP")
        expected = list(plan.rows())
        engine.close()
        # The cached plan still executes (its per-segment runtimes are
        # self-contained) but sequentially — no executor comes back.
        assert list(plan.rows()) == expected
        assert engine._pool() is None


class TestPlanCompiler:
    def test_value_seed_used_for_wildcard_value_query(self, engine):
        text = engine.explain("//_[@lex=saw]")
        assert "value seed" in text

    def test_named_first_step_uses_clustered_name_probe(self, engine):
        text = engine.explain("//NP")
        assert "elements named NP" in text

    def test_positional_must_be_first(self, engine):
        with pytest.raises(LPathCompileError):
            engine.compile("//NP/_[self::N][position()=1]")

    def test_positional_on_descendant_rejected(self, engine):
        with pytest.raises(LPathCompileError):
            engine.compile("//VP//_[last()]")

    def test_first_step_positional_rejected(self, engine):
        with pytest.raises(LPathCompileError):
            engine.compile("//NP[position()=2]")

    def test_extra_index_changes_preceding_probe(self):
        plain = LPathEngine([figure1_tree()])
        extra = LPathEngine([figure1_tree()], extra_indexes=True)
        query = "//NP<-V"
        assert plain.query(query) == extra.query(query)
        assert "idx_name_tid_right" in extra.node_table.indexes

    def test_root_alignment_without_scope(self, engine):
        # ^/$ without scope align to the tree root edges.
        assert engine.count("//^NP") == 1
        assert engine.count("//NP$") == 1


class TestSQLGenerator:
    def test_sql_quotes_keyword_columns(self, engine):
        sql = engine.to_sql("//V->NP")
        assert '"left"' in sql and '"right"' in sql
        assert 'SELECT DISTINCT' in sql

    def test_immediate_following_is_equality_join(self, engine):
        sql = engine.to_sql("//V->NP")
        assert '."left" = t0."right"' in sql

    def test_scope_emits_containment(self, engine):
        sql = engine.to_sql("//VP{/NP$}")
        assert '"left" >= t0."left"' in sql
        assert '"right" <= t0."right"' in sql
        assert '"right" = t0."right"' in sql  # the $ alignment

    def test_not_exists_for_negation(self, engine):
        sql = engine.to_sql("//NP[not(//Adj)]")
        assert "NOT EXISTS" in sql

    def test_root_alignment_subquery(self, engine):
        sql = engine.to_sql("//NP$")
        assert "SELECT MAX(r.\"right\")" in sql

    def test_value_comparison_quotes_literal(self, engine):
        sql = engine.to_sql("//_[@lex=saw]")
        assert "'saw'" in sql and "'@lex'" in sql

    def test_escapes_quotes_in_literals(self):
        generator = SQLGenerator()
        sql = generator.generate(parse("//_[@lex='o''clock']"))
        assert "o''clock" in sql

    def test_numeric_value_comparison_casts(self, engine):
        sql = engine.to_sql("//_[@lex=1929]")
        assert "CAST" in sql

    def test_element_string_value_unsupported(self, engine):
        with pytest.raises(LPathCompileError):
            engine.to_sql("//NP[. = 'the old man']")

    def test_sql_runs_on_sqlite(self, engine):
        # Every generated statement must be executable as-is.
        for query in ("//V->NP", "//VP{//NP$}", "//NP[not(//Adj)]",
                      "//NP[count(//N)>1]", "//_[name()=VP]"):
            sql = engine.to_sql(query)
            rows = engine.sqlite.execute(sql)
            assert rows == [tuple(pair) for pair in engine.query(query)] or \
                sorted(rows) == engine.query(query)
