"""Tests for the Table 1 axis inventory."""

from repro.lpath.axes import (
    ARROWS,
    AXIS_INFO,
    CONDITIONS,
    Axis,
    NavigationType,
    REVERSE_AXES,
    TABLE_1,
    closure_pairs,
)


class TestTable1:
    def test_fourteen_rows(self):
        assert len(TABLE_1) == 14

    def test_abbreviations_match_paper(self):
        abbreviations = {info.axis: info.abbreviation for info in TABLE_1}
        assert abbreviations[Axis.CHILD] == "/"
        assert abbreviations[Axis.PARENT] == "\\"
        assert abbreviations[Axis.IMMEDIATE_FOLLOWING] == "->"
        assert abbreviations[Axis.FOLLOWING] == "-->"
        assert abbreviations[Axis.IMMEDIATE_PRECEDING] == "<-"
        assert abbreviations[Axis.PRECEDING] == "<--"
        assert abbreviations[Axis.IMMEDIATE_FOLLOWING_SIBLING] == "=>"
        assert abbreviations[Axis.FOLLOWING_SIBLING] == "==>"
        assert abbreviations[Axis.IMMEDIATE_PRECEDING_SIBLING] == "<="
        assert abbreviations[Axis.PRECEDING_SIBLING] == "<=="
        assert abbreviations[Axis.SELF] == "."
        assert abbreviations[Axis.ATTRIBUTE] == "@"

    def test_closure_pairs_fill_the_gap(self):
        """Each navigation family pairs a primitive with its closure —
        'filling a gap in the XPath axis set'."""
        pairs = set(closure_pairs())
        assert (Axis.CHILD, Axis.DESCENDANT) in pairs
        assert (Axis.PARENT, Axis.ANCESTOR) in pairs
        assert (Axis.IMMEDIATE_FOLLOWING, Axis.FOLLOWING) in pairs
        assert (Axis.IMMEDIATE_PRECEDING, Axis.PRECEDING) in pairs
        assert (Axis.IMMEDIATE_FOLLOWING_SIBLING, Axis.FOLLOWING_SIBLING) in pairs
        assert (Axis.IMMEDIATE_PRECEDING_SIBLING, Axis.PRECEDING_SIBLING) in pairs
        assert len(pairs) == 6

    def test_core_xpath_support_column(self):
        """Lemma 3.1: the immediate-* axes are not Core XPath expressible."""
        unsupported = {info.axis for info in TABLE_1 if not info.core_xpath}
        assert unsupported == {
            Axis.IMMEDIATE_FOLLOWING,
            Axis.IMMEDIATE_PRECEDING,
            Axis.IMMEDIATE_FOLLOWING_SIBLING,
            Axis.IMMEDIATE_PRECEDING_SIBLING,
        }

    def test_navigation_types(self):
        vertical = {i.axis for i in TABLE_1 if i.navigation is NavigationType.VERTICAL}
        assert vertical == {Axis.CHILD, Axis.DESCENDANT, Axis.PARENT, Axis.ANCESTOR}
        sibling = {i.axis for i in TABLE_1 if i.navigation is NavigationType.SIBLING}
        assert len(sibling) == 4


class TestConditions:
    def test_every_axis_has_conditions(self):
        from repro.lpath.axes import OR_SELF_BASES

        for axis in Axis:
            if axis in OR_SELF_BASES:
                # Disjunctive or-self axes are mapped to their base axis.
                assert OR_SELF_BASES[axis] in CONDITIONS
                continue
            assert axis in CONDITIONS
            assert CONDITIONS[axis]

    def test_immediate_following_is_single_equality(self):
        (condition,) = CONDITIONS[Axis.IMMEDIATE_FOLLOWING]
        assert condition == ("left", "=", "right")

    def test_sibling_conditions_add_pid(self):
        columns = {c.column for c in CONDITIONS[Axis.FOLLOWING_SIBLING]}
        assert "pid" in columns

    def test_reverse_axes_inventory(self):
        assert Axis.PRECEDING in REVERSE_AXES
        assert Axis.ANCESTOR in REVERSE_AXES
        assert Axis.FOLLOWING not in REVERSE_AXES

    def test_arrow_table_is_maximal_munch_safe(self):
        """Longer arrows must come before their prefixes."""
        seen: list[str] = []
        for text, _ in ARROWS:
            for earlier in seen:
                # An earlier (higher-priority) arrow must never be a strict
                # prefix of a later one, or the later could never match.
                assert not (text.startswith(earlier) and text != earlier)
            seen.append(text)

    def test_axis_info_lookup(self):
        assert AXIS_INFO[Axis.FOLLOWING].closure_of is Axis.IMMEDIATE_FOLLOWING
