"""Tests for the LPath tokenizer."""

import pytest

from repro.lpath import LPathSyntaxError
from repro.lpath.axes import Axis
from repro.lpath.lexer import tokenize


def kinds(query):
    return [token.kind for token in tokenize(query)]


def texts(query):
    return [token.text for token in tokenize(query)][:-1]  # drop EOF


class TestBasicTokens:
    def test_simple_query(self):
        assert kinds("//S") == ["DSLASH", "NAME", "EOF"]

    def test_child_step(self):
        assert texts("/VP/V") == ["/", "VP", "/", "V"]

    def test_brackets_braces(self):
        assert kinds("//VP{/NP$}") == [
            "DSLASH", "NAME", "LBRACE", "SLASH", "NAME", "DOLLAR", "RBRACE", "EOF",
        ]

    def test_attribute(self):
        assert kinds("[@lex=saw]") == [
            "LBRACKET", "AT", "NAME", "OP", "NAME", "RBRACKET", "EOF",
        ]

    def test_caret_alignment(self):
        assert kinds("//^VB") == ["DSLASH", "CARET", "NAME", "EOF"]

    def test_double_colon(self):
        assert kinds("/descendant::NP") == ["SLASH", "NAME", "COLONCOLON", "NAME", "EOF"]

    def test_dot_and_ddot(self):
        assert kinds(".") == ["DOT", "EOF"]
        assert kinds("..") == ["DDOT", "EOF"]

    def test_whitespace_ignored(self):
        assert texts(" //  S ") == ["//", "S"]


class TestArrows:
    @pytest.mark.parametrize(
        "text, axis",
        [
            ("->", Axis.IMMEDIATE_FOLLOWING),
            ("-->", Axis.FOLLOWING),
            ("<-", Axis.IMMEDIATE_PRECEDING),
            ("<--", Axis.PRECEDING),
            ("=>", Axis.IMMEDIATE_FOLLOWING_SIBLING),
            ("==>", Axis.FOLLOWING_SIBLING),
            ("<=", Axis.IMMEDIATE_PRECEDING_SIBLING),
            ("<==", Axis.PRECEDING_SIBLING),
        ],
    )
    def test_arrow_axes(self, text, axis):
        tokens = tokenize(f"A{text}B")
        assert tokens[1].kind == "ARROW"
        assert tokens[1].axis is axis

    def test_arrow_chain(self):
        assert texts("//V->NP->PP") == ["//", "V", "->", "NP", "->", "PP"]


class TestTreebankNames:
    """PTB tags with dashes must survive arrow disambiguation."""

    def test_none_tag(self):
        assert texts("//-NONE-") == ["//", "-NONE-"]

    def test_dashed_function_tag(self):
        assert texts("//NP-SBJ") == ["//", "NP-SBJ"]

    def test_triple_dashed(self):
        assert texts("//ADVP-LOC-CLR") == ["//", "ADVP-LOC-CLR"]

    def test_dfl_tag(self):
        assert texts("//-DFL-") == ["//", "-DFL-"]

    def test_dashed_name_followed_by_arrow(self):
        assert texts("//NP-SBJ->VP") == ["//", "NP-SBJ", "->", "VP"]

    def test_name_then_following_arrow(self):
        assert texts("//NP-->VP") == ["//", "NP", "-->", "VP"]

    def test_digits_in_names(self):
        assert texts("[@lex=1929]") == ["[", "@", "lex", "=", "1929", "]"]

    def test_quoted_name_with_dollar(self):
        tokens = tokenize("//'PRP$'")
        assert tokens[1].kind == "STRING"
        assert tokens[1].text == "PRP$"

    def test_quoted_punctuation_tag(self):
        tokens = tokenize('//"."')
        assert tokens[1].text == "."


class TestOperators:
    def test_comparison_ops(self):
        assert texts("[position()>=2]") == ["[", "position", "(", ")", ">=", "2", "]"]

    def test_not_equal(self):
        assert texts("[@lex!=saw]") == ["[", "@", "lex", "!=", "saw", "]"]

    def test_le_is_arrow_token(self):
        tokens = tokenize("position()<=3")
        arrow = [t for t in tokens if t.text == "<="]
        assert arrow and arrow[0].kind == "ARROW"


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(LPathSyntaxError):
            tokenize("//'oops")

    def test_stray_character(self):
        with pytest.raises(LPathSyntaxError):
            tokenize("//S ~ //NP")

    def test_error_carries_position(self):
        try:
            tokenize("//S ~")
        except LPathSyntaxError as error:
            assert error.position == 4
        else:  # pragma: no cover
            raise AssertionError("expected LPathSyntaxError")
