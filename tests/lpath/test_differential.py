"""Differential tests: plan backend == SQLite backend == tree-walk oracle.

A pool of queries covering every axis and language feature runs over random
corpora; the three backends must agree exactly.
"""

import pytest
from hypothesis import given, settings

from repro.lpath import LPathEngine
from tests.strategies import corpora

#: Queries phrased over the strategy alphabet (tests/strategies.py).
QUERY_POOL = [
    # vertical
    "//NP",
    "//NP/N",
    "//S//V",
    "//NP/_",
    "//_/Det",
    "//N\\NP",
    "//Det\\ancestor::S",
    "//V\\ancestor-or-self::_",
    "/S/NP",
    "/_",
    # horizontal
    "//V->NP",
    "//V->_",
    "//NP<-V",
    "//V-->N",
    "//N<--V",
    "//Det->Adj->N",
    # sibling
    "//V==>NP",
    "//V=>NP",
    "//NP<=V",
    "//NP<==_",
    "//NP=>_=>_",
    # scoping and alignment
    "//VP{/V-->N}",
    "//VP{/NP$}",
    "//VP{//NP$}",
    "//VP{//^V}",
    "//S{//NP{/N$}}",
    "//NP[{//^Det->Adj$}]",
    # predicates
    "//S[//_[@lex=saw]]",
    "//_[@lex=dog]",
    "//NP[not(//Adj)]",
    "//NP[//Det and //N]",
    "//NP[//Det or //Adj]",
    "//NP[not(//Det) and not(//Adj)]",
    "//V[==>NP]",
    "//NP[<=V]",
    "//S[//NP/N]",
    "//NP[@lex]",
    "//_[@lex!=dog]",
    "//NP[count(//N)>1]",
    "//NP[count(/_)=2]",
    "//_[name()=NP]",
    "//NP[//N]",
    # positional (restricted forms)
    "//NP/_[position()=1]",
    "//NP/_[last()]",
    "//V/following-sibling::_[position()=1][self::NP]",
    "//NP/_[position()=2]",
    "//_/_[last()][self::N]",
    # attributes as final steps
    "//N/@lex",
    "//_/@_",
    # chains mixing everything
    "//S//NP[//N]->_",
    "//VP{/_[@lex]}",
    "//NP[->_[//N]]",
]


@pytest.fixture(scope="module")
def figure1_engine():
    from repro.tree import figure1_tree

    return LPathEngine([figure1_tree()])


class TestQueryPoolOnFigure1:
    @pytest.mark.parametrize("query", QUERY_POOL)
    def test_three_backends_agree(self, figure1_engine, query):
        engine = figure1_engine
        plan = engine.query(query, backend="plan")
        treewalk = engine.query(query, backend="treewalk")
        assert plan == treewalk, f"plan != treewalk for {query}"
        sqlite = engine.query(query, backend="sqlite")
        assert plan == sqlite, f"plan != sqlite for {query}"


class TestQueryPoolOnRandomCorpora:
    @given(corpora(max_trees=3, max_depth=4))
    @settings(max_examples=25, deadline=None)
    def test_plan_equals_treewalk(self, trees):
        engine = LPathEngine(trees)
        for query in QUERY_POOL:
            assert engine.query(query, backend="plan") == engine.query(
                query, backend="treewalk"
            ), f"mismatch for {query}"

    @given(corpora(max_trees=2, max_depth=3))
    @settings(max_examples=10, deadline=None)
    def test_sqlite_agrees(self, trees):
        with LPathEngine(trees) as engine:
            for query in QUERY_POOL:
                assert engine.query(query, backend="plan") == engine.query(
                    query, backend="sqlite"
                ), f"mismatch for {query}"
