"""Stress tests for the SQL generator: deep nesting, alias hygiene, scopes.

The generator allocates alias namespaces per subquery; these tests make
sure deeply nested predicates never shadow an outer correlated alias (a
classic SQL-generation bug) by executing everything on SQLite and
comparing with the other two backends.
"""

import pytest

from repro.lpath import LPathEngine
from repro.tree import figure1_tree, tree_from_spec

NESTED_QUERIES = [
    # predicate in predicate in predicate
    "//S[//NP[//Det[@lex=the]]]",
    "//S[//NP[//N[@lex=dog] and //Det]]",
    # two sibling EXISTS at the same level
    "//NP[//Det][//N]",
    "//S[//NP[//Det]][//VP[//V]]",
    # negation wrapping nested existence
    "//NP[not(//NP[//Det])]",
    "//S[not(//NP[not(//Det)])]",
    # scope inside predicate inside scope-ish chains
    "//S[{//V->NP}]",
    "//VP[{//NP$[//Det]}]",  # RA precedes predicates (Figure 4 grammar)
    # count + nested value test
    "//S[count(//NP[//Det])>1]",
    # or-combination of nested paths
    "//NP[//Det[@lex=a] or //Det[@lex=the]]",
    # chained arrows inside predicates
    "//S[//Det->Adj->N]",
    "//NP[->PP[//NP[//Det[@lex=a]]]]",
]


@pytest.fixture(scope="module")
def engine():
    extra = tree_from_spec(
        ("S",
            ("NP", ("Det", "the"), ("N", "cat")),
            ("VP", ("V", "chased"),
                   ("NP", ("Det", "a"), ("N", "dog")))),
        tid=1,
    )
    return LPathEngine([figure1_tree(tid=0), extra])


class TestNestedSQL:
    @pytest.mark.parametrize("query", NESTED_QUERIES)
    def test_three_backends_agree(self, engine, query):
        plan = engine.query(query, backend="plan")
        assert plan == engine.query(query, backend="treewalk"), query
        assert plan == engine.query(query, backend="sqlite"), query

    @pytest.mark.parametrize("query", NESTED_QUERIES)
    def test_sql_text_is_well_formed(self, engine, query):
        sql = engine.to_sql(query)
        assert sql.count("(") == sql.count(")")
        assert "SELECT DISTINCT" in sql

    def test_alias_names_unique_within_any_scope(self, engine):
        sql = engine.to_sql("//S[//NP[//Det[@lex=the]]][//VP[//V]]")
        # No alias may be declared twice in one FROM clause.
        for from_clause in _from_clauses(sql):
            aliases = [part.split()[-1] for part in from_clause.split(",")]
            assert len(aliases) == len(set(aliases)), from_clause


def _from_clauses(sql):
    import re

    return re.findall(r"FROM ([^W]+?)WHERE", sql)
