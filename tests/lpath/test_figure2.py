"""The paper's Figure 2: example queries with expected results on Figure 1.

Every query runs on all three backends; node identities are checked against
the spans from Figure 5 (the paper names nodes by subscripts we reproduce
as (label, left, right) triples).
"""

import pytest

from repro.lpath import LPathEngine
from repro.tree import figure1_tree

#: (query, expected set of (label, left, right)) — Figure 2 of the paper,
#: with V/N for the Figure 1 grammar (the paper's Fig 6(c) variants use the
#: PTB tags VB/NN instead).
FIGURE2 = [
    ("//S[//_[@lex=saw]]", {("S", 1, 10)}),
    ("//V==>NP", {("NP", 3, 9)}),
    ("//V->NP", {("NP", 3, 9), ("NP", 3, 6)}),
    ("//VP/V-->N", {("N", 5, 6), ("N", 8, 9), ("N", 9, 10)}),
    ("//VP{/V-->N}", {("N", 5, 6), ("N", 8, 9)}),
    ("//VP{/NP$}", {("NP", 3, 9)}),
    ("//VP{//NP$}", {("NP", 3, 9), ("NP", 7, 9)}),
]


@pytest.fixture(scope="module")
def engine():
    return LPathEngine([figure1_tree()])


class TestFigure2:
    @pytest.mark.parametrize("query, expected", FIGURE2)
    def test_plan_backend(self, engine, query, expected):
        nodes = engine.nodes(query)
        assert {(n.label, n.left, n.right) for n in nodes} == expected

    @pytest.mark.parametrize("query, expected", FIGURE2)
    def test_all_backends_agree(self, engine, query, expected):
        plan = engine.query(query, backend="plan")
        sqlite = engine.query(query, backend="sqlite")
        treewalk = engine.query(query, backend="treewalk")
        assert plan == sqlite == treewalk


class TestSection2Discussion:
    """Claims made in the running text of Sections 1-3."""

    def test_det_immediately_follows_verb(self, engine):
        # "Similarly, Det_8 also immediately follows V_5."
        labels = {n.label for n in engine.nodes("//V->_")}
        assert "Det" in labels and "NP" in labels

    def test_immediate_following_sibling_xpath_rewrite(self, engine):
        # Q2 == the awkward XPath rewrite from the introduction.
        rewrite = engine.query("//V/following-sibling::_[position()=1][self::NP]")
        assert rewrite == engine.query("//V==>NP")

    def test_edge_alignment_rewrite_works_for_children(self, engine):
        # "(Q6) can be expressed as //VP/_[last()][self::NP]" — child case OK.
        rewrite = engine.query("//VP/_[last()][self::NP]")
        assert rewrite == engine.query("//VP{/NP$}")

    def test_edge_alignment_rewrite_fails_for_descendants(self, engine):
        # "//VP//_[last()][self::NP] ... evaluates to ∅, while (Q7) should
        # evaluate to {NP_6, NP_11}" — the motivation for `$`.
        rewrite = engine.query("//VP//_[last()][self::NP]", backend="treewalk")
        assert rewrite == []
        assert len(engine.query("//VP{//NP$}")) == 2

    def test_subtree_scoping_shrinks_results(self, engine):
        # Q5 ⊂ Q4: N_16 ("today") escapes the VP subtree.
        unscoped = set(engine.query("//VP/V-->N"))
        scoped = set(engine.query("//VP{/V-->N}"))
        assert scoped < unscoped
        assert len(unscoped - scoped) == 1

    def test_following_is_closure_of_immediate_following(self, engine):
        # Table 1: --> is the transitive closure of ->.
        immediate = set(engine.query("//V->_"))
        following = set(engine.query("//V-->_"))
        assert immediate <= following

    def test_proper_analysis_example(self, engine):
        # From Fig 3(b): V is immediately followed by NP_6, NP_7 and Det_8.
        nodes = engine.nodes("//V->_")
        spans = {(n.label, n.left) for n in nodes}
        assert spans == {("NP", 3), ("Det", 3)}
