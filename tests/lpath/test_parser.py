"""Tests for the LPath parser: golden ASTs, errors, and round-tripping."""

import pytest

from repro.lpath import LPathSyntaxError, parse, parse_relative
from repro.lpath.ast import (
    Comparison,
    FunctionCall,
    Literal,
    NotExpr,
    Number,
    PathExists,
    Scope,
    Step,
)
from repro.lpath.axes import Axis

#: The 23 queries of Figure 6(c), exactly as printed in the paper.
PAPER_QUERIES = [
    "//S[//_[@lex=saw]]",
    "//VB->NP",
    "//VP/VB-->NN",
    "//VP{/VB-->NN}",
    "//VP{/NP$}",
    "//VP{//NP$}",
    "//VP[{//^VB->NP->PP$}]",
    "//S[//NP/ADJP]",
    "//NP[not(//JJ)]",
    "//NP[->PP[//IN[@lex=of]]=>VP]",
    "//S[{//_[@lex=what]->_[@lex=building]}]",
    "//_[@lex=rapprochement]",
    "//_[@lex=1929]",
    "//ADVP-LOC-CLR",
    "//WHPP",
    "//RRC/PP-TMP",
    "//UCP-PRD/ADJP-PRD",
    "//NP/NP/NP/NP/NP",
    "//VP/VP/VP",
    "//PP=>SBAR",
    "//ADVP=>ADJP",
    "//NP=>NP=>NP",
    "//VP=>VP",
]


class TestPaperQueries:
    @pytest.mark.parametrize("query", PAPER_QUERIES)
    def test_all_paper_queries_parse(self, query):
        path = parse(query)
        assert path.absolute
        assert path.items

    @pytest.mark.parametrize("query", PAPER_QUERIES)
    def test_round_trip_is_stable(self, query):
        once = parse(query)
        again = parse(str(once))
        assert once == again


class TestStepStructure:
    def test_descendant_first_step(self):
        path = parse("//NP")
        (step,) = path.items
        assert step.axis is Axis.DESCENDANT
        assert step.test.name == "NP"

    def test_axis_chain(self):
        path = parse("//VP/VB-->NN")
        axes = [step.axis for step in path.items]
        assert axes == [Axis.DESCENDANT, Axis.CHILD, Axis.FOLLOWING]

    def test_sibling_arrows(self):
        path = parse("//NP=>NP=>NP")
        axes = [step.axis for step in path.items]
        assert axes == [
            Axis.DESCENDANT,
            Axis.IMMEDIATE_FOLLOWING_SIBLING,
            Axis.IMMEDIATE_FOLLOWING_SIBLING,
        ]

    def test_named_axes(self):
        path = parse("//V/following-sibling::NP")
        assert path.items[1].axis is Axis.FOLLOWING_SIBLING

    def test_backslash_parent(self):
        path = parse("//NP\\VP")
        assert path.items[1].axis is Axis.PARENT

    def test_backslash_ancestor(self):
        path = parse("//NP\\ancestor::S")
        assert path.items[1].axis is Axis.ANCESTOR

    def test_wildcard(self):
        path = parse("//_")
        assert path.items[0].test.is_wildcard

    def test_quoted_node_test(self):
        path = parse("//'PRP$'")
        assert path.items[0].test.name == "PRP$"

    def test_attribute_step(self):
        path = parse("//NP/@lex")
        step = path.items[1]
        assert step.axis is Axis.ATTRIBUTE
        assert step.test.is_attribute and step.test.name == "lex"


class TestScopingAndAlignment:
    def test_scope_item(self):
        path = parse("//VP{/NP$}")
        assert isinstance(path.items[1], Scope)
        inner = path.items[1].body.items[0]
        assert inner.axis is Axis.CHILD
        assert inner.right_aligned

    def test_left_alignment(self):
        path = parse("//VP[{//^VB->NP}]")
        predicate = path.items[0].predicates[0]
        assert isinstance(predicate, PathExists)
        scope = predicate.path.items[0]
        assert isinstance(scope, Scope)
        assert scope.body.items[0].left_aligned

    def test_nested_scopes(self):
        path = parse("//S{//VP{/V}}")
        outer = path.items[1]
        assert isinstance(outer, Scope)
        inner = outer.body.items[1]
        assert isinstance(inner, Scope)

    def test_steps_after_scope_rejected(self):
        with pytest.raises(LPathSyntaxError):
            parse("//VP{/V}/NP")

    def test_empty_scope_rejected(self):
        with pytest.raises(LPathSyntaxError):
            parse("//VP{}")

    def test_last_step_through_scope(self):
        path = parse("//VP{/V-->N}")
        assert path.last_step().test.name == "N"


class TestPredicates:
    def test_attribute_equality(self):
        path = parse("//_[@lex=saw]")
        predicate = path.items[0].predicates[0]
        assert isinstance(predicate, Comparison)
        assert predicate.op == "="
        assert isinstance(predicate.right, Literal)
        assert predicate.right.value == "saw"

    def test_numeric_rhs(self):
        path = parse("//_[@lex=1929]")
        predicate = path.items[0].predicates[0]
        assert isinstance(predicate.right, Number)
        assert predicate.right.value == 1929

    def test_not_predicate(self):
        path = parse("//NP[not(//JJ)]")
        predicate = path.items[0].predicates[0]
        assert isinstance(predicate, NotExpr)
        assert isinstance(predicate.part, PathExists)

    def test_path_predicate_with_nested_predicate(self):
        path = parse("//NP[->PP[//IN[@lex=of]]=>VP]")
        predicate = path.items[0].predicates[0]
        assert isinstance(predicate, PathExists)
        steps = predicate.path.items
        assert steps[0].axis is Axis.IMMEDIATE_FOLLOWING
        assert steps[1].axis is Axis.IMMEDIATE_FOLLOWING_SIBLING
        inner = steps[0].predicates[0]
        assert isinstance(inner, PathExists)

    def test_positional_normalization(self):
        path = parse("//VP/_[last()]")
        predicate = path.items[1].predicates[0]
        assert isinstance(predicate, Comparison)
        assert isinstance(predicate.left, FunctionCall)
        assert predicate.left.name == "position"
        assert isinstance(predicate.right, FunctionCall)
        assert predicate.right.name == "last"

    def test_bare_number_predicate_normalized(self):
        path = parse("//VP/_[2]")
        predicate = path.items[1].predicates[0]
        assert isinstance(predicate, Comparison)
        assert predicate.right == Number(2)

    def test_position_le_reinterpreted(self):
        path = parse("//VP/_[position()<=3]")
        predicate = path.items[1].predicates[0]
        assert isinstance(predicate, Comparison)
        assert predicate.op == "<="

    def test_le_after_path_stays_axis(self):
        path = parse("//NP[//VP<=NP]")
        predicate = path.items[0].predicates[0]
        assert isinstance(predicate, PathExists)
        assert predicate.path.items[1].axis is Axis.IMMEDIATE_PRECEDING_SIBLING

    def test_and_or(self):
        path = parse("//NP[//JJ and //NN or not(//DT)]")
        assert path.items[0].predicates

    def test_self_predicate(self):
        path = parse("//V/following-sibling::_[self::NP]")
        predicate = path.items[1].predicates[0]
        assert isinstance(predicate, PathExists)
        assert predicate.path.items[0].axis is Axis.SELF

    def test_count_function(self):
        path = parse("//NP[count(//JJ)>2]")
        predicate = path.items[0].predicates[0]
        assert isinstance(predicate, Comparison)
        assert predicate.left.name == "count"

    def test_unknown_function_rejected(self):
        with pytest.raises(LPathSyntaxError):
            parse("//NP[frobnicate()]")

    def test_bad_arity_rejected(self):
        with pytest.raises(LPathSyntaxError):
            parse("//NP[position(1)]")


class TestRelativePaths:
    def test_bare_name_is_child(self):
        path = parse_relative("NP")
        assert path.items[0].axis is Axis.CHILD

    def test_leading_scope(self):
        path = parse_relative("{//V}")
        assert isinstance(path.items[0], Scope)

    def test_attribute_relative(self):
        path = parse_relative("@lex")
        assert path.items[0].axis is Axis.ATTRIBUTE


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "", "NP", "//", "//S[", "//S]", "//S[//]", "//S[@]", "//S{",
            "//S[not(]", "//\\following::X", "//S[position()=]",
            "//S[name(=x]", "//S[[//X]]",
        ],
    )
    def test_malformed_queries(self, bad):
        with pytest.raises(LPathSyntaxError):
            parse(bad)

    def test_unknown_named_axis(self):
        with pytest.raises(LPathSyntaxError):
            parse("//S/sideways::NP")
