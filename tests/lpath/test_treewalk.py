"""Semantics tests for the tree-walk reference evaluator."""

import pytest

from repro.lpath import LPathEvaluationError, TreeWalkEvaluator
from repro.lpath.treewalk import string_value
from repro.tree import figure1_tree, tree_from_spec


@pytest.fixture()
def figure1():
    return TreeWalkEvaluator([figure1_tree()])


class TestBasics:
    def test_query_returns_sorted_pairs(self, figure1):
        pairs = figure1.query("//NP")
        assert pairs == sorted(pairs)
        assert len(pairs) == 5

    def test_nodes_resolve(self, figure1):
        nodes = figure1.nodes("//V")
        assert [n.word for n in nodes] == ["saw"]

    def test_count(self, figure1):
        assert figure1.count("//NP") == 5

    def test_absolute_child_selects_root_only(self, figure1):
        assert figure1.count("/S") == 1
        assert figure1.count("/NP") == 0

    def test_multiple_trees(self):
        trees = [figure1_tree(tid=0), figure1_tree(tid=5)]
        evaluator = TreeWalkEvaluator(trees)
        pairs = evaluator.query("//V")
        assert [tid for tid, _ in pairs] == [0, 5]


class TestPositionalSemantics:
    def test_position_on_child_axis(self, figure1):
        first = figure1.nodes("//NP/_[position()=1]")
        assert all(n.index_in_parent == 0 for n in first)

    def test_position_on_reverse_axis_counts_backwards(self):
        tree = tree_from_spec(
            ("S", ("A", "a"), ("B", "b"), ("C", "c"), ("D", "d"))
        )
        evaluator = TreeWalkEvaluator([tree])
        # preceding-sibling::_[1] of D is C (nearest first on reverse axes).
        nodes = evaluator.nodes("//D/preceding-sibling::_[position()=1]")
        assert [n.label for n in nodes] == ["C"]

    def test_chained_positional_refilters(self):
        tree = tree_from_spec(
            ("S", ("A", "a"), ("B", "b"), ("A", "c"), ("B", "d"))
        )
        evaluator = TreeWalkEvaluator([tree])
        # Second child overall, then [1] of that singleton.
        nodes = evaluator.nodes("//S/_[position()=2][position()=1]")
        assert [n.label for n in nodes] == ["B"]
        assert nodes[0].word == "b"

    def test_last_on_descendants(self, figure1):
        # //VP//_[last()]: the last descendant of VP in document order.
        nodes = figure1.nodes("//VP//_[last()]")
        assert [(n.label, n.word) for n in nodes] == [("N", "dog")]


class TestFunctions:
    def test_count(self, figure1):
        assert figure1.count("//NP[count(//N)=1]") == 3
        assert figure1.count("//NP[count(//N)>1]") == 1  # NP(3,9) contains 2

    def test_name_function(self, figure1):
        assert figure1.query("//_[name()=VP]") == figure1.query("//VP")

    def test_true_false(self, figure1):
        assert figure1.count("//V[true()]") == 1
        assert figure1.count("//V[false()]") == 0

    def test_count_requires_path(self, figure1):
        with pytest.raises(LPathEvaluationError):
            figure1.query("//V[count(1)=1]")


class TestValueComparisons:
    def test_attribute_equality(self, figure1):
        assert figure1.count("//_[@lex=saw]") == 1

    def test_attribute_inequality(self, figure1):
        # Terminals whose word is not "saw": 8 of 9.
        assert figure1.count("//_[@lex!=saw]") == 8

    def test_numeric_comparison(self):
        tree = tree_from_spec(("S", ("CD", "1929"), ("CD", "7")))
        evaluator = TreeWalkEvaluator([tree])
        assert evaluator.count("//CD[@lex=1929]") == 1
        assert evaluator.count("//CD[@lex>100]") == 1
        assert evaluator.count("//CD[@lex<100]") == 1

    def test_element_string_value(self, figure1):
        # The NP "the old man" compared as a full string.
        assert figure1.count("//NP[. = 'the old man']") == 1

    def test_string_value_helper(self):
        tree = figure1_tree()
        assert string_value(tree.root) == "I saw the old man with a dog today"


class TestScopeSemantics:
    def test_scope_restricts_predicates_too(self):
        # Predicates inside a scoped region inherit the scope.
        tree = figure1_tree()
        evaluator = TreeWalkEvaluator([tree])
        # V[-->N] inside VP scope: "today" does not witness the predicate,
        # but "man"/"dog" do, so V still matches.
        assert evaluator.count("//VP{/V[-->N]}") == 1

    def test_scope_alignment_together(self):
        evaluator = TreeWalkEvaluator([figure1_tree()])
        assert evaluator.count("//NP{//^Det}") == 2  # "the", "a" lead their NPs

    def test_unscoped_alignment_is_tree_edges(self):
        evaluator = TreeWalkEvaluator([figure1_tree()])
        assert evaluator.count("//^NP") == 1   # NP over "I"
        assert evaluator.count("//NP$") == 1   # NP over "today"


class TestAttributeSteps:
    def test_attribute_wildcard(self, figure1):
        assert figure1.count("//V/@_") == 1

    def test_attribute_missing(self, figure1):
        assert figure1.count("//VP/@lex") == 0

    def test_attribute_identity_is_element(self, figure1):
        assert figure1.query("//V/@lex") == figure1.query("//V")


class TestErrors:
    def test_query_cannot_start_with_arrow_axis(self, figure1):
        from repro.lpath import LPathSyntaxError

        with pytest.raises((LPathEvaluationError, LPathSyntaxError)):
            figure1.query("->NP")
