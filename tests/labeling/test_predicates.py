"""Property tests: Table 2 label predicates == structural ground truth."""

from hypothesis import given, settings

from repro.labeling import label_tree, predicates as lp
from repro.tree import figure1_tree, traversal as tv
from tests.strategies import trees

#: (label predicate, ground-truth function taking (tree, x_node, y_node))
AXIS_CASES = [
    (lp.is_child, lambda t, x, y: tv.is_child(x, y)),
    (lp.is_parent, lambda t, x, y: tv.is_parent(x, y)),
    (lp.is_descendant, lambda t, x, y: tv.is_descendant(x, y)),
    (lp.is_ancestor, lambda t, x, y: tv.is_ancestor(x, y)),
    (lp.is_immediate_following, tv.immediately_follows_adjacent),
    (lp.is_following, tv.follows),
    (lp.is_immediate_preceding, lambda t, x, y: tv.immediately_follows_adjacent(t, y, x)),
    (lp.is_preceding, tv.precedes),
    (lp.is_immediate_following_sibling, tv.is_immediate_following_sibling),
    (lp.is_following_sibling, tv.is_following_sibling),
    (lp.is_immediate_preceding_sibling, tv.is_immediate_preceding_sibling),
    (lp.is_preceding_sibling, tv.is_preceding_sibling),
]


def _element_rows(tree):
    rows = [r for r in label_tree(tree) if not r.is_attribute]
    return {r.id: r for r in rows}


class TestTable2AgainstGroundTruth:
    @given(trees(max_depth=4))
    @settings(max_examples=50, deadline=None)
    def test_all_axes_agree(self, tree):
        rows = _element_rows(tree)
        nodes = tree.nodes
        for x in nodes:
            for y in nodes:
                lx, ly = rows[x.node_id], rows[y.node_id]
                for label_pred, truth in AXIS_CASES:
                    assert label_pred(lx, ly) == truth(tree, x, y), (
                        f"{label_pred.__name__} disagrees for "
                        f"{x.label}[{x.left},{x.right}] vs {y.label}[{y.left},{y.right}]"
                    )

    @given(trees(max_depth=4))
    @settings(max_examples=30, deadline=None)
    def test_reflexive_variants(self, tree):
        rows = _element_rows(tree)
        for x in tree.nodes:
            lx = rows[x.node_id]
            assert lp.is_descendant_or_self(lx, lx)
            assert lp.is_ancestor_or_self(lx, lx)
            assert not lp.is_descendant(lx, lx)
            assert lp.is_self(lx, lx)

    @given(trees(max_depth=4))
    @settings(max_examples=30, deadline=None)
    def test_scope_and_alignment(self, tree):
        rows = _element_rows(tree)
        for scope in tree.nodes:
            ls = rows[scope.node_id]
            for x in tree.nodes:
                lx = rows[x.node_id]
                assert lp.in_scope(lx, ls) == tv.in_subtree(scope, x)
                if tv.in_subtree(scope, x):
                    assert lp.is_left_aligned(lx, ls) == tv.is_leftmost_in(scope, x)
                    assert lp.is_right_aligned(lx, ls) == tv.is_rightmost_in(scope, x)


class TestDifferentTrees:
    def test_cross_tree_never_related(self):
        t0 = figure1_tree(tid=0)
        t1 = figure1_tree(tid=1)
        rows0 = [r for r in label_tree(t0) if not r.is_attribute]
        rows1 = [r for r in label_tree(t1) if not r.is_attribute]
        for pred, _ in AXIS_CASES:
            for x in rows0[:4]:
                for y in rows1[:4]:
                    assert not pred(x, y)


class TestAttributePredicate:
    def test_attribute_rows_detected(self):
        rows = label_tree(figure1_tree())
        elements = {r.id: r for r in rows if not r.is_attribute}
        for row in rows:
            if row.is_attribute:
                assert lp.is_attribute(row, elements[row.id])
        v_row = next(r for r in rows if r.name == "V")
        assert not lp.is_attribute(v_row, v_row)
