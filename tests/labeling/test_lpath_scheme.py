"""Tests for the Definition 4.1 labeling scheme, incl. the Figure 5 relation."""

from hypothesis import given, settings

from repro.labeling import Label, label_corpus, label_tree
from repro.tree import figure1_tree, tree_from_spec
from tests.strategies import corpora, trees


class TestFigure5:
    """The label relation of Figure 5 (positional fields must match exactly).

    The paper's Skolem identifiers happen to start at 2 (S has id=2, pid=1);
    ours are document-order from 1 with root pid=0, which Definition 4.1
    permits ("assign a nonzero id via a Skolem function").  We therefore
    compare ids *relative* to the root rather than literally.
    """

    def setup_method(self):
        self.rows = label_tree(figure1_tree())
        self.by_name = {}
        for row in self.rows:
            self.by_name.setdefault(row.name, []).append(row)

    def find(self, name, left, right, depth):
        matches = [
            r for r in self.by_name.get(name, ())
            if (r.left, r.right, r.depth) == (left, right, depth)
        ]
        assert len(matches) == 1, f"{name} ({left},{right},{depth}): {matches}"
        return matches[0]

    def test_element_rows_match_figure5(self):
        s = self.find("S", 1, 10, 1)
        np_i = self.find("NP", 1, 2, 2)
        vp = self.find("VP", 2, 9, 2)
        v = self.find("V", 2, 3, 3)
        np_obj = self.find("NP", 3, 9, 3)
        np_man = self.find("NP", 3, 6, 4)
        det = self.find("Det", 3, 4, 5)
        # pid chains as in Figure 5: NP(I) and VP are children of S, etc.
        assert np_i.pid == s.id and vp.pid == s.id
        assert v.pid == vp.id and np_obj.pid == vp.id
        assert np_man.pid == np_obj.id and det.pid == np_man.id
        assert s.pid == 0

    def test_attribute_rows_share_positions(self):
        lex_i = self.find("@lex", 1, 2, 2)
        np_i = self.find("NP", 1, 2, 2)
        assert lex_i.value == "I"
        assert (lex_i.id, lex_i.pid) == (np_i.id, np_i.pid)
        lex_saw = self.find("@lex", 2, 3, 3)
        assert lex_saw.value == "saw"
        lex_the = self.find("@lex", 3, 4, 5)
        assert lex_the.value == "the"

    def test_row_counts(self):
        elements = [r for r in self.rows if not r.is_attribute]
        attributes = [r for r in self.rows if r.is_attribute]
        assert len(elements) == 16   # 16 nodes in the Figure 1 tree
        assert len(attributes) == 9  # 9 words

    def test_element_rows_have_no_value(self):
        for row in self.rows:
            if not row.is_attribute:
                assert row.value is None


class TestLabelingProperties:
    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_labels_mirror_node_annotations(self, tree):
        for row in label_tree(tree):
            node = tree.node_by_id(row.id)
            assert (row.left, row.right, row.depth) == (
                node.left, node.right, node.depth,
            )
            if row.is_attribute:
                assert node.attributes[row.name[1:]] == row.value
            else:
                assert row.name == node.label

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_ids_unique_among_elements(self, tree):
        ids = [r.id for r in label_tree(tree) if not r.is_attribute]
        assert len(ids) == len(set(ids))

    @given(corpora())
    @settings(max_examples=30, deadline=None)
    def test_corpus_rows_carry_tids(self, corpus):
        rows = list(label_corpus(corpus))
        assert {r.tid for r in rows} == {t.tid for t in corpus}

    def test_multiple_attributes_sorted(self):
        tree = tree_from_spec(("S", ("X", "w")))
        leaf = tree.root.children[0]
        leaf.attributes["pos"] = "NN"
        rows = [r for r in label_tree(tree) if r.is_attribute]
        assert [r.name for r in rows] == ["@lex", "@pos"]

    def test_label_is_named_tuple(self):
        row = label_tree(figure1_tree())[0]
        assert isinstance(row, Label)
        assert row._fields == ("tid", "left", "right", "depth", "id", "pid", "name", "value")
