"""Tests for the baseline start/end (XPath) labeling scheme."""

from hypothesis import given, settings

from repro.labeling import xpath_scheme as xs
from repro.tree import figure1_tree, traversal as tv
from tests.strategies import trees


def _element_rows(tree):
    return {r.id: r for r in xs.label_tree(tree) if not r.is_attribute}


class TestStartEndAssignment:
    def test_no_shared_boundaries(self):
        rows = _element_rows(figure1_tree())
        positions = []
        for row in rows.values():
            positions.extend([row.start, row.end])
        assert len(positions) == len(set(positions))

    def test_root_spans_document(self):
        tree = figure1_tree()
        rows = _element_rows(tree)
        root_row = rows[tree.root.node_id]
        assert root_row.start == 1
        assert root_row.end == 2 * len(tree)

    def test_attribute_rows_share_span(self):
        tree = figure1_tree()
        rows = xs.label_tree(tree)
        v_row = next(r for r in rows if r.name == "V")
        lex = next(r for r in rows if r.is_attribute and r.value == "saw")
        assert (lex.start, lex.end) == (v_row.start, v_row.end)


class TestContainmentPredicates:
    @given(trees(max_depth=4))
    @settings(max_examples=50, deadline=None)
    def test_vertical_and_order_axes_agree(self, tree):
        rows = _element_rows(tree)
        for x in tree.nodes:
            for y in tree.nodes:
                lx, ly = rows[x.node_id], rows[y.node_id]
                assert xs.is_descendant(lx, ly) == tv.is_descendant(x, y)
                assert xs.is_ancestor(lx, ly) == tv.is_ancestor(x, y)
                assert xs.is_child(lx, ly) == tv.is_child(x, y)
                assert xs.is_parent(lx, ly) == tv.is_parent(x, y)

    @given(trees(max_depth=4))
    @settings(max_examples=40, deadline=None)
    def test_following_is_document_order_following(self, tree):
        """start/end 'following' = XPath following = linguistic following."""
        rows = _element_rows(tree)
        for x in tree.nodes:
            for y in tree.nodes:
                lx, ly = rows[x.node_id], rows[y.node_id]
                assert xs.is_following(lx, ly) == tv.follows(tree, x, y)
                assert xs.is_preceding(lx, ly) == tv.precedes(tree, x, y)


class TestExpressivenessGap:
    def test_immediate_following_not_decidable(self):
        """The paper's motivation for the new scheme: under start/end labels
        there is no label comparison equivalent to immediate-following.

        Concretely: two (x, y) pairs with identical start-gap relationships
        differ on immediate-following, so no function of the start/end
        numbers alone can decide the axis.  We demonstrate the loss directly:
        leaf adjacency information (shared boundaries) is absent.
        """
        tree = figure1_tree()
        rows = _element_rows(tree)
        v = next(n for n in tree.nodes if n.label == "V")
        np_obj = next(n for n in tree.nodes if n.label == "NP" and n.left == 3 and n.depth == 3)
        np_man = next(n for n in tree.nodes if n.label == "NP" and n.right == 6)
        # Both NPs immediately follow V structurally...
        assert tv.immediately_follows_adjacent(tree, np_obj, v)
        assert tv.immediately_follows_adjacent(tree, np_man, v)
        # ...but their start positions relative to V's end differ, and the
        # simple "x.start == y.end + 1" guess is wrong for the nested NP.
        assert rows[np_obj.node_id].start == rows[v.node_id].end + 1
        assert rows[np_man.node_id].start != rows[v.node_id].end + 1
