"""Unit coverage for the LPDB0005 live-corpus subsystem: durable
appends, torn-tail recovery, the writer lock, restartable compaction,
atomic file saves, and the crash-oriented fault points at probability
1.0 (every call fires — the subprocess kill matrix lives in
``tests/integration/test_crash_matrix.py``)."""

from __future__ import annotations

import os

import pytest

from repro import live, store
from repro.corpus import generate_corpus
from repro.labeling.lpath_scheme import label_corpus
from repro.live import LiveCorpus, LiveEngineManager
from repro.store import StoreError
from repro.tree.bracket import iter_trees

TEXT = "(S (NP (N dog)) (VP (V ran)))"
MORE = "(S (NP (N cat)) (VP (V sat) (NP (N mat))))"


def rows_for(text: str, start_tid: int = 0):
    return list(label_corpus(iter_trees(text, start_tid=start_tid)))


@pytest.fixture()
def corpus_dir(tmp_path) -> str:
    path = str(tmp_path / "live.lpdb")
    live.create_live_corpus(path, rows_for(TEXT * 3), segments=2)
    return path


def sorted_rows(rows):
    return sorted(tuple(row) for row in rows)


class TestCreateAndOpen:
    def test_round_trip_through_store_api(self, tmp_path):
        path = str(tmp_path / "corpus.lpdb")
        trees = list(iter_trees(TEXT * 2))
        count = store.save_corpus(trees, path, format="lpdb0005")
        assert count == len(rows_for(TEXT * 2))
        assert os.path.isdir(path)
        assert store.corpus_format(path) == "LPDB0005"
        assert store.is_compiled_corpus(path)
        assert sorted_rows(store.load_corpus_labels(path)) == sorted_rows(
            rows_for(TEXT * 2)
        )

    def test_empty_corpus_round_trips(self, tmp_path):
        path = str(tmp_path / "empty.lpdb")
        live.create_live_corpus(path, [])
        assert store.load_corpus_labels(path) == []
        engine = live.open_live_engine(path)
        try:
            assert engine.query("//NP") == []
        finally:
            engine.close()

    def test_refuses_foreign_directory(self, tmp_path):
        (tmp_path / "keep.txt").write_text("not yours")
        with pytest.raises(StoreError, match="non-empty directory"):
            live.create_live_corpus(str(tmp_path), rows_for(TEXT))

    def test_recreate_over_live_corpus_bumps_generation(self, corpus_dir):
        live.create_live_corpus(corpus_dir, rows_for(MORE))
        info = store.corpus_info(corpus_dir)
        assert info["generation"] == 2
        assert sorted_rows(store.load_corpus_labels(corpus_dir)) == (
            sorted_rows(rows_for(MORE))
        )

    def test_open_missing_manifest(self, tmp_path):
        os.makedirs(tmp_path / "bare")
        with pytest.raises(StoreError, match="MANIFEST"):
            LiveCorpus(str(tmp_path / "bare"))

    def test_fingerprint_copy_stable(self, corpus_dir, tmp_path):
        import shutil

        clone = str(tmp_path / "clone.lpdb")
        shutil.copytree(corpus_dir, clone)
        assert store.store_fingerprint(clone) == store.store_fingerprint(
            corpus_dir
        )


class TestAppend:
    def test_append_is_visible_after_reopen(self, corpus_dir):
        with LiveCorpus(corpus_dir) as corpus:
            ack = corpus.append_trees(MORE)
        assert ack["trees"] == 1
        info = store.corpus_info(corpus_dir)
        assert info["delta_rows"] == ack["rows"]
        assert info["wal_records"] == 1
        total = sorted_rows(store.load_corpus_labels(corpus_dir))
        assert len(total) == info["rows"]

    def test_append_changes_fingerprint(self, corpus_dir):
        before = store.store_fingerprint(corpus_dir)
        with LiveCorpus(corpus_dir) as corpus:
            corpus.append_trees(MORE)
            assert corpus.fingerprint != before
        assert store.store_fingerprint(corpus_dir) != before

    def test_append_assigns_fresh_tids(self, corpus_dir):
        with LiveCorpus(corpus_dir) as corpus:
            first = corpus.append_trees(MORE)
            second = corpus.append_trees(TEXT)
        assert second["first_tid"] == first["next_tid"]

    def test_append_rows_rejects_overlapping_tids(self, corpus_dir):
        with LiveCorpus(corpus_dir) as corpus:
            with pytest.raises(StoreError, match="next_tid"):
                corpus.append_rows(rows_for(TEXT))  # tids restart at 0

    def test_append_rejects_empty(self, corpus_dir):
        with LiveCorpus(corpus_dir) as corpus:
            with pytest.raises(StoreError, match="no trees"):
                corpus.append_trees("   ")
            with pytest.raises(StoreError, match="at least one row"):
                corpus.append_rows([])

    def test_read_only_open_cannot_append(self, corpus_dir):
        with LiveCorpus(corpus_dir, writable=False) as corpus:
            with pytest.raises(StoreError, match="read-only"):
                corpus.append_trees(MORE)

    def test_read_only_open_takes_no_lock(self, corpus_dir):
        with LiveCorpus(corpus_dir, writable=False):
            assert not os.path.exists(os.path.join(corpus_dir, "LOCK"))


class TestWriterLock:
    def test_second_writer_gets_clean_error(self, corpus_dir):
        with LiveCorpus(corpus_dir):
            with pytest.raises(StoreError, match="locked by pid"):
                LiveCorpus(corpus_dir)

    def test_stale_lock_reclaimed(self, corpus_dir):
        # A pid that cannot exist: the kernel's pid_max ceiling is 2^22.
        with open(os.path.join(corpus_dir, "LOCK"), "w") as handle:
            handle.write("4999999\n")
        with LiveCorpus(corpus_dir) as corpus:
            corpus.append_trees(MORE)

    def test_garbage_lock_reclaimed(self, corpus_dir):
        with open(os.path.join(corpus_dir, "LOCK"), "w") as handle:
            handle.write("not-a-pid")
        with LiveCorpus(corpus_dir) as corpus:
            corpus.append_trees(MORE)

    def test_lock_released_on_close(self, corpus_dir):
        LiveCorpus(corpus_dir).close()
        assert not os.path.exists(os.path.join(corpus_dir, "LOCK"))


class TestRecovery:
    def append_then_tear(self, corpus_dir, torn_bytes: bytes) -> int:
        """Append one acknowledged batch, then fake a crash mid-write by
        hand-appending garbage to the WAL."""
        with LiveCorpus(corpus_dir) as corpus:
            acked = corpus.append_trees(MORE)["rows"]
            wal_path = corpus.wal_path
        with open(wal_path, "ab") as handle:
            handle.write(torn_bytes)
        return acked

    @pytest.mark.parametrize(
        "tail",
        [
            b"\x03",                          # torn frame header
            b"\xff\xff\xff\x7f\x00\x00\x00\x00",  # length beyond EOF
            b"\x04\x00\x00\x00\x99\x99\x99\x99junk",  # bad CRC
        ],
        ids=["torn-header", "overlong", "bad-crc"],
    )
    def test_torn_tail_truncated_acked_rows_survive(self, corpus_dir, tail):
        acked = self.append_then_tear(corpus_dir, tail)
        with LiveCorpus(corpus_dir) as corpus:
            assert len(corpus.snapshot()[1]) == acked
            assert "truncated" in corpus.manifest.last_recovery
        # Recovery is level-triggered: a second clean open keeps the
        # recovery note but does not re-recover.
        info = store.corpus_info(corpus_dir)
        assert info["wal_torn_bytes"] == 0

    def test_read_only_open_ignores_torn_tail(self, corpus_dir):
        acked = self.append_then_tear(corpus_dir, b"\x01\x02\x03")
        with LiveCorpus(corpus_dir, writable=False) as corpus:
            assert len(corpus.snapshot()[1]) == acked
        info = store.corpus_info(corpus_dir)
        assert info["wal_torn_bytes"] == 3  # still on disk

    def test_orphan_files_collected(self, corpus_dir):
        for orphan in ("seg-99999999.lpdb", "wal-99999999.log",
                       "tmp-manifest-9-123"):
            with open(os.path.join(corpus_dir, orphan), "wb") as handle:
                handle.write(b"garbage")
        with LiveCorpus(corpus_dir) as corpus:
            recovery = corpus.manifest.last_recovery
        assert "seg-99999999.lpdb" in recovery
        assert not os.path.exists(
            os.path.join(corpus_dir, "wal-99999999.log")
        )

    def test_foreign_files_left_alone(self, corpus_dir):
        foreign = os.path.join(corpus_dir, "NOTES.txt")
        with open(foreign, "w") as handle:
            handle.write("operator breadcrumbs")
        with LiveCorpus(corpus_dir):
            pass
        assert os.path.exists(foreign)

    def test_recovery_bumps_generation(self, corpus_dir):
        before = store.corpus_info(corpus_dir)["generation"]
        self.append_then_tear(corpus_dir, b"\xde\xad")
        LiveCorpus(corpus_dir).close()
        assert store.corpus_info(corpus_dir)["generation"] == before + 1


class TestFaultPoints:
    def test_fsync_fail_rolls_back(self, corpus_dir, monkeypatch):
        with LiveCorpus(corpus_dir) as corpus:
            size_before = corpus._wal_size
            monkeypatch.setenv("REPRO_FAULTS", "fsync_fail:1.0:1")
            with pytest.raises(StoreError, match="NOT acknowledged"):
                corpus.append_trees(MORE)
            monkeypatch.delenv("REPRO_FAULTS")
            # Nothing acknowledged, file rolled back, store usable.
            assert corpus._wal_size == size_before
            assert os.path.getsize(corpus.wal_path) == size_before
            corpus.append_trees(MORE)

    def test_disk_full_rolls_back(self, corpus_dir, monkeypatch):
        with LiveCorpus(corpus_dir) as corpus:
            monkeypatch.setenv("REPRO_FAULTS", "disk_full:1.0:1")
            with pytest.raises(StoreError, match="NOT acknowledged"):
                corpus.append_trees(MORE)
            monkeypatch.delenv("REPRO_FAULTS")
            assert corpus.verify_on_disk()[0]

    def test_torn_write_poisons_until_reopen(self, corpus_dir, monkeypatch):
        with LiveCorpus(corpus_dir) as corpus:
            monkeypatch.setenv("REPRO_FAULTS", "torn_write:1.0:1")
            with pytest.raises(StoreError, match="torn write"):
                corpus.append_trees(MORE)
            monkeypatch.delenv("REPRO_FAULTS")
            with pytest.raises(StoreError, match="poisoned"):
                corpus.append_trees(MORE)
            ok, reason = corpus.verify_on_disk()
            assert not ok and "poisoned" in reason
        # Reopen runs recovery: the torn tail goes, appends work again.
        with LiveCorpus(corpus_dir) as corpus:
            assert "truncated" in corpus.manifest.last_recovery
            corpus.append_trees(MORE)


class TestCompaction:
    def test_compaction_preserves_rows_and_results(self, corpus_dir):
        with LiveCorpus(corpus_dir) as corpus:
            corpus.append_trees(MORE)
            corpus.append_trees(TEXT)
        before = sorted_rows(store.load_corpus_labels(corpus_dir))
        with LiveCorpus(corpus_dir) as corpus:
            status = corpus.compact()
        assert status["compacted_rows"] > 0
        assert store.corpus_info(corpus_dir)["delta_rows"] == 0
        assert sorted_rows(store.load_corpus_labels(corpus_dir)) == before

    def test_compact_empty_delta_is_noop(self, corpus_dir):
        with LiveCorpus(corpus_dir) as corpus:
            generation = corpus.generation
            status = corpus.compact()
        assert status["compacted_rows"] == 0
        assert store.corpus_info(corpus_dir)["generation"] == generation

    def test_repeated_compactions_accumulate_segments(self, corpus_dir):
        for _ in range(3):
            with LiveCorpus(corpus_dir) as corpus:
                corpus.append_trees(MORE)
                corpus.compact()
        info = store.corpus_info(corpus_dir)
        assert info["base_segments"] == 4  # the original + 3 compacted
        assert info["delta_rows"] == 0

    def test_append_during_compaction_survives_rotation(self, corpus_dir):
        """Rows appended between the compaction snapshot and cut-over
        must be carried into the rotated WAL."""
        with LiveCorpus(corpus_dir) as corpus:
            corpus.append_trees(MORE)
            frozen, cut = list(corpus._delta_rows), corpus._wal_size

            # Interleave an append the way a concurrent request would,
            # between the snapshot and the cut-over.
            real_barrier = live._barrier
            appended = {}

            def barrier_with_append(name, compactor=False):
                if name == "compact_segment" and not appended:
                    appended["ack"] = corpus.append_trees(TEXT)
                real_barrier(name, compactor)

            live._barrier = barrier_with_append
            try:
                corpus.compact()
            finally:
                live._barrier = real_barrier
            assert len(corpus.snapshot()[1]) == appended["ack"]["rows"]
        # The carried rows survive a full reopen (they are in the WAL).
        with LiveCorpus(corpus_dir) as corpus:
            assert len(corpus.snapshot()[1]) == appended["ack"]["rows"]


class TestLiveEngine:
    def test_engine_matches_monolithic_resave(self, tmp_path, corpus_dir):
        with LiveCorpus(corpus_dir) as corpus:
            corpus.append_trees(MORE)
        rows = store.load_corpus_labels(corpus_dir)
        mono = str(tmp_path / "mono.lpdb")
        with store.atomic_write(mono) as handle:
            store.save_labels(rows, handle, format="lpdb0004")
        from repro.lpath import LPathEngine

        live_engine = LPathEngine.open(corpus_dir)
        mono_engine = LPathEngine.open(mono)
        try:
            for query in ("//NP", "//VP//NP", "//S//N"):
                assert sorted(live_engine.query(query)) == sorted(
                    mono_engine.query(query)
                )
        finally:
            live_engine.close()
            mono_engine.close()

    def test_process_mode_rejected(self, corpus_dir):
        from repro.lpath import LPathEngine
        from repro.lpath.errors import LPathError

        with pytest.raises(LPathError, match="thread"):
            LPathEngine.open(corpus_dir, workers=2, mode="process")

    def test_delta_segment_tagged_in_explain(self, corpus_dir):
        with LiveCorpus(corpus_dir) as corpus:
            corpus.append_trees(MORE)
        engine = live.open_live_engine(corpus_dir)
        try:
            assert "delta" in engine.explain("//NP")
        finally:
            engine.close()

    def test_manager_read_your_writes(self, corpus_dir):
        manager = LiveEngineManager(corpus_dir)
        try:
            before = len(manager.engine.query("//N"))
            manager.append_trees(MORE)
            assert len(manager.engine.query("//N")) == before + 2
            manager.compact()
            assert len(manager.engine.query("//N")) == before + 2
            ok, reason = manager.verify()
            assert ok, reason
        finally:
            manager.close()

    def test_manager_auto_compactor(self, corpus_dir):
        import time

        manager = LiveEngineManager(
            corpus_dir, compact_rows=1, compact_interval=0.02
        )
        try:
            manager.append_trees(MORE)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if manager.status()["compactions"] >= 1:
                    break
                time.sleep(0.02)
            status = manager.status()
            assert status["compactions"] >= 1
            assert status["delta_rows"] == 0
        finally:
            manager.close()


class TestAtomicSaves:
    def test_failed_save_preserves_previous_store(self, tmp_path,
                                                  monkeypatch):
        path = str(tmp_path / "corpus.lpdb")
        trees = list(iter_trees(TEXT * 2))
        store.save_corpus(trees, path, format="lpdb0004")
        good = open(path, "rb").read()

        # Make the re-save die mid-write, after bytes have been
        # produced: the temp file must be discarded and the original
        # store stay byte-identical.
        real_save = store.save_labels

        def exploding_save(rows, handle, **kwargs):
            handle.write(b"partial garbage")
            raise OSError("disk died mid-save")

        monkeypatch.setattr(store, "save_labels", exploding_save)
        with pytest.raises(OSError, match="disk died"):
            store.save_corpus(trees, path, format="lpdb0004")
        monkeypatch.setattr(store, "save_labels", real_save)
        assert open(path, "rb").read() == good
        assert not [
            name for name in os.listdir(tmp_path)
            if name.startswith(".corpus.lpdb.tmp-")
        ]

    def test_atomic_write_fsyncs_and_replaces(self, tmp_path):
        path = str(tmp_path / "out.bin")
        with store.atomic_write(path) as handle:
            handle.write(b"payload")
        assert open(path, "rb").read() == b"payload"


class TestStoreInfoSurface:
    def test_info_reports_live_fields(self, corpus_dir):
        with LiveCorpus(corpus_dir) as corpus:
            corpus.append_trees(MORE)
        info = store.corpus_info(corpus_dir)
        assert info["format"] == "LPDB0005"
        assert info["generation"] == 1
        assert info["base_rows"] > 0
        assert info["delta_rows"] > 0
        assert info["wal_records"] == 1
        assert info["rows"] == info["base_rows"] + info["delta_rows"]
        assert info["last_recovery"] is None

    def test_segment_count_includes_delta(self, corpus_dir):
        base = store.corpus_segment_count(corpus_dir)
        with LiveCorpus(corpus_dir) as corpus:
            corpus.append_trees(MORE)
        assert store.corpus_segment_count(corpus_dir) == base + 1

    def test_info_matches_generated_corpus(self, tmp_path):
        trees = list(generate_corpus("wsj", sentences=20, seed=5))
        path = str(tmp_path / "gen.lpdb")
        store.save_corpus(trees, path, format="lpdb0005", segments=2)
        mono = str(tmp_path / "mono.lpdb")
        store.save_corpus(trees, mono, format="lpdb0004", segments=2)
        live_info = store.corpus_info(path)
        mono_info = store.corpus_info(mono)
        assert live_info["rows"] == mono_info["rows"]
        assert live_info["trees"] == mono_info["trees"]
        assert live_info["distinct_names"] == mono_info["distinct_names"]
        assert live_info["top_names"] == mono_info["top_names"]
