"""Golden snapshots of ``explain()`` output.

Pins the logical-IR + physical-plan rendering for a representative query
set in both dialects (and both physical executors), so any optimizer or
compiler change shows up as a readable snapshot diff rather than a silent
plan regression.

Snapshots live in ``tests/plan/snapshots/``; regenerate after an
*intentional* plan change with::

    REPRO_UPDATE_SNAPSHOTS=1 PYTHONPATH=src python -m pytest tests/plan/test_explain_snapshots.py
"""

from __future__ import annotations

import difflib
import os
import pathlib
import re

import pytest

from repro.lpath import LPathEngine
from repro.tree import iter_trees
from repro.xpath import XPathEngine

SNAPSHOT_DIR = pathlib.Path(__file__).parent / "snapshots"
UPDATE = os.environ.get("REPRO_UPDATE_SNAPSHOTS") == "1"

#: A small fixed corpus (never generated, so snapshots cannot drift with
#: the corpus generator).
CORPUS = """
( (S (NP (Det the) (N dog)) (VP (V saw) (NP (NP (Det a) (Adj old) (N man)) (PP (Prep with) (NP (N today)))))) )
( (S (NP I) (VP (V ran))) )
( (S (NP (Det the) (Adj old) (N man)) (VP (V saw) (NP (N dog)) (ADVP today))) )
"""

#: (slug, dialect, query, compile kwargs).
SNAPSHOTS = [
    ("lpath_descendant", "lpath", "//NP", {}),
    ("lpath_child_chain", "lpath", "//NP/N", {}),
    ("lpath_two_step_scan", "lpath", "//S//V", {}),
    ("lpath_two_step_scan_pivot", "lpath", "//S//V", {"pivot": True}),
    ("lpath_immediate_following", "lpath", "//V->NP", {}),
    ("lpath_sibling", "lpath", "//V==>NP", {}),
    ("lpath_parent", "lpath", "//N\\NP", {}),
    ("lpath_ancestor", "lpath", "//Det\\ancestor::S", {}),
    ("lpath_scope_aligned", "lpath", "//VP{//NP$}", {}),
    ("lpath_value_seed", "lpath", "//S[//_[@lex=saw]]", {}),
    ("lpath_negated_exists", "lpath", "//NP[not(//Det) and not(//Adj)]", {}),
    ("lpath_count", "lpath", "//NP[count(//N)>1]", {}),
    ("lpath_name_function", "lpath", "//_[name()=NP]", {}),
    ("lpath_exists_pivot", "lpath", "//S[//NP/N]", {"pivot": True}),
    ("lpath_columnar_scan", "lpath", "//S//NP", {"executor": "columnar"}),
    ("lpath_columnar_subplan", "lpath", "//S[//NP/N]", {"executor": "columnar"}),
    ("lpath_columnar_deep_chain", "lpath", "//S//NP//N", {"executor": "columnar"}),
    ("lpath_columnar_ancestor", "lpath", "//Det\\ancestor::S", {"executor": "columnar"}),
    ("lpath_columnar_wildcard_child", "lpath", "//S/_", {"executor": "columnar"}),
    ("lpath_topk", "lpath", "//S//NP//N", {"limit": 5, "executor": "columnar"}),
    ("lpath_topk_volcano", "lpath", "//S//NP", {"limit": 3}),
    ("lpath_aggregate_count", "lpath", "//S//NP", {"agg": "count"}),
    ("lpath_aggregate_by_name", "lpath", "//S/_",
     {"agg": "count_by_name", "executor": "columnar"}),
    ("lpath_aggregate_by_depth", "lpath", "//NP",
     {"agg": "count_by_depth", "executor": "columnar"}),
    ("xpath_child_chain", "xpath", "//NP/N", {}),
    ("xpath_two_step_scan_pivot", "xpath", "//S//V", {"pivot": True}),
    ("xpath_ancestor", "xpath", "//Det\\ancestor::S", {}),
    ("xpath_columnar_scan", "xpath", "//S//NP", {"executor": "columnar"}),
    ("xpath_columnar_deep_chain", "xpath", "//S//NP//N", {"executor": "columnar"}),
    ("xpath_topk", "xpath", "//S//NP", {"limit": 3, "executor": "columnar"}),
    ("xpath_aggregate_by_name", "xpath", "//NP/_",
     {"agg": "count_by_name", "executor": "columnar"}),
]

#: (slug, dialect, batch entries) for ``explain_batch`` DAG snapshots.
#: The suites deliberately share scan/join prefixes so the reuse
#: annotations are exercised, and mix row, top-k and aggregate members.
BATCH_SNAPSHOTS = [
    ("lpath_batch_dag", "lpath", [
        "//S//NP",
        "//S//VP",
        {"query": "//S//NP//N", "limit": 3},
        {"query": "//S//NP", "agg": "count"},
        {"query": "//NP", "agg": "count_by_name"},
        "//NP/N",
    ]),
    ("xpath_batch_dag", "xpath", [
        "//S//NP",
        {"query": "//S//NP/N", "limit": 2},
        {"query": "//S//NP", "agg": "count_by_depth"},
    ]),
]

#: The merge-join step description names the kernel backend that would
#: run it (``kernel=native`` vs ``kernel=python``) — an environment
#: fact, not a plan fact, so snapshots neutralize it.
_KERNEL_TAG = re.compile(r"kernel=\w+")


@pytest.fixture(scope="module")
def engines():
    trees = list(iter_trees(CORPUS))
    return {
        "lpath": LPathEngine(trees, keep_trees=False),
        "xpath": XPathEngine(trees),
    }


def _snapshot_path(slug: str) -> pathlib.Path:
    return SNAPSHOT_DIR / f"{slug}.txt"


def _assert_matches_snapshot(slug: str, actual: str, subject: str) -> None:
    path = _snapshot_path(slug)
    if UPDATE or not path.exists():
        SNAPSHOT_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
        if not UPDATE:
            pytest.fail(
                f"snapshot {path.name} was missing and has been written; "
                "inspect and commit it"
            )
        return
    expected = path.read_text()
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"snapshots/{path.name}",
                tofile=subject,
                lineterm="",
            )
        )
        pytest.fail(
            f"{subject} drifted from the pinned snapshot:\n{diff}\n"
            "(REPRO_UPDATE_SNAPSHOTS=1 regenerates after an intentional change)"
        )


@pytest.mark.parametrize(
    "slug,dialect,query,kwargs",
    SNAPSHOTS,
    ids=[slug for slug, *_ in SNAPSHOTS],
)
def test_explain_snapshot(engines, slug, dialect, query, kwargs):
    actual = engines[dialect].explain(query, **kwargs) + "\n"
    _assert_matches_snapshot(slug, actual, f"explain() for {query!r}")


@pytest.mark.parametrize(
    "slug,dialect,entries",
    BATCH_SNAPSHOTS,
    ids=[slug for slug, *_ in BATCH_SNAPSHOTS],
)
def test_explain_batch_snapshot(engines, slug, dialect, entries):
    rendered = engines[dialect].explain_batch(entries, executor="columnar")
    actual = _KERNEL_TAG.sub("kernel=<backend>", rendered) + "\n"
    _assert_matches_snapshot(slug, actual, "explain_batch()")


def test_snapshot_list_is_unique():
    slugs = [slug for slug, *_ in SNAPSHOTS]
    slugs += [slug for slug, *_ in BATCH_SNAPSHOTS]
    assert len(slugs) == len(set(slugs))
