"""Golden snapshots of ``explain()`` output.

Pins the logical-IR + physical-plan rendering for a representative query
set in both dialects (and both physical executors), so any optimizer or
compiler change shows up as a readable snapshot diff rather than a silent
plan regression.

Snapshots live in ``tests/plan/snapshots/``; regenerate after an
*intentional* plan change with::

    REPRO_UPDATE_SNAPSHOTS=1 PYTHONPATH=src python -m pytest tests/plan/test_explain_snapshots.py
"""

from __future__ import annotations

import difflib
import os
import pathlib

import pytest

from repro.lpath import LPathEngine
from repro.tree import iter_trees
from repro.xpath import XPathEngine

SNAPSHOT_DIR = pathlib.Path(__file__).parent / "snapshots"
UPDATE = os.environ.get("REPRO_UPDATE_SNAPSHOTS") == "1"

#: A small fixed corpus (never generated, so snapshots cannot drift with
#: the corpus generator).
CORPUS = """
( (S (NP (Det the) (N dog)) (VP (V saw) (NP (NP (Det a) (Adj old) (N man)) (PP (Prep with) (NP (N today)))))) )
( (S (NP I) (VP (V ran))) )
( (S (NP (Det the) (Adj old) (N man)) (VP (V saw) (NP (N dog)) (ADVP today))) )
"""

#: (slug, dialect, query, compile kwargs).
SNAPSHOTS = [
    ("lpath_descendant", "lpath", "//NP", {}),
    ("lpath_child_chain", "lpath", "//NP/N", {}),
    ("lpath_two_step_scan", "lpath", "//S//V", {}),
    ("lpath_two_step_scan_pivot", "lpath", "//S//V", {"pivot": True}),
    ("lpath_immediate_following", "lpath", "//V->NP", {}),
    ("lpath_sibling", "lpath", "//V==>NP", {}),
    ("lpath_parent", "lpath", "//N\\NP", {}),
    ("lpath_ancestor", "lpath", "//Det\\ancestor::S", {}),
    ("lpath_scope_aligned", "lpath", "//VP{//NP$}", {}),
    ("lpath_value_seed", "lpath", "//S[//_[@lex=saw]]", {}),
    ("lpath_negated_exists", "lpath", "//NP[not(//Det) and not(//Adj)]", {}),
    ("lpath_count", "lpath", "//NP[count(//N)>1]", {}),
    ("lpath_name_function", "lpath", "//_[name()=NP]", {}),
    ("lpath_exists_pivot", "lpath", "//S[//NP/N]", {"pivot": True}),
    ("lpath_columnar_scan", "lpath", "//S//NP", {"executor": "columnar"}),
    ("lpath_columnar_subplan", "lpath", "//S[//NP/N]", {"executor": "columnar"}),
    ("lpath_columnar_deep_chain", "lpath", "//S//NP//N", {"executor": "columnar"}),
    ("lpath_columnar_ancestor", "lpath", "//Det\\ancestor::S", {"executor": "columnar"}),
    ("lpath_columnar_wildcard_child", "lpath", "//S/_", {"executor": "columnar"}),
    ("xpath_child_chain", "xpath", "//NP/N", {}),
    ("xpath_two_step_scan_pivot", "xpath", "//S//V", {"pivot": True}),
    ("xpath_ancestor", "xpath", "//Det\\ancestor::S", {}),
    ("xpath_columnar_scan", "xpath", "//S//NP", {"executor": "columnar"}),
    ("xpath_columnar_deep_chain", "xpath", "//S//NP//N", {"executor": "columnar"}),
]


@pytest.fixture(scope="module")
def engines():
    trees = list(iter_trees(CORPUS))
    return {
        "lpath": LPathEngine(trees, keep_trees=False),
        "xpath": XPathEngine(trees),
    }


def _snapshot_path(slug: str) -> pathlib.Path:
    return SNAPSHOT_DIR / f"{slug}.txt"


@pytest.mark.parametrize(
    "slug,dialect,query,kwargs",
    SNAPSHOTS,
    ids=[slug for slug, *_ in SNAPSHOTS],
)
def test_explain_snapshot(engines, slug, dialect, query, kwargs):
    actual = engines[dialect].explain(query, **kwargs) + "\n"
    path = _snapshot_path(slug)
    if UPDATE or not path.exists():
        SNAPSHOT_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
        if not UPDATE:
            pytest.fail(
                f"snapshot {path.name} was missing and has been written; "
                "inspect and commit it"
            )
        return
    expected = path.read_text()
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"snapshots/{path.name}",
                tofile="explain()",
                lineterm="",
            )
        )
        pytest.fail(
            f"explain() drifted from the pinned snapshot for {query!r}:\n{diff}\n"
            "(REPRO_UPDATE_SNAPSHOTS=1 regenerates after an intentional change)"
        )


def test_snapshot_list_is_unique():
    slugs = [slug for slug, *_ in SNAPSHOTS]
    assert len(slugs) == len(set(slugs))
