"""Tests for the plan cache: unit behavior plus engine integration."""

import pytest

from repro.lpath import LPathEngine
from repro.plan.cache import PlanCache
from repro.tree import figure1_tree
from repro.xpath import XPathEngine


class TestPlanCacheUnit:
    def test_hit_miss_accounting(self):
        cache = PlanCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats == {
            "hits": 1, "misses": 1, "evictions": 0, "size": 1, "maxsize": 4,
        }

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refresh "a"
        cache.put("c", 3)               # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.stats["evictions"] == 1

    def test_clear_invalidates_everything(self):
        cache = PlanCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats == {
            "hits": 0, "misses": 0, "evictions": 0, "size": 0, "maxsize": 128,
        }
        assert cache.get("a") is None

    def test_zero_capacity_disables_caching(self):
        cache = PlanCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=-1)

    def test_concurrent_access_never_tears(self):
        """Hammer one small cache from many threads: the LRU reorder,
        eviction sweep and counters all run under the lock, so the totals
        must reconcile exactly and no operation may raise (an unlocked
        OrderedDict dies with RuntimeError/KeyError under this load)."""
        import threading

        cache = PlanCache(maxsize=8)
        threads, errors = 8, []
        rounds = 300
        barrier = threading.Barrier(threads)

        def worker(seed: int) -> None:
            try:
                barrier.wait()
                for step in range(rounds):
                    key = (seed * step) % 16
                    if cache.get(key) is None:
                        cache.put(key, key)
                    stats = cache.stats
                    assert stats["size"] <= stats["maxsize"]
                    assert stats["hits"] + stats["misses"] >= stats["size"]
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        pool = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(1, threads + 1)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors
        stats = cache.stats
        assert stats["hits"] + stats["misses"] == threads * rounds
        assert len(cache) <= 8


@pytest.fixture()
def engine():
    return LPathEngine([figure1_tree()])


class TestEngineCaching:
    def test_repeated_compiles_reuse_the_plan(self, engine):
        first = engine.compile("//NP")
        second = engine.compile("//NP")
        assert first is second
        assert engine.plan_cache.hits == 1

    def test_cached_plan_is_reexecutable(self, engine):
        first = engine.query("//NP")
        assert engine.query("//NP") == first
        assert engine.query("//NP") == first

    def test_pivot_flag_keys_separately(self, engine):
        plain = engine.compile("//S//V")
        pivoted = engine.compile("//S//V", pivot=True)
        assert plain is not pivoted
        assert engine.compile("//S//V", pivot=True) is pivoted

    def test_executor_keys_separately(self, engine):
        """A warm hit must never return a plan compiled for the other
        executor."""
        volcano = engine.compile("//S//V")
        columnar = engine.compile("//S//V", executor="columnar")
        assert volcano is not columnar
        assert engine.compile("//S//V", executor="columnar") is columnar
        assert engine.compile("//S//V", executor="volcano") is volcano
        from repro.columnar import ColumnarPlan
        from repro.relational.operators import Operator

        assert isinstance(columnar.plan, ColumnarPlan)
        assert isinstance(volcano.plan, Operator)

    def test_executor_and_pivot_key_independently(self, engine):
        plans = {
            (pivot, executor): engine.compile("//S//V", pivot=pivot, executor=executor)
            for pivot in (False, True)
            for executor in ("volcano", "columnar")
        }
        assert len(set(map(id, plans.values()))) == 4
        for key, plan in plans.items():
            assert engine.compile("//S//V", pivot=key[0], executor=key[1]) is plan

    def test_engine_default_executor_drives_the_key(self):
        from repro.tree import figure1_tree

        engine = LPathEngine([figure1_tree()], executor="columnar")
        default = engine.compile("//NP")
        assert engine.compile("//NP", executor="columnar") is default
        assert engine.compile("//NP", executor="volcano") is not default

    def test_ast_queries_share_the_text_key(self, engine):
        from repro.lpath import parse

        path = parse("//NP")
        compiled = engine.compile(path)
        assert engine.compile(str(path)) is compiled

    def test_clear_invalidates(self, engine):
        first = engine.compile("//NP")
        engine.plan_cache.clear()
        assert engine.compile("//NP") is not first

    def test_close_drops_cached_plans(self):
        with LPathEngine([figure1_tree()]) as engine:
            engine.query("//NP")
            assert len(engine.plan_cache) > 0
        assert len(engine.plan_cache) == 0

    def test_eviction_bounded_by_cache_size(self):
        engine = LPathEngine([figure1_tree()], plan_cache_size=2)
        for query in ("//NP", "//VP", "//S", "//V"):
            engine.query(query)
        assert len(engine.plan_cache) == 2

    def test_compile_errors_are_not_cached(self, engine):
        from repro.lpath import LPathCompileError

        with pytest.raises(LPathCompileError):
            engine.compile("//NP[position()=2]")
        assert len(engine.plan_cache) == 0

    def test_xpath_engine_caches_too(self):
        engine = XPathEngine([figure1_tree()])
        first = engine.compile("//NP/N")
        assert engine.compile("//NP/N") is first
        assert engine.query("//NP/N") == engine.query("//NP/N")
