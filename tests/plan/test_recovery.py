"""Process-pool crash recovery (:mod:`repro.plan.segmented`).

A worker SIGKILLed mid-query or already dead at submit time surfaces as
``BrokenProcessPool`` inside the executor; none of that may reach a
caller.  The pool respawns and retries the fan-out boundedly, degrades
to in-process thread execution when the process path keeps dying, and —
with degradation disabled — raises a classified, transient
:class:`~repro.lpath.errors.ExecutorRecoveryError` instead of a raw
pool traceback.  Results after any recovery are byte-identical to a
fault-free run."""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro import store
from repro.corpus import generate_corpus
from repro.lpath import LPathEngine
from repro.lpath.errors import ExecutorRecoveryError, LPathError
from repro.plan.segmented import (
    DEFAULT_PROCESS_RETRIES,
    PROCESS_RETRIES_ENV,
    process_retries,
)

QUERY = "//VP//NP"


@pytest.fixture(scope="module")
def mmap_store(tmp_path_factory) -> str:
    trees = list(generate_corpus("wsj", sentences=30, seed=3))
    path = tmp_path_factory.mktemp("recovery") / "corpus.lpdb"
    store.save_corpus(trees, str(path), segments=2, format="lpdb0004")
    return str(path)


@pytest.fixture(scope="module")
def expected(mmap_store):
    with LPathEngine.open(mmap_store) as engine:
        return engine.query(QUERY)


def _worker_pids(pool) -> list[int]:
    executor = pool()
    assert executor is not None
    return list(executor._processes)


class TestRespawn:
    def test_kill_at_submit_time_respawns_and_answers(
        self, mmap_store, expected
    ):
        with LPathEngine.open(
            mmap_store, workers=2, mode="process"
        ) as engine:
            assert engine.query(QUERY) == expected  # warm the pool
            for pid in _worker_pids(engine._pool):
                os.kill(pid, signal.SIGKILL)
            # The next submit finds every worker dead: respawn + retry,
            # same rows, still on the process path.
            assert engine.query("//NP") == [
                row for row in _plain(mmap_store, "//NP")
            ]
            stats = engine._pool.stats()
            assert stats["respawns"] >= 1
            assert stats["mode"] == "process"
            assert stats["degraded"] is False

    def test_kill_mid_query_recovers(self, mmap_store, expected, monkeypatch):
        # segment_slow holds every worker in the segment for 50ms, so a
        # kill 10ms after submit reliably lands mid-query.
        monkeypatch.setenv("REPRO_FAULTS", "segment_slow:1.0:3")
        with LPathEngine.open(
            mmap_store, workers=2, mode="process"
        ) as engine:
            outcome = {}

            def run():
                outcome["rows"] = engine.query(QUERY)

            runner = threading.Thread(target=run)
            runner.start()
            deadline = time.monotonic() + 2.0
            while engine._pool._executor is None:
                assert time.monotonic() < deadline
                time.sleep(0.001)
            time.sleep(0.01)
            for pid in _worker_pids(engine._pool):
                os.kill(pid, signal.SIGKILL)
            runner.join(timeout=30.0)
            assert not runner.is_alive()
            assert outcome["rows"] == expected
            assert engine._pool.stats()["respawns"] >= 1


class TestDegradation:
    def test_unkillable_workers_degrade_to_threads(
        self, mmap_store, expected, monkeypatch
    ):
        # Every worker kills itself on entry: the retry budget burns
        # out and the pool flips to in-process threads — byte-identical
        # rows, no exception.
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:1.0:7")
        with LPathEngine.open(
            mmap_store, workers=2, mode="process"
        ) as engine:
            assert engine.query(QUERY) == expected
            stats = engine._pool.stats()
            assert stats["degraded"] is True
            assert stats["mode"] == "thread"
            assert stats["respawns"] == 1 + DEFAULT_PROCESS_RETRIES
            # Degradation is sticky: later queries stay in-process and
            # never touch the (still lethal) worker path.
            assert engine.query("//NP") == _plain(mmap_store, "//NP")
            assert engine._pool.stats()["respawns"] == stats["respawns"]

    def test_degradation_disabled_raises_classified_error(
        self, mmap_store, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:1.0:7")
        with LPathEngine.open(
            mmap_store, workers=2, mode="process"
        ) as engine:
            engine._pool.allow_degrade = False
            with pytest.raises(ExecutorRecoveryError) as failure:
                engine.query(QUERY)
            # Classified and transient — and clean: no executor guts.
            assert isinstance(failure.value, LPathError)
            assert failure.value.transient is True
            message = str(failure.value)
            assert "safe to retry" in message
            assert "BrokenProcessPool" not in message
            assert "Traceback" not in message

    def test_retry_budget_is_bounded_by_env(self, mmap_store, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:1.0:7")
        monkeypatch.setenv(PROCESS_RETRIES_ENV, "0")
        with LPathEngine.open(
            mmap_store, workers=2, mode="process"
        ) as engine:
            engine.query(QUERY)
            stats = engine._pool.stats()
            assert stats["respawns"] == 1  # one attempt, no retries
            assert stats["degraded"] is True


class TestRetryKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(PROCESS_RETRIES_ENV, raising=False)
        assert process_retries() == DEFAULT_PROCESS_RETRIES

    def test_override(self, monkeypatch):
        monkeypatch.setenv(PROCESS_RETRIES_ENV, "5")
        assert process_retries() == 5

    @pytest.mark.parametrize("raw", ["-1", "lots", "1.5"])
    def test_invalid_values_raise(self, raw, monkeypatch):
        monkeypatch.setenv(PROCESS_RETRIES_ENV, raw)
        with pytest.raises(ValueError):
            process_retries()


class TestSlowSegments:
    def test_segment_slow_never_changes_results(
        self, mmap_store, expected, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "segment_slow:1.0:3")
        with LPathEngine.open(mmap_store, workers=2) as engine:
            assert engine.query(QUERY) == expected


def _plain(path: str, query: str):
    with LPathEngine.open(path) as engine:
        return engine.query(query)
