"""Tests for the shared logical IR, the optimizer passes, and rendering."""

import pytest

from repro.corpus import generate_corpus
from repro.lpath import LPathEngine
from repro.plan.ir import (
    Cmp,
    Col,
    Const,
    Distinct,
    ExistsPred,
    Filter,
    IndexProbe,
    Join,
    Scan,
    TableScan,
    linearize,
    pred_slots,
    render,
)
from repro.tree import figure1_tree
from repro.xpath import XPathEngine


@pytest.fixture(scope="module")
def engines():
    trees = [figure1_tree()]
    return LPathEngine(trees), XPathEngine(trees)


@pytest.fixture(scope="module")
def wsj_engines():
    corpus = generate_corpus("wsj", sentences=300, seed=5)
    return LPathEngine(corpus, keep_trees=False), XPathEngine(corpus)


class TestUniformIR:
    def test_both_dialects_render_the_same_node_shapes(self, engines):
        lpath_engine, xpath_engine = engines
        for query in ("//NP", "//S//NP", "//NP/N", "//S[//NP/Det]"):
            lpath_ir = render(lpath_engine.compile(query).logical)
            xpath_ir = render(xpath_engine.compile(query).logical)
            for text in (lpath_ir, xpath_ir):
                assert "Distinct[" in text
                assert "Scan(" in text
            # Same logical operators in the same order, scheme details aside.
            shape = lambda text: [line.strip().split("(")[0] for line in text.splitlines()]
            assert shape(lpath_ir) == shape(xpath_ir)

    def test_explain_contains_logical_and_physical_sections(self, engines):
        lpath_engine, xpath_engine = engines
        for engine in engines:
            text = engine.explain("//S//NP")
            assert "logical plan:" in text
            assert "physical plan:" in text

    def test_linearize_and_slots(self, engines):
        lpath_engine, _ = engines
        logical = lpath_engine.compile("//S//NP/N").logical
        chain = linearize(logical)
        assert isinstance(chain[0], Scan)
        joins = [node for node in chain if isinstance(node, Join)]
        assert [join.slot for join in joins] == [1, 2]
        assert isinstance(chain[-1], Distinct)

    def test_pred_slots(self):
        assert pred_slots(Cmp(Col(1, 2), "<", Col(0, 3))) == {0, 1}
        assert pred_slots(Cmp(Col(2, 6), "=", Const("NP"))) == {2}


class TestPushdown:
    def test_name_predicate_upgrades_table_scan(self, engines):
        lpath_engine, _ = engines
        compiled = lpath_engine.compile("//_[name()=NP]")
        scan = linearize(compiled.logical)[0]
        assert isinstance(scan.access, IndexProbe)
        assert not isinstance(scan.access, TableScan)
        assert "named NP" in scan.label
        assert lpath_engine.query("//_[name()=NP]") == lpath_engine.query("//NP")

    def test_name_predicate_upgrades_wildcard_join_probe(self, engines):
        lpath_engine, _ = engines
        compiled = lpath_engine.compile("//NP/_[name()=N]")
        join = [n for n in linearize(compiled.logical) if isinstance(n, Join)][0]
        assert isinstance(join.access, IndexProbe)
        assert join.access.index != "idx_tid_id"
        assert join.access.eq[0] == Const("N")
        assert lpath_engine.query("//NP/_[name()=N]") == lpath_engine.query("//NP/N")

    def test_first_step_predicates_sink_into_scan(self, engines):
        lpath_engine, _ = engines
        compiled = lpath_engine.compile("//NP[//Det]")
        chain = linearize(compiled.logical)
        # The filter merged into the Scan: no standalone Filter remains.
        assert not any(isinstance(node, Filter) for node in chain)
        scan = chain[0]
        assert any(isinstance(c, ExistsPred) for c in scan.conditions)


class TestJoinReordering:
    def test_xpath_engine_pivots_like_lpath(self, wsj_engines):
        lpath_engine, xpath_engine = wsj_engines
        query = "//S//NP//WHPP"
        expected = lpath_engine.query(query)
        assert xpath_engine.query(query) == expected
        assert xpath_engine.query(query, pivot=True) == expected
        description = xpath_engine.compile(query, pivot=True).description
        assert "pivot" in description

    def test_exists_subplan_pivots_to_rarest_step(self, wsj_engines):
        lpath_engine, _ = wsj_engines
        query = "//S[//NP//WHPP]"
        compiled = lpath_engine.compile(query, pivot=True)
        scan = linearize(compiled.logical)[0]
        exists = [c for c in scan.conditions if isinstance(c, ExistsPred)]
        assert exists, "exists predicate expected on the scan"
        subplan_joins = [
            node for node in linearize(exists[0].subplan) if isinstance(node, Join)
        ]
        # The pivoted subplan seeds at WHPP (the rare tag), then walks up.
        assert "WHPP" in subplan_joins[0].label
        assert subplan_joins[1].axis.value.startswith("ancestor")
        assert lpath_engine.query(query, pivot=True) == lpath_engine.query(query)

    def test_subplan_pivot_preserves_results_across_queries(self, wsj_engines):
        lpath_engine, xpath_engine = wsj_engines
        queries = [
            "//S[//NP//WHPP]",
            "//S[//VP/VB]",
            "//NP[not(//NP//WHPP)]",
            "//S[//NP//WHPP and //VP]",
            "//S[count(//NP//WHPP)>0]",
        ]
        for query in queries:
            assert lpath_engine.query(query, pivot=True) == lpath_engine.query(
                query
            ), query
        for query in queries:
            assert xpath_engine.query(query, pivot=True) == xpath_engine.query(
                query
            ), query

    def test_value_and_count_subplans_are_not_reordered(self, wsj_engines):
        lpath_engine, _ = wsj_engines
        # count()/value comparisons need the original result slot; ensure
        # they still agree under pivot (and are simply left alone).
        for query in ("//S[count(//NP//WHPP)=0]", "//NN[.!=xyzzy]"):
            assert lpath_engine.query(query, pivot=True) == lpath_engine.query(
                query
            ), query


class TestConditionOrdering:
    def test_cheap_conditions_run_before_subplans(self, engines):
        lpath_engine, _ = engines
        compiled = lpath_engine.compile("//S/NP[//Det]")
        join = [n for n in linearize(compiled.logical) if isinstance(n, Join)][0]
        kinds = [isinstance(c, ExistsPred) for c in join.conditions]
        # All exists predicates come after the plain comparisons.
        assert kinds == sorted(kinds)
