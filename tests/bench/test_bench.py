"""Tests for the benchmark support package (queries, harness, report)."""

import math

import pytest

from repro.baselines.corpussearch import parse_query
from repro.baselines.tgrep2 import parse_pattern
from repro.bench import (
    PAPER_RESULT_SIZES,
    QUERY_SET,
    by_id,
    measure,
    paper_timing,
    run_suite,
    unsupported,
    xpath_queries,
)
from repro.bench.report import (
    log_bar_chart,
    scaling_table,
    speedup_summary,
    timing_table,
)
from repro.lpath import parse


class TestQuerySet:
    def test_23_queries_numbered_1_to_23(self):
        assert [q.qid for q in QUERY_SET] == list(range(1, 24))

    def test_all_lpath_queries_parse(self):
        for query in QUERY_SET:
            parse(query.lpath)

    def test_all_tgrep2_translations_parse(self):
        for query in QUERY_SET:
            parse_pattern(query.tgrep2)

    def test_all_corpussearch_translations_parse(self):
        for query in QUERY_SET:
            parse_query(query.corpussearch)

    def test_eleven_xpath_queries(self):
        assert len(xpath_queries()) == 11
        assert [q.qid for q in xpath_queries()] == [1, 8, 9] + list(range(12, 20))

    def test_paper_result_sizes_complete(self):
        assert len(PAPER_RESULT_SIZES["WSJ"]) == 23
        assert len(PAPER_RESULT_SIZES["SWB"]) == 23

    def test_by_id(self):
        assert by_id(6).lpath == "//VP{//NP$}"
        with pytest.raises(KeyError):
            by_id(99)

    def test_queries_match_figure6c_text(self):
        assert by_id(1).lpath == "//S[//_[@lex=saw]]"
        assert by_id(7).lpath == "//VP[{//^VB->NP->PP$}]"
        assert by_id(10).lpath == "//NP[->PP[//IN[@lex=of]]=>VP]"
        assert by_id(23).lpath == "//VP=>VP"


class TestHarness:
    def test_paper_timing_trims_extremes(self):
        calls = iter([0, 0, 0, 0, 0, 0, 0])

        def run():
            next(calls)
            return 42

        seconds, result = paper_timing(run, repeats=7)
        assert result == 42
        assert seconds >= 0

    def test_measure(self):
        measurement = measure("sys", 3, lambda: 7, repeats=3)
        assert measurement.system == "sys"
        assert measurement.qid == 3
        assert measurement.result_size == 7
        assert measurement.supported

    def test_unsupported(self):
        measurement = unsupported("sys", 4)
        assert measurement.unsupported
        assert math.isnan(measurement.seconds)

    def test_run_suite(self):
        systems = {
            "a": lambda qid: (lambda: qid * 10),
            "b": lambda qid: None if qid == 2 else (lambda: qid),
        }
        measurements = run_suite(systems, [1, 2], repeats=1)
        assert len(measurements) == 4
        b2 = [m for m in measurements if m.system == "b" and m.qid == 2][0]
        assert b2.unsupported


class TestReport:
    def make_measurements(self):
        return [
            measure("fast", 1, lambda: 5, repeats=1),
            measure("slow", 1, lambda: sum(range(200_000)), repeats=1),
            measure("fast", 2, lambda: 1, repeats=1),
            unsupported("slow", 2),
        ]

    def test_timing_table(self):
        text = timing_table(self.make_measurements(), "T")
        assert "Q1" in text and "Q2" in text
        assert "n/a" in text

    def test_log_bar_chart(self):
        text = log_bar_chart(self.make_measurements(), "Bars")
        assert "#" in text
        assert "n/a" in text

    def test_speedup_summary(self):
        text = speedup_summary(self.make_measurements(), "slow", "fast")
        assert "speedup" in text
        assert "1 queries" in text  # only Q1 comparable

    def test_speedup_no_overlap(self):
        text = speedup_summary([unsupported("a", 1), unsupported("b", 1)], "a", "b")
        assert "no comparable" in text

    def test_scaling_table(self):
        series = {"sys": [(0.5, 0.1), (1.0, 0.2)], "other": [(1.0, 0.4)]}
        text = scaling_table(series, "Scale")
        assert "0.5x" in text and "1x" in text
        assert "n/a" in text


class TestDatasets:
    def test_corpus_cached_and_deterministic(self):
        from repro.bench import datasets

        first = datasets.corpus("wsj", sentences=20)
        second = datasets.corpus("wsj", sentences=20)
        assert first is second  # lru_cache
        assert len(first) == 20

    def test_scaled_corpus(self):
        from repro.bench import datasets

        datasets.clear_caches()
        try:
            import os

            os.environ["REPRO_BENCH_SENTENCES"] = "20"
            scaled = datasets.scaled_corpus("wsj", 2.0)
            assert len(scaled) == 40
        finally:
            del os.environ["REPRO_BENCH_SENTENCES"]
            datasets.clear_caches()
