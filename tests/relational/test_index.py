"""Tests for sorted composite-key indexes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import Schema, SchemaError, SortedIndex
from repro.relational.schema import encode_component, encode_key


SCHEMA = Schema(("a", "b", "c"))


def make_index(rows, columns=("a", "b")):
    index = SortedIndex("idx", SCHEMA, columns)
    index.build(rows)
    return index


class TestEncoding:
    def test_none_sorts_first(self):
        assert encode_component(None) < encode_component(-10)
        assert encode_component(None) < encode_component("")

    def test_ints_before_strings(self):
        assert encode_component(10 ** 9) < encode_component("a")

    def test_key_ordering_matches_per_component(self):
        assert encode_key((1, "x")) < encode_key((1, "y"))
        assert encode_key((None, "z")) < encode_key((0, "a"))

    def test_unsupported_type_rejected(self):
        with pytest.raises(SchemaError):
            encode_component(object())


class TestScanEq:
    def test_exact_match(self):
        index = make_index([(1, "x", 10), (1, "y", 20), (2, "x", 30)])
        assert list(index.scan_eq((1, "x"))) == [(1, "x", 10)]

    def test_prefix_match(self):
        index = make_index([(1, "x", 10), (1, "y", 20), (2, "x", 30)])
        assert sorted(index.scan_eq((1,))) == [(1, "x", 10), (1, "y", 20)]

    def test_empty_prefix_scans_all(self):
        rows = [(2, "b", 1), (1, "a", 2)]
        index = make_index(rows)
        assert list(index.scan_eq(())) == sorted(rows)

    def test_no_match(self):
        index = make_index([(1, "x", 10)])
        assert list(index.scan_eq((9,))) == []

    def test_prefix_too_long_rejected(self):
        index = make_index([(1, "x", 10)])
        with pytest.raises(SchemaError):
            list(index.scan_eq((1, "x", 10)))

    def test_none_values_indexable(self):
        index = make_index([(1, None, 10), (1, "x", 20)])
        assert list(index.scan_eq((1, None))) == [(1, None, 10)]


class TestScanRange:
    def setup_method(self):
        self.rows = [(1, i, i * 10) for i in range(10)]
        self.index = make_index(self.rows, columns=("a", "b"))

    def test_closed_range(self):
        got = [row[1] for row in self.index.scan_range((1,), low=3, high=6)]
        assert got == [3, 4, 5, 6]

    def test_open_low(self):
        got = [row[1] for row in self.index.scan_range((1,), low=3, include_low=False, high=6)]
        assert got == [4, 5, 6]

    def test_open_high(self):
        got = [row[1] for row in self.index.scan_range((1,), low=3, high=6, include_high=False)]
        assert got == [3, 4, 5]

    def test_unbounded_low(self):
        got = [row[1] for row in self.index.scan_range((1,), high=2)]
        assert got == [0, 1, 2]

    def test_unbounded_high(self):
        got = [row[1] for row in self.index.scan_range((1,), low=8)]
        assert got == [8, 9]

    def test_unbounded_both(self):
        assert len(list(self.index.scan_range((1,)))) == 10

    def test_point_range(self):
        got = [row[1] for row in self.index.scan_range((1,), low=5, high=5)]
        assert got == [5]

    def test_empty_range(self):
        assert list(self.index.scan_range((1,), low=7, high=3)) == []

    def test_wrong_prefix_empty(self):
        assert list(self.index.scan_range((2,), low=0, high=9)) == []

    def test_first(self):
        assert self.index.first((1,)) == (1, 0, 0)
        assert self.index.first((5,)) is None


class TestRangeProperties:
    @given(
        st.lists(st.tuples(st.integers(0, 5), st.integers(0, 20), st.integers(0, 3)), max_size=60),
        st.integers(0, 5),
        st.integers(0, 20),
        st.integers(0, 20),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_filter(self, rows, a, low, high, include_low, include_high):
        index = make_index(rows, columns=("a", "b", "c"))
        got = sorted(index.scan_range((a,), low=low, high=high,
                                      include_low=include_low, include_high=include_high))
        low_ok = (lambda b: b >= low) if include_low else (lambda b: b > low)
        high_ok = (lambda b: b <= high) if include_high else (lambda b: b < high)
        expected = sorted(r for r in rows if r[0] == a and low_ok(r[1]) and high_ok(r[1]))
        assert got == expected

    @given(st.lists(st.tuples(st.integers(0, 3), st.text(max_size=2), st.integers(0, 3)), max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_scan_eq_matches_naive_filter(self, rows):
        index = make_index(rows, columns=("b", "a"))
        for _, b, _ in rows[:5]:
            got = sorted(index.scan_eq((b,)))
            assert got == sorted(r for r in rows if r[1] == b)
