"""Tests for physical operators."""

from repro.relational import operators as op
from repro.relational.expression import And, ColCol, ColConst, Const, Func, Not, Or


def rows_source(rows, description="rows"):
    return op.Source(lambda: rows, description)


R = [(1, "a"), (2, "b"), (3, "a"), (4, "c")]
S = [(1, 10), (1, 20), (3, 30)]


class TestExpressions:
    def test_col_const(self):
        predicate = ColConst(1, "=", "a")
        assert predicate((1, "a")) and not predicate((2, "b"))
        assert "col[1]" in predicate.explain()

    def test_col_col(self):
        predicate = ColCol(0, "<", 2)
        assert predicate((1, "x", 5)) and not predicate((5, "x", 1))

    def test_boolean_combinators(self):
        both = And([ColConst(0, ">", 1), ColConst(0, "<", 4)])
        assert both((2,)) and not both((4,))
        either = Or([ColConst(0, "=", 1), ColConst(0, "=", 4)])
        assert either((4,)) and not either((2,))
        assert Not(Const(False))(())
        assert And([]).explain() == "true"
        assert Or([]).explain() == "false"

    def test_func(self):
        predicate = Func(lambda row: row[0] % 2 == 0, "even")
        assert predicate((2,)) and not predicate((3,))
        assert predicate.explain() == "even"


class TestBasicOperators:
    def test_source(self):
        assert list(rows_source(R)) == R

    def test_select(self):
        plan = op.Select(rows_source(R), ColConst(1, "=", "a"))
        assert list(plan) == [(1, "a"), (3, "a")]

    def test_project(self):
        plan = op.Project(rows_source(R), (1,))
        assert list(plan) == [("a",), ("b",), ("a",), ("c",)]

    def test_distinct_full_row(self):
        plan = op.Distinct(rows_source([(1,), (1,), (2,)]))
        assert list(plan) == [(1,), (2,)]

    def test_distinct_on_positions_projects(self):
        plan = op.Distinct(rows_source(R), positions=(1,))
        assert list(plan) == [("a",), ("b",), ("c",)]

    def test_sort(self):
        plan = op.Sort(rows_source(R), (1, 0))
        assert [row[1] for row in plan] == ["a", "a", "b", "c"]

    def test_sort_reverse(self):
        plan = op.Sort(rows_source(R), (0,), reverse=True)
        assert [row[0] for row in plan] == [4, 3, 2, 1]

    def test_limit(self):
        assert len(list(op.Limit(rows_source(R), 2))) == 2
        assert list(op.Limit(rows_source(R), 0)) == []
        assert len(list(op.Limit(rows_source(R), 99))) == 4

    def test_count(self):
        assert op.count(rows_source(R)) == 4


class TestJoins:
    def test_nested_loop_join(self):
        plan = op.NestedLoopJoin(
            rows_source(R), rows_source(S), ColCol(0, "=", 2)
        )
        got = list(plan)
        assert ((1, "a", 1, 10)) in got and ((3, "a", 3, 30)) in got
        assert len(got) == 3

    def test_hash_join_matches_nested_loop(self):
        nested = list(op.NestedLoopJoin(rows_source(R), rows_source(S), ColCol(0, "=", 2)))
        hashed = list(op.HashJoin(rows_source(R), rows_source(S), (0,), (0,)))
        assert sorted(nested) == sorted(hashed)

    def test_hash_join_residual(self):
        plan = op.HashJoin(
            rows_source(R), rows_source(S), (0,), (0,),
            residual=ColConst(3, ">", 10),
        )
        assert list(plan) == [(1, "a", 1, 20), (3, "a", 3, 30)]

    def test_index_nested_loop_join(self):
        def probe(outer_row):
            return [s for s in S if s[0] == outer_row[0]]

        plan = op.IndexNestedLoopJoin(rows_source(R), probe, "probe S by key")
        assert sorted(plan) == sorted(
            [(1, "a", 1, 10), (1, "a", 1, 20), (3, "a", 3, 30)]
        )

    def test_index_nested_loop_residual(self):
        plan = op.IndexNestedLoopJoin(
            rows_source(R),
            lambda outer: [s for s in S if s[0] == outer[0]],
            "probe",
            residual=ColConst(3, "=", 10),
        )
        assert list(plan) == [(1, "a", 1, 10)]

    def test_semi_join(self):
        plan = op.SemiJoin(
            rows_source(R), lambda outer: [s for s in S if s[0] == outer[0]], "exists"
        )
        assert list(plan) == [(1, "a"), (3, "a")]

    def test_anti_join(self):
        plan = op.AntiJoin(
            rows_source(R), lambda outer: [s for s in S if s[0] == outer[0]], "not exists"
        )
        assert list(plan) == [(2, "b"), (4, "c")]


class TestExplain:
    def test_plans_explain_without_error(self):
        plan = op.Distinct(
            op.Select(
                op.IndexNestedLoopJoin(
                    rows_source(R, "R"), lambda _: S, "S by key",
                    residual=Const(True),
                ),
                ColConst(0, ">", 0),
            ),
            positions=(0,),
        )
        text = plan.explain()
        for fragment in ("Distinct", "Select", "IndexNestedLoopJoin", "Source(R)"):
            assert fragment in text
