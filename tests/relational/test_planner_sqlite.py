"""Tests for access-path selection and the SQLite cross-check backend."""

from repro.labeling import label_tree
from repro.relational import (
    Database,
    SQLiteBackend,
    choose_access_path,
    create_node_table,
    quote_identifier,
)
from repro.tree import figure1_tree


def node_table():
    db = Database()
    return create_node_table(db, label_tree(figure1_tree()))


class TestPlanner:
    def test_name_tid_range_left_uses_clustered(self):
        table = node_table()
        path = choose_access_path(table, ["name", "tid"], range_column="left")
        assert path is not None
        assert path.index is table.clustered
        assert path.eq_columns == ("name", "tid")
        assert path.range_column == "left"

    def test_value_lookup_uses_value_index(self):
        table = node_table()
        path = choose_access_path(table, ["value", "tid"])
        assert path is not None
        assert path.index.name in ("idx_value_tid_id", "idx_tid_value_id")
        assert set(path.eq_columns) == {"value", "tid"}

    def test_value_only_lookup_uses_value_first_index(self):
        table = node_table()
        path = choose_access_path(table, ["value"])
        assert path is not None
        assert path.index.name == "idx_value_tid_id"

    def test_id_lookup_uses_tid_id_index(self):
        table = node_table()
        path = choose_access_path(table, ["tid", "id"])
        assert path is not None
        assert path.index.name == "idx_tid_id"

    def test_unhelpful_constraints_yield_none(self):
        table = node_table()
        assert choose_access_path(table, ["depth"]) is None

    def test_eq_only_prefix_beats_shorter_with_range(self):
        table = node_table()
        # name+tid+left eq all usable on clustered index
        path = choose_access_path(table, ["name", "tid", "left"])
        assert path is not None
        assert path.eq_columns == ("name", "tid", "left")

    def test_explain(self):
        table = node_table()
        path = choose_access_path(table, ["name", "tid"], range_column="left")
        text = path.explain()
        assert "clustered" in text and "range=left" in text


class TestSQLiteBackend:
    def test_load_and_count(self):
        rows = label_tree(figure1_tree())
        with SQLiteBackend(rows) as backend:
            assert backend.count('SELECT * FROM "node"') == len(rows)

    def test_quoted_keyword_columns(self):
        rows = label_tree(figure1_tree())
        with SQLiteBackend(rows) as backend:
            got = backend.execute(
                'SELECT "left", "right" FROM "node" WHERE "name" = ?', ("S",)
            )
            assert got == [(1, 10)]

    def test_join_on_labels(self):
        rows = label_tree(figure1_tree())
        with SQLiteBackend(rows) as backend:
            # NPs immediately following a V: x.left == v.right (Table 2).
            got = backend.execute(
                'SELECT DISTINCT x."id" FROM "node" v, "node" x '
                'WHERE v."name" = \'V\' AND x."name" = \'NP\' '
                'AND x."tid" = v."tid" AND x."left" = v."right"'
            )
            assert len(got) == 2

    def test_quote_identifier_escapes(self):
        assert quote_identifier('a"b') == '"a""b"'
