"""Tests for tables, databases, and the node-table physical design."""

import pytest

from repro.labeling import label_tree
from repro.relational import (
    Database,
    NODE_COLUMNS,
    SchemaError,
    create_node_table,
)
from repro.relational.schema import Schema
from repro.tree import figure1_tree


class TestTable:
    def make(self):
        db = Database()
        table = db.create_table("t", ("a", "b"), clustered_key=("a",))
        table.load([(3, "x"), (1, "y"), (2, "z")])
        return table

    def test_load_sorts_by_clustered_key(self):
        table = self.make()
        assert [row[0] for row in table.scan()] == [1, 2, 3]

    def test_len(self):
        assert len(self.make()) == 3

    def test_reload_replaces(self):
        table = self.make()
        table.load([(9, "q")])
        assert list(table.scan()) == [(9, "q")]

    def test_bad_arity_rejected(self):
        table = self.make()
        with pytest.raises(SchemaError):
            table.load([(1, 2, 3)])

    def test_secondary_index_build_and_lookup(self):
        table = self.make()
        index = table.create_index("by_b", ("b",))
        assert list(index.scan_eq(("y",))) == [(1, "y")]
        assert table.index("by_b") is index

    def test_duplicate_index_rejected(self):
        table = self.make()
        table.create_index("by_b", ("b",))
        with pytest.raises(SchemaError):
            table.create_index("by_b", ("b",))

    def test_missing_index_rejected(self):
        with pytest.raises(SchemaError):
            self.make().index("nope")

    def test_index_rebuilt_on_reload(self):
        table = self.make()
        table.create_index("by_b", ("b",))
        table.load([(5, "k")])
        assert list(table.index("by_b").scan_eq(("k",))) == [(5, "k")]


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        table = db.create_table("t", ("a",), ("a",))
        assert db.table("t") is table

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table("t", ("a",), ("a",))
        with pytest.raises(SchemaError):
            db.create_table("t", ("a",), ("a",))

    def test_missing_table_rejected(self):
        with pytest.raises(SchemaError):
            Database().table("nope")

    def test_drop(self):
        db = Database()
        db.create_table("t", ("a",), ("a",))
        db.drop_table("t")
        with pytest.raises(SchemaError):
            db.table("t")


class TestNodeTable:
    def test_physical_design(self):
        db = Database()
        table = create_node_table(db, label_tree(figure1_tree()))
        assert table.schema == Schema(NODE_COLUMNS)
        assert table.clustered.columns[:3] == ("name", "tid", "left")
        assert set(table.indexes) == {
            "idx_tid_value_id", "idx_value_tid_id", "idx_tid_id",
        }
        # 16 elements + 9 attribute rows
        assert len(table) == 25

    def test_clustered_probe_by_name(self):
        db = Database()
        table = create_node_table(db, label_tree(figure1_tree()))
        nps = list(table.clustered.scan_eq(("NP",)))
        assert len(nps) == 5
        lefts = [row[1] for row in nps]
        assert lefts == sorted(lefts)

    def test_value_index_probe(self):
        db = Database()
        table = create_node_table(db, label_tree(figure1_tree()))
        rows = list(table.index("idx_value_tid_id").scan_eq(("saw",)))
        assert len(rows) == 1
        assert rows[0][NODE_COLUMNS.index("name")] == "@lex"

    def test_extra_indexes_flag(self):
        db = Database()
        table = create_node_table(db, label_tree(figure1_tree()), extra_indexes=True)
        assert "idx_name_tid_right" in table.indexes
