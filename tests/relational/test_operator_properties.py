"""Algebraic property tests for the physical operators."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.relational import operators as op
from repro.relational.expression import ColCol, ColConst

rows2 = st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30)


def source(rows):
    return op.Source(lambda: rows, "rows")


class TestJoinEquivalence:
    @given(rows2, rows2)
    @settings(max_examples=60, deadline=None)
    def test_hash_join_equals_nested_loop(self, left, right):
        nested = sorted(
            op.NestedLoopJoin(source(left), source(right), ColCol(0, "=", 2))
        )
        hashed = sorted(op.HashJoin(source(left), source(right), (0,), (0,)))
        assert nested == hashed

    @given(rows2, rows2)
    @settings(max_examples=60, deadline=None)
    def test_index_nested_loop_equals_nested_loop(self, left, right):
        def probe(outer):
            return [r for r in right if r[0] == outer[0]]

        nested = sorted(
            op.NestedLoopJoin(source(left), source(right), ColCol(0, "=", 2))
        )
        indexed = sorted(op.IndexNestedLoopJoin(source(left), probe, "probe"))
        assert nested == indexed

    @given(rows2, rows2)
    @settings(max_examples=60, deadline=None)
    def test_semi_join_is_filtered_outer(self, left, right):
        keys = {r[0] for r in right}
        expected = [r for r in left if r[0] in keys]
        got = list(
            op.SemiJoin(source(left), lambda o: [r for r in right if r[0] == o[0]], "s")
        )
        assert got == expected

    @given(rows2, rows2)
    @settings(max_examples=60, deadline=None)
    def test_semi_plus_anti_partition_outer(self, left, right):
        def probe(outer):
            return [r for r in right if r[0] == outer[0]]

        semi = list(op.SemiJoin(source(left), probe, "s"))
        anti = list(op.AntiJoin(source(left), probe, "a"))
        assert sorted(semi + anti) == sorted(left)
        # Membership is decided per row value, so the sides never overlap.
        assert not (set(semi) & set(anti))


class TestUnaryOperatorLaws:
    @given(rows2)
    @settings(max_examples=60, deadline=None)
    def test_distinct_idempotent(self, rows):
        once = list(op.Distinct(source(rows)))
        twice = list(op.Distinct(op.Distinct(source(rows))))
        assert once == twice

    @given(rows2)
    @settings(max_examples=60, deadline=None)
    def test_distinct_preserves_first_occurrence_order(self, rows):
        seen, expected = set(), []
        for row in rows:
            if row not in seen:
                seen.add(row)
                expected.append(row)
        assert list(op.Distinct(source(rows))) == expected

    @given(rows2)
    @settings(max_examples=60, deadline=None)
    def test_select_then_project_commutes_here(self, rows):
        predicate = ColConst(0, ">", 2)
        select_first = list(op.Project(op.Select(source(rows), predicate), (0,)))
        project_first = list(
            op.Select(op.Project(source(rows), (0,)), ColConst(0, ">", 2))
        )
        assert select_first == project_first

    @given(rows2)
    @settings(max_examples=60, deadline=None)
    def test_sort_is_stable(self, rows):
        indexed = [(row[0], position) for position, row in enumerate(rows)]
        got = list(op.Sort(source(indexed), (0,)))
        for before, after in zip(got, got[1:]):
            if before[0] == after[0]:
                assert before[1] < after[1]

    @given(rows2, st.integers(0, 40))
    @settings(max_examples=60, deadline=None)
    def test_limit_prefix(self, rows, count):
        assert list(op.Limit(source(rows), count)) == rows[:count]
