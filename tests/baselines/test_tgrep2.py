"""Tests for the TGrep2 reimplementation."""

import pytest

from repro.baselines.tgrep2 import TGrep2Engine, TGrepSyntaxError, parse_pattern
from repro.tree import figure1_tree, tree_from_spec


@pytest.fixture(scope="module")
def engine():
    return TGrep2Engine([figure1_tree()])


class TestParser:
    def test_simple_dominance(self):
        pattern = parse_pattern("NP < Det")
        assert pattern.spec.alternatives == ("NP",)
        assert pattern.links[0].relation == "<"
        assert pattern.links[0].target.spec.alternatives == ("Det",)

    def test_nested_target(self):
        pattern = parse_pattern("VP < (V . NP)")
        inner = pattern.links[0].target
        assert inner.links[0].relation == "."

    def test_negation(self):
        pattern = parse_pattern("NP !<< Adj")
        assert pattern.links[0].negated

    def test_alternation(self):
        pattern = parse_pattern("NP|VP < Det")
        assert pattern.spec.alternatives == ("NP", "VP")

    def test_labels_and_backreferences(self):
        pattern = parse_pattern("NP >> (VP=v) !. (__ >> =v)")
        assert pattern.links[0].target.spec.label == "v"
        negated = pattern.links[1]
        assert negated.negated
        assert negated.target.links[0].target.spec.backreference == "v"

    def test_numbered_child(self):
        pattern = parse_pattern("NP <2 Adj")
        assert pattern.links[0].relation == "<N"
        assert pattern.links[0].argument == 2

    def test_last_child_shorthand(self):
        pattern = parse_pattern("VP <- NP")
        assert pattern.links[0].relation == "<N"
        assert pattern.links[0].argument == -1

    def test_bracket_groups(self):
        pattern = parse_pattern("NP [< Det & < N]")
        assert len(pattern.links) == 2

    def test_dashed_tags(self):
        pattern = parse_pattern("-NONE- > NP")
        assert pattern.spec.alternatives == ("-NONE-",)

    @pytest.mark.parametrize("bad", ["", "NP <", "NP < )", "< NP", "NP <& X", "(NP", "NP ="])
    def test_malformed(self, bad):
        with pytest.raises(TGrepSyntaxError):
            parse_pattern(bad)


class TestRelations:
    def test_dominance(self, engine):
        assert engine.count("VP < V") == 1
        assert engine.count("V > VP") == 1
        assert engine.count("S << dog") == 1      # word as leaf node
        assert engine.count("Det >> VP") == 2

    def test_immediate_precedence_is_adjacency(self, engine):
        # NP , V: NPs immediately following the verb — the paper's Q3.
        assert engine.count("NP , V") == 2

    def test_precedence(self, engine):
        assert engine.count("N ,, V") == 3  # man, dog, today follow saw

    def test_sisters(self, engine):
        assert engine.count("NP $. PP") == 1   # NP(the old man) before PP
        assert engine.count("PP $, NP") == 1
        assert engine.count("NP $ V") == 1

    def test_numbered_children(self, engine):
        assert engine.count("NP <1 Det") == 2
        assert engine.count("VP <- NP") == 1
        assert engine.count("NP <: N") == 1  # unary NP over "today"

    def test_wildcard(self, engine):
        tree_nodes = 16 + 9  # elements + word leaves
        assert engine.count("__") == 16  # word leaves share the POS node id

    def test_negation(self, engine):
        assert engine.count("NP !<< Adj") == 3

    def test_rightmost_descendant_with_backreference(self, engine):
        # //VP{//NP$} in TGrep2: an NP inside VP such that no node inside
        # the same VP starts right after the NP ends.
        assert engine.count("NP >> (VP=v) !. (__ >> =v)") == 2


class TestEngine:
    def test_counts_match_lpath_equivalents(self):
        from repro.lpath import LPathEngine

        trees = [figure1_tree()]
        tgrep = TGrep2Engine(trees)
        lpath = LPathEngine(trees)
        pairs = [
            ("NP , V", "//V->NP"),
            ("S << saw", "//S[//_[@lex=saw]]"),
            ("NP !<< Adj", "//NP[not(//Adj)]"),
            ("VP <- NP", "//VP{/NP$}"),
        ]
        for tgrep_query, lpath_query in pairs:
            assert tgrep.count(tgrep_query) == lpath.count(lpath_query), tgrep_query

    def test_word_index_prunes_word_headed_patterns(self):
        trees = [
            tree_from_spec(("S", ("NP", "a")), tid=0),
            tree_from_spec(("S", ("VP", "b")), tid=1),
        ]
        engine = TGrep2Engine(trees)
        # Word heads prune via the word index...
        assert len(engine._candidate_trees(parse_pattern("a"))) == 1
        # ...but tag heads scan every tree (TGrep2 indexes words only).
        assert len(engine._candidate_trees(parse_pattern("NP"))) == 2
        assert len(engine._candidate_trees(parse_pattern("__"))) == 2

    def test_word_matches_report_preterminal_id(self):
        trees = [figure1_tree()]
        engine = TGrep2Engine(trees)
        (match,) = engine.query("saw")
        v_node = [n for n in trees[0].nodes if n.label == "V"][0]
        assert match == (0, v_node.node_id)

    def test_multiple_trees(self):
        trees = [figure1_tree(tid=0), figure1_tree(tid=7)]
        engine = TGrep2Engine(trees)
        assert engine.count("VP < V") == 2
