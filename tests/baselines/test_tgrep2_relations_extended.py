"""Extended TGrep2 relation coverage and cross-checks against LPath."""

import pytest

from repro.baselines.tgrep2 import TGrep2Engine
from repro.lpath import LPathEngine
from repro.tree import tree_from_spec


@pytest.fixture(scope="module")
def flat():
    """(S (A a) (B b) (C c) (D d)) — four sisters for ordering relations."""
    return TGrep2Engine(
        [tree_from_spec(("S", ("A", "a"), ("B", "b"), ("C", "c"), ("D", "d")))]
    )


class TestOrderingRelations:
    def test_immediate_precede_vs_precede(self, flat):
        assert flat.count("A . B") == 1
        assert flat.count("A . C") == 0
        assert flat.count("A .. C") == 1
        assert flat.count("A .. D") == 1

    def test_follows(self, flat):
        assert flat.count("D , C") == 1
        assert flat.count("D ,, A") == 1
        assert flat.count("A ,, D") == 0

    def test_sister_precedence_family(self, flat):
        assert flat.count("B $. C") == 1
        assert flat.count("B $.. D") == 1
        assert flat.count("C $, B") == 1
        assert flat.count("D $,, A") == 1
        assert flat.count("A $.. A") == 0

    def test_numbered_from_right(self, flat):
        assert flat.count("S <-1 D") == 1
        assert flat.count("S <-2 C") == 1
        assert flat.count("S <2 B") == 1
        assert flat.count("S <9 A") == 0

    def test_child_position_of_self(self, flat):
        assert flat.count("B >2 S") == 1
        assert flat.count("B >1 S") == 0
        assert flat.count("D >-1 S") == 1


class TestAgainstLPathOnGeneratedData:
    @pytest.fixture(scope="class")
    def engines(self):
        from repro.corpus import generate_corpus

        corpus = generate_corpus("wsj", sentences=150, seed=33)
        return TGrep2Engine(corpus), LPathEngine(corpus, keep_trees=False)

    @pytest.mark.parametrize(
        "tgrep_query, lpath_query",
        [
            ("NP < DT", "//NP[/DT]"),
            ("DT > NP", "//NP/DT"),
            ("S << IN", "//S[//IN]"),
            ("IN >> S", "//S//IN"),
            ("NP . VP", "//NP[->VP]"),
            ("VP , NP", "//NP->VP"),
            ("NN .. JJ", "//NN[-->JJ]"),
            ("NP $. VP", "//NP[=>VP]"),
            ("VP $, NP", "//NP=>VP"),
            ("VP <- NP", "//VP{/NP$}"),
            ("NP <1 DT", "//NP[{/^DT}]"),  # scoped left alignment = first child
            ("NP !<< JJ", "//NP[not(//JJ)]"),
        ],
    )
    def test_equivalent_counts(self, engines, tgrep_query, lpath_query):
        tgrep, lpath = engines
        assert tgrep.count(tgrep_query) == lpath.count(lpath_query), tgrep_query
