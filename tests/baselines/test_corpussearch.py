"""Tests for the CorpusSearch reimplementation."""

import pytest

from repro.baselines.corpussearch import (
    CorpusSearchEngine,
    CorpusSearchSyntaxError,
    parse_query,
    pattern_matches,
)
from repro.baselines.corpussearch.ast import AndExpr, Condition, NotExpr, OrExpr
from repro.tree import figure1_tree, tree_from_spec


@pytest.fixture(scope="module")
def engine():
    return CorpusSearchEngine([figure1_tree()])


class TestParser:
    def test_single_condition(self):
        expr = parse_query("(NP iDoms Det)")
        assert expr == Condition("NP", "iDoms", "Det")

    def test_relation_names_case_insensitive(self):
        expr = parse_query("(NP idoms Det)")
        assert isinstance(expr, Condition)
        assert expr.relation == "iDoms"

    def test_and_or_not(self):
        expr = parse_query("(NP iDoms Det) AND NOT (NP Doms Adj) OR (VP iDoms V)")
        assert isinstance(expr, OrExpr)
        assert isinstance(expr.parts[0], AndExpr)
        assert isinstance(expr.parts[0].parts[1], NotExpr)

    def test_grouping(self):
        expr = parse_query("((NP iDoms Det) OR (NP iDoms N)) AND (S Doms NP)")
        assert isinstance(expr, AndExpr)
        assert isinstance(expr.parts[0], OrExpr)

    @pytest.mark.parametrize(
        "bad",
        ["", "(NP iDoms)", "(NP frobs Det)", "NP iDoms Det", "(NP iDoms Det", "()"],
    )
    def test_malformed(self, bad):
        with pytest.raises(CorpusSearchSyntaxError):
            parse_query(bad)


class TestPatterns:
    def test_literal(self):
        assert pattern_matches("NP", "NP")
        assert not pattern_matches("NP", "NP-SBJ")

    def test_trailing_star(self):
        assert pattern_matches("NP*", "NP-SBJ")
        assert pattern_matches("NP*", "NP")
        assert not pattern_matches("NP*", "VP")

    def test_inner_star(self):
        assert pattern_matches("*-TMP", "PP-TMP")
        assert pattern_matches("*", "anything")


class TestRelations:
    def test_idoms(self, engine):
        assert engine.count("(NP iDoms Det)") == 2
        assert engine.count("(VP iDoms V)") == 1

    def test_doms_includes_words(self, engine):
        assert engine.count("(S Doms saw)") == 1
        assert engine.count("(NP Doms dog)") == 2  # NP(a dog), NP(obj)

    def test_iprecedes_is_adjacency(self, engine):
        # The counterpart of //V->NP, reported from the V side.
        assert engine.count("(V iPrecedes NP)") == 1

    def test_precedes(self, engine):
        assert engine.count("(V Precedes N)") == 1

    def test_idoms_first_last(self, engine):
        assert engine.count("(VP iDomsLast NP)") == 1
        assert engine.count("(NP iDomsFirst Det)") == 2

    def test_idoms_only(self, engine):
        assert engine.count("(NP iDomsOnly N)") == 1  # unary NP over "today"

    def test_doms_last_extension(self, engine):
        # Rightmost descendant (our documented extension): //VP{//NP$}.
        assert engine.count("(VP domsLast NP)") == 1  # result = the VP

    def test_has_sister(self, engine):
        assert engine.count("(PP hasSister NP)") == 1


class TestCoreference:
    def test_same_pattern_corefers(self):
        # One NP must both dominate a Det and precede a PP.
        engine = CorpusSearchEngine([figure1_tree()])
        both = engine.count("(NP iDoms Det) AND (NP iPrecedes PP)")
        assert both == 1  # only NP(the old man)

    def test_distinct_patterns_do_not_corefer(self):
        engine = CorpusSearchEngine([figure1_tree()])
        # NP* and NP are different pattern texts, hence different nodes OK.
        count = engine.count("(NP iDoms Det) AND (NP* iDoms N)")
        assert count == 2

    def test_negation_with_unbound_pattern(self, engine):
        assert engine.count("(NP iDoms Det) AND NOT (NP Doms Adj)") == 1

    def test_result_is_first_mentioned_pattern(self, engine):
        # Matches are reported for the left argument of the first condition.
        v_results = engine.query("(V iPrecedes NP)")
        tree = figure1_tree()
        v_id = [n for n in tree.nodes if n.label == "V"][0].node_id
        assert v_results == [(0, v_id)]


class TestEngine:
    def test_multiple_trees(self):
        engine = CorpusSearchEngine([figure1_tree(tid=0), figure1_tree(tid=3)])
        assert engine.count("(VP iDoms V)") == 2

    def test_empty_result(self, engine):
        assert engine.query("(VP iDoms WHPP)") == []

    def test_wildcard_query(self):
        trees = [tree_from_spec(("S", ("NP-SBJ", ("D", "x")), ("VP", "y")))]
        engine = CorpusSearchEngine(trees)
        assert engine.count("(NP* iDoms D)") == 1
