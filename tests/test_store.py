"""Tests for compiled-corpus storage and the from_labels engine path."""

import io

import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro import store
from repro.labeling import label_corpus
from repro.lpath import LPathEngine, LPathError
from repro.tree import figure1_tree
from tests.strategies import corpora


def round_trip(rows):
    buffer = io.BytesIO()
    store.save_labels(rows, buffer)
    buffer.seek(0)
    return store.load_labels(buffer)


def saved_bytes(rows, checksum=True) -> bytes:
    buffer = io.BytesIO()
    store.save_labels(rows, buffer, checksum=checksum)
    return buffer.getvalue()


class TestFormat:
    def test_round_trip_figure1(self):
        rows = list(label_corpus([figure1_tree()]))
        assert round_trip(rows) == rows

    @given(corpora(max_trees=3, max_depth=4))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_random(self, trees):
        rows = list(label_corpus(trees))
        assert round_trip(rows) == rows

    def test_empty_corpus(self):
        assert round_trip([]) == []

    def test_magic_checked(self):
        with pytest.raises(store.StoreError):
            store.load_labels(io.BytesIO(b"NOTLPDB!rest"))

    def test_truncation_detected(self):
        rows = list(label_corpus([figure1_tree()]))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer)
        data = buffer.getvalue()
        with pytest.raises(store.StoreError):
            store.load_labels(io.BytesIO(data[:-3]))

    def test_trailing_garbage_detected(self):
        rows = list(label_corpus([figure1_tree()]))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer)
        with pytest.raises(store.StoreError):
            store.load_labels(io.BytesIO(buffer.getvalue() + b"\x00"))

    def test_interning_compresses(self):
        trees = [figure1_tree(tid=i) for i in range(20)]
        rows = list(label_corpus(trees))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer)
        # Far smaller than a naive text dump of the rows.
        assert len(buffer.getvalue()) < len(repr(rows)) / 4

    def test_file_helpers(self, tmp_path):
        path = tmp_path / "corpus.lpdb"
        count = store.save_corpus([figure1_tree()], str(path))
        assert count == 25
        assert store.is_compiled_corpus(str(path))
        assert not store.is_compiled_corpus(str(tmp_path / "missing"))
        rows = store.load_corpus_labels(str(path))
        assert len(rows) == 25


class TestColumnarLoader:
    """The direct-to-columns loader must agree with the row loader."""

    def test_columns_match_rows_figure1(self):
        rows = list(label_corpus([figure1_tree()]))
        data = saved_bytes(rows)
        columns = store.load_label_columns(io.BytesIO(data))
        assert len(columns) == len(rows)
        for index, row in enumerate(rows):
            assert (
                columns.tid[index], columns.left[index], columns.right[index],
                columns.depth[index], columns.id[index], columns.pid[index],
                columns.names[index], columns.values[index],
            ) == tuple(row)

    @given(corpora(max_trees=3, max_depth=4))
    @settings(max_examples=20, deadline=None)
    def test_columns_match_rows_random(self, trees):
        rows = list(label_corpus(trees))
        data = saved_bytes(rows)
        columns = store.load_label_columns(io.BytesIO(data))
        assert columns.names == [row.name for row in rows]
        assert list(columns.left) == [row.left for row in rows]
        assert columns.values == [row.value for row in rows]

    def test_reads_legacy_format(self):
        rows = list(label_corpus([figure1_tree()]))
        data = saved_bytes(rows, checksum=False)
        assert data.startswith(store.LEGACY_MAGIC)
        assert store.load_labels(io.BytesIO(data)) == rows
        assert store.load_label_columns(io.BytesIO(data)).names == [
            row.name for row in rows
        ]

    def test_file_helper(self, tmp_path):
        path = tmp_path / "corpus.lpdb"
        store.save_corpus([figure1_tree()], str(path))
        columns = store.load_corpus_columns(str(path))
        assert len(columns) == 25


class TestSegmentedFormat:
    """The LPDB0003 manifest + per-segment block layout."""

    def trees(self, count=5):
        return [figure1_tree(tid=tid) for tid in range(count)]

    def test_round_trip_concatenates_shards(self):
        rows = list(label_corpus(self.trees()))
        buffer = io.BytesIO()
        count = store.save_labels(rows, buffer, segments=3)
        assert count == len(rows)
        data = buffer.getvalue()
        assert data.startswith(store.SEGMENTED_MAGIC)
        # Same multiset of rows; shard-major order.
        assert sorted(store.load_labels(io.BytesIO(data))) == sorted(rows)

    def test_segment_columns_partition_by_tid(self):
        rows = list(label_corpus(self.trees()))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer, segments=3)
        shards = store.load_segment_columns(io.BytesIO(buffer.getvalue()))
        assert len(shards) == 3
        tid_sets = [set(shard.tid) for shard in shards]
        # Disjoint shards covering every tree (round-robin over sorted tids).
        assert tid_sets == [{0, 3}, {1, 4}, {2}]
        assert sum(len(shard) for shard in shards) == len(rows)

    def test_single_store_formats_load_as_one_segment(self):
        rows = list(label_corpus([figure1_tree()]))
        for checksum in (True, False):
            shards = store.load_segment_columns(
                io.BytesIO(saved_bytes(rows, checksum=checksum))
            )
            assert len(shards) == 1
            assert shards[0].names == [row.name for row in rows]

    def test_merged_column_loader_reads_segmented_files(self):
        rows = list(label_corpus(self.trees()))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer, segments=4)
        columns = store.load_label_columns(io.BytesIO(buffer.getvalue()))
        assert len(columns) == len(rows)
        assert sorted(columns.tid) == sorted(row.tid for row in rows)

    def test_empty_segments_allowed(self):
        rows = list(label_corpus([figure1_tree()]))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer, segments=3)
        shards = store.load_segment_columns(io.BytesIO(buffer.getvalue()))
        assert [len(shard) for shard in shards] == [len(rows), 0, 0]

    def test_legacy_layout_has_no_segmented_variant(self):
        rows = list(label_corpus(self.trees()))
        with pytest.raises(store.StoreError):
            store.save_labels(rows, io.BytesIO(), checksum=False, segments=2)

    def test_partition_rows_deterministic_and_whole_trees(self):
        rows = list(label_corpus(self.trees(7)))
        shards = store.partition_rows_by_tid(rows, 3)
        again = store.partition_rows_by_tid(rows, 3)
        assert shards == again
        seen = set()
        for shard in shards:
            tids = {row.tid for row in shard}
            assert not tids & seen
            seen |= tids
        assert seen == set(range(7))

    def test_partition_rejects_bad_counts(self):
        for partition in (store.partition_rows_by_tid, store.partition_columns):
            with pytest.raises(store.StoreError):
                partition([] if partition is store.partition_rows_by_tid
                          else store.LabelColumns(), 0)

    def test_truncation_and_bit_flips_detected(self):
        rows = list(label_corpus(self.trees()))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer, segments=3)
        blob = buffer.getvalue()
        for cut in range(0, len(blob), 7):
            with pytest.raises(store.StoreError):
                store.load_segment_columns(io.BytesIO(blob[:cut]))
        for position in range(0, len(blob), 11):
            corrupt = bytearray(blob)
            corrupt[position] ^= 0x10
            with pytest.raises(store.StoreError):
                store.load_segment_columns(io.BytesIO(bytes(corrupt)))

    def test_trailing_garbage_detected(self):
        rows = list(label_corpus(self.trees()))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer, segments=2)
        with pytest.raises(store.StoreError):
            store.load_segment_columns(io.BytesIO(buffer.getvalue() + b"\x00"))

    def test_file_helpers_and_sniffing(self, tmp_path):
        path = tmp_path / "corpus.lpdb"
        store.save_corpus(self.trees(), str(path), segments=3)
        assert store.is_compiled_corpus(str(path))
        assert store.corpus_segment_count(str(path)) == 3
        shards = store.load_corpus_segments(str(path))
        assert len(shards) == 3
        single = tmp_path / "single.lpdb"
        store.save_corpus(self.trees(), str(single))
        assert store.corpus_segment_count(str(single)) == 1
        assert len(store.load_corpus_segments(str(single))) == 1


def mmap_bytes(rows, segments=1) -> bytes:
    buffer = io.BytesIO()
    store.save_labels(rows, buffer, segments=segments, format="lpdb0004")
    return buffer.getvalue()


def rebuild_mmap_file(blob: bytes, mutate) -> bytes:
    """Reassemble an LPDB0004 file with a sidecar edited by ``mutate``
    (CRC recomputed, data region kept) — how the corruption tests craft
    *precisely* broken files that still pass the checksum."""
    import zlib

    sidecar_length, offset = store._read_varint(blob, len(store.MMAP_MAGIC))
    _crc, offset = store._read_varint(blob, offset)
    header = store._parse_mmap_sidecar(blob[offset:offset + sidecar_length])
    region = blob[store._align8(offset + sidecar_length):]
    mutate(header)
    sidecar = store._encode_mmap_sidecar(header)
    head = io.BytesIO()
    store._write_varint(head, len(sidecar))
    store._write_varint(head, zlib.crc32(sidecar))
    prefix = store.MMAP_MAGIC + head.getvalue() + sidecar
    padding = b"\x00" * (store._align8(len(prefix)) - len(prefix))
    return prefix + padding + region


class TestMmapFormat:
    """The LPDB0004 zero-copy layout: sidecar + aligned raw columns."""

    def trees(self, count=5):
        return [figure1_tree(tid=tid) for tid in range(count)]

    def test_round_trip_clustered_order(self):
        rows = list(label_corpus(self.trees()))
        data = mmap_bytes(rows, segments=2)
        assert data.startswith(store.MMAP_MAGIC)
        # Rows come back in clustered (not insertion) order.
        assert sorted(store.load_labels(io.BytesIO(data))) == sorted(rows)

    def test_segment_columns_partition_by_tid(self):
        rows = list(label_corpus(self.trees()))
        shards = store.load_segment_columns(
            io.BytesIO(mmap_bytes(rows, segments=3))
        )
        assert [set(shard.tid) for shard in shards] == [{0, 3}, {1, 4}, {2}]
        assert sum(len(shard) for shard in shards) == len(rows)

    def test_merged_column_loader(self):
        rows = list(label_corpus(self.trees()))
        columns = store.load_label_columns(
            io.BytesIO(mmap_bytes(rows, segments=4))
        )
        assert len(columns) == len(rows)
        assert sorted(columns.tid) == sorted(row.tid for row in rows)

    def test_empty_corpus_and_empty_segments(self):
        assert store.load_labels(io.BytesIO(mmap_bytes([]))) == []
        rows = list(label_corpus([figure1_tree()]))
        shards = store.load_segment_columns(
            io.BytesIO(mmap_bytes(rows, segments=3))
        )
        assert [len(shard) for shard in shards] == [len(rows), 0, 0]

    def test_resave_round_trips_from_every_older_revision(self, tmp_path):
        from repro.lpath import LPathEngine

        rows = list(label_corpus(self.trees()))
        olds = {
            "LPDB0001": saved_bytes(rows, checksum=False),
            "LPDB0002": saved_bytes(rows),
        }
        seg_buffer = io.BytesIO()
        store.save_labels(rows, seg_buffer, segments=3)
        olds["LPDB0003"] = seg_buffer.getvalue()
        oracle = LPathEngine.from_labels(rows)
        for revision, blob in olds.items():
            assert blob.startswith(revision.encode("ascii"))
            reloaded = store.load_labels(io.BytesIO(blob))
            path = tmp_path / f"from-{revision}.lpdb"
            with open(path, "wb") as handle:
                store.save_labels(reloaded, handle, segments=2,
                                  format="lpdb0004")
            assert store.corpus_format(str(path)) == "LPDB0004"
            with LPathEngine.from_store_mmap(str(path)) as engine:
                for query in ("//NP", "//V->NP", "//VP{//NP$}"):
                    assert engine.query(query) == oracle.query(query), (
                        revision, query,
                    )

    def test_file_helpers(self, tmp_path):
        path = tmp_path / "corpus.lpdb"
        store.save_corpus(self.trees(), str(path), segments=3,
                          format="lpdb0004")
        assert store.is_compiled_corpus(str(path))
        assert store.corpus_format(str(path)) == "LPDB0004"
        assert store.corpus_segment_count(str(path)) == 3
        assert len(store.load_corpus_segments(str(path))) == 3

    def test_info_reads_only_the_sidecar(self, tmp_path):
        path = tmp_path / "corpus.lpdb"
        store.save_corpus(self.trees(), str(path), segments=2,
                          format="lpdb0004")
        info = store.corpus_info(str(path), top=3)
        assert info["format"] == "LPDB0004"
        assert info["segments"] == 2
        assert info["rows"] == 125
        assert info["trees"] == 5
        assert len(info["top_names"]) == 3
        name, stats = info["top_names"][0]
        assert stats[0] >= info["top_names"][1][1][0]
        # Same numbers as a full legacy scan of the same corpus.
        legacy = tmp_path / "corpus3.lpdb"
        store.save_corpus(self.trees(), str(legacy), segments=2)
        legacy_info = store.corpus_info(str(legacy), top=3)
        for key in ("rows", "trees", "distinct_names", "top_names"):
            assert info[key] == legacy_info[key], key

    def test_checksum_false_rejected(self):
        with pytest.raises(store.StoreError, match="checksum"):
            store.save_labels([], io.BytesIO(), checksum=False,
                              format="lpdb0004")

    def test_lpdb0002_format_rejects_segments(self):
        with pytest.raises(store.StoreError, match="single-store"):
            store.save_labels([], io.BytesIO(), segments=2,
                              format="lpdb0002")

    def test_unknown_format_rejected(self):
        with pytest.raises(store.StoreError, match="unknown store format"):
            store.save_labels([], io.BytesIO(), format="lpdb9999")


class TestMmapCorruption:
    """LPDB0004 failure modes: truncation anywhere, sidecar bit flips,
    and misaligned/overrunning blob offsets all raise StoreError."""

    @pytest.fixture(scope="class")
    def blob(self):
        rows = list(label_corpus([figure1_tree(tid=t) for t in range(3)]))
        return mmap_bytes(rows, segments=2)

    def loaders(self):
        return (store.load_labels, store.load_label_columns,
                store.load_segment_columns)

    def test_every_truncation_detected(self, blob):
        # Includes every cut *mid-column* in the data region: the file
        # size no longer matches the declared region length.
        for cut in range(0, len(blob), 17):
            for loader in self.loaders():
                with pytest.raises(store.StoreError):
                    loader(io.BytesIO(blob[:cut]))

    def test_mapped_open_detects_truncation(self, blob, tmp_path):
        path = tmp_path / "cut.lpdb"
        path.write_bytes(blob[:len(blob) - len(blob) // 3])  # mid-column
        with pytest.raises(store.StoreError, match="size mismatch"):
            store.open_mapped_corpus(str(path))

    def test_trailing_garbage_detected(self, blob):
        with pytest.raises(store.StoreError, match="size mismatch"):
            store.load_labels(io.BytesIO(blob + b"\x00"))

    def test_sidecar_bit_flips_detected(self, blob):
        sidecar_length, offset = store._read_varint(
            blob, len(store.MMAP_MAGIC)
        )
        _crc, offset = store._read_varint(blob, offset)
        for position in range(offset, offset + sidecar_length, 5):
            corrupt = bytearray(blob)
            corrupt[position] ^= 0x20
            with pytest.raises(store.StoreError):
                store.load_labels(io.BytesIO(bytes(corrupt)))

    def test_crc_mismatch_is_loud(self, blob):
        sidecar_length, offset = store._read_varint(
            blob, len(store.MMAP_MAGIC)
        )
        _crc, offset = store._read_varint(blob, offset)
        corrupt = bytearray(blob)
        corrupt[offset + sidecar_length // 2] ^= 0xFF
        with pytest.raises(store.StoreError, match="sidecar is corrupt"):
            store.load_labels(io.BytesIO(bytes(corrupt)))

    def test_misaligned_blob_offset_detected(self, blob, tmp_path):
        def misalign(header):
            meta = header.segments[0]
            offset, length = meta.blobs[1]
            meta.blobs[1] = (offset + 4, length)

        broken = rebuild_mmap_file(blob, misalign)
        with pytest.raises(store.StoreError, match="misaligned"):
            store.load_labels(io.BytesIO(broken))
        path = tmp_path / "misaligned.lpdb"
        path.write_bytes(broken)
        with pytest.raises(store.StoreError, match="misaligned"):
            store.open_mapped_corpus(str(path))

    def test_blob_length_mismatch_detected(self, blob):
        def shrink(header):
            meta = header.segments[0]
            offset, length = meta.blobs[0]
            meta.blobs[0] = (offset, length - 8)

        with pytest.raises(store.StoreError, match="declares"):
            store.load_labels(io.BytesIO(rebuild_mmap_file(blob, shrink)))

    def test_blob_overrun_detected(self, blob):
        def overrun(header):
            meta = header.segments[-1]
            _offset, length = meta.blobs[-1]
            meta.blobs[-1] = (store._align8(header.data_length), length)

        with pytest.raises(store.StoreError, match="overruns"):
            store.load_labels(io.BytesIO(rebuild_mmap_file(blob, overrun)))

    def test_bad_string_reference_detected(self, blob):
        def poison(header):
            meta = header.segments[0]
            sid, row_hi, part_hi, max_part, min_d, max_d = meta.names[0]
            meta.names[0] = (len(meta.strings) + 7, row_hi, part_hi,
                             max_part, min_d, max_d)

        with pytest.raises(store.StoreError, match="string id"):
            store.load_labels(io.BytesIO(rebuild_mmap_file(blob, poison)))

    def test_foreign_byteorder_rejected(self, blob):
        import sys

        def flip(header):
            header.byteorder = "big" if sys.byteorder == "little" else "little"

        with pytest.raises(store.StoreError, match="byte order"):
            store.load_labels(io.BytesIO(rebuild_mmap_file(blob, flip)))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.lpdb"
        path.write_bytes(b"")
        with pytest.raises(store.StoreError):
            store.open_mapped_corpus(str(path))
        path.write_bytes(b"NOTLPDB!")
        with pytest.raises(store.StoreError, match="magic"):
            store.open_mapped_corpus(str(path))

    def test_mapped_corpus_close_invalidates_views(self, blob, tmp_path):
        path = tmp_path / "ok.lpdb"
        path.write_bytes(blob)
        corpus = store.open_mapped_corpus(str(path))
        segment = corpus.segments[0]
        left = segment.left
        assert left[0] >= 0
        corpus.close()
        corpus.close()  # idempotent
        with pytest.raises(ValueError):
            left[0]


class TestCorruptionDetection:
    """Truncation and bit corruption raise StoreError — never garbage."""

    @pytest.fixture(scope="class")
    def blob(self):
        return saved_bytes(list(label_corpus([figure1_tree()])))

    def test_every_truncation_detected(self, blob):
        for cut in range(len(blob)):
            for loader in (store.load_labels, store.load_label_columns):
                with pytest.raises(store.StoreError):
                    loader(io.BytesIO(blob[:cut]))

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_single_bit_flips_detected(self, blob, data):
        position = data.draw(st.integers(0, len(blob) - 1), label="byte")
        bit = data.draw(st.integers(0, 7), label="bit")
        corrupt = bytearray(blob)
        corrupt[position] ^= 1 << bit
        for loader in (store.load_labels, store.load_label_columns):
            with pytest.raises(store.StoreError):
                loader(io.BytesIO(bytes(corrupt)))

    def test_trailing_garbage_detected(self, blob):
        with pytest.raises(store.StoreError):
            store.load_labels(io.BytesIO(blob + b"\x00"))

    def test_checksum_message_is_loud(self, blob):
        corrupt = bytearray(blob)
        corrupt[-1] ^= 0xFF
        with pytest.raises(store.StoreError, match="mismatch"):
            store.load_labels(io.BytesIO(bytes(corrupt)))


class TestEngineFromColumns:
    def test_columnar_engine_matches_row_engine(self):
        trees = [figure1_tree()]
        rows = list(label_corpus(trees))
        data = saved_bytes(rows)
        from_trees = LPathEngine(trees)
        engine = LPathEngine.from_columns(store.load_label_columns(io.BytesIO(data)))
        for query in ("//NP", "//V->NP", "//VP{//NP$}", "//S[//_[@lex=saw]]", "//NP$"):
            assert engine.query(query) == from_trees.query(query), query

    def test_row_backends_unavailable(self):
        rows = list(label_corpus([figure1_tree()]))
        data = saved_bytes(rows)
        engine = LPathEngine.from_columns(store.load_label_columns(io.BytesIO(data)))
        with pytest.raises(LPathError):
            engine.query("//NP", backend="sqlite")
        with pytest.raises(LPathError):
            engine.query("//NP", executor="volcano")
        with pytest.raises(LPathError):
            engine.treewalk

    def test_rejects_row_executors_at_construction(self):
        rows = list(label_corpus([figure1_tree()]))
        columns = store.load_label_columns(io.BytesIO(saved_bytes(rows)))
        with pytest.raises(LPathError, match="columnar-only"):
            LPathEngine.from_columns(columns, executor="volcano")
        with pytest.raises(LPathError, match="unknown executor"):
            LPathEngine.from_columns(columns, executor="sqlite")

    def test_rejects_non_bundle_input(self):
        rows = list(label_corpus([figure1_tree()]))
        # Label rows are not a column bundle: clear LPathError, not an
        # AttributeError from deep inside ColumnStore construction.
        with pytest.raises(LPathError, match="column bundle"):
            LPathEngine.from_columns(rows[0])
        with pytest.raises(LPathError, match="column bundle"):
            LPathEngine.from_columns(rows)
        with pytest.raises(LPathError, match="at least one"):
            LPathEngine.from_columns([])

    def test_rejects_ragged_bundle(self):
        rows = list(label_corpus([figure1_tree()]))
        columns = store.load_label_columns(io.BytesIO(saved_bytes(rows)))
        columns.names.append("EXTRA")
        with pytest.raises(LPathError, match="ragged"):
            LPathEngine.from_columns(columns)

    def test_segment_list_and_reshard(self):
        trees = [figure1_tree(tid=tid) for tid in range(4)]
        rows = list(label_corpus(trees))
        expected = LPathEngine(trees).query("//NP")
        buffer = io.BytesIO()
        store.save_labels(rows, buffer, segments=3)
        shards = store.load_segment_columns(io.BytesIO(buffer.getvalue()))
        sharded = LPathEngine.from_columns(shards, workers=2)
        assert sharded.segments == 3
        assert sharded.query("//NP") == expected
        columns = store.load_label_columns(io.BytesIO(saved_bytes(rows)))
        resharded = LPathEngine.from_columns(columns, segments=2)
        assert resharded.segments == 2
        assert resharded.query("//NP") == expected
        with pytest.raises(LPathError, match="conflicts"):
            LPathEngine.from_columns(shards, segments=2)


class TestEngineFromLabels:
    def test_queries_match_tree_built_engine(self):
        trees = [figure1_tree()]
        rows = list(label_corpus(trees))
        from_trees = LPathEngine(trees)
        from_rows = LPathEngine.from_labels(rows)
        for query in ("//NP", "//V->NP", "//VP{//NP$}", "//S[//_[@lex=saw]]"):
            assert from_rows.query(query) == from_trees.query(query)

    def test_sqlite_backend_works(self):
        rows = list(label_corpus([figure1_tree()]))
        engine = LPathEngine.from_labels(rows)
        assert engine.query("//NP", backend="sqlite") == engine.query("//NP")

    def test_tree_features_unavailable(self):
        rows = list(label_corpus([figure1_tree()]))
        engine = LPathEngine.from_labels(rows)
        with pytest.raises(LPathError):
            engine.nodes("//NP")
        with pytest.raises(LPathError):
            engine.treewalk

    def test_root_alignment_still_works(self):
        """from_labels must reconstruct the root_right map for `$`."""
        rows = list(label_corpus([figure1_tree()]))
        engine = LPathEngine.from_labels(rows)
        assert engine.count("//NP$") == 1


class TestCLIIntegration:
    def test_compile_and_query(self, tmp_path):
        from repro.cli import main

        mrg = tmp_path / "c.mrg"
        lpdb = tmp_path / "c.lpdb"
        out = io.StringIO()
        assert main(["generate", "--sentences", "30", "--seed", "4",
                     "-o", str(mrg)], out=out) == 0
        assert main(["compile", str(mrg), "-o", str(lpdb)], out=out) == 0

        direct, compiled = io.StringIO(), io.StringIO()
        assert main(["query", str(mrg), "//NP", "--count"], out=direct) == 0
        assert main(["query", str(lpdb), "//NP", "--count"], out=compiled) == 0
        assert direct.getvalue() == compiled.getvalue()

    def test_compiled_corpus_rejects_tree_engines(self, tmp_path):
        from repro.cli import main

        lpdb = tmp_path / "c.lpdb"
        store.save_corpus([figure1_tree()], str(lpdb))
        assert main(["query", str(lpdb), "NP < Det", "--engine", "tgrep2"],
                    out=io.StringIO()) == 1


class TestStoreFingerprint:
    """The content-derived store identity keying the serving layer's
    result cache: equal for byte-identical copies, different whenever
    the bytes that back query answers change."""

    def _store(self, path, count=6, format="lpdb0004", segments=2):
        trees = [figure1_tree(tid=tid) for tid in range(count)]
        store.save_corpus(trees, str(path), segments=segments, format=format)
        return str(path)

    def test_shape_names_the_revision(self, tmp_path):
        fingerprint = store.store_fingerprint(
            self._store(tmp_path / "a.lpdb")
        )
        revision, size, digest = fingerprint.split("-")
        assert revision == "lpdb0004"
        assert int(size) > 0
        assert len(digest) == 8

    def test_identical_copies_share_identity(self, tmp_path):
        a = self._store(tmp_path / "a.lpdb")
        b = tmp_path / "b.lpdb"
        b.write_bytes(open(a, "rb").read())
        assert store.store_fingerprint(a) == store.store_fingerprint(str(b))

    def test_different_corpora_differ(self, tmp_path):
        a = self._store(tmp_path / "a.lpdb", count=6)
        b = self._store(tmp_path / "b.lpdb", count=7)
        assert store.store_fingerprint(a) != store.store_fingerprint(b)

    def test_same_size_edit_changes_identity(self, tmp_path):
        a = self._store(tmp_path / "a.lpdb")
        original = store.store_fingerprint(a)
        raw = bytearray(open(a, "rb").read())
        raw[len(raw) // 2] ^= 0xFF  # flip bits, keep the size
        edited = tmp_path / "edited.lpdb"
        edited.write_bytes(bytes(raw))
        assert store.store_fingerprint(str(edited)) != original

    def test_tail_edit_changes_identity(self, tmp_path):
        # The digest samples head AND tail, so appended/late corruption
        # still renames the store even past the head window.
        a = self._store(tmp_path / "a.lpdb")
        original = store.store_fingerprint(a)
        raw = bytearray(open(a, "rb").read())
        raw[-3] ^= 0xFF
        edited = tmp_path / "edited.lpdb"
        edited.write_bytes(bytes(raw))
        assert store.store_fingerprint(str(edited)) != original

    def test_older_revisions_fingerprint_too(self, tmp_path):
        fingerprint = store.store_fingerprint(
            self._store(tmp_path / "old.lpdb", format="lpdb0003")
        )
        assert fingerprint.startswith("lpdb0003-")

    def test_non_store_file_raises(self, tmp_path):
        bogus = tmp_path / "not_a_store.mrg"
        bogus.write_text("( (S (NP (DT a))))\n")
        with pytest.raises(store.StoreError):
            store.store_fingerprint(str(bogus))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            store.store_fingerprint(str(tmp_path / "gone.lpdb"))
