"""Tests for compiled-corpus storage and the from_labels engine path."""

import io

import pytest
from hypothesis import given, settings

from repro import store
from repro.labeling import label_corpus
from repro.lpath import LPathEngine, LPathError
from repro.tree import figure1_tree
from tests.strategies import corpora


def round_trip(rows):
    buffer = io.BytesIO()
    store.save_labels(rows, buffer)
    buffer.seek(0)
    return store.load_labels(buffer)


class TestFormat:
    def test_round_trip_figure1(self):
        rows = list(label_corpus([figure1_tree()]))
        assert round_trip(rows) == rows

    @given(corpora(max_trees=3, max_depth=4))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_random(self, trees):
        rows = list(label_corpus(trees))
        assert round_trip(rows) == rows

    def test_empty_corpus(self):
        assert round_trip([]) == []

    def test_magic_checked(self):
        with pytest.raises(store.StoreError):
            store.load_labels(io.BytesIO(b"NOTLPDB!rest"))

    def test_truncation_detected(self):
        rows = list(label_corpus([figure1_tree()]))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer)
        data = buffer.getvalue()
        with pytest.raises(store.StoreError):
            store.load_labels(io.BytesIO(data[:-3]))

    def test_trailing_garbage_detected(self):
        rows = list(label_corpus([figure1_tree()]))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer)
        with pytest.raises(store.StoreError):
            store.load_labels(io.BytesIO(buffer.getvalue() + b"\x00"))

    def test_interning_compresses(self):
        trees = [figure1_tree(tid=i) for i in range(20)]
        rows = list(label_corpus(trees))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer)
        # Far smaller than a naive text dump of the rows.
        assert len(buffer.getvalue()) < len(repr(rows)) / 4

    def test_file_helpers(self, tmp_path):
        path = tmp_path / "corpus.lpdb"
        count = store.save_corpus([figure1_tree()], str(path))
        assert count == 25
        assert store.is_compiled_corpus(str(path))
        assert not store.is_compiled_corpus(str(tmp_path / "missing"))
        rows = store.load_corpus_labels(str(path))
        assert len(rows) == 25


class TestEngineFromLabels:
    def test_queries_match_tree_built_engine(self):
        trees = [figure1_tree()]
        rows = list(label_corpus(trees))
        from_trees = LPathEngine(trees)
        from_rows = LPathEngine.from_labels(rows)
        for query in ("//NP", "//V->NP", "//VP{//NP$}", "//S[//_[@lex=saw]]"):
            assert from_rows.query(query) == from_trees.query(query)

    def test_sqlite_backend_works(self):
        rows = list(label_corpus([figure1_tree()]))
        engine = LPathEngine.from_labels(rows)
        assert engine.query("//NP", backend="sqlite") == engine.query("//NP")

    def test_tree_features_unavailable(self):
        rows = list(label_corpus([figure1_tree()]))
        engine = LPathEngine.from_labels(rows)
        with pytest.raises(LPathError):
            engine.nodes("//NP")
        with pytest.raises(LPathError):
            engine.treewalk

    def test_root_alignment_still_works(self):
        """from_labels must reconstruct the root_right map for `$`."""
        rows = list(label_corpus([figure1_tree()]))
        engine = LPathEngine.from_labels(rows)
        assert engine.count("//NP$") == 1


class TestCLIIntegration:
    def test_compile_and_query(self, tmp_path):
        from repro.cli import main

        mrg = tmp_path / "c.mrg"
        lpdb = tmp_path / "c.lpdb"
        out = io.StringIO()
        assert main(["generate", "--sentences", "30", "--seed", "4",
                     "-o", str(mrg)], out=out) == 0
        assert main(["compile", str(mrg), "-o", str(lpdb)], out=out) == 0

        direct, compiled = io.StringIO(), io.StringIO()
        assert main(["query", str(mrg), "//NP", "--count"], out=direct) == 0
        assert main(["query", str(lpdb), "//NP", "--count"], out=compiled) == 0
        assert direct.getvalue() == compiled.getvalue()

    def test_compiled_corpus_rejects_tree_engines(self, tmp_path):
        from repro.cli import main

        lpdb = tmp_path / "c.lpdb"
        store.save_corpus([figure1_tree()], str(lpdb))
        assert main(["query", str(lpdb), "NP < Det", "--engine", "tgrep2"],
                    out=io.StringIO()) == 1
