"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture()
def corpus_file(tmp_path):
    path = tmp_path / "corpus.mrg"
    code, _ = run(["generate", "--profile", "wsj", "--sentences", "50",
                   "--seed", "3", "-o", str(path)])
    assert code == 0
    return str(path)


class TestGenerate:
    def test_writes_file(self, corpus_file):
        text = open(corpus_file).read()
        assert text.startswith("( (S")
        assert text.count("\n") == 50

    def test_stdout_output(self):
        code, output = run(["generate", "--sentences", "3", "--seed", "1"])
        assert code == 0
        assert output.count("( (S") == 3

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.mrg", tmp_path / "b.mrg"
        run(["generate", "--sentences", "5", "--seed", "9", "-o", str(a)])
        run(["generate", "--sentences", "5", "--seed", "9", "-o", str(b)])
        assert a.read_text() == b.read_text()


class TestQuery:
    def test_count(self, corpus_file):
        code, output = run(["query", corpus_file, "//NP", "--count"])
        assert code == 0
        assert int(output.strip()) > 0

    def test_columnar_executor_matches_volcano(self, corpus_file):
        code, volcano = run(["query", corpus_file, "//S//NP", "--count"])
        assert code == 0
        code, columnar = run(
            ["query", corpus_file, "//S//NP", "--count", "--executor", "columnar"]
        )
        assert code == 0
        assert columnar == volcano

    def test_columnar_executor_on_compiled_corpus(self, corpus_file, tmp_path):
        lpdb = str(tmp_path / "corpus.lpdb")
        code, _ = run(["compile", corpus_file, "-o", lpdb])
        assert code == 0
        code, volcano = run(["query", lpdb, "//S//NP", "--count"])
        assert code == 0
        code, columnar = run(
            ["query", lpdb, "//S//NP", "--count", "--executor", "columnar"]
        )
        assert code == 0
        assert columnar == volcano

    def test_xpath_engine_accepts_executor(self, corpus_file):
        code, volcano = run(
            ["query", corpus_file, "//NP/NN", "--count", "--engine", "xpath"]
        )
        assert code == 0
        code, columnar = run(
            ["query", corpus_file, "//NP/NN", "--count", "--engine", "xpath",
             "--executor", "columnar"]
        )
        assert code == 0
        assert columnar == volcano

    def test_segments_and_workers_preserve_counts(self, corpus_file):
        code, expected = run(["query", corpus_file, "//S//NP", "--count"])
        assert code == 0
        for extra in (
            ["--segments", "3"],
            ["--segments", "3", "--workers", "2"],
            ["--segments", "4", "--executor", "columnar", "--workers", "2"],
            ["--segments", "3", "--engine", "xpath"],
        ):
            argv = ["query", corpus_file, "//S//NP", "--count"] + extra
            code, output = run(argv)
            assert code == 0, argv
            assert output == expected, argv

    def test_compile_segmented_and_query(self, corpus_file, tmp_path):
        lpdb = str(tmp_path / "sharded.lpdb")
        code, output = run(["compile", corpus_file, "-o", lpdb,
                            "--segments", "4"])
        assert code == 0
        assert "in 4 segments" in output
        code, expected = run(["query", corpus_file, "//S//NP", "--count"])
        assert code == 0
        # The segmented file serves both executors, sequential and pooled,
        # and an explicit --segments re-deals the on-disk shards.
        for extra in ([], ["--executor", "columnar"],
                      ["--executor", "columnar", "--workers", "2"],
                      ["--executor", "columnar", "--segments", "4"],
                      ["--executor", "columnar", "--segments", "2"],
                      ["--executor", "columnar", "--segments", "1"]):
            code, output = run(["query", lpdb, "//S//NP", "--count"] + extra)
            assert code == 0, extra
            assert output == expected, extra

    def test_invalid_segments_reported(self, corpus_file):
        code, _ = run(["query", corpus_file, "//NP", "--count",
                       "--segments", "0"])
        assert code == 1

    def test_matches_highlighted(self, corpus_file):
        code, output = run(["query", corpus_file, "//VB->NP", "--show", "2"])
        assert code == 0
        assert "match(es)" in output
        assert "[" in output  # highlighted constituent

    def test_backends_agree(self, corpus_file):
        counts = set()
        for engine in ("lpath", "treewalk", "sqlite"):
            code, output = run(
                ["query", corpus_file, "//VP{/NP$}", "--engine", engine, "--count"]
            )
            assert code == 0
            counts.add(output.strip())
        assert len(counts) == 1

    def test_explain_prints_plans_with_join_choice(self, corpus_file):
        code, output = run(
            ["query", corpus_file, "//S//NP", "--executor", "columnar",
             "--explain"]
        )
        assert code == 0
        assert "logical plan:" in output and "physical plan:" in output
        assert "[merge/" in output or "[probe est_in=" in output

    def test_explain_volcano_engine(self, corpus_file):
        code, output = run(["query", corpus_file, "//S//NP", "--explain"])
        assert code == 0
        assert "IndexNestedLoopJoin" in output or "physical plan:" in output

    def test_explain_xpath_engine(self, corpus_file):
        code, output = run(
            ["query", corpus_file, "//S//NP", "--engine", "xpath", "--explain"]
        )
        assert code == 0
        assert "XPath plan" in output

    def test_explain_rejects_non_plan_engines(self, corpus_file):
        for engine in ("treewalk", "sqlite", "tgrep2"):
            code, _ = run(
                ["query", corpus_file, "//S", "--engine", engine, "--explain"]
            )
            assert code == 1, engine

    def test_cache_stats_rejects_non_plan_engines(self, corpus_file):
        code, _ = run(
            ["query", corpus_file, "//S", "--engine", "corpussearch",
             "--count", "--cache-stats"]
        )
        assert code == 1

    def test_cache_stats_printed_after_results(self, corpus_file):
        code, output = run(
            ["query", corpus_file, "//NP", "--count", "--cache-stats"]
        )
        assert code == 0
        lines = output.strip().splitlines()
        assert lines[-1].startswith("plan cache: ")
        assert "misses=1" in lines[-1]
        assert "evictions=0" in lines[-1]

    def test_cache_stats_with_xpath_engine(self, corpus_file):
        code, output = run(
            ["query", corpus_file, "//NP", "--engine", "xpath", "--count",
             "--cache-stats"]
        )
        assert code == 0
        assert "plan cache: " in output

    def test_pivot_flag_preserves_results(self, corpus_file):
        plain = run(["query", corpus_file, "//S//NP//WHPP", "--count"])
        pivoted = run(["query", corpus_file, "//S//NP//WHPP", "--count", "--pivot"])
        assert plain == pivoted

    def test_tgrep2_engine(self, corpus_file):
        code, output = run(
            ["query", corpus_file, "VP <- NP", "--engine", "tgrep2", "--count"]
        )
        assert code == 0
        lpath_code, lpath_output = run(
            ["query", corpus_file, "//VP{/NP$}", "--count"]
        )
        assert output == lpath_output

    def test_corpussearch_engine(self, corpus_file):
        code, output = run(
            ["query", corpus_file, "(VP iDomsLast NP)", "--engine",
             "corpussearch", "--count"]
        )
        assert code == 0

    def test_xpath_engine_rejects_lpath_features(self, corpus_file):
        code, _ = run(["query", corpus_file, "//VB->NP", "--engine", "xpath"])
        assert code == 1

    def test_syntax_error_reported(self, corpus_file):
        code, _ = run(["query", corpus_file, "//["])
        assert code == 1

    def test_missing_file(self):
        code, _ = run(["query", "/nonexistent.mrg", "//NP"])
        assert code == 2


class TestMmapQuery:
    @pytest.fixture()
    def mmap_file(self, corpus_file, tmp_path):
        lpdb = str(tmp_path / "corpus4.lpdb")
        code, output = run(["compile", corpus_file, "-o", lpdb,
                            "--segments", "3", "--format", "lpdb0004"])
        assert code == 0
        assert "[LPDB0004]" in output
        return lpdb

    def test_mmap_matches_eager_engine(self, corpus_file, mmap_file):
        code, eager = run(["query", corpus_file, "//S//NP", "--count"])
        assert code == 0
        code, mapped = run(["query", mmap_file, "//S//NP", "--count",
                            "--mmap"])
        assert code == 0
        assert mapped == eager

    def test_mmap_process_mode(self, mmap_file):
        code, sequential = run(["query", mmap_file, "//NP", "--count",
                                "--mmap"])
        assert code == 0
        code, fanned = run(["query", mmap_file, "//NP", "--count", "--mmap",
                            "--workers", "2", "--mode", "process"])
        assert code == 0
        assert fanned == sequential

    def test_mmap_requires_compiled_corpus(self, corpus_file):
        code, _ = run(["query", corpus_file, "//NP", "--count", "--mmap"])
        assert code == 1

    def test_mmap_rejects_old_revision(self, corpus_file, tmp_path):
        lpdb = str(tmp_path / "old.lpdb")
        code, _ = run(["compile", corpus_file, "-o", lpdb])
        assert code == 0
        code, _ = run(["query", lpdb, "//NP", "--count", "--mmap"])
        assert code == 1

    def test_mode_requires_mmap(self, corpus_file):
        code, _ = run(["query", corpus_file, "//NP", "--count",
                       "--mode", "process"])
        assert code == 1

    def test_mmap_rejects_resharding(self, mmap_file):
        code, _ = run(["query", mmap_file, "//NP", "--count", "--mmap",
                       "--segments", "4"])
        assert code == 1

    def test_mmap_rejects_volcano_executor(self, mmap_file):
        code, _ = run(["query", mmap_file, "//NP", "--count", "--mmap",
                       "--executor", "volcano"])
        assert code == 1
        code, _ = run(["query", mmap_file, "//NP", "--count", "--mmap",
                       "--executor", "columnar"])
        assert code == 0


class TestStoreInfo:
    def test_lpdb0004_info(self, corpus_file, tmp_path):
        lpdb = str(tmp_path / "corpus.lpdb")
        run(["compile", corpus_file, "-o", lpdb, "--segments", "2",
             "--format", "lpdb0004"])
        code, output = run(["store", "info", lpdb, "--top", "3"])
        assert code == 0
        assert "format: LPDB0004" in output
        assert "segments: 2" in output
        assert "trees: 50" in output
        assert "top 3 names by rows:" in output

    def test_legacy_info(self, corpus_file, tmp_path):
        lpdb = str(tmp_path / "corpus.lpdb")
        run(["compile", corpus_file, "-o", lpdb])
        code, output = run(["store", "info", lpdb])
        assert code == 0
        assert "format: LPDB0002" in output
        assert "segments: 1" in output

    def test_non_store_file_reported(self, corpus_file):
        code, _ = run(["store", "info", corpus_file])
        assert code == 1


class TestSQL:
    def test_translation(self):
        code, output = run(["sql", "//VB->NP"])
        assert code == 0
        assert "SELECT DISTINCT" in output
        assert '"left" = t0."right"' in output


class TestStats:
    def test_tables(self, corpus_file):
        code, output = run(["stats", corpus_file])
        assert code == 0
        assert "Tree Nodes" in output
        assert "NP" in output


class TestServeCLI:
    """The serving surface of the CLI: `repro query --url` against a
    live daemon, `repro serve-stats`, and the full `repro serve`
    process lifecycle (banner, traffic, SIGINT drain)."""

    @pytest.fixture()
    def store_file(self, corpus_file, tmp_path):
        lpdb = str(tmp_path / "serve.lpdb")
        code, _ = run(["compile", corpus_file, "-o", lpdb,
                       "--segments", "2", "--format", "lpdb0004"])
        assert code == 0
        return lpdb

    @pytest.fixture()
    def daemon_url(self, store_file):
        from repro.serve import QueryServer, QueryService

        with QueryServer(QueryService(store_file)).start() as server:
            yield server.url

    def test_query_url_matches_local_engine(self, store_file, daemon_url):
        code, local = run(["query", store_file, "//S//NP", "--count",
                           "--mmap"])
        assert code == 0
        code, remote = run(["query", "//S//NP", "--url", daemon_url,
                            "--count"])
        assert code == 0
        assert remote == local

    def test_query_url_prints_match_lines(self, daemon_url):
        code, output = run(["query", "//NP", "--url", daemon_url,
                            "--show", "3"])
        assert code == 0
        lines = output.splitlines()
        assert int(lines[0]) > 3
        assert all(line.startswith("tree ") for line in lines[1:])
        assert len(lines) == 4

    def test_query_url_rejects_corpus_and_query(self, daemon_url,
                                                corpus_file, capsys):
        code, _ = run(["query", corpus_file, "//NP", "--url", daemon_url])
        assert code == 1
        assert "corpus lives on the server" in capsys.readouterr().err

    def test_query_url_rejects_local_engine_flags(self, daemon_url, capsys):
        for flags in (["--mmap"], ["--executor", "columnar"],
                      ["--segments", "2"], ["--workers", "2"],
                      ["--kernels", "python"], ["--explain"],
                      ["--cache-stats"]):
            code, _ = run(["query", "//NP", "--url", daemon_url] + flags)
            assert code == 1
            assert "--url" in capsys.readouterr().err

    def test_query_url_rejects_baseline_engines(self, daemon_url, capsys):
        code, _ = run(["query", "//NP", "--url", daemon_url,
                       "--engine", "tgrep2"])
        assert code == 1
        assert "lpath" in capsys.readouterr().err

    def test_query_url_daemon_error_is_one_clean_line(self, daemon_url,
                                                      capsys):
        code, _ = run(["query", "//NP[@", "--url", daemon_url, "--count"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err

    def test_query_url_unreachable_daemon(self, capsys):
        code, _ = run(["query", "//NP", "--url", "http://127.0.0.1:9",
                       "--count"])
        assert code == 1
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_serve_stats_document(self, daemon_url):
        import json

        code, before = run(["query", "//WHPP", "--url", daemon_url,
                            "--count"])
        assert code == 0
        code, output = run(["serve-stats", daemon_url])
        assert code == 0
        stats = json.loads(output)
        assert stats["server"]["served"] == 1
        assert stats["result_cache"]["misses"] == 1
        assert stats["stores"][0]["fingerprint"].startswith("lpdb0004-")

    def test_serve_missing_store_exits_2(self, capsys):
        code, _ = run(["serve", "/no/such/store.lpdb", "--port", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_non_store_file_is_clean_error(self, corpus_file, capsys):
        # Configuration errors (a file that isn't a store) exit 2, with
        # one clean line — runtime crashes of a running daemon exit 1.
        code, _ = run(["serve", corpus_file, "--port", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("serve: configuration error: ")
        assert "Traceback" not in err

    def test_serve_bad_admission_knobs(self, store_file, capsys):
        code, _ = run(["serve", store_file, "--port", "0",
                       "--max-inflight", "0"])
        assert code == 2
        assert "max_inflight" in capsys.readouterr().err

    def test_serve_bad_faults_spec_is_config_error(
        self, store_file, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "worker_kill:not-a-prob:1")
        code, _ = run(["serve", store_file, "--port", "0"])
        assert code == 2
        err = capsys.readouterr().err
        assert "REPRO_FAULTS" in err
        assert "Traceback" not in err

    def test_serve_verbose_adds_traceback(self, corpus_file, capsys):
        code, _ = run(["serve", corpus_file, "--port", "0", "--verbose"])
        assert code == 2
        err = capsys.readouterr().err
        assert "Traceback" in err
        assert "serve: configuration error: " in err


class TestServeProcessLifecycle:
    """Drive the real `repro serve` process end to end: banner with the
    bound address, traffic from a separate client, /stats scrape, then
    SIGINT -> drain -> exit 0."""

    def test_sigint_drains_and_exits_zero(self, corpus_file, tmp_path):
        import os
        import signal
        import subprocess
        import sys

        lpdb = str(tmp_path / "serve.lpdb")
        code, _ = run(["compile", corpus_file, "-o", lpdb,
                       "--segments", "2", "--format", "lpdb0004"])
        assert code == 0
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src, env.get("PYTHONPATH")) if part
        )
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", lpdb, "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env,
        )
        try:
            banner = daemon.stdout.readline()
            assert " on http://" in banner, (banner, daemon.stderr.read())
            url = banner.split(" on ", 1)[1].split()[0]
            code, counted = run(["query", "//NP", "--url", url, "--count"])
            assert code == 0
            assert int(counted.strip()) > 0
            code, again = run(["query", "//NP", "--url", url, "--count"])
            assert again == counted
            code, stats = run(["serve-stats", url])
            assert code == 0
            assert '"served": 1' in stats
            daemon.send_signal(signal.SIGINT)
            out, err = daemon.communicate(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.communicate()
        assert daemon.returncode == 0, (out, err)
        assert "draining..." in out
        assert "Traceback" not in err


class TestKernelAndSegmentConfigErrors:
    """Misconfiguration surfaces as ONE clean `error:` line and a
    non-zero exit -- never a traceback (and at the daemon, a 4xx)."""

    def test_invalid_kernels_env_at_cli(self, corpus_file, monkeypatch,
                                        capsys):
        monkeypatch.setenv("REPRO_KERNELS", "bogus")
        code, _ = run(["query", corpus_file, "//NP", "--count"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: invalid REPRO_KERNELS")
        assert "Traceback" not in err

    def test_invalid_kernels_flag_is_an_argparse_error(self, corpus_file,
                                                       capsys):
        with pytest.raises(SystemExit):
            run(["query", corpus_file, "//NP", "--kernels", "bogus"])
        assert "--kernels" in capsys.readouterr().err

    def test_invalid_segments_at_cli(self, corpus_file, capsys):
        code, _ = run(["query", corpus_file, "//NP", "--count",
                       "--segments", "0"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err

    def test_invalid_mode_combination_at_cli(self, corpus_file, capsys):
        code, _ = run(["query", corpus_file, "//NP", "--count",
                       "--mode", "process"])
        assert code == 1
        assert "--mode requires --mmap" in capsys.readouterr().err

    def test_invalid_kernels_env_at_daemon_is_4xx(self, corpus_file,
                                                  tmp_path, monkeypatch):
        from repro.serve import (
            QueryServer, QueryService, ServeClient, ServeClientError,
        )

        lpdb = str(tmp_path / "serve.lpdb")
        code, _ = run(["compile", corpus_file, "-o", lpdb,
                       "--segments", "2", "--format", "lpdb0004"])
        assert code == 0
        with QueryServer(QueryService(lpdb)).start() as server:
            monkeypatch.setenv("REPRO_KERNELS", "bogus")
            with ServeClient(server.url) as client:
                with pytest.raises(ServeClientError) as failure:
                    client.query("//NP")
                assert failure.value.status == 400
                assert "REPRO_KERNELS" in str(failure.value)
