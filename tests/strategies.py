"""Shared hypothesis strategies: random linguistic trees and corpora."""

from __future__ import annotations

import hypothesis.strategies as st

from repro.tree import Tree, TreeNode

LABELS = ["S", "NP", "VP", "PP", "N", "V", "Det", "Adj", "Prep", "ADVP", "X-Y"]
WORDS = ["saw", "dog", "man", "the", "a", "old", "with", "today", "I", "of"]

labels = st.sampled_from(LABELS)
words = st.sampled_from(WORDS)


@st.composite
def tree_nodes(draw, max_depth: int = 5, max_children: int = 4) -> TreeNode:
    """A random ordered tree node, possibly with unary branches."""
    label = draw(labels)
    if max_depth <= 1 or draw(st.booleans()):
        want_word = draw(st.booleans())
        attrs = {"lex": draw(words)} if want_word else {}
        return TreeNode(label, attributes=attrs)
    n_children = draw(st.integers(min_value=1, max_value=max_children))
    children = [
        draw(tree_nodes(max_depth=max_depth - 1, max_children=max_children))
        for _ in range(n_children)
    ]
    return TreeNode(label, children=children)


@st.composite
def trees(draw, max_depth: int = 5, tid: int = 0) -> Tree:
    """A random indexed :class:`Tree`."""
    return Tree(draw(tree_nodes(max_depth=max_depth)), tid=tid)


@st.composite
def corpora(draw, max_trees: int = 4, max_depth: int = 4) -> list[Tree]:
    """A random list of trees with sequential tids."""
    count = draw(st.integers(min_value=1, max_value=max_trees))
    return [
        Tree(draw(tree_nodes(max_depth=max_depth)), tid=tid) for tid in range(count)
    ]
