"""Shared hypothesis strategies: random trees, corpora and *queries*.

The query generators emit surface-syntax LPath text constrained to the
fragment every execution path understands (plan/volcano, plan/columnar,
the emitted-SQL SQLite oracle and the tree-walk reference), so the
differential fuzz harness can assert exact agreement.  Axes, predicates
and scopes are sampled independently; predicate nesting is depth-bounded.
"""

from __future__ import annotations

import hypothesis.strategies as st

from repro.tree import Tree, TreeNode

LABELS = ["S", "NP", "VP", "PP", "N", "V", "Det", "Adj", "Prep", "ADVP", "X-Y"]
WORDS = ["saw", "dog", "man", "the", "a", "old", "with", "today", "I", "of"]

labels = st.sampled_from(LABELS)
words = st.sampled_from(WORDS)


@st.composite
def tree_nodes(draw, max_depth: int = 5, max_children: int = 4) -> TreeNode:
    """A random ordered tree node, possibly with unary branches."""
    label = draw(labels)
    if max_depth <= 1 or draw(st.booleans()):
        want_word = draw(st.booleans())
        attrs = {"lex": draw(words)} if want_word else {}
        return TreeNode(label, attributes=attrs)
    n_children = draw(st.integers(min_value=1, max_value=max_children))
    children = [
        draw(tree_nodes(max_depth=max_depth - 1, max_children=max_children))
        for _ in range(n_children)
    ]
    return TreeNode(label, children=children)


@st.composite
def trees(draw, max_depth: int = 5, tid: int = 0) -> Tree:
    """A random indexed :class:`Tree`."""
    return Tree(draw(tree_nodes(max_depth=max_depth)), tid=tid)


@st.composite
def corpora(draw, max_trees: int = 4, max_depth: int = 4) -> list[Tree]:
    """A random list of trees with sequential tids."""
    count = draw(st.integers(min_value=1, max_value=max_trees))
    return [
        Tree(draw(tree_nodes(max_depth=max_depth)), tid=tid) for tid in range(count)
    ]


# -- random queries -----------------------------------------------------------

#: Step separators of the main chain (surface syntax -> axis):
#: child, descendant, parent, named vertical axes, and the horizontal /
#: sibling arrow axes.
_LPATH_SEPARATORS = [
    "/", "//", "\\",
    "\\ancestor::", "\\ancestor-or-self::",
    "->", "-->", "<-", "<--",
    "=>", "==>", "<=", "<==",
]

#: Separators usable inside predicate paths (relative paths).
_PRED_SEPARATORS = ["/", "//", "->", "=>", "==>", "<="]

#: The subset expressible over start/end labels (the XPath engine with the
#: full [11] axis inventory: vertical axes + horizontal/sibling, but no
#: immediate-* axes, scopes or alignment).
_XPATH_SEPARATORS = ["/", "//", "\\", "\\ancestor::", "\\ancestor-or-self::"]
_XPATH_PRED_SEPARATORS = ["/", "//"]

_COMPARE_OPS = ["=", "!=", ">", ">=", "<"]

name_tests = st.sampled_from(LABELS + ["_"])


@st.composite
def _predicate(draw, depth: int, separators: list[str]) -> str:
    """One ``[...]`` predicate body, nesting bounded by ``depth``."""
    simple = [
        "path", "attr-exists", "attr-cmp", "name-cmp", "count-cmp",
    ]
    nested = ["not", "and", "or"] if depth > 0 else []
    kind = draw(st.sampled_from(simple + nested))
    if kind == "path":
        return draw(_relative_path(separators))
    if kind == "attr-exists":
        return "@lex"
    if kind == "attr-cmp":
        op = draw(st.sampled_from(["=", "!="]))
        return f"@lex{op}{draw(words)}"
    if kind == "name-cmp":
        op = draw(st.sampled_from(["=", "!="]))
        return f"name(){op}{draw(labels)}"
    if kind == "count-cmp":
        op = draw(st.sampled_from(_COMPARE_OPS))
        target = draw(st.integers(min_value=0, max_value=3))
        return f"count({draw(_relative_path(separators))}){op}{target}"
    if kind == "not":
        return f"not({draw(_predicate(depth - 1, separators))})"
    joiner = " and " if kind == "and" else " or "
    return joiner.join(
        (
            draw(_predicate(depth - 1, separators)),
            draw(_predicate(depth - 1, separators)),
        )
    )


@st.composite
def _relative_path(draw, separators: list[str]) -> str:
    """A 1-2 step relative path for use inside a predicate."""
    steps = draw(st.integers(min_value=1, max_value=2))
    first = draw(st.sampled_from(["/", "//"]))
    text = first + draw(name_tests)
    for _ in range(steps - 1):
        text += draw(st.sampled_from(separators)) + draw(name_tests)
    return text


@st.composite
def _scope(draw, max_pred_depth: int) -> str:
    """A trailing ``{...}`` scope with optional edge alignment on its
    final step."""
    sep = draw(st.sampled_from(["/", "//"]))
    caret = "^" if draw(st.booleans()) else ""
    body = f"{sep}{caret}{draw(name_tests)}"
    if draw(st.booleans()):
        body += draw(st.sampled_from(["/", "//", "->", "=>"])) + draw(name_tests)
    if draw(st.booleans()):
        body += "$"
    return "{" + body + "}"


@st.composite
def lpath_queries(draw, max_steps: int = 3, max_pred_depth: int = 2) -> str:
    """A random LPath query supported by every execution path."""
    step_count = draw(st.integers(min_value=1, max_value=max_steps))
    text = draw(st.sampled_from(["/", "//"])) + draw(name_tests)
    for index in range(step_count):
        if draw(st.integers(min_value=0, max_value=2)) == 0:
            text += f"[{draw(_predicate(max_pred_depth, _PRED_SEPARATORS))}]"
        if index < step_count - 1:
            text += draw(st.sampled_from(_LPATH_SEPARATORS)) + draw(name_tests)
    if draw(st.integers(min_value=0, max_value=4)) == 0:
        text += draw(_scope(max_pred_depth))
    return text


@st.composite
def xpath_queries(draw, max_steps: int = 3, max_pred_depth: int = 2) -> str:
    """A random query inside the start/end-expressible fragment (shared by
    the XPath baseline engine and the LPath engine)."""
    step_count = draw(st.integers(min_value=1, max_value=max_steps))
    text = draw(st.sampled_from(["/", "//"])) + draw(name_tests)
    for index in range(step_count):
        if draw(st.integers(min_value=0, max_value=2)) == 0:
            text += f"[{draw(_predicate(max_pred_depth, _XPATH_PRED_SEPARATORS))}]"
        if index < step_count - 1:
            text += draw(st.sampled_from(_XPATH_SEPARATORS)) + draw(name_tests)
    return text
