"""Unit tests for the set-at-a-time structural join layer.

Covers the IR-shape analysis (:func:`merge_spec`), the statistics surface
(:meth:`ColumnStore.name_stats` and the catalog adapters), the cost-based
choice (:func:`choose_join` + the optimizer annotation), the CSR children
index, and axis-family equivalence of forced merge vs forced probe
execution against the tree-walk oracle."""

from __future__ import annotations

import os

import pytest

from repro.columnar import ColumnStore, NameStats, choose_join, merge_spec
from repro.columnar.structural import FORCE_ENV, PREFIX, STACK, SWEEP
from repro.labeling.lpath_scheme import label_corpus
from repro.lpath import LPathEngine
from repro.plan.ir import Join
from repro.plan.schemes import Catalog
from repro.plan.segmented import SegmentedCatalog
from repro.tree import iter_trees
from repro.xpath import XPathEngine

CORPUS = """
( (S (NP (Det the) (N dog)) (VP (V saw) (NP (NP (Det a) (Adj old) (N man)) (PP (Prep with) (NP (N today)))))) )
( (S (NP I) (VP (V ran))) )
( (S (NP (Det the) (Adj old) (N man)) (VP (V saw) (NP (N dog)) (ADVP today))) )
( (S (NP (N rice)) (VP (V grows))) )
"""

#: Queries exercising every merge strategy plus the probe-only shapes.
AXIS_QUERIES = [
    "//S//NP",                      # sweep (descendant)
    "//NP/N",                       # sweep (child)
    "//V->NP",                      # sweep (immediate-following equality)
    "//V==>NP",                     # sweep (following-sibling, no high bound)
    "//V-->NP",                     # sweep (following)
    "//Det\\ancestor::S",           # stack (ancestor)
    "//N\\ancestor::NP\\ancestor::S",  # stack chained
    "//V<--NP",                     # prefix (preceding)
    "//NP<==V",                     # prefix (immediate-preceding-sibling)
    "//VP{//NP$}",                  # scoped sweep + alignment
    "//S/_",                        # children-index wildcard child
    "//N\\_",                       # wildcard parent ((tid, id) probe)
    "//S[//NP/N]",                  # subplan (always binding-at-a-time)
    "//S//NP[//Det]",               # sweep with a row-level exists residual
    "//NP/N[position()=1]",         # sweep with a positional row check
    "//Det\\ancestor::NP[//Adj]",   # stack with a row-level exists residual
    "//V\\ancestor-or-self::V",     # stack with or-self conditions
]


@pytest.fixture(scope="module")
def trees():
    return list(iter_trees(CORPUS))


@pytest.fixture(scope="module")
def engine(trees):
    return LPathEngine(trees)


def forced(mode):
    class _Forced:
        def __enter__(self):
            self.previous = os.environ.get(FORCE_ENV)
            os.environ[FORCE_ENV] = mode

        def __exit__(self, *exc):
            if self.previous is None:
                del os.environ[FORCE_ENV]
            else:
                os.environ[FORCE_ENV] = self.previous

    return _Forced()


class TestMergeSpec:
    def _joins(self, engine, query, **kwargs):
        compiled = engine.compile(query, **kwargs)
        from repro.plan.ir import linearize

        return [
            node for node in linearize(compiled.logical) if isinstance(node, Join)
        ]

    def test_descendant_is_sweep(self, engine):
        (join,) = self._joins(engine, "//S//NP")
        spec = merge_spec(join)
        assert spec is not None
        assert spec.strategy == SWEEP
        assert spec.name == "NP"

    def test_ancestor_is_stack(self, engine):
        (join,) = self._joins(engine, "//Det\\ancestor::S")
        spec = merge_spec(join)
        assert spec is not None and spec.strategy == STACK

    def test_preceding_is_prefix(self, engine):
        (join,) = self._joins(engine, "//V<--NP")
        spec = merge_spec(join)
        assert spec is not None and spec.strategy == PREFIX

    def test_following_sibling_is_sweep_without_high(self, engine):
        (join,) = self._joins(engine, "//V==>NP")
        spec = merge_spec(join)
        assert spec is not None and spec.strategy == SWEEP and spec.high is None

    def test_wildcard_and_attribute_joins_are_ineligible(self, engine):
        (join,) = self._joins(engine, "//S/_")
        assert merge_spec(join) is None          # idx_tid_id probe
        (join,) = self._joins(engine, "//N\\_")
        assert merge_spec(join) is None          # (tid, id) parent probe

    def test_or_self_carries_self_slot(self, engine):
        joins = self._joins(engine, "//V\\ancestor-or-self::V")
        spec = merge_spec(joins[0])
        assert spec is not None and spec.strategy == STACK


class TestStatistics:
    def test_column_store_name_stats(self, trees):
        store = ColumnStore.from_rows(label_corpus(trees))
        stats = store.name_stats("NP")
        assert stats.rows == store.frequency("NP")
        assert stats.partitions == 4          # NP occurs in all four trees
        assert stats.max_partition >= 2
        assert 0 < stats.min_depth <= stats.max_depth
        assert store.name_stats("nope") == NameStats(0, 0, 0, 0, 0)
        assert store.tree_count() == 4

    def test_relational_catalog_matches_column_store(self, trees, engine):
        store = ColumnStore.from_rows(label_corpus(trees))
        catalog = Catalog(engine.node_table)
        for name in ("NP", "S", "Det", "@lex", "nope", None):
            assert catalog.name_stats(name) == store.name_stats(name)
        assert catalog.tree_count() == store.tree_count()

    def test_segmented_catalog_merges_stats(self, trees):
        stores = [
            ColumnStore.from_rows(label_corpus([tree])) for tree in trees
        ]
        from repro.columnar import ColumnarCatalog

        merged = SegmentedCatalog([ColumnarCatalog(s) for s in stores])
        whole = ColumnStore.from_rows(label_corpus(trees))
        for name in ("NP", "S", "Det", "nope"):
            expected = whole.name_stats(name)
            got = merged.name_stats(name)
            assert got.rows == expected.rows
            assert got.partitions == expected.partitions
            assert got.min_depth == expected.min_depth
            assert got.max_depth == expected.max_depth
        assert merged.tree_count() == whole.tree_count()

    def test_children_index(self, trees):
        store = ColumnStore.from_rows(label_corpus(trees))
        for tid, pid in {(store.tid[r], store.pid[r]) for r in range(store.n)}:
            expected = sorted(
                r for r in range(store.n)
                if store.tid[r] == tid and store.pid[r] == pid
            )
            assert sorted(store.children_rows(tid, pid)) == expected
        assert list(store.children_rows(99, 1)) == []


class TestCostModel:
    def test_small_inputs_probe_large_inputs_merge(self, trees):
        store = ColumnStore.from_rows(label_corpus(trees))
        assert choose_join(2.0, "NP", store) == "probe"
        assert choose_join(5000.0, "NP", store) == "merge"

    def test_annotation_recorded_and_rendered(self, engine):
        plan = engine.explain("//S//NP", executor="columnar")
        assert "[probe est_in=" in plan or "[merge/" in plan

    def test_volcano_plans_carry_no_annotation(self, engine):
        plan = engine.explain("//S//NP", executor="volcano")
        assert "[probe" not in plan and "[merge" not in plan

    def test_cost_model_picks_merge_at_scale(self):
        from repro.corpus.generator import generate_corpus

        engine = LPathEngine(
            list(generate_corpus("wsj", sentences=120, seed=11)),
            keep_trees=False, executor="columnar",
        )
        plan = engine.explain("//S//NP")
        assert "[merge/" in plan and " est_in=" in plan
        assert "StructuralMergeJoin" in plan

    def test_force_knob_overrides_choice(self, engine):
        with forced("merge"):
            plan = engine.explain("//S//NP", executor="columnar")
            assert "[merge" in plan and "StructuralMergeJoin" in plan
        with forced("probe"):
            plan = engine.explain("//S//NP", executor="columnar")
            assert "[probe" in plan and "StructuralMergeJoin" not in plan

    def test_force_knob_keys_the_plan_cache(self, engine):
        plain = engine.compile("//S//V", executor="columnar")
        with forced("merge"):
            forced_plan = engine.compile("//S//V", executor="columnar")
        assert plain is not forced_plan

    def test_invalid_force_value_rejected(self, engine):
        from repro.lpath.errors import LPathError

        with forced("MERGE"):
            with pytest.raises(LPathError, match="REPRO_FORCE_JOIN"):
                engine.query("//S//NN", executor="columnar")
        with forced(""):  # empty means unset, not an error
            assert engine.query("//S//V", executor="columnar") is not None


class TestForcedEquivalence:
    @pytest.mark.parametrize("query", AXIS_QUERIES)
    def test_axis_families_agree_with_treewalk(self, engine, trees, query):
        expected = engine.query(query, backend="treewalk")
        for mode in ("merge", "probe"):
            with forced(mode):
                for pivot in (False, True):
                    got = engine.query(query, executor="columnar", pivot=pivot)
                    assert got == expected, (query, mode, pivot)

    @pytest.mark.parametrize("segments", [2, 3])
    def test_segmented_engines_agree(self, trees, segments):
        oracle = LPathEngine(trees)
        sharded = LPathEngine(
            trees, keep_trees=False, executor="columnar", segments=segments
        )
        for query in AXIS_QUERIES:
            expected = oracle.query(query, backend="treewalk")
            for mode in ("merge", "probe"):
                with forced(mode):
                    assert sharded.query(query) == expected, (query, mode)

    def test_xpath_engine_forced_modes_agree(self, trees):
        engine = XPathEngine(trees)
        for query in ("//S//NP", "//NP/N", "//Det\\ancestor::S"):
            expected = engine.query(query)
            for mode in ("merge", "probe"):
                with forced(mode):
                    got = engine.query(query, executor="columnar")
                    assert got == expected, (query, mode)


class TestCacheStats:
    def test_engine_cache_stats_counts(self, trees):
        engine = LPathEngine(trees, keep_trees=False)
        engine.query("//NP")
        engine.query("//NP")
        stats = engine.cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        assert stats["evictions"] == 0 and stats["size"] == 1

    def test_xpath_engine_cache_stats(self, trees):
        engine = XPathEngine(trees)
        engine.query("//NP")
        assert engine.cache_stats()["misses"] == 1
