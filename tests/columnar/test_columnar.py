"""Unit tests for the columnar store and batch executor."""

import pytest
from hypothesis import given, settings

from repro.columnar import ColumnStore, ColumnarCatalog
from repro.labeling import label_corpus
from repro.lpath import LPathEngine, LPathError
from repro.tree import figure1_tree
from repro.xpath import XPathEngine
from tests.strategies import corpora


def figure1_store() -> ColumnStore:
    return ColumnStore.from_rows(label_corpus([figure1_tree()]))


class TestColumnStore:
    def test_clustered_order(self):
        store = figure1_store()
        keys = [
            (store.names[row], store.tid[row], store.left[row], store.right[row],
             store.depth[row], store.id[row], store.pid[row])
            for row in range(len(store))
        ]
        assert keys == sorted(keys)

    def test_name_blocks_partition_rows(self):
        store = figure1_store()
        covered = []
        for name, (lo, hi) in store.name_bounds.items():
            covered.extend(range(lo, hi))
            assert all(store.names[row] == name for row in range(lo, hi))
        assert sorted(covered) == list(range(len(store)))

    def test_clustered_range_matches_bruteforce(self):
        store = figure1_store()
        for low, high in ((None, None), (1, 4), (2, None), (None, 3)):
            rows = list(store.clustered_range("NP", 0, low, high))
            expected = [
                row
                for row in range(len(store))
                if store.names[row] == "NP" and store.tid[row] == 0
                and (low is None or store.left[row] >= low)
                and (high is None or store.left[row] <= high)
            ]
            assert rows == expected, (low, high)

    def test_exclusive_bounds(self):
        store = figure1_store()
        inclusive = set(store.clustered_range("NP", 0, 1, 4))
        exclusive = set(store.clustered_range("NP", 0, 1, 4, False, False))
        assert exclusive <= inclusive
        for row in inclusive - exclusive:
            assert store.left[row] in (1, 4)

    def test_tid_rows_sorted_by_id(self):
        store = figure1_store()
        rows = store.tid_rows(0)
        assert len(rows) == len(store)
        ids = [store.id[row] for row in rows]
        assert ids == sorted(ids)
        assert list(store.tid_rows(99)) == []

    def test_tid_id_rows_finds_element_and_attributes(self):
        store = figure1_store()
        for row in range(len(store)):
            matches = store.tid_id_rows(store.tid[row], store.id[row])
            assert row in matches
            assert all(store.id[m] == store.id[row] for m in matches)

    def test_bitmaps(self):
        store = figure1_store()
        for row in range(len(store)):
            assert bool(store.is_attr[row]) == store.names[row].startswith("@")
            assert bool(store.right_edge[row]) == (
                store.right[row] == store.root_right[store.tid[row]]
            )

    def test_value_rows(self):
        store = figure1_store()
        rows = list(store.value_rows("saw"))
        assert rows and all(store.values[row] == "saw" for row in rows)
        assert list(store.value_rows("saw", tid=0)) == rows
        assert list(store.value_rows("saw", tid=9)) == []
        assert list(store.value_rows("no-such-word")) == []

    def test_string_value_matches_volcano(self):
        trees = [figure1_tree()]
        engine = LPathEngine(trees)
        store = engine._compiler.columnar_runtime.store
        volcano = engine._compiler.runtime
        for row in range(len(store)):
            row_tuple = tuple(store.col(position)[row] for position in range(8))
            assert store.string_value(row) == volcano.string_value(row_tuple)

    @given(corpora(max_trees=3, max_depth=4))
    @settings(max_examples=15, deadline=None)
    def test_frequency_matches_rows(self, trees):
        rows = list(label_corpus(trees))
        store = ColumnStore.from_rows(rows)
        assert store.frequency(None) == len(rows)
        for name in {row.name for row in rows}:
            assert store.frequency(name) == sum(1 for row in rows if row.name == name)

    def test_iter_rows_round_trips(self):
        rows = sorted(
            tuple(row) for row in label_corpus([figure1_tree()])
        )
        store = ColumnStore.from_rows(label_corpus([figure1_tree()]))
        assert sorted(store.iter_rows()) == rows


class TestColumnarCatalog:
    def test_access_paths(self):
        catalog = ColumnarCatalog(figure1_store())
        clustered = catalog.access_path(("name", "tid"), "left")
        assert clustered.index.name == "clustered"
        assert clustered.range_column == "left"
        by_id = catalog.access_path(("tid", "id"), None)
        assert by_id.index.name == "idx_tid_id"
        assert catalog.access_path(("value",), None) is None

    def test_size_and_frequency(self):
        store = figure1_store()
        catalog = ColumnarCatalog(store)
        assert catalog.size() == len(store)
        assert catalog.frequency("NP") == store.frequency("NP")


class TestColumnarExecutor:
    def test_rejects_unknown_executor(self):
        with pytest.raises(LPathError):
            LPathEngine([figure1_tree()], executor="gpu")
        with pytest.raises(LPathError):
            XPathEngine([figure1_tree()], executor="gpu")

    def test_engine_level_default(self):
        engine = LPathEngine([figure1_tree()], executor="columnar")
        assert engine.query("//NP") == engine.query("//NP", executor="volcano")

    def test_nodes_accepts_executor(self):
        engine = LPathEngine([figure1_tree()])
        assert [node.label for node in engine.nodes("//NP", executor="columnar")] == [
            node.label for node in engine.nodes("//NP")
        ]

    @given(corpora(max_trees=3, max_depth=4))
    @settings(max_examples=10, deadline=None)
    def test_ablation_index_probes(self, trees):
        """extra_indexes engines route immediate-preceding probes through
        the (name, tid, right) ablation index; the columnar executor must
        serve them through a generic sorted projection."""
        engine = LPathEngine(trees, extra_indexes=True)
        for query in ("//NP<-V", "//NP<=V", "//N<-Det"):
            expected = engine.query(query, backend="treewalk")
            assert engine.query(query, executor="volcano") == expected, query
            assert engine.query(query, executor="columnar") == expected, query

    def test_columnar_explain_mentions_batches(self):
        engine = LPathEngine([figure1_tree()])
        text = engine.explain("//S//NP", executor="columnar")
        assert "ColumnarJoin" in text and "ColumnarScan" in text

    def test_compiled_plans_are_reiterable(self):
        engine = LPathEngine([figure1_tree()])
        compiled = engine.compile("//NP", executor="columnar")
        assert list(compiled.rows()) == list(compiled.rows())
        assert compiled.count() == len(list(compiled.rows()))
