"""MappedColumnStore must be observably identical to a built ColumnStore.

The zero-copy store answers every probe from memoryviews, sidecar
directories and binary search instead of Python dicts built by an O(rows)
load — this suite pins the two implementations together surface-by-
surface over fuzzed corpora, so any drift in the LPDB0004 writer, the
sidecar parser or the shims shows up as a concrete probe mismatch rather
than a wrong query result three layers up.
"""

from __future__ import annotations

import io

import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro import store
from repro.columnar.store import ColumnStore, MappedColumnStore
from repro.labeling import label_corpus
from repro.tree import figure1_tree
from tests.strategies import corpora


def mapped_and_built(rows, segments=1):
    """Per-segment ``(mapped, built)`` store pairs for one corpus."""
    buffer = io.BytesIO()
    store.save_labels(rows, buffer, segments=segments, format="lpdb0004")
    mapped_segments = store._parse_mapped(buffer.getvalue(), [])
    shards = (
        store.partition_rows_by_tid(rows, segments)
        if segments > 1 else [list(rows)]
    )
    return [
        (MappedColumnStore(segment), ColumnStore.from_rows(shard))
        for segment, shard in zip(mapped_segments, shards)
    ]


def assert_stores_equal(mapped: MappedColumnStore, built: ColumnStore):
    assert mapped.n == built.n
    for attr in ("tid", "left", "right", "depth", "id", "pid"):
        assert list(getattr(mapped, attr)) == list(getattr(built, attr)), attr
    assert list(mapped.names) == built.names
    assert list(mapped.values) == built.values
    assert bytes(mapped.is_attr) == bytes(built.is_attr)
    assert bytes(mapped.right_edge) == bytes(built.right_edge)
    assert mapped.root_right == built.root_right
    assert mapped.name_bounds == built.name_bounds
    assert mapped.tid_bounds == built.tid_bounds
    assert list(mapped.tid_id_perm) == list(built.tid_id_perm)
    assert list(mapped.children_perm) == list(built.children_perm)
    assert mapped.tree_count() == built.tree_count()

    for key, bounds in built.name_tid_bounds.items():
        assert mapped.name_tid_bounds.get(key) == bounds, key
        assert mapped.name_tid_bounds[key] == bounds
        assert key in mapped.name_tid_bounds
    assert mapped.name_tid_bounds.get(("no-such-name", 0), (0, 0)) == (0, 0)
    assert ("no-such-name", 0) not in mapped.name_tid_bounds

    for key, bounds in built.children_bounds.items():
        assert mapped.children_bounds.get(key) == bounds, key
    assert mapped.children_bounds.get((10 ** 9, 0), (0, 0)) == (0, 0)

    for name in list(built.name_bounds) + [None, "no-such-name"]:
        assert mapped.name_stats(name) == built.name_stats(name), name
        assert mapped.frequency(name) == built.frequency(name), name
        if name is not None:
            assert mapped.name_block(name) == built.name_block(name)

    for tid in built.tid_bounds:
        assert list(mapped.tid_rows(tid)) == list(built.tid_rows(tid))
        for node_id in set(built.id):
            assert list(mapped.tid_id_rows(tid, node_id)) == list(
                built.tid_id_rows(tid, node_id)
            )
            assert list(mapped.children_rows(tid, node_id)) == list(
                built.children_rows(tid, node_id)
            )
        for name in built.name_bounds:
            assert mapped.name_tid_block(name, tid) == built.name_tid_block(
                name, tid
            )
            assert mapped.clustered_range(name, tid, 1, 7) == \
                built.clustered_range(name, tid, 1, 7)

    for row in range(built.n):
        assert mapped.string_value(row) == built.string_value(row), row

    built_values = {
        value: (list(tids), list(rows_))
        for value, (tids, rows_) in built.by_value.items()
    }
    mapped_values = {
        value: (list(tids), list(rows_))
        for value, (tids, rows_) in mapped.by_value.items()
    }
    assert mapped_values == built_values


class TestMappedStoreEquivalence:
    def test_figure1_single_segment(self):
        rows = list(label_corpus([figure1_tree()]))
        for mapped, built in mapped_and_built(rows):
            assert_stores_equal(mapped, built)

    def test_figure1_sharded(self):
        rows = list(label_corpus([figure1_tree(tid=t) for t in range(5)]))
        for mapped, built in mapped_and_built(rows, segments=3):
            assert_stores_equal(mapped, built)

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_random_corpora(self, data):
        trees = data.draw(corpora(max_trees=4, max_depth=4), label="corpus")
        rows = list(label_corpus(trees))
        segments = data.draw(st.sampled_from([1, 2, 3]), label="segments")
        for mapped, built in mapped_and_built(rows, segments=segments):
            assert_stores_equal(mapped, built)

    def test_string_column_interning(self):
        rows = list(label_corpus([figure1_tree()]))
        (mapped, _built), = mapped_and_built(rows)
        block = mapped.name_block("NP")
        first = mapped.names[block[0]]
        # Same table entry object on every access — interning for free.
        assert all(mapped.names[row] is first for row in block)
        assert len(mapped.names) == mapped.n
        assert list(iter(mapped.names)) == list(mapped.names)


class TestMappedEngineSurface:
    """Engine-level seams specific to the mapped path."""

    def test_from_store_mmap_rejects_non_mmap_file(self, tmp_path):
        from repro.lpath import LPathEngine

        path = tmp_path / "old.lpdb"
        store.save_corpus([figure1_tree()], str(path))
        with pytest.raises(store.StoreError):
            LPathEngine.from_store_mmap(str(path))

    def test_bad_mode_rejected(self, tmp_path):
        from repro.lpath import LPathEngine
        from repro.lpath.errors import LPathError

        path = tmp_path / "c.lpdb"
        store.save_corpus([figure1_tree()], str(path), format="lpdb0004")
        with pytest.raises(LPathError, match="mode"):
            LPathEngine.from_store_mmap(str(path), mode="fibers")

    def test_engine_close_unmaps_and_is_idempotent(self, tmp_path):
        from repro.lpath import LPathEngine
        from repro.lpath.errors import LPathError

        path = tmp_path / "c.lpdb"
        store.save_corpus(
            [figure1_tree(tid=t) for t in range(4)], str(path),
            segments=2, format="lpdb0004",
        )
        engine = LPathEngine.from_store_mmap(str(path), workers=2,
                                             mode="thread")
        compiled = engine.compile("//NP")
        assert engine.query("//NP")
        engine.close()
        engine.close()
        with pytest.raises(LPathError, match="closed"):
            engine.query("//NP")
        # A stale compiled plan reads released views: loud, not garbage.
        with pytest.raises(ValueError):
            list(compiled.rows())

    def test_explain_and_cache_work_on_mapped_engines(self, tmp_path):
        from repro.lpath import LPathEngine

        path = tmp_path / "c.lpdb"
        store.save_corpus(
            [figure1_tree(tid=t) for t in range(4)], str(path),
            segments=2, format="lpdb0004",
        )
        with LPathEngine.from_store_mmap(str(path)) as engine:
            text = engine.explain("//VP//NP")
            assert "logical plan:" in text
            assert "x2 segments" in text
            first = engine.compile("//NP")
            assert engine.compile("//NP") is first
            assert engine.cache_stats()["hits"] == 1
