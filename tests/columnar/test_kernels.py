"""Unit tests for the native cffi kernel layer.

Covers the mode/backend resolution contract (``REPRO_KERNELS``), the
dual-backend byte-identity of every kernel entry point (joins, scans,
k-way merge, output gather), the edge cases the C side must survive
(empty batches, single-node trees, absent names, scan-only plans), the
plan-cache keying on the resolved backend, and the raw
:meth:`ColumnStore.column_ptr` surface including released-view failure.

Every dual-backend test runs even when the extension is unavailable —
it degrades to python-vs-python, keeping the suite green on toolchains
without a C compiler (the ``needs_native`` cases skip instead).
"""

from __future__ import annotations

import heapq
import os
from array import array
from contextlib import contextmanager

import pytest

from repro.columnar import ColumnStore
from repro.columnar.kernels import (
    KERNEL_MODES,
    KERNELS_ENV,
    kernel_info,
    kernel_mode,
    kernels_backend,
    native_kernels,
)
from repro.columnar.kernels import api
from repro.columnar.structural import FORCE_ENV
from repro.labeling.lpath_scheme import label_corpus
from repro.lpath import LPathEngine
from repro.lpath.errors import LPathError
from repro.tree import iter_trees

NATIVE = native_kernels() is not None

needs_native = pytest.mark.skipif(
    not NATIVE, reason="cffi extension unavailable"
)

#: Both real backends when the extension built, else python twice (the
#: identity checks still run; they just stop being cross-backend).
BACKENDS = ("python", "native") if NATIVE else ("python",)

CORPUS = """
( (S (NP (Det the) (N dog)) (VP (V saw) (NP (NP (Det a) (N man)) (PP (Prep with) (NP (N today)))))) )
( (S (NP I) (VP (V ran))) )
( (S hi) )
( (S (NP (N rice)) (VP (V grows))) )
"""

#: Shapes the kernels must get exactly right: every merge strategy,
#: scan-only plans, absent names (empty batches end to end), residual
#: row checks that force the interpreted fallback, and attribute values.
QUERIES = [
    "//S//NP",                    # sweep
    "//NP/N",                     # sweep (child, bounded)
    "//V==>NP",                   # sweep without a high bound
    "//Det\\ancestor::S",         # stack
    "//V<--NP",                   # prefix
    "//NP",                       # scan only, no join
    "//NOPE",                     # absent name: empty scan batch
    "//NOPE//NP",                 # empty outer batch into a join
    "//S//NOPE",                  # empty partition on the join side
    "//S//NP[//Det]",             # row-level residual (python fallback)
    "//N[@lex=rice]",             # attribute filter
]


@contextmanager
def kernels_env(value):
    """Pin (or clear, with ``None``) the ``REPRO_KERNELS`` override."""
    previous = os.environ.get(KERNELS_ENV)
    if value is None:
        os.environ.pop(KERNELS_ENV, None)
    else:
        os.environ[KERNELS_ENV] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(KERNELS_ENV, None)
        else:
            os.environ[KERNELS_ENV] = previous


@contextmanager
def forced_join(mode):
    previous = os.environ.get(FORCE_ENV)
    os.environ[FORCE_ENV] = mode
    try:
        yield
    finally:
        if previous is None:
            del os.environ[FORCE_ENV]
        else:
            os.environ[FORCE_ENV] = previous


@pytest.fixture(scope="module")
def trees():
    return list(iter_trees(CORPUS))


@pytest.fixture(scope="module")
def engine(trees):
    return LPathEngine(trees)


class TestModeResolution:
    def test_default_and_empty_mean_auto(self):
        with kernels_env(None):
            assert kernel_mode() == "auto"
        with kernels_env(""):
            assert kernel_mode() == "auto"

    def test_explicit_modes_round_trip(self):
        for mode in KERNEL_MODES:
            with kernels_env(mode):
                assert kernel_mode() == mode

    def test_invalid_value_rejected(self):
        with kernels_env("fast"):
            with pytest.raises(LPathError, match=KERNELS_ENV):
                kernel_mode()

    def test_invalid_value_rejected_through_engine(self, engine):
        with kernels_env("turbo"):
            with pytest.raises(LPathError, match=KERNELS_ENV):
                engine.query("//S//NP", executor="columnar")

    def test_backend_resolution(self):
        with kernels_env("python"):
            assert kernels_backend() == "python"
        with kernels_env("auto"):
            assert kernels_backend() == ("native" if NATIVE else "python")

    def test_forced_native_raises_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(api, "_NATIVE", None)
        monkeypatch.setattr(api, "_LOADED", True)
        monkeypatch.setattr(api, "_NATIVE_ERROR", "simulated build failure")
        with kernels_env("native"):
            with pytest.raises(LPathError, match="simulated build failure"):
                kernels_backend()
        with kernels_env("auto"):  # auto degrades instead of raising
            assert kernels_backend() == "python"

    def test_kernel_info_never_raises(self):
        info = kernel_info()
        assert set(info) == {
            "mode", "backend", "native_available", "error", "cffi",
        }
        assert info["backend"] in ("native", "python")
        assert info["native_available"] is NATIVE


class TestDualBackendIdentity:
    @pytest.mark.parametrize("query", QUERIES)
    def test_results_identical_across_backends(self, engine, query):
        expected = engine.query(query, backend="treewalk")
        for backend in BACKENDS:
            with kernels_env(backend):
                for force in (None, "merge", "probe"):
                    if force is None:
                        got = engine.query(query, executor="columnar")
                    else:
                        with forced_join(force):
                            got = engine.query(query, executor="columnar")
                    assert got == expected, (query, backend, force)

    def test_single_node_trees(self):
        tiny = list(iter_trees("( (S hi) )\n( (X y) )"))
        engine = LPathEngine(tiny)
        for query in ("//S", "//S//NP", "//X\\ancestor::S"):
            expected = engine.query(query, backend="treewalk")
            for backend in BACKENDS:
                with kernels_env(backend), forced_join("merge"):
                    got = engine.query(query, executor="columnar")
                assert got == expected, (query, backend)

    @needs_native
    def test_explain_names_the_backend(self, engine):
        with forced_join("merge"):
            with kernels_env("native"):
                plan = engine.explain("//S//NP", executor="columnar")
                assert "[merge/native" in plan and "kernel=native" in plan
            with kernels_env("python"):
                plan = engine.explain("//S//NP", executor="columnar")
                assert "[merge/python" in plan and "kernel=python" in plan

    @needs_native
    def test_residual_checks_fall_back_to_python(self, engine):
        # A row-level exists residual is outside the native contract;
        # the step must keep the interpreted loop even under native.
        with forced_join("merge"), kernels_env("native"):
            plan = engine.explain("//S//NP[//Det]", executor="columnar")
            assert "kernel=python" in plan


class TestPlanCacheKey:
    def test_kernels_backend_keys_the_plan_cache(self, engine):
        with kernels_env("python"):
            python_plan = engine.compile("//S//V", executor="columnar")
        with kernels_env("auto"):
            auto_plan = engine.compile("//S//V", executor="columnar")
        if NATIVE:
            # Resolved backends differ, so the cache must miss.
            assert python_plan is not auto_plan
        else:
            # Both resolve to python: one entry serves both spellings.
            assert python_plan is auto_plan


class TestMergePacked:
    @staticmethod
    def _pack(pairs):
        flat = array("q")
        for pair in pairs:
            flat.extend(pair)
        return flat.tobytes()

    def _heap_reference(self, blobs):
        unpacked = []
        for blob in blobs:
            values = array("q")
            values.frombytes(blob)
            unpacked.append(
                [(values[i], values[i + 1]) for i in range(0, len(values), 2)]
            )
        return list(heapq.merge(*unpacked))

    @needs_native
    def test_matches_heapq_merge(self):
        blobs = [
            self._pack([(1, 5), (2, 9), (7, 0)]),
            self._pack([(0, 3), (2, 1), (2, 9)]),
            self._pack([]),
            self._pack([(2, 9)]),
        ]
        with kernels_env("native"):
            merged = api.merge_packed_pairs(blobs)
        assert merged == self._heap_reference(blobs)

    @needs_native
    def test_empty_inputs(self):
        with kernels_env("native"):
            assert api.merge_packed_pairs([]) == []
            assert api.merge_packed_pairs([self._pack([])]) == []

    def test_python_backend_declines(self):
        with kernels_env("python"):
            assert api.merge_packed_pairs([self._pack([(1, 2)])]) is None

    @needs_native
    def test_negative_and_large_values(self):
        blobs = [
            self._pack([(-(1 << 40), 1), (1 << 40, -2)]),
            self._pack([(-(1 << 40), 0)]),
        ]
        with kernels_env("native"):
            assert api.merge_packed_pairs(blobs) == self._heap_reference(blobs)


class TestColumnPtr:
    @pytest.fixture(scope="class")
    def store(self, trees):
        return ColumnStore.from_rows(label_corpus(trees))

    @needs_native
    def test_integer_columns_expose_raw_pointers(self, store):
        for position in range(6):  # tid, left, right, depth, id, pid
            pointer, length = store.column_ptr(position)
            assert length == store.n
            column = store.col(position)
            assert [pointer[i] for i in range(length)] == list(column)

    @needs_native
    def test_string_columns_rejected(self, store):
        for position in (6, 7):  # names, values
            with pytest.raises(TypeError):
                store.column_ptr(position)

    def test_unavailable_extension_raises_runtime_error(
        self, store, monkeypatch
    ):
        monkeypatch.setattr(api, "_NATIVE", None)
        monkeypatch.setattr(api, "_LOADED", True)
        monkeypatch.setattr(api, "_NATIVE_ERROR", "no compiler")
        with pytest.raises(RuntimeError, match="no compiler"):
            store.column_ptr(0)

    @needs_native
    def test_released_view_raises_value_error(self):
        view = memoryview(array("q", [1, 2, 3]))
        view.release()
        with pytest.raises(ValueError):
            api.column_pointer(view, 3)

    @needs_native
    def test_mmap_store_views_fail_loudly_after_close(self, trees, tmp_path):
        from repro import store as store_module
        from repro.columnar.store import MappedColumnStore

        path = str(tmp_path / "corpus.lpdb")
        with open(path, "wb") as handle:
            store_module.save_labels(
                list(label_corpus(trees)), handle, format="lpdb0004"
            )
        corpus = store_module.open_mapped_corpus(path)
        mapped = MappedColumnStore(corpus.segments[0])
        pointer, length = mapped.column_ptr(0)
        assert length == mapped.n
        del pointer  # column_ptr pins the view; release before close
        corpus.close()
        with pytest.raises(ValueError):
            mapped.column_ptr(0)
