"""Tests for the baseline XPath engine (Figure 10's comparator)."""

import pytest
from hypothesis import given, settings

from repro.lpath import LPathCompileError, LPathEngine
from repro.tree import figure1_tree
from repro.xpath import XPATH_AXES, VERTICAL_FRAGMENT, XPathEngine
from tests.strategies import corpora

#: Queries in the [11] vertical fragment (the Figure 10 class).
VERTICAL_QUERIES = [
    "//NP",
    "//S",
    "//NP/N",
    "//S//V",
    "//NP/_",
    "//N\\NP",
    "//Det\\ancestor::S",
    "/S/NP",
    "//S[//_[@lex=saw]]",
    "//_[@lex=dog]",
    "//NP[not(//Adj)]",
    "//S[//NP/Det]",
    "//NP/NP",
    "//_[name()=VP]",
    "//NP[//Det and //N]",
    "//N/@lex",
]

#: XPath-expressible but outside the [11] vertical fragment.
HORIZONTAL_QUERIES = [
    "//V/following-sibling::NP",
    "//NP/preceding-sibling::V",
    "//V/following::N",
    "//N/preceding::V",
]


@pytest.fixture(scope="module")
def engines():
    trees = [figure1_tree()]
    return XPathEngine(trees), LPathEngine(trees)


class TestAgainstLPathEngine:
    @pytest.mark.parametrize("query", VERTICAL_QUERIES)
    def test_same_results_as_lpath_engine(self, engines, query):
        xpath_engine, lpath_engine = engines
        assert xpath_engine.query(query) == lpath_engine.query(query)

    @pytest.mark.parametrize("query", HORIZONTAL_QUERIES)
    def test_full_xpath_axes_agree_when_enabled(self, query):
        trees = [figure1_tree()]
        full = XPathEngine(trees, axes=XPATH_AXES)
        lpath_engine = LPathEngine(trees)
        assert full.query(query) == lpath_engine.query(query)

    @given(corpora(max_trees=3, max_depth=4))
    @settings(max_examples=15, deadline=None)
    def test_random_corpora_agree(self, trees):
        xpath_engine = XPathEngine(trees, axes=XPATH_AXES)
        lpath_engine = LPathEngine(trees)
        for query in VERTICAL_QUERIES + HORIZONTAL_QUERIES:
            assert xpath_engine.query(query) == lpath_engine.query(query), query


class TestExpressivenessBoundary:
    """Lemma 3.1 plus the [11] fragment restriction."""

    @pytest.mark.parametrize(
        "query",
        [
            "//V->NP",            # immediate-following
            "//NP<-V",            # immediate-preceding
            "//V=>NP",            # immediate-following-sibling
            "//NP<=V",            # immediate-preceding-sibling
            "//VP{/V}",           # subtree scoping
            "//VP{//NP$}",        # edge alignment + scoping
            "//^NP",              # left alignment
            "//NP$",              # right alignment
            "//S[//V->NP]",       # LPath axis nested in a predicate
            "//S[{//V}]",         # scope nested in a predicate
        ],
    )
    def test_lpath_only_features_rejected(self, engines, query):
        xpath_engine, _ = engines
        with pytest.raises(LPathCompileError):
            xpath_engine.query(query)

    @pytest.mark.parametrize("query", HORIZONTAL_QUERIES)
    def test_vertical_fragment_rejects_horizontal_axes(self, engines, query):
        xpath_engine, _ = engines
        with pytest.raises(LPathCompileError):
            xpath_engine.query(query)

    def test_eleven_of_paper_queries_supported(self, engines):
        """The paper's Figure 10 count: exactly 11 of the 23 Fig 6(c)
        queries run on the XPath-labeling engine."""
        from tests.lpath.test_parser import PAPER_QUERIES

        xpath_engine, _ = engines
        supported = []
        for query in PAPER_QUERIES:
            try:
                xpath_engine.query(query)
                supported.append(query)
            except LPathCompileError:
                pass
        assert len(supported) == 11

    def test_fragment_is_subset(self):
        assert VERTICAL_FRAGMENT < XPATH_AXES


class TestDuplicateTids:
    def test_rejected(self):
        from repro.lpath import LPathError

        with pytest.raises(LPathError):
            XPathEngine([figure1_tree(tid=2), figure1_tree(tid=2)])
