"""Unit tests for the deterministic fault-injection harness
(:mod:`repro.faults`): spec parsing is strict, draws are reproducible
from the seed, and every helper stays inert when faults are off."""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import (
    FAULT_POINTS,
    FAULTS_ENV,
    FaultConfigError,
    FaultSpec,
    Injector,
    parse_fault_specs,
)


class TestSpecParsing:
    def test_single_spec(self):
        specs = parse_fault_specs("worker_kill:0.25:7")
        assert specs == {
            "worker_kill": FaultSpec("worker_kill", 0.25, 7)
        }

    def test_multiple_specs_with_whitespace(self):
        specs = parse_fault_specs(
            " mmap_read_error:1.0:3 , segment_slow:0.5:3 ,"
        )
        assert set(specs) == {"mmap_read_error", "segment_slow"}
        assert specs["segment_slow"].probability == 0.5

    @pytest.mark.parametrize("raw, fragment", [
        ("worker_kill", "expected point:prob:seed"),
        ("worker_kill:0.5", "expected point:prob:seed"),
        ("worker_kill:0.5:1:extra", "expected point:prob:seed"),
        ("unknown_point:0.5:1", "unknown fault point"),
        ("worker_kill:maybe:1", "probability"),
        ("worker_kill:1.5:1", "must be in [0, 1]"),
        ("worker_kill:-0.1:1", "must be in [0, 1]"),
        ("worker_kill:0.5:soon", "seed"),
        ("worker_kill:0.5:1,worker_kill:0.5:2", "duplicate"),
    ])
    def test_malformed_specs_raise(self, raw, fragment):
        with pytest.raises(FaultConfigError) as failure:
            parse_fault_specs(raw)
        assert fragment in str(failure.value)

    def test_every_documented_point_parses(self):
        raw = ",".join(f"{point}:0.1:1" for point in FAULT_POINTS)
        assert set(parse_fault_specs(raw)) == set(FAULT_POINTS)


class TestInjectorDeterminism:
    def test_same_seed_same_firing_sequence(self):
        draws = []
        for _ in range(2):
            injector = Injector(parse_fault_specs("socket_reset:0.3:42"))
            draws.append(
                [injector.fires("socket_reset") for _ in range(64)]
            )
        assert draws[0] == draws[1]
        # A 0.3 probability over 64 draws fires sometimes, not always.
        assert 0 < sum(draws[0]) < 64

    def test_different_seeds_differ(self):
        def sequence(seed: int) -> list[bool]:
            injector = Injector(
                parse_fault_specs(f"socket_reset:0.5:{seed}")
            )
            return [injector.fires("socket_reset") for _ in range(64)]

        assert sequence(1) != sequence(2)

    def test_probability_extremes(self):
        injector = Injector(
            parse_fault_specs("worker_kill:1.0:1,segment_slow:0.0:1")
        )
        assert all(injector.fires("worker_kill") for _ in range(8))
        assert not any(injector.fires("segment_slow") for _ in range(8))

    def test_inactive_point_never_fires_or_counts(self):
        injector = Injector(parse_fault_specs("worker_kill:1.0:1"))
        assert injector.fires("cache_poison") is False
        assert injector.counts() == {}

    def test_counts_track_checkpoint_passes(self):
        injector = Injector(parse_fault_specs("socket_reset:0.0:1"))
        for _ in range(5):
            injector.fires("socket_reset")
        assert injector.counts() == {"socket_reset": 5}


class TestEnvironmentActivation:
    def test_unset_env_means_no_injector(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert faults.active_injector() is None
        assert faults.fires("worker_kill") is False
        assert faults.fault_counts() == {}
        # Inert helpers: no sleep, no kill, no error, no mutation.
        faults.maybe_delay_segment()
        faults.maybe_mmap_read_error()
        assert faults.maybe_reset_socket() is False
        rows = ((1, 2), (3, 4))
        assert faults.poisoned_rows(rows) is rows

    def test_env_change_rebuilds_injector(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "socket_reset:0.0:1")
        first = faults.active_injector()
        monkeypatch.setenv(FAULTS_ENV, "socket_reset:0.0:2")
        second = faults.active_injector()
        assert first is not second
        assert second.specs["socket_reset"].seed == 2

    def test_malformed_env_raises_config_error(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "nope")
        with pytest.raises(FaultConfigError):
            faults.active_injector()


class TestHelpers:
    def test_mmap_read_error_raises_oserror(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "mmap_read_error:1.0:1")
        with pytest.raises(OSError) as failure:
            faults.maybe_mmap_read_error()
        assert "injected fault" in str(failure.value)

    def test_poisoned_rows_differ_but_keep_shape(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "cache_poison:1.0:1")
        rows = ((1, 2), (3, 4))
        poisoned = faults.poisoned_rows(rows)
        assert poisoned != rows
        assert len(poisoned) == len(rows)
        # Aggregate-shaped and empty results are corrupted too: any
        # cached entry must be detectably wrong when the point fires.
        assert faults.poisoned_rows((("NP", 7),)) != (("NP", 7),)
        assert faults.poisoned_rows(()) != ()

    def test_reset_socket_reports_the_draw(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "socket_reset:1.0:1")
        assert faults.maybe_reset_socket() is True
