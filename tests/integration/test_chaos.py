"""The chaos matrix: every fault point in :mod:`repro.faults`, pinned
seeds, driven end-to-end through the daemon.

The invariant under test is the whole PR's contract: under injected
faults every response is **byte-identical to the fault-free run** or a
**cleanly classified error** (429/503/504 with transient marking — never
a traceback, never a 500, never silently wrong rows), and the daemon
itself never dies (``/healthz`` answers ``ok`` after every storm)."""

from __future__ import annotations

import pytest

from repro import store
from repro.corpus import generate_corpus
from repro.serve import (
    QueryServer,
    QueryService,
    ServeClient,
    ServeClientError,
)

#: The workload: a mix of scans, nested paths, a filter, and an
#: aggregate — each run twice so the cache layer is always in play.
WORKLOAD = (
    {"query": "//NP"},
    {"query": "//VP//NP"},
    {"query": "//S//NP//WHPP"},
    {"query": "//_[.//NP]//VB"},
    {"query": "//NP", "top_k": 5},
    {"query": "//VP//NP", "agg": "count"},
)

#: 0 is the client's classified transport failure — what a bounded
#: retry budget correctly reports when every attempt got reset.
CLEAN_STATUSES = (0, 429, 503, 504)


@pytest.fixture(scope="module")
def chaos_store(tmp_path_factory) -> str:
    trees = list(generate_corpus("wsj", sentences=30, seed=3))
    path = tmp_path_factory.mktemp("chaos") / "corpus.lpdb"
    store.save_corpus(trees, str(path), segments=2, format="lpdb0004")
    return str(path)


@pytest.fixture(scope="module")
def baseline(chaos_store) -> dict:
    with QueryService(chaos_store, workers=2) as service:
        with QueryServer(service).start() as server:
            with ServeClient(server.url, max_retries=0) as client:
                return _run_workload(client)[0]


def _run_workload(client) -> tuple[dict, list]:
    """Execute the workload twice; returns the answers keyed by request
    plus the clean-error list (anything unclean raises out)."""
    answers: dict = {}
    errors: list = []
    for _round in range(2):
        for request in WORKLOAD:
            key = tuple(sorted(request.items()))
            try:
                if "agg" in request:
                    answer = client.aggregate(
                        request["query"], agg=request["agg"]
                    )
                else:
                    answer = client.query(
                        request["query"], top_k=request.get("top_k")
                    )
            except ServeClientError as error:
                assert error.status in CLEAN_STATUSES, (
                    f"unclassified failure for {request}: "
                    f"{error.status} {error}"
                )
                assert error.transient is True
                assert "Traceback" not in str(error)
                errors.append((key, error.status))
                continue
            if key in answers:
                assert answer == answers[key], (
                    f"non-deterministic answer for {request}"
                )
            answers[key] = answer
    return answers, errors


def _assert_answers_match(answers: dict, baseline: dict) -> None:
    for key, answer in answers.items():
        assert answer == baseline[key], f"divergent rows for {dict(key)}"


class TestChaosMatrix:
    @pytest.mark.parametrize("faults, service_options, client_options", [
        # Workers die under the executor: respawn/retry/degrade only —
        # answers must come back identical with no client retries at all.
        ("worker_kill:0.3:11", {"workers": 2, "mode": "process"}, {}),
        # Slow segments: latency chaos, zero correctness impact.
        ("segment_slow:0.5:3", {"workers": 2}, {}),
        # Failing mmap reads: clean 503s (breaker/quarantine may engage),
        # every successful answer still byte-identical.
        (
            "mmap_read_error:0.3:7",
            {"store_retry_after": 0.05},
            {"max_retries": 4, "backoff_base": 0.02, "backoff_cap": 0.2},
        ),
        # Dropped connections: the client's reconnect/backoff absorbs
        # every reset.
        (
            "socket_reset:0.4:42",
            {},
            {"max_retries": 6, "backoff_base": 0.01, "backoff_cap": 0.1},
        ),
        # Poisoned cache entries: the integrity digest catches each one
        # and re-executes — corruption can never reach the client.
        ("cache_poison:1.0:5", {}, {}),
        # Everything at once.
        (
            "worker_kill:0.2:11,segment_slow:0.3:3,mmap_read_error:0.2:7,"
            "socket_reset:0.3:42,cache_poison:0.5:5",
            {"workers": 2, "mode": "process", "store_retry_after": 0.05},
            {"max_retries": 6, "backoff_base": 0.02, "backoff_cap": 0.2},
        ),
    ], ids=[
        "worker_kill", "segment_slow", "mmap_read_error", "socket_reset",
        "cache_poison", "all_points",
    ])
    def test_answers_identical_or_cleanly_classified(
        self, chaos_store, baseline, monkeypatch,
        faults, service_options, client_options,
    ):
        monkeypatch.setenv("REPRO_FAULTS", faults)
        with QueryService(chaos_store, **service_options) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url, **client_options) as client:
                    answers, errors = _run_workload(client)
                    _assert_answers_match(answers, baseline)
                    # The daemon survived the storm.
                    assert client.health() == {"status": "ok"}
                    stats = client.stats()
                    assert stats["server"]["uptime_seconds"] >= 0
        if "cache_poison:1.0" in faults:
            assert stats["result_cache"]["integrity_failures"] >= 1

    def test_fault_free_matrix_run_matches_itself(
        self, chaos_store, baseline, monkeypatch
    ):
        # The control arm: no faults, same workload, answers match the
        # module baseline (guards against a flaky baseline fixture).
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        with QueryService(chaos_store, workers=2) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url, max_retries=0) as client:
                    answers, errors = _run_workload(client)
        assert errors == []
        _assert_answers_match(answers, baseline)
        assert set(answers) == set(baseline)
