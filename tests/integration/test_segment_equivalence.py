"""Differential sweep: segmented engines must equal the monolithic one.

For random corpora and random queries (the tests/strategies.py
generators), sharding the corpus must be invisible in the results:

* the LPath engine at 1, 2, 3 and 7 segments — both physical executors,
  with and without a worker pool — must return exactly the monolithic
  engine's ``(tid, id)`` lists;
* the same holds for the XPath engine on the start/end-expressible
  fragment;
* a corpus round-tripped through the segmented ``LPDB0003`` store format
  (and loaded shard-by-shard into a columnar-only ``from_columns``
  engine) must also agree exactly.

``REPRO_FUZZ_EXAMPLES`` scales the hypothesis example budget like the
main differential-fuzz harness.
"""

from __future__ import annotations

import io
import os

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import store
from repro.labeling import label_corpus
from repro.lpath import LPathEngine
from repro.xpath import XPATH_AXES, XPathEngine
from tests.strategies import corpora, lpath_queries, xpath_queries

FUZZ_EXAMPLES = max(5, int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25")) // 3)
QUERIES_PER_EXAMPLE = 4
SEGMENT_SWEEP = (1, 2, 3, 7)
WORKER_SWEEP = (None, 2)


class TestLPathSegmentEquivalence:
    @given(data=st.data())
    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    def test_segmented_engines_match_monolithic(self, data):
        trees = data.draw(corpora(max_trees=4, max_depth=4), label="corpus")
        monolithic = LPathEngine(trees, keep_trees=False)
        engines = {
            (segments, workers): LPathEngine(
                trees, keep_trees=False, segments=segments, workers=workers
            )
            for segments in SEGMENT_SWEEP
            for workers in WORKER_SWEEP
            if (segments, workers) != (1, None)
        }
        for index in range(QUERIES_PER_EXAMPLE):
            query = data.draw(lpath_queries(), label=f"query {index}")
            expected = monolithic.query(query)
            for (segments, workers), engine in engines.items():
                for executor in ("volcano", "columnar"):
                    got = engine.query(query, executor=executor)
                    assert got == expected, (
                        f"segments={segments} workers={workers} "
                        f"executor={executor} disagrees on {query!r}: "
                        f"{got} != {expected}"
                    )

    @given(data=st.data())
    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    def test_lpdb0003_round_trip_matches_monolithic(self, data):
        trees = data.draw(corpora(max_trees=4, max_depth=4), label="corpus")
        monolithic = LPathEngine(trees, keep_trees=False)
        rows = list(label_corpus(trees))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer, segments=3)
        buffer.seek(0)
        engine = LPathEngine.from_columns(
            store.load_segment_columns(buffer), workers=2
        )
        for index in range(QUERIES_PER_EXAMPLE):
            query = data.draw(lpath_queries(), label=f"query {index}")
            assert engine.query(query) == monolithic.query(query), query


class TestXPathSegmentEquivalence:
    @given(data=st.data())
    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    def test_segmented_xpath_matches_monolithic(self, data):
        trees = data.draw(corpora(max_trees=4, max_depth=4), label="corpus")
        monolithic = XPathEngine(trees, axes=XPATH_AXES)
        engines = [
            XPathEngine(trees, axes=XPATH_AXES, segments=segments, workers=workers)
            for segments in (2, 3, 7)
            for workers in WORKER_SWEEP
        ]
        for index in range(QUERIES_PER_EXAMPLE):
            query = data.draw(xpath_queries(), label=f"query {index}")
            expected = monolithic.query(query)
            for engine in engines:
                for executor in ("volcano", "columnar"):
                    got = engine.query(query, executor=executor)
                    assert got == expected, (
                        f"segments={engine.segments} workers={engine.workers} "
                        f"executor={executor} disagrees on {query!r}"
                    )


class TestSegmentedPlanSurface:
    """Non-fuzz sanity for the segmented compile/execute surface."""

    def _trees(self):
        from repro.tree import figure1_tree

        return [figure1_tree(tid=tid) for tid in range(5)]

    def test_plan_cache_hit_returns_same_segmented_plan(self):
        engine = LPathEngine(self._trees(), segments=3, workers=2)
        first = engine.compile("//NP")
        assert engine.compile("//NP") is first
        assert len(first.parts) == 3

    def test_explain_shows_segment_count(self):
        engine = LPathEngine(self._trees(), segments=3)
        text = engine.explain("//VP//NP")
        assert "logical plan:" in text
        assert "x3 segments" in text

    def test_pivot_uses_corpus_wide_statistics(self):
        # Selectivity ordering must see summed frequencies; the pivoted
        # plan still returns the same rows.
        engine = LPathEngine(self._trees(), segments=3)
        baseline = LPathEngine(self._trees())
        for executor in ("volcano", "columnar"):
            assert engine.query(
                "//S//NP", pivot=True, executor=executor
            ) == baseline.query("//S//NP")

    def test_count_matches_len_query(self):
        engine = LPathEngine(self._trees(), segments=2, workers=2)
        assert engine.count("//NP") == len(engine.query("//NP"))

    def test_more_segments_than_trees(self):
        trees = self._trees()[:2]
        engine = LPathEngine(trees, segments=7)
        baseline = LPathEngine(trees)
        assert engine.query("//NP") == baseline.query("//NP")

    def test_sqlite_and_treewalk_see_whole_corpus(self):
        trees = self._trees()
        engine = LPathEngine(trees, segments=3)
        expected = LPathEngine(trees).query("//NP")
        assert engine.query("//NP", backend="sqlite") == expected
        assert engine.query("//NP", backend="treewalk") == expected
