"""Differential sweep: segmented engines must equal the monolithic one.

For random corpora and random queries (the tests/strategies.py
generators), sharding the corpus must be invisible in the results:

* the LPath engine at 1, 2, 3 and 7 segments — both physical executors,
  with and without a worker pool — must return exactly the monolithic
  engine's ``(tid, id)`` lists;
* the same holds for the XPath engine on the start/end-expressible
  fragment;
* a corpus round-tripped through the segmented ``LPDB0003`` store format
  (and loaded shard-by-shard into a columnar-only ``from_columns``
  engine) must also agree exactly.

The in-memory and mmap sharded sweeps each run once per kernel backend
(``REPRO_KERNELS=python`` and ``=native``) so the native hot loops are
exercised across segment boundaries, worker pools and the packed
cross-process merge.  ``REPRO_FUZZ_EXAMPLES`` scales the hypothesis
example budget like the main differential-fuzz harness.
"""

from __future__ import annotations

import io
import os
from contextlib import contextmanager

import pytest
import hypothesis.strategies as st
from hypothesis import given, settings

from repro import store
from repro.columnar.kernels import KERNELS_ENV, native_kernels
from repro.labeling import label_corpus
from repro.lpath import LPathEngine
from repro.xpath import XPATH_AXES, XPathEngine
from tests.strategies import corpora, lpath_queries, xpath_queries

FUZZ_EXAMPLES = max(5, int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25")) // 3)
QUERIES_PER_EXAMPLE = 4
SEGMENT_SWEEP = (1, 2, 3, 7)
WORKER_SWEEP = (None, 2)

#: The sharded sweeps run once per kernel backend (the segment executor,
#: the packed cross-process merge and the per-segment plan compile all
#: dispatch on ``REPRO_KERNELS``); ``native`` skips when the extension
#: did not build.
KERNEL_BACKENDS = ("python", "native")


@contextmanager
def pinned_kernels(backend: str):
    if backend == "native" and native_kernels() is None:
        pytest.skip("cffi extension unavailable")
    previous = os.environ.get(KERNELS_ENV)
    os.environ[KERNELS_ENV] = backend
    try:
        yield
    finally:
        if previous is None:
            del os.environ[KERNELS_ENV]
        else:
            os.environ[KERNELS_ENV] = previous


class TestLPathSegmentEquivalence:
    @pytest.mark.parametrize("kernels", KERNEL_BACKENDS)
    @given(data=st.data())
    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    def test_segmented_engines_match_monolithic(self, kernels, data):
        trees = data.draw(corpora(max_trees=4, max_depth=4), label="corpus")
        monolithic = LPathEngine(trees, keep_trees=False)
        engines = {
            (segments, workers): LPathEngine(
                trees, keep_trees=False, segments=segments, workers=workers
            )
            for segments in SEGMENT_SWEEP
            for workers in WORKER_SWEEP
            if (segments, workers) != (1, None)
        }
        with pinned_kernels(kernels):
            for index in range(QUERIES_PER_EXAMPLE):
                query = data.draw(lpath_queries(), label=f"query {index}")
                expected = monolithic.query(query)
                for (segments, workers), engine in engines.items():
                    for executor in ("volcano", "columnar"):
                        got = engine.query(query, executor=executor)
                        assert got == expected, (
                            f"segments={segments} workers={workers} "
                            f"executor={executor} kernels={kernels} "
                            f"disagrees on {query!r}: {got} != {expected}"
                        )

    @given(data=st.data())
    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    def test_lpdb0003_round_trip_matches_monolithic(self, data):
        trees = data.draw(corpora(max_trees=4, max_depth=4), label="corpus")
        monolithic = LPathEngine(trees, keep_trees=False)
        rows = list(label_corpus(trees))
        buffer = io.BytesIO()
        store.save_labels(rows, buffer, segments=3)
        buffer.seek(0)
        engine = LPathEngine.from_columns(
            store.load_segment_columns(buffer), workers=2
        )
        for index in range(QUERIES_PER_EXAMPLE):
            query = data.draw(lpath_queries(), label=f"query {index}")
            assert engine.query(query) == monolithic.query(query), query

    @pytest.mark.parametrize("kernels", KERNEL_BACKENDS)
    @given(data=st.data())
    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    def test_lpdb0004_mmap_engines_match_monolithic(
        self, kernels, data, tmp_path_factory
    ):
        trees = data.draw(corpora(max_trees=4, max_depth=4), label="corpus")
        monolithic = LPathEngine(trees, keep_trees=False)
        rows = list(label_corpus(trees))
        path = str(tmp_path_factory.mktemp("mmap") / "corpus.lpdb")
        with open(path, "wb") as handle:
            store.save_labels(rows, handle, segments=3, format="lpdb0004")
        engines = {
            "sequential": LPathEngine.from_store_mmap(path),
            "thread": LPathEngine.from_store_mmap(
                path, workers=2, mode="thread"
            ),
            "process": LPathEngine.from_store_mmap(
                path, workers=2, mode="process"
            ),
        }
        try:
            with pinned_kernels(kernels):
                for index in range(QUERIES_PER_EXAMPLE):
                    query = data.draw(lpath_queries(), label=f"query {index}")
                    expected = monolithic.query(query)
                    for label, engine in engines.items():
                        got = engine.query(query)
                        assert got == expected, (
                            f"mmap/{label} kernels={kernels} disagrees on "
                            f"{query!r}: {got} != {expected}"
                        )
                        assert engine.count(query) == len(expected), (
                            label, query,
                        )
        finally:
            for engine in engines.values():
                engine.close()


class TestXPathSegmentEquivalence:
    @given(data=st.data())
    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    def test_segmented_xpath_matches_monolithic(self, data):
        trees = data.draw(corpora(max_trees=4, max_depth=4), label="corpus")
        monolithic = XPathEngine(trees, axes=XPATH_AXES)
        engines = [
            XPathEngine(trees, axes=XPATH_AXES, segments=segments, workers=workers)
            for segments in (2, 3, 7)
            for workers in WORKER_SWEEP
        ]
        for index in range(QUERIES_PER_EXAMPLE):
            query = data.draw(xpath_queries(), label=f"query {index}")
            expected = monolithic.query(query)
            for engine in engines:
                for executor in ("volcano", "columnar"):
                    got = engine.query(query, executor=executor)
                    assert got == expected, (
                        f"segments={engine.segments} workers={engine.workers} "
                        f"executor={executor} disagrees on {query!r}"
                    )


class TestSegmentedPlanSurface:
    """Non-fuzz sanity for the segmented compile/execute surface."""

    def _trees(self):
        from repro.tree import figure1_tree

        return [figure1_tree(tid=tid) for tid in range(5)]

    def test_plan_cache_hit_returns_same_segmented_plan(self):
        engine = LPathEngine(self._trees(), segments=3, workers=2)
        first = engine.compile("//NP")
        assert engine.compile("//NP") is first
        assert len(first.parts) == 3

    def test_explain_shows_segment_count(self):
        engine = LPathEngine(self._trees(), segments=3)
        text = engine.explain("//VP//NP")
        assert "logical plan:" in text
        assert "x3 segments" in text

    def test_pivot_uses_corpus_wide_statistics(self):
        # Selectivity ordering must see summed frequencies; the pivoted
        # plan still returns the same rows.
        engine = LPathEngine(self._trees(), segments=3)
        baseline = LPathEngine(self._trees())
        for executor in ("volcano", "columnar"):
            assert engine.query(
                "//S//NP", pivot=True, executor=executor
            ) == baseline.query("//S//NP")

    def test_count_matches_len_query(self):
        engine = LPathEngine(self._trees(), segments=2, workers=2)
        assert engine.count("//NP") == len(engine.query("//NP"))

    def test_more_segments_than_trees(self):
        trees = self._trees()[:2]
        engine = LPathEngine(trees, segments=7)
        baseline = LPathEngine(trees)
        assert engine.query("//NP") == baseline.query("//NP")

    def test_sqlite_and_treewalk_see_whole_corpus(self):
        trees = self._trees()
        engine = LPathEngine(trees, segments=3)
        expected = LPathEngine(trees).query("//NP")
        assert engine.query("//NP", backend="sqlite") == expected
        assert engine.query("//NP", backend="treewalk") == expected

    def test_process_mode_rejected_without_mmap_backing(self):
        from repro.lpath.errors import LPathError
        from repro.plan.segmented import validate_segmentation

        with pytest.raises(LPathError, match="mode"):
            validate_segmentation(2, 2, "fibers")
        validate_segmentation(2, 2, "process")  # valid spelling


class TestProcessWorkerEntryPoints:
    """The process-pool worker functions, driven in-process: the exact
    code a forked worker runs (engine cache, local compile, env-pinned
    join force, int64 packing) — testable and coverable without a pool."""

    @pytest.fixture()
    def corpus_path(self, tmp_path):
        from repro.tree import figure1_tree

        trees = [figure1_tree(tid=tid) for tid in range(5)]
        path = str(tmp_path / "corpus.lpdb")
        with open(path, "wb") as handle:
            store.save_labels(
                list(label_corpus(trees)), handle, segments=2,
                format="lpdb0004",
            )
        return path, trees

    def test_worker_results_match_parent(self, corpus_path):
        from repro.plan import segmented

        path, trees = corpus_path
        spec = segmented.RemoteSpec(path, "LPath")
        oracle = LPathEngine(trees)
        expected = oracle.query("//VP//NP")
        merged = []
        total = 0
        for index in range(2):
            task = segmented.RemoteTask(spec, "//VP//NP", False, "columnar",
                                        None)
            blob = segmented._execute_segment(task, index, "rows")
            assert isinstance(blob, bytes)
            merged.extend(segmented._unpack_pairs(blob))
            total += segmented._execute_segment(task, index, "count")
        assert sorted(merged) == expected
        assert total == len(expected)
        # The per-(path, segment) worker cache is warm now: the same
        # compiler object answers the second call.
        compiler, cache = segmented._worker_segment(spec, 0)
        assert segmented._worker_segment(spec, 0)[0] is compiler
        assert cache.stats["misses"] >= 1

    def test_worker_pins_forced_join_and_restores_env(self, corpus_path):
        import os as _os
        from repro.columnar.structural import FORCE_ENV
        from repro.plan import segmented

        path, trees = corpus_path
        spec = segmented.RemoteSpec(path, "LPath")
        previous = _os.environ.get(FORCE_ENV)
        try:
            _os.environ[FORCE_ENV] = "probe"
            task = segmented.RemoteTask(spec, "//VP//NP", False, "columnar",
                                        "merge")
            forced = segmented._execute_segment(task, 0, "rows")
            assert _os.environ.get(FORCE_ENV) == "probe"  # restored
            unforced = segmented._execute_segment(
                segmented.RemoteTask(spec, "//VP//NP", False, "columnar",
                                     None),
                0, "rows",
            )
            assert forced == unforced
        finally:
            if previous is None:
                _os.environ.pop(FORCE_ENV, None)
            else:
                _os.environ[FORCE_ENV] = previous

    def test_xpath_worker_dialect(self, tmp_path):
        from repro.labeling import xpath_scheme
        from repro.plan import segmented
        from repro.tree import figure1_tree
        from repro.xpath import XPATH_AXES, XPathEngine

        trees = [figure1_tree(tid=tid) for tid in range(4)]
        rows = [tuple(row) for row in xpath_scheme.label_corpus(trees)]
        path = str(tmp_path / "xpath.lpdb")
        with open(path, "wb") as handle:
            store.save_labels(rows, handle, segments=2, format="lpdb0004")
        spec = segmented.RemoteSpec(
            path, "XPath", tuple(sorted(axis.name for axis in XPATH_AXES))
        )
        expected = XPathEngine(trees, axes=XPATH_AXES).query("//VP//NP")
        merged = []
        for index in range(2):
            task = segmented.RemoteTask(spec, "//VP//NP", False, "columnar",
                                        None)
            merged.extend(
                segmented._unpack_pairs(
                    segmented._execute_segment(task, index, "rows")
                )
            )
        assert sorted(merged) == expected
