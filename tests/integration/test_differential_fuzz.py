"""Property-based differential fuzzing across every execution path.

For random corpora and *random queries* (tests/strategies.py generators),
the four LPath execution paths must agree exactly:

    plan/volcano == plan/columnar == emitted-SQL-on-SQLite == tree-walk

— and so must the zero-copy deployment shapes: the same corpus saved as
a segmented ``LPDB0004`` store and opened mmap-backed, executed both
sequentially and fanned out over *worker processes* (results cross the
process boundary as packed int64 pairs; any packing or re-compile drift
would break byte-identity here).  The XPath engine (both executors) must
match the LPath engine on the start/end-expressible fragment.  The columnar executor additionally runs
every pair with structural merge joins forced **on** and forced **off**
(the ``REPRO_FORCE_JOIN=merge|probe`` knob), so the set-at-a-time join
layer is differentially verified against the per-binding probe join and
the oracles regardless of what the cost model would pick.  When the cffi
extension built, the forced-merge runs additionally repeat under
``REPRO_KERNELS=python`` and ``=native``, pitting the C hot loops
against the pure-Python loops on the same random pairs.  A disagreement
produces a reproducible failure report carrying the bracketed corpus and
the query, so any falsifying example can be replayed by hand; hypothesis
additionally prints the shrunken example and its seed.

The serving daemon gets the same treatment: rows fetched over HTTP from
a live ``repro serve`` stack (forced through real pagination and the
result cache) must match the in-process mmap engine byte for byte.

``REPRO_FUZZ_EXAMPLES`` scales the number of hypothesis examples (the
nightly CI job raises it well past the default); every example checks
``QUERIES_PER_EXAMPLE`` queries, so the default run covers at least
25 x 8 = 200 fuzzed (corpus, query) pairs.
"""

from __future__ import annotations

import io
import os
import tempfile
from contextlib import contextmanager

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import store
from repro.columnar.kernels import KERNELS_ENV, native_kernels
from repro.columnar.structural import FORCE_ENV
from repro.labeling import label_corpus
from repro.lpath import LPathEngine
from repro.tree import write_trees
from repro.xpath import XPATH_AXES, XPathEngine
from tests.strategies import corpora, lpath_queries, xpath_queries

FUZZ_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))
QUERIES_PER_EXAMPLE = 8

#: The kernel-backend axis: every forced-merge fuzz pair additionally
#: runs under both ``REPRO_KERNELS`` values when the cffi extension
#: built, so the native hot loops are differentially verified against
#: the pure-Python ones on the same random inputs.
KERNEL_BACKENDS = (
    ("python", "native") if native_kernels() is not None else ("python",)
)


@contextmanager
def forced_join(mode: str):
    """Pin the physical-join choice for the duration of one query run."""
    previous = os.environ.get(FORCE_ENV)
    os.environ[FORCE_ENV] = mode
    try:
        yield
    finally:
        if previous is None:
            del os.environ[FORCE_ENV]
        else:
            os.environ[FORCE_ENV] = previous


@contextmanager
def forced_kernels(mode: str):
    """Pin the kernel backend for the duration of one query run."""
    previous = os.environ.get(KERNELS_ENV)
    os.environ[KERNELS_ENV] = mode
    try:
        yield
    finally:
        if previous is None:
            del os.environ[KERNELS_ENV]
        else:
            os.environ[KERNELS_ENV] = previous


def _bracketed(trees) -> str:
    out = io.StringIO()
    write_trees(trees, out)
    return out.getvalue()


def _report(trees, query: str, results: dict[str, list]) -> str:
    """A self-contained reproduction blob for one disagreement."""
    lines = [
        "backends disagree!",
        f"query: {query}",
        "corpus (bracketed, one tree per line):",
        _bracketed(trees).rstrip(),
        "results:",
    ]
    for backend, rows in results.items():
        lines.append(f"  {backend:16s} ({len(rows):3d}): {rows}")
    lines.append(
        "replay: save the corpus to a file and run "
        f"`repro query <file> '{query}' --engine <backend>`"
    )
    return "\n".join(lines)


def _assert_agreement(
    trees, engine: LPathEngine, query: str, extra_engines=None
) -> None:
    expected = engine.query(query, backend="treewalk")
    results = {
        "treewalk": expected,
        "volcano": engine.query(query, executor="volcano"),
        "volcano+pivot": engine.query(query, executor="volcano", pivot=True),
        "columnar": engine.query(query, executor="columnar"),
        "columnar+pivot": engine.query(query, executor="columnar", pivot=True),
        "sqlite": engine.query(query, backend="sqlite"),
    }
    with forced_join("merge"):
        results["columnar+merge"] = engine.query(query, executor="columnar")
        results["columnar+merge+pivot"] = engine.query(
            query, executor="columnar", pivot=True
        )
        for backend in KERNEL_BACKENDS:
            with forced_kernels(backend):
                results[f"columnar+merge+{backend}"] = engine.query(
                    query, executor="columnar"
                )
    with forced_join("probe"):
        results["columnar+probe"] = engine.query(query, executor="columnar")
    for label, extra in (extra_engines or {}).items():
        results[label] = extra.query(query)
    if any(rows != expected for rows in results.values()):
        raise AssertionError(_report(trees, query, results))


@contextmanager
def mmap_engines(trees, workers: int = 2):
    """The same corpus as a 2-segment LPDB0004 file, opened mmap-backed:
    once sequential, once with process fan-out."""
    handle, path = tempfile.mkstemp(suffix=".lpdb")
    engines = {}
    try:
        with os.fdopen(handle, "wb") as stream:
            store.save_labels(
                list(label_corpus(trees)), stream, segments=2,
                format="lpdb0004",
            )
        engines["mmap"] = LPathEngine.from_store_mmap(path)
        engines["mmap+process"] = LPathEngine.from_store_mmap(
            path, workers=workers, mode="process"
        )
        yield engines
    finally:
        for engine in engines.values():
            engine.close()
        os.unlink(path)


class TestLPathDifferentialFuzz:
    @given(data=st.data())
    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    def test_four_paths_agree_on_random_queries(self, data):
        trees = data.draw(corpora(max_trees=3, max_depth=4), label="corpus")
        engine = LPathEngine(trees)
        with mmap_engines(trees) as extra:
            for index in range(QUERIES_PER_EXAMPLE):
                query = data.draw(lpath_queries(), label=f"query {index}")
                _assert_agreement(trees, engine, query, extra)


class TestDaemonDifferentialFuzz:
    """The serving stack is just transport: for random corpora and
    random queries, rows fetched over HTTP from a live daemon (with
    pagination forced small, so the client really reassembles pages)
    must be byte-identical to the in-process mmap engine — cold, from
    the result cache, and pivoted."""

    @given(data=st.data())
    @settings(max_examples=max(3, FUZZ_EXAMPLES // 5), deadline=None)
    def test_daemon_matches_in_process_engine(self, data):
        from repro.serve import QueryServer, QueryService, ServeClient

        trees = data.draw(corpora(max_trees=3, max_depth=4), label="corpus")
        handle, path = tempfile.mkstemp(suffix=".lpdb")
        try:
            with os.fdopen(handle, "wb") as stream:
                store.save_labels(
                    list(label_corpus(trees)), stream, segments=2,
                    format="lpdb0004",
                )
            with LPathEngine.from_store_mmap(path) as engine, \
                    QueryServer(QueryService(path)).start() as server, \
                    ServeClient(server.url) as client:
                for index in range(QUERIES_PER_EXAMPLE):
                    query = data.draw(lpath_queries(), label=f"query {index}")
                    expected = engine.query(query)
                    results = {
                        "daemon": client.query(query, limit=3),
                        "daemon+cached": client.query(query, limit=3),
                        "daemon+pivot": client.query(
                            query, pivot=True, limit=3
                        ),
                    }
                    if any(rows != expected for rows in results.values()):
                        raise AssertionError(
                            _report(trees, query, results)
                        )
                    assert client.count(query) == len(expected)
        finally:
            os.unlink(path)


def _batch_entries(data, prefix: str) -> list:
    """A random batch suite: plain row queries mixed with top-k limits
    and aggregates (the three shapes ``query_batch`` accepts)."""
    from repro.plan.ir import AGGREGATE_OPS

    entries = []
    for index in range(QUERIES_PER_EXAMPLE):
        query = data.draw(lpath_queries(), label=f"{prefix} query {index}")
        kind = data.draw(
            st.sampled_from(("rows", "rows", "limit", "agg")),
            label=f"{prefix} kind {index}",
        )
        if kind == "limit":
            entries.append({
                "query": query,
                "limit": data.draw(
                    st.integers(min_value=0, max_value=5),
                    label=f"{prefix} k {index}",
                ),
            })
        elif kind == "agg":
            entries.append({
                "query": query,
                "agg": data.draw(
                    st.sampled_from(AGGREGATE_OPS),
                    label=f"{prefix} agg {index}",
                ),
            })
        else:
            entries.append(query)
    return entries


def _expected_per_query(engine: LPathEngine, entries) -> list:
    """What each batch member produces standalone, one query at a time."""
    expected = []
    for entry in entries:
        if isinstance(entry, str):
            expected.append([tuple(row) for row in engine.query(entry)])
        elif "agg" in entry:
            expected.append(engine.aggregate(entry["query"], agg=entry["agg"]))
        else:
            expected.append([
                tuple(row)
                for row in engine.query(entry["query"], limit=entry["limit"])
            ])
    return expected


class TestBatchDifferentialFuzz:
    """Shared-scan batching is an optimization, never a semantics
    change: for random suites mixing row queries, top-k limits and
    aggregates, ``query_batch`` must be byte-identical to per-query
    execution — across executors, kernel backends, segmented engines,
    and the HTTP daemon."""

    @given(data=st.data())
    @settings(max_examples=max(5, FUZZ_EXAMPLES // 3), deadline=None)
    def test_batch_matches_per_query_execution(self, data):
        trees = data.draw(corpora(max_trees=3, max_depth=4), label="corpus")
        entries = _batch_entries(data, "batch")
        reference = LPathEngine(trees)
        expected = _expected_per_query(reference, entries)
        engines = {
            "volcano": reference,
            "columnar": LPathEngine(trees, executor="columnar"),
            "segmented": LPathEngine(
                trees, executor="columnar", segments=2
            ),
        }
        results = {
            name: engine.query_batch(entries)
            for name, engine in engines.items()
        }
        with forced_join("merge"):
            for backend in KERNEL_BACKENDS:
                with forced_kernels(backend):
                    results[f"columnar+merge+{backend}"] = (
                        engines["columnar"].query_batch(entries)
                    )
        for name, batched in results.items():
            for index, (got, want) in enumerate(zip(batched, expected)):
                assert got == want, (
                    f"query_batch[{index}] under {name} diverged from "
                    f"per-query execution\nentry: {entries[index]!r}\n"
                    f"batch:     {got!r}\nper-query: {want!r}\n"
                    f"corpus:\n{_bracketed(trees)}"
                )

    @given(data=st.data())
    @settings(max_examples=max(3, FUZZ_EXAMPLES // 5), deadline=None)
    def test_daemon_batch_matches_in_process(self, data):
        from repro.serve import QueryServer, QueryService, ServeClient

        trees = data.draw(corpora(max_trees=3, max_depth=4), label="corpus")
        entries = _batch_entries(data, "daemon")
        requests = [
            entry if isinstance(entry, str)
            else {
                ("top_k" if key == "limit" else key): value
                for key, value in entry.items()
            }
            for entry in entries
        ]
        handle, path = tempfile.mkstemp(suffix=".lpdb")
        try:
            with os.fdopen(handle, "wb") as stream:
                store.save_labels(
                    list(label_corpus(trees)), stream, segments=2,
                    format="lpdb0004",
                )
            with LPathEngine.from_store_mmap(path) as engine, \
                    QueryServer(QueryService(path)).start() as server, \
                    ServeClient(server.url) as client:
                expected = _expected_per_query(engine, entries)
                for round_name in ("cold", "cached"):
                    documents = client.query_batch(requests)
                    for index, (document, want) in enumerate(
                        zip(documents, expected)
                    ):
                        if isinstance(want, dict):
                            got = dict(document["aggregate"])
                        else:
                            got = [
                                tuple(pair)
                                for pair in document["matches"]
                            ]
                        assert got == want, (
                            f"/batch[{index}] ({round_name}) diverged\n"
                            f"entry: {entries[index]!r}\n"
                            f"daemon:    {got!r}\nper-query: {want!r}\n"
                            f"corpus:\n{_bracketed(trees)}"
                        )
        finally:
            os.unlink(path)


class TestLiveCorpusDifferentialFuzz:
    """A live (LPDB0005) corpus is a deployment shape, never a
    semantics change: for a random corpus split at a random point into
    a base generation plus WAL-appended deltas, the live engine must
    agree with the monolithic in-memory oracle — before compaction,
    after appends that land *between* queries on a running engine
    manager (snapshot isolation: the pre-append engine keeps answering
    the old corpus), and after compaction.  The recovered label stream
    must additionally be row-identical to the monolithic labeling, so a
    re-save of the live corpus is byte-identical to a direct save."""

    @given(data=st.data())
    @settings(max_examples=max(5, FUZZ_EXAMPLES // 3), deadline=None)
    def test_live_corpus_matches_monolithic(self, data):
        import shutil

        from repro import live
        from repro.tree import iter_trees

        trees = data.draw(corpora(max_trees=4, max_depth=4), label="corpus")
        split = data.draw(
            st.integers(min_value=0, max_value=len(trees)), label="split"
        )
        base_text = "".join(_bracketed([tree]) for tree in trees[:split])
        delta_text = "".join(_bracketed([tree]) for tree in trees[split:])
        reference = LPathEngine(trees)
        # Stores canonicalize row order internally, so the recovered
        # stream is compared as a sorted multiset.
        expected_rows = sorted(tuple(row) for row in label_corpus(trees))
        root = tempfile.mkdtemp()
        live_path = os.path.join(root, "live.lpdb")

        def check_against_reference(stage: str) -> None:
            engine = LPathEngine.open(live_path)
            try:
                for index in range(QUERIES_PER_EXAMPLE):
                    query = data.draw(
                        lpath_queries(), label=f"{stage} query {index}"
                    )
                    expected = reference.query(query, backend="treewalk")
                    results = {
                        "monolithic/treewalk": expected,
                        f"live/{stage}": engine.query(query),
                        f"live/{stage}+pivot": engine.query(
                            query, pivot=True
                        ),
                    }
                    with forced_join("merge"):
                        for backend in KERNEL_BACKENDS:
                            with forced_kernels(backend):
                                results[f"live/{stage}+merge+{backend}"] = (
                                    engine.query(query)
                                )
                    with forced_join("probe"):
                        results[f"live/{stage}+probe"] = engine.query(query)
                    if any(
                        rows != expected for rows in results.values()
                    ):
                        raise AssertionError(_report(trees, query, results))
            finally:
                engine.close()

        try:
            base_rows = list(label_corpus(iter_trees(base_text)))
            live.create_live_corpus(live_path, base_rows, segments=2)
            if delta_text.strip():
                with live.LiveCorpus(live_path) as corpus:
                    corpus.append_trees(delta_text)
            recovered = sorted(
                tuple(row) for row in store.load_corpus_labels(live_path)
            )
            assert recovered == expected_rows
            check_against_reference("base+delta")

            with live.LiveCorpus(live_path) as corpus:
                corpus.compact()
            recovered = sorted(
                tuple(row) for row in store.load_corpus_labels(live_path)
            )
            assert recovered == expected_rows
            check_against_reference("compacted")

            # Byte-identity: re-saving the live corpus monolithically
            # produces the exact file a direct monolithic save would.
            resave = io.BytesIO()
            store.save_labels(
                store.load_corpus_labels(live_path), resave,
                format="lpdb0004",
            )
            direct = io.BytesIO()
            store.save_labels(
                list(label_corpus(trees)), direct, format="lpdb0004"
            )
            assert resave.getvalue() == direct.getvalue()
        finally:
            shutil.rmtree(root)

    @given(data=st.data())
    @settings(max_examples=max(3, FUZZ_EXAMPLES // 5), deadline=None)
    def test_append_between_queries_is_snapshot_isolated(self, data):
        import shutil

        from repro import live
        from repro.tree import iter_trees

        trees = data.draw(corpora(max_trees=4, max_depth=4), label="corpus")
        split = data.draw(
            st.integers(min_value=0, max_value=len(trees) - 1),
            label="split",
        )
        base_text = "".join(_bracketed([tree]) for tree in trees[:split])
        delta_text = "".join(_bracketed([tree]) for tree in trees[split:])
        base_reference = LPathEngine(trees[:split])
        full_reference = LPathEngine(trees)
        root = tempfile.mkdtemp()
        live_path = os.path.join(root, "live.lpdb")
        try:
            live.create_live_corpus(
                live_path, list(label_corpus(iter_trees(base_text))),
                segments=2,
            )
            manager = live.LiveEngineManager(live_path)
            try:
                query = data.draw(lpath_queries(), label="query")
                snapshot = manager.engine
                before = snapshot.query(query)
                assert before == base_reference.query(query)
                manager.append_trees(delta_text)
                # The pre-append engine is retired but still answers
                # with its original snapshot; the swapped-in engine
                # sees base + delta.
                assert snapshot.query(query) == before
                assert manager.engine.query(query) == (
                    full_reference.query(query)
                )
            finally:
                manager.close()
        finally:
            shutil.rmtree(root)


class TestXPathDifferentialFuzz:
    @given(data=st.data())
    @settings(max_examples=max(5, FUZZ_EXAMPLES // 3), deadline=None)
    def test_xpath_engine_matches_lpath_on_fragment(self, data):
        trees = data.draw(corpora(max_trees=3, max_depth=4), label="corpus")
        lpath_engine = LPathEngine(trees, keep_trees=False)
        xpath_engine = XPathEngine(trees, axes=XPATH_AXES)
        for index in range(QUERIES_PER_EXAMPLE):
            query = data.draw(xpath_queries(), label=f"query {index}")
            expected = lpath_engine.query(query)
            results = {
                "lpath/volcano": expected,
                "xpath/volcano": xpath_engine.query(query),
                "xpath/columnar": xpath_engine.query(query, executor="columnar"),
                "xpath/columnar+pivot": xpath_engine.query(
                    query, pivot=True, executor="columnar"
                ),
            }
            with forced_join("merge"):
                results["xpath/columnar+merge"] = xpath_engine.query(
                    query, executor="columnar"
                )
                for backend in KERNEL_BACKENDS:
                    with forced_kernels(backend):
                        results[f"xpath/columnar+merge+{backend}"] = (
                            xpath_engine.query(query, executor="columnar")
                        )
            with forced_join("probe"):
                results["xpath/columnar+probe"] = xpath_engine.query(
                    query, executor="columnar"
                )
            if any(rows != expected for rows in results.values()):
                raise AssertionError(_report(trees, query, results))
