"""Kill -9 crash matrix for the live-corpus durability barriers.

Each case spawns a sacrificial subprocess with ``REPRO_CRASH_POINT``
aimed at one barrier, lets the kernel SIGKILL it mid-operation, then
reopens the store in this process and checks the durability contract:

* **appends** — every acknowledged batch survives; at most one
  unacknowledged batch may additionally survive (at-least-once for
  records that were fully framed before the crash); the store reopens
  cleanly and queries correctly.
* **compaction** — the exact row multiset is preserved no matter which
  barrier the compactor died at, and a fresh compaction completes
  afterwards.

These are real processes and real ``kill -9``, not monkeypatched
exceptions — the deterministic-fault versions live in
``tests/test_live_store.py``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys

import pytest

import repro
from repro import live, store
from repro.faults import CRASH_ENV, FAULTS_ENV
from repro.labeling.lpath_scheme import label_corpus
from repro.live import LiveCorpus
from repro.lpath import LPathEngine
from repro.tree.bracket import iter_trees

TEXT = "(S (NP (N dog)) (VP (V ran) (NP (N home))))"
ROWS_PER_TREE = len(list(label_corpus(iter_trees(TEXT))))

SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

APPENDER = """\
import sys
from repro.live import LiveCorpus

path, batches, text = sys.argv[1], int(sys.argv[2]), sys.argv[3]
corpus = LiveCorpus(path)
for _ in range(batches):
    ack = corpus.append_trees(text)
    print("ACKED", ack["rows"], flush=True)
corpus.close()
print("CLEAN-EXIT", flush=True)
"""

COMPACTOR = """\
import sys
from repro.live import LiveCorpus

corpus = LiveCorpus(sys.argv[1])
status = corpus.compact()
corpus.close()
print("COMPACTED", status["compacted_rows"], flush=True)
"""

APPEND_BARRIERS = ("wal_write", "wal_fsync")
COMPACT_BARRIERS = (
    "compact_segment",
    "compact_wal",
    "manifest_temp",
    "manifest_replace",
    "manifest_dirsync",
    "compact_gc",
)


def run_child(script: str, argv: list, extra_env: dict) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(CRASH_ENV, None)
    env.pop(FAULTS_ENV, None)
    env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-c", script, *argv],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )


def sorted_rows(rows):
    return sorted(tuple(row) for row in rows)


def assert_store_healthy(path: str) -> None:
    """The store must reopen, self-verify, and answer queries that agree
    with a bulk load of its labels."""
    with LiveCorpus(path) as corpus:
        ok, reason = corpus.verify_on_disk()
        assert ok, reason
    rows = store.load_corpus_labels(path)
    engine = LPathEngine.open(path)
    try:
        assert len(engine.query("//N")) == sum(
            1 for row in rows if row.name == "N"
        )
    finally:
        engine.close()


@pytest.fixture()
def live_path(tmp_path) -> str:
    path = str(tmp_path / "live.lpdb")
    seed_rows = list(label_corpus(iter_trees(TEXT * 4)))
    live.create_live_corpus(path, seed_rows, segments=2)
    return path


class TestAppendKillMatrix:
    BATCHES = 4

    @pytest.mark.parametrize("barrier", APPEND_BARRIERS)
    @pytest.mark.parametrize("occurrence", [1, 2])
    def test_no_acknowledged_loss(self, live_path, barrier, occurrence):
        result = run_child(
            APPENDER,
            [live_path, str(self.BATCHES), TEXT],
            {CRASH_ENV: f"{barrier}:{occurrence}"},
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        assert "CLEAN-EXIT" not in result.stdout
        acked = result.stdout.count("ACKED")
        assert acked == occurrence - 1  # died inside batch `occurrence`

        info = store.corpus_info(live_path)
        recovered = info["delta_rows"] // ROWS_PER_TREE
        assert info["delta_rows"] % ROWS_PER_TREE == 0
        # Contract: acked <= recovered <= attempted.  `wal_write` dies
        # before fsync (frame may or may not be durable); `wal_fsync`
        # dies after fsync but before the ack, so the in-flight batch is
        # always durable yet never acknowledged.
        assert acked <= recovered <= acked + 1
        if barrier == "wal_fsync":
            assert recovered == acked + 1
        assert_store_healthy(live_path)

    def test_clean_run_has_no_kill(self, live_path):
        result = run_child(APPENDER, [live_path, "3", TEXT], {})
        assert result.returncode == 0, result.stderr
        assert "CLEAN-EXIT" in result.stdout
        assert store.corpus_info(live_path)["delta_rows"] == (
            3 * ROWS_PER_TREE
        )
        assert_store_healthy(live_path)

    def test_stale_lock_from_killed_writer_is_reclaimed(self, live_path):
        result = run_child(
            APPENDER, [live_path, "2", TEXT], {CRASH_ENV: "wal_fsync:2"}
        )
        assert result.returncode == -signal.SIGKILL
        assert os.path.exists(os.path.join(live_path, "LOCK"))
        with LiveCorpus(live_path) as corpus:  # reclaims the dead pid
            corpus.append_trees(TEXT)


class TestCompactionKillMatrix:
    @pytest.fixture()
    def loaded_path(self, live_path) -> str:
        with LiveCorpus(live_path) as corpus:
            for _ in range(3):
                corpus.append_trees(TEXT * 2)
        return live_path

    @pytest.mark.parametrize("barrier", COMPACT_BARRIERS)
    def test_rows_survive_kill_at_barrier(self, loaded_path, barrier):
        before = sorted_rows(store.load_corpus_labels(loaded_path))
        result = run_child(COMPACTOR, [loaded_path], {CRASH_ENV: barrier})
        assert result.returncode == -signal.SIGKILL, result.stderr
        assert "COMPACTED" not in result.stdout

        assert sorted_rows(store.load_corpus_labels(loaded_path)) == before
        assert_store_healthy(loaded_path)
        # The interrupted compaction must be restartable to completion.
        with LiveCorpus(loaded_path) as corpus:
            corpus.compact()
        assert sorted_rows(store.load_corpus_labels(loaded_path)) == before
        assert store.corpus_info(loaded_path)["delta_rows"] == 0

    def test_kill_then_append_then_compact(self, loaded_path):
        """Interleave a crash, more appends, and a successful compaction
        — the paranoid end-to-end sequence."""
        before = sorted_rows(store.load_corpus_labels(loaded_path))
        result = run_child(
            COMPACTOR, [loaded_path], {CRASH_ENV: "manifest_replace"}
        )
        assert result.returncode == -signal.SIGKILL
        with LiveCorpus(loaded_path) as corpus:
            ack = corpus.append_trees(TEXT)
            corpus.compact()
        after = sorted_rows(store.load_corpus_labels(loaded_path))
        assert len(after) == len(before) + ack["rows"]
        assert_store_healthy(loaded_path)

    def test_probabilistic_compactor_kill(self, loaded_path):
        """`compactor_kill` at probability 1.0 fires at the first
        compaction barrier; the store survives exactly like the
        deterministic matrix."""
        before = sorted_rows(store.load_corpus_labels(loaded_path))
        result = run_child(
            COMPACTOR, [loaded_path], {FAULTS_ENV: "compactor_kill:1.0:7"}
        )
        assert result.returncode == -signal.SIGKILL, result.stderr
        assert sorted_rows(store.load_corpus_labels(loaded_path)) == before
        assert_store_healthy(loaded_path)
