"""End-to-end integration: corpus generation -> file I/O -> all engines.

These tests run the full production path a user would: generate a
treebank, serialize it to Penn-bracketed text, reload it, build every
engine, and check cross-engine consistency on the paper's query set.
"""

import io

import pytest

from repro.baselines.corpussearch import CorpusSearchEngine
from repro.baselines.tgrep2 import TGrep2Engine
from repro.bench.queries import QUERY_SET
from repro.corpus import generate_corpus
from repro.lpath import LPathCompileError, LPathEngine
from repro.tree import read_trees, write_trees
from repro.xpath import XPathEngine


@pytest.fixture(scope="module")
def reloaded_corpus():
    corpus = generate_corpus("wsj", sentences=250, seed=17)
    buffer = io.StringIO()
    write_trees(corpus, buffer)
    buffer.seek(0)
    return list(read_trees(buffer))


@pytest.fixture(scope="module")
def engines(reloaded_corpus):
    return {
        "lpath": LPathEngine(reloaded_corpus),
        "tgrep2": TGrep2Engine(reloaded_corpus),
        "corpussearch": CorpusSearchEngine(reloaded_corpus),
        "xpath": XPathEngine(reloaded_corpus),
    }


class TestSerializationPreservesSemantics:
    def test_round_trip_preserves_query_results(self, reloaded_corpus):
        original = generate_corpus("wsj", sentences=250, seed=17)
        original_engine = LPathEngine(original, keep_trees=False)
        reloaded_engine = LPathEngine(reloaded_corpus, keep_trees=False)
        for query in QUERY_SET:
            assert original_engine.query(query.lpath) == reloaded_engine.query(
                query.lpath
            ), query.lpath


class TestFullQuerySetCrossEngine:
    def test_lpath_backends_agree_on_all_23(self, engines):
        lpath = engines["lpath"]
        for query in QUERY_SET:
            plan = lpath.query(query.lpath, backend="plan")
            assert plan == lpath.query(query.lpath, backend="treewalk"), query.lpath
            assert plan == lpath.query(query.lpath, backend="sqlite"), query.lpath

    def test_xpath_engine_agrees_on_its_eleven(self, engines):
        lpath, xpath = engines["lpath"], engines["xpath"]
        supported = 0
        for query in QUERY_SET:
            try:
                result = xpath.query(query.lpath)
            except LPathCompileError:
                continue
            supported += 1
            assert result == lpath.query(query.lpath), query.lpath
        assert supported == 11

    #: Queries where TGrep2/CorpusSearch report the same witness node as
    #: LPath (see bench.queries for the ones that report a different side).
    SAME_WITNESS_TGREP = (1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                          16, 17, 18, 19, 20, 21, 22, 23)
    SAME_WITNESS_CS = (5, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 18, 19)

    def test_tgrep2_counts_match(self, engines):
        lpath, tgrep = engines["lpath"], engines["tgrep2"]
        for query in QUERY_SET:
            if query.qid not in self.SAME_WITNESS_TGREP:
                continue
            assert tgrep.count(query.tgrep2) == lpath.count(query.lpath), (
                f"Q{query.qid}: {query.tgrep2}"
            )

    def test_corpussearch_counts_match(self, engines):
        lpath, corpussearch = engines["lpath"], engines["corpussearch"]
        for query in QUERY_SET:
            if query.qid not in self.SAME_WITNESS_CS:
                continue
            assert corpussearch.count(query.corpussearch) == lpath.count(
                query.lpath
            ), f"Q{query.qid}: {query.corpussearch}"


class TestSWBProfileEndToEnd:
    def test_swb_runs_whole_query_set(self):
        corpus = generate_corpus("swb", sentences=200, seed=23)
        engine = LPathEngine(corpus, keep_trees=False)
        sizes = [engine.count(query.lpath) for query in QUERY_SET]
        assert any(size > 0 for size in sizes)
        # WSJ-only rare words are absent from SWB (as in Figure 6(c)).
        assert sizes[11] == 0  # rapprochement
        assert sizes[12] == 0  # 1929
