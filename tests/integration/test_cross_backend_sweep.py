"""Cross-backend differential sweep over the unified plan IR.

Asserts the four LPath execution paths — plan (pivot off and on), SQLite,
and the tree-walk oracle — return identical results over the full query
pool and fuzzed corpora, and that the XPath engine (which now shares the
IR, optimizer and interpreter) agrees with the LPath engine on the
XPath-expressible fragment with and without pivoting.
"""

import pytest
from hypothesis import given, settings

from repro.corpus import generate_corpus
from repro.lpath import LPathEngine
from repro.xpath import XPATH_AXES, XPathEngine
from tests.lpath.test_differential import QUERY_POOL
from tests.strategies import corpora

#: Queries from the pool that exercise subplan pivoting (downward-only
#: exists chains) and main-chain pivoting.
PIVOT_HEAVY = [
    "//S//NP[//N]->_",
    "//NP[//Det and //N]",
    "//S[//NP/N]",
    "//NP[not(//Det) and not(//Adj)]",
    "//S//V",
    "//NP/N",
]

XPATH_POOL = [
    "//NP",
    "//NP/N",
    "//S//V",
    "//NP/_",
    "//N\\NP",
    "//Det\\ancestor::S",
    "/S/NP",
    "//S[//_[@lex=saw]]",
    "//NP[not(//Adj)]",
    "//S[//NP/Det]",
    "//_[name()=NP]",
    "//NP[//Det and //N]",
    "//V/following-sibling::NP",
    "//NP/preceding-sibling::V",
    "//V/following::N",
    "//N/preceding::V",
]


@pytest.fixture(scope="module")
def generated_engine():
    corpus = generate_corpus("wsj", sentences=120, seed=23)
    return LPathEngine(corpus)


class TestFourWayAgreement:
    @pytest.mark.parametrize("query", QUERY_POOL)
    def test_plan_pivot_sqlite_treewalk_agree(self, generated_engine, query):
        engine = generated_engine
        plan = engine.query(query, backend="plan")
        assert engine.query(query, backend="plan", pivot=True) == plan, query
        assert engine.query(query, backend="treewalk") == plan, query
        assert engine.query(query, backend="sqlite") == plan, query

    @given(corpora(max_trees=3, max_depth=4))
    @settings(max_examples=15, deadline=None)
    def test_pivot_agrees_on_random_corpora(self, trees):
        engine = LPathEngine(trees)
        for query in QUERY_POOL:
            assert engine.query(query, pivot=True) == engine.query(
                query, backend="treewalk"
            ), query

    def test_count_plumbs_pivot(self, generated_engine):
        engine = generated_engine
        for query in PIVOT_HEAVY:
            assert engine.count(query, pivot=True) == engine.count(query), query


class TestXPathEngineAgreement:
    @given(corpora(max_trees=3, max_depth=4))
    @settings(max_examples=10, deadline=None)
    def test_xpath_pivot_matches_lpath(self, trees):
        xpath_engine = XPathEngine(trees, axes=XPATH_AXES)
        lpath_engine = LPathEngine(trees, keep_trees=False)
        for query in XPATH_POOL:
            expected = lpath_engine.query(query)
            assert xpath_engine.query(query) == expected, query
            assert xpath_engine.query(query, pivot=True) == expected, query
