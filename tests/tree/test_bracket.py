"""Unit and property tests for bracketed tree I/O."""

import io

import pytest
from hypothesis import given, settings

from repro.tree import (
    BracketParseError,
    figure1_tree,
    format_tree,
    iter_trees,
    parse_tree,
    read_trees,
    write_trees,
)
from tests.strategies import trees


class TestParse:
    def test_simple_tree(self):
        tree = parse_tree("(S (NP (PRP I)) (VP (VBD ran)))")
        assert tree.root.label == "S"
        assert tree.words() == ["I", "ran"]

    def test_word_becomes_lex_attribute(self):
        tree = parse_tree("(NP (DT the) (NN dog))")
        det = tree.root.children[0]
        assert det.is_terminal and det.word == "the"
        assert det.attributes == {"lex": "the"}

    def test_treebank_wrapper_unwrapped(self):
        tree = parse_tree("( (S (NP (PRP I)) (VP (VBD ran))) )")
        assert tree.root.label == "S"

    def test_multi_rooted_wrapper_gets_top(self):
        tree = parse_tree("( (S (X a)) (S (X b)) )")
        assert tree.root.label == "TOP"
        assert [c.label for c in tree.root.children] == ["S", "S"]

    def test_empty_category_leaf(self):
        tree = parse_tree("(S (NP (-NONE- *T*)) (VP (VBD ran)))")
        none = tree.root.children[0].children[0]
        assert none.label == "-NONE-" and none.word == "*T*"

    def test_iter_trees_assigns_tids(self):
        text = "(S (X a))\n(S (X b))\n(S (X c))"
        parsed = list(iter_trees(text))
        assert [t.tid for t in parsed] == [0, 1, 2]

    def test_iter_trees_start_tid(self):
        parsed = list(iter_trees("(S (X a)) (S (X b))", start_tid=7))
        assert [t.tid for t in parsed] == [7, 8]

    @pytest.mark.parametrize(
        "bad",
        ["", "(S", "(S (NP)", "()", "(S a (NP b))", "(NP one two)", ")", "x"],
    )
    def test_malformed_inputs_raise(self, bad):
        with pytest.raises(BracketParseError):
            parse_tree(bad)

    def test_two_trees_rejected_by_parse_tree(self):
        with pytest.raises(BracketParseError):
            parse_tree("(S (X a)) (S (X b))")


class TestWrite:
    def test_format_figure1(self):
        text = format_tree(figure1_tree())
        assert text.startswith("(S (NP I)")
        assert "(V saw)" in text

    def test_wrap(self):
        assert format_tree(parse_tree("(X a)"), wrap=True) == "( (X a) )"

    def test_write_and_read_stream(self):
        corpus = [parse_tree("(S (X a))"), parse_tree("(S (Y b))")]
        buffer = io.StringIO()
        assert write_trees(corpus, buffer) == 2
        buffer.seek(0)
        back = list(read_trees(buffer))
        assert len(back) == 2
        assert back[1].root.children[0].label == "Y"


class TestRoundTrip:
    @given(trees())
    @settings(max_examples=60, deadline=None)
    def test_parse_write_round_trip(self, tree):
        text = format_tree(tree)
        back = parse_tree(text, tid=tree.tid)
        assert _shape(back.root) == _shape(tree.root)
        assert format_tree(back) == text

    def test_figure1_round_trip(self):
        tree = figure1_tree()
        back = parse_tree(format_tree(tree))
        assert _shape(back.root) == _shape(tree.root)


def _shape(node):
    """Structure + labels + words, ignoring non-lex attributes."""
    return (node.label, node.word, tuple(_shape(c) for c in node.children))
