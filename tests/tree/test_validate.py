"""Tests for structural and span validation."""

import pytest
from hypothesis import given, settings

from repro.tree import Tree, TreeError, TreeNode, figure1_tree, validate
from repro.tree.validate import validate_spans, validate_structure
from tests.strategies import trees


class TestValidateStructure:
    def test_figure1_valid(self):
        validate(figure1_tree())

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_random_trees_valid(self, tree):
        validate(tree)

    def test_stale_parent_pointer_detected(self):
        tree = figure1_tree()
        tree.root.children[0].parent = None
        with pytest.raises(TreeError):
            validate_structure(tree)

    def test_shared_child_detected(self):
        shared = TreeNode("N", attributes={"lex": "dog"})
        a = TreeNode("NP", [shared])
        root = TreeNode("S", [a])
        root.children.append(a.children[0])  # bypass append() checks
        tree = Tree.__new__(Tree)
        tree.root = root
        with pytest.raises(TreeError):
            validate_structure(tree)


class TestValidateSpans:
    def test_corrupted_left_detected(self):
        tree = figure1_tree()
        tree.root.children[0].left = 99
        with pytest.raises(TreeError):
            validate_spans(tree)

    def test_corrupted_depth_detected(self):
        tree = figure1_tree()
        tree.root.children[1].depth = 7
        with pytest.raises(TreeError):
            validate_spans(tree)

    def test_duplicate_id_detected(self):
        tree = figure1_tree()
        tree.nodes[2].node_id = tree.nodes[1].node_id
        with pytest.raises(TreeError):
            validate_spans(tree)

    def test_zero_id_detected(self):
        tree = figure1_tree()
        tree.nodes[3].node_id = 0
        with pytest.raises(TreeError):
            validate_spans(tree)

    def test_gap_between_children_detected(self):
        tree = figure1_tree()
        vp = [n for n in tree.nodes if n.label == "VP"][0]
        vp.children[1].left += 1  # create a hole after V
        with pytest.raises(TreeError):
            validate_spans(tree)
