"""Unit tests for the tree data model and span indexing."""

import pytest

from repro.tree import Tree, TreeError, TreeNode, figure1_tree, tree_from_spec


class TestTreeNode:
    def test_label_required(self):
        with pytest.raises(TreeError):
            TreeNode("")

    def test_append_sets_parent_and_index(self):
        parent = TreeNode("NP")
        a, b = TreeNode("Det"), TreeNode("N")
        parent.append(a)
        parent.append(b)
        assert a.parent is parent and b.parent is parent
        assert a.index_in_parent == 0 and b.index_in_parent == 1

    def test_append_attached_node_rejected(self):
        parent = TreeNode("NP")
        child = TreeNode("N")
        parent.append(child)
        other = TreeNode("VP")
        with pytest.raises(TreeError):
            other.append(child)

    def test_detach(self):
        parent = TreeNode("NP", [TreeNode("Det"), TreeNode("N")])
        det = parent.children[0]
        det.detach()
        assert det.parent is None
        assert [c.label for c in parent.children] == ["N"]
        assert parent.children[0].index_in_parent == 0

    def test_word_property(self):
        assert TreeNode("V", attributes={"lex": "saw"}).word == "saw"
        assert TreeNode("V").word is None

    def test_is_terminal(self):
        leaf = TreeNode("N", attributes={"lex": "dog"})
        assert leaf.is_terminal
        assert not TreeNode("NP", [leaf]).is_terminal

    def test_siblings(self):
        parent = TreeNode("NP", [TreeNode("Det"), TreeNode("Adj"), TreeNode("N")])
        det, adj, n = parent.children
        assert det.next_sibling() is adj
        assert n.next_sibling() is None
        assert adj.previous_sibling() is det
        assert det.previous_sibling() is None
        assert parent.next_sibling() is None

    def test_preorder_and_descendants(self):
        tree = figure1_tree()
        labels = [node.label for node in tree.root.preorder()]
        assert labels[0] == "S"
        assert len(labels) == len(tree)
        assert [n.label for n in tree.root.descendants()] == labels[1:]


class TestTreeIndexing:
    def test_root_with_parent_rejected(self):
        parent = TreeNode("S", [TreeNode("NP")])
        with pytest.raises(TreeError):
            Tree(parent.children[0])

    def test_leaf_spans_tile(self):
        tree = figure1_tree()
        leaves = tree.leaves()
        assert leaves[0].left == 1
        for leaf in leaves:
            assert leaf.right == leaf.left + 1
        for before, after in zip(leaves, leaves[1:]):
            assert after.left == before.right

    def test_figure1_spans(self):
        """Spans must match the Figure 5 relation."""
        tree = figure1_tree()
        spans = {
            (node.label, node.left, node.right, node.depth) for node in tree.nodes
        }
        assert ("S", 1, 10, 1) in spans
        assert ("NP", 1, 2, 2) in spans       # NP over "I"
        assert ("VP", 2, 9, 2) in spans
        assert ("V", 2, 3, 3) in spans
        assert ("NP", 3, 9, 3) in spans       # object NP
        assert ("NP", 3, 6, 4) in spans       # "the old man"
        assert ("Det", 3, 4, 5) in spans      # "the"

    def test_ids_are_document_order(self):
        tree = figure1_tree()
        ids = [node.node_id for node in tree.root.preorder()]
        assert ids == list(range(1, len(tree) + 1))

    def test_node_by_id(self):
        tree = figure1_tree()
        assert tree.node_by_id(1) is tree.root
        with pytest.raises(TreeError):
            tree.node_by_id(999)

    def test_depth_of_root_is_one(self):
        tree = figure1_tree()
        assert tree.root.depth == 1
        for node in tree.root.descendants():
            assert node.depth == node.parent.depth + 1

    def test_words(self):
        tree = figure1_tree()
        assert tree.words() == [
            "I", "saw", "the", "old", "man", "with", "a", "dog", "today",
        ]

    def test_unary_chain_shares_span(self):
        tree = tree_from_spec(("S", ("NP", ("NP", ("N", "dog")))))
        outer, inner = tree.root.children[0], tree.root.children[0].children[0]
        assert (outer.left, outer.right) == (inner.left, inner.right)
        assert inner.depth == outer.depth + 1

    def test_reindex_after_mutation(self):
        tree = tree_from_spec(("S", ("NP", "I"), ("VP", "ran")))
        tree.root.append(TreeNode("ADVP", attributes={"lex": "fast"}))
        tree.index()
        assert tree.root.right == 4
        assert tree.nodes[-1].label == "ADVP"
