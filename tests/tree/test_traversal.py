"""Tests for naive structural axis ground truth, incl. Definition 3.1."""

from hypothesis import given, settings

from repro.tree import figure1_tree
from repro.tree import traversal as tv
from tests.strategies import trees


def _by_label(tree, label, occurrence=0):
    matches = [node for node in tree.nodes if node.label == label]
    return matches[occurrence]


class TestFigure1Relations:
    """The worked examples from Sections 1-2 of the paper."""

    def setup_method(self):
        self.tree = figure1_tree()
        self.v = _by_label(self.tree, "V")          # "saw"
        self.object_np = _by_label(self.tree, "NP", 1)   # spans 3..9
        self.man_np = _by_label(self.tree, "NP", 2)      # "the old man"
        self.det_the = _by_label(self.tree, "Det", 0)

    def test_nps_immediately_following_verb(self):
        nps = [
            node
            for node in self.tree.nodes
            if node.label == "NP" and tv.immediately_follows(self.tree, node, self.v)
        ]
        assert {(n.left, n.right) for n in nps} == {(3, 9), (3, 6)}

    def test_det_immediately_follows_verb(self):
        assert tv.immediately_follows(self.tree, self.det_the, self.v)

    def test_adjacent_equals_definition_3_1_here(self):
        for x in self.tree.nodes:
            for y in self.tree.nodes:
                assert tv.immediately_follows(self.tree, x, y) == \
                    tv.immediately_follows_adjacent(self.tree, x, y)

    def test_three_nouns_follow_verb(self):
        nouns = [
            node for node in self.tree.nodes
            if node.label == "N" and tv.follows(self.tree, node, self.v)
        ]
        assert [n.word for n in nouns] == ["man", "dog", "today"]

    def test_sibling_relations(self):
        assert tv.is_immediate_following_sibling(self.tree, self.object_np, self.v)
        assert tv.is_following_sibling(self.tree, self.object_np, self.v)
        assert tv.is_immediate_preceding_sibling(self.tree, self.v, self.object_np)
        assert not tv.is_sibling(self.v, self.v)

    def test_vertical_relations(self):
        vp = _by_label(self.tree, "VP")
        assert tv.is_child(self.v, vp)
        assert tv.is_parent(vp, self.v)
        assert tv.is_ancestor(self.tree.root, self.det_the)
        assert tv.is_descendant(self.det_the, self.tree.root)
        assert not tv.is_descendant(self.v, self.v)

    def test_edge_alignment(self):
        vp = _by_label(self.tree, "VP")
        dog_np = _by_label(self.tree, "NP", 3)  # "a dog"
        assert tv.is_rightmost_in(vp, self.object_np)
        assert tv.is_rightmost_in(vp, dog_np)
        assert not tv.is_rightmost_in(vp, self.man_np)
        assert tv.is_leftmost_in(vp, self.v)

    def test_in_subtree(self):
        vp = _by_label(self.tree, "VP")
        today_n = [n for n in self.tree.nodes if n.word == "today"][0]
        assert tv.in_subtree(vp, self.v)
        assert tv.in_subtree(vp, vp)
        assert not tv.in_subtree(vp, today_n)


class TestDefinition31Equivalence:
    """Definition 3.1 (no intermediate node) == leaf adjacency, on random trees."""

    @given(trees(max_depth=4))
    @settings(max_examples=40, deadline=None)
    def test_equivalence(self, tree):
        nodes = tree.nodes
        for x in nodes:
            for y in nodes:
                assert tv.immediately_follows(tree, x, y) == \
                    tv.immediately_follows_adjacent(tree, x, y)

    @given(trees(max_depth=4))
    @settings(max_examples=40, deadline=None)
    def test_follows_antisymmetric(self, tree):
        for x in tree.nodes:
            assert not tv.follows(tree, x, x)
            for y in tree.nodes:
                if tv.follows(tree, x, y):
                    assert not tv.follows(tree, y, x)
                    assert tv.precedes(tree, y, x)
