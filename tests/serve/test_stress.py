"""Concurrency stress: many threads against ONE shared mmap-backed
engine and ONE daemon.  Results must be byte-identical to a sequential
run, and every counter must add up afterwards — a torn cache_stats()
snapshot or a lost increment is a bug even when the rows are right."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.lpath import LPathEngine
from repro.serve import QueryServer, QueryService, ServeClient

THREADS = 8
ROUNDS = 6
QUERIES = ("//NP", "//VP//NP", "//S//NP//WHPP", "//_[.//NP]//VB", "//WHPP")


class TestSharedEngineStress:
    def test_threads_see_sequential_results(self, store_path):
        with LPathEngine.open(store_path) as engine:
            expected = {query: engine.query(query) for query in QUERIES}
            barrier = threading.Barrier(THREADS)
            failures = []

            def hammer(seed: int) -> None:
                barrier.wait()  # maximize overlap on the shared engine
                for round_ in range(ROUNDS):
                    query = QUERIES[(seed + round_) % len(QUERIES)]
                    rows = engine.query(query)
                    if rows != expected[query]:
                        failures.append((query, rows))

            with ThreadPoolExecutor(THREADS) as pool:
                for done in [
                    pool.submit(hammer, seed) for seed in range(THREADS)
                ]:
                    done.result()
            assert failures == []

    def test_cache_stats_are_tear_free(self, store_path):
        with LPathEngine.open(store_path) as engine:
            calls = THREADS * ROUNDS

            def hammer(seed: int) -> None:
                for round_ in range(ROUNDS):
                    engine.query(QUERIES[(seed + round_) % len(QUERIES)])

            with ThreadPoolExecutor(THREADS) as pool:
                for done in [
                    pool.submit(hammer, seed) for seed in range(THREADS)
                ]:
                    done.result()
            stats = engine.cache_stats()
            # Every lookup was a hit or a miss — no lost increments, no
            # snapshot torn between the two counters.
            assert stats["hits"] + stats["misses"] == calls
            assert stats["misses"] >= len(QUERIES)
            assert stats["size"] <= stats["maxsize"]

    def test_pivot_and_plain_interleave_safely(self, store_path):
        with LPathEngine.open(store_path) as engine:
            expected_plain = engine.query("//VP//NP")
            expected_pivot = engine.query("//VP//NP", pivot=True)

            def hammer(seed: int):
                pivot = bool(seed % 2)
                rows = engine.query("//VP//NP", pivot=pivot)
                return rows == (expected_pivot if pivot else expected_plain)

            with ThreadPoolExecutor(THREADS) as pool:
                verdicts = list(pool.map(hammer, range(THREADS * 2)))
            assert all(verdicts)


class TestDaemonStress:
    def test_concurrent_clients_get_identical_rows(self, store_path):
        with LPathEngine.open(store_path) as engine:
            expected = {query: engine.query(query) for query in QUERIES}
        service = QueryService(store_path, max_inflight=4, max_queue=64)
        with QueryServer(service).start() as server:
            requests = THREADS * ROUNDS

            def hammer(seed: int):
                # One client (one keep-alive connection) per thread.
                mismatches = []
                with ServeClient(server.url) as client:
                    for round_ in range(ROUNDS):
                        query = QUERIES[(seed + round_) % len(QUERIES)]
                        rows = client.query(query, limit=7)
                        if rows != expected[query]:
                            mismatches.append(query)
                return mismatches

            with ThreadPoolExecutor(THREADS) as pool:
                mismatched = [
                    bad
                    for result in pool.map(hammer, range(THREADS))
                    for bad in result
                ]
            assert mismatched == []
            stats = service.stats()
            # Pagination re-requests count too: every /query landed as a
            # result-cache hit or an executed (served) query, exactly.
            cache = stats["result_cache"]
            assert cache["hits"] + cache["misses"] >= requests
            assert stats["server"]["served"] == cache["misses"]
            assert stats["server"]["rejected"] == 0
            assert stats["server"]["timeouts"] == 0
            assert stats["server"]["errors"] == 0
            assert stats["server"]["inflight"] == 0
            assert stats["server"]["waiting"] == 0

    def test_overload_degrades_to_rejections_not_hangs(self, store_path):
        # A tiny admission window under a thundering herd: every request
        # either succeeds with correct rows or is rejected with 429 —
        # nothing hangs, nothing crashes, and the books balance.
        from repro.serve import ServeClientError

        with LPathEngine.open(store_path) as engine:
            expected = engine.query("//S//NP//WHPP")
        service = QueryService(store_path, max_inflight=1, max_queue=1)
        with QueryServer(service).start() as server:
            outcomes = []

            def hammer(seed: int):
                # max_retries=0: a retried-then-served 429 would break
                # the rejected == outcomes.count(429) bookkeeping below.
                with ServeClient(server.url, max_retries=0) as client:
                    # Same parse, distinct query text: defeats the
                    # result cache so every request really executes.
                    query = "//S//NP//WHPP" + " " * (seed + 1)
                    try:
                        client.query(query)
                        return "ok"
                    except ServeClientError as error:
                        return error.status

            with ThreadPoolExecutor(THREADS) as pool:
                outcomes = list(pool.map(hammer, range(THREADS)))
            assert set(outcomes) <= {"ok", 429}
            assert outcomes.count("ok") == service.served
            assert service.rejected == outcomes.count(429)
            # And the daemon still answers normal traffic afterwards.
            with ServeClient(server.url) as client:
                assert client.query("//S//NP//WHPP") == expected
