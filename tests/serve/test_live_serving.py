"""Serving live (LPDB0005) corpora over HTTP: durable appends through
``POST /append`` with read-your-writes, live health in ``/stats`` and
``/readyz``, threshold-driven background compaction under load, and
clean 400s for everything that is not an appendable store."""

from __future__ import annotations

import time

import pytest

from repro import live, store
from repro.labeling.lpath_scheme import label_corpus
from repro.serve import (
    QueryServer,
    QueryService,
    ServeClient,
    ServeClientError,
)
from repro.tree.bracket import iter_trees

TEXT = "(S (NP (N dog)) (VP (V ran)))"
MORE = "(S (NP (N cat)) (VP (V sat) (NP (N mat))))"


@pytest.fixture()
def live_path(tmp_path) -> str:
    path = str(tmp_path / "live.lpdb")
    rows = list(label_corpus(iter_trees(TEXT * 5)))
    live.create_live_corpus(path, rows, segments=2)
    return path


@pytest.fixture()
def live_service(live_path):
    with QueryService(live_path) as built:
        yield built


@pytest.fixture()
def live_server(live_service):
    with QueryServer(live_service).start() as built:
        yield built


@pytest.fixture()
def live_client(live_server):
    with ServeClient(live_server.url, max_retries=0) as built:
        yield built


class TestAppendEndpoint:
    def test_append_read_your_writes(self, live_client):
        before = live_client.count("//N")
        ack = live_client.append(MORE)
        assert ack["trees"] == 1 and ack["rows"] > 0
        assert live_client.count("//N") == before + 2

    def test_append_bumps_fingerprint_and_defeats_cache(self, live_client):
        first = live_client.query_page("//NP")
        assert live_client.query_page("//NP")["cached"] is True
        live_client.append(MORE)
        fresh = live_client.query_page("//NP")
        assert fresh["cached"] is False
        assert len(fresh["matches"]) == len(first["matches"]) + 2

    def test_appends_are_durable_across_restart(self, live_path):
        with QueryService(live_path) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url, max_retries=0) as client:
                    client.append(MORE)
                    client.append(TEXT)
                    total = client.count("//N")
        # Service closed: the writer lock is released and the rows are
        # on disk; a cold second daemon serves the same counts.
        with QueryService(live_path) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url, max_retries=0) as client:
                    assert client.count("//N") == total

    def test_append_counter_in_stats(self, live_client):
        live_client.append(MORE)
        live_client.append(TEXT)
        assert live_client.stats()["server"]["appends"] == 2

    def test_parse_error_is_400(self, live_client):
        with pytest.raises(ServeClientError) as failure:
            live_client.append("(S (NP broken")
        assert failure.value.status == 400

    def test_empty_trees_is_400(self, live_client):
        with pytest.raises(ServeClientError) as failure:
            live_client.append("   ")
        assert failure.value.status == 400

    def test_get_method_is_405(self, live_client):
        with pytest.raises(ServeClientError) as failure:
            live_client._request("GET", "/append")
        assert failure.value.status == 405

    def test_append_to_immutable_store_is_400(self, tmp_path, live_path):
        frozen = str(tmp_path / "frozen.lpdb")
        store.save_corpus(
            list(iter_trees(TEXT * 3)), frozen, format="lpdb0004"
        )
        with QueryService([live_path, frozen]) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url, max_retries=0) as client:
                    with pytest.raises(ServeClientError) as failure:
                        client.append(MORE, store=frozen)
                    assert failure.value.status == 400
                    assert "immutable" in str(failure.value)
                    client.append(MORE, store=live_path)  # the live one works


class TestLiveHealthSurfaces:
    def test_stats_reports_live_block(self, live_client):
        live_client.append(MORE)
        stores = live_client.stats()["stores"]
        block = stores[0]["live"]
        assert block["generation"] >= 1
        assert block["delta_rows"] > 0
        assert block["appends"] == 1
        assert block["compactions"] == 0

    def test_readyz_reports_live_health(self, live_client):
        live_client.append(MORE)
        ready = live_client.ready()
        health = next(iter(ready["stores"].values()))
        assert health["live"]["delta_rows"] > 0
        assert health["live"]["compacting"] is False

    def test_second_writer_is_rejected_while_serving(
        self, live_service, live_path
    ):
        from repro.live import LiveCorpus
        from repro.store import StoreError

        with pytest.raises(StoreError, match="locked"):
            LiveCorpus(live_path)


class TestThresholdCompaction:
    def test_background_compaction_fires_and_queries_survive(self, live_path):
        with QueryService(live_path, compact_rows=1) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url, max_retries=0) as client:
                    expected = client.count("//N")
                    for _ in range(3):
                        expected += 2
                        client.append(MORE)
                        assert client.count("//N") == expected
                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        block = client.stats()["stores"][0]["live"]
                        if block["compactions"] >= 1 and not block["compacting"]:
                            break
                        time.sleep(0.05)
                    else:
                        pytest.fail("background compaction never fired")
                    # Compaction must not change any answer.
                    assert client.count("//N") == expected
        info = store.corpus_info(live_path)
        assert info["generation"] > 1

    def test_rejects_negative_threshold(self, live_path):
        from repro.lpath.errors import LPathError

        with pytest.raises(LPathError, match="compact_rows"):
            QueryService(live_path, compact_rows=-1)


class TestLiveStoreModes:
    def test_process_mode_is_rejected_for_live_store(self, live_path):
        from repro.lpath.errors import LPathError

        with pytest.raises(LPathError, match="thread"):
            QueryService(live_path, mode="process")

    def test_xpath_dialect_spec_is_rejected(self, live_path):
        from repro.lpath.errors import LPathError
        from repro.serve.service import StoreSpec

        with pytest.raises(LPathError, match="dialect"):
            QueryService(StoreSpec(path=live_path, dialect="xpath"))
