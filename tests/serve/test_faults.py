"""Serving-layer fault tolerance: store quarantine (injected read
errors and real on-disk corruption), circuit-breaker load shedding,
result-cache integrity, the split liveness/readiness probes, and the
client's reconnect/backoff policy."""

from __future__ import annotations

import shutil
import time

import pytest

from repro.serve import (
    CircuitBreaker,
    QueryServer,
    QueryService,
    ServeClient,
    ServeClientError,
    ServeError,
)

QUERY = "//VP//NP"


@pytest.fixture()
def store_pair(store_path, tmp_path):
    """Two byte-identical stores under distinct paths — one to corrupt,
    one to prove unaffected."""
    a = str(tmp_path / "a.lpdb")
    b = str(tmp_path / "b.lpdb")
    shutil.copy(store_path, a)
    shutil.copy(store_path, b)
    return a, b


def _flip_sidecar_byte(path: str, offset: int = 64) -> None:
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ 0xFF]))


class TestQuarantine:
    def test_read_errors_quarantine_after_threshold(
        self, store_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "mmap_read_error:1.0:7")
        with QueryService(
            store_path, quarantine_after=3, store_retry_after=30.0
        ) as service:
            for attempt in range(3):
                with pytest.raises(ServeError) as failure:
                    service.execute({"query": QUERY, "top_k": attempt + 1})
                assert failure.value.status == 503
                assert failure.value.transient is True
            # Threshold reached: the next request 503s *without*
            # executing (a quarantined store is not probed per-request).
            with pytest.raises(ServeError) as failure:
                service.execute({"query": "//NP"})
            assert "quarantined" in str(failure.value)
            assert failure.value.retry_after is not None
            stats = service.stats()
            assert stats["server"]["store_failures"] == 3
            assert stats["server"]["quarantines"] == 1
            assert stats["stores"][0]["health"]["quarantined"] is True

    def test_quarantine_lifts_after_cooldown_when_store_verifies(
        self, store_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "mmap_read_error:1.0:7")
        with QueryService(
            store_path, quarantine_after=1, store_retry_after=0.05
        ) as service:
            with pytest.raises(ServeError):
                service.execute({"query": QUERY})
            # Still inside the cooldown: quarantined, not re-probed.
            with pytest.raises(ServeError) as failure:
                service.execute({"query": QUERY})
            assert "quarantined" in str(failure.value)
            monkeypatch.delenv("REPRO_FAULTS")
            time.sleep(0.06)
            # Cooldown over, on-disk bytes intact: the store recovers
            # and serves again.
            assert service.execute({"query": QUERY})["total"] >= 0
            assert (
                service.stats()["stores"][0]["health"]["quarantined"] is False
            )

    def test_corrupted_sidecar_quarantines_healthy_store_unaffected(
        self, store_pair
    ):
        corrupt, healthy = store_pair
        with QueryService([corrupt, healthy]) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url, max_retries=0) as client:
                    baseline = client.query(QUERY, store=healthy)
                    _flip_sidecar_byte(corrupt)
                    # The readiness probe detects the flipped byte and
                    # quarantines the corrupt store on the spot.
                    probe = client.ready()
                    assert probe["ready"] is True
                    assert probe["status"] == "degraded"
                    assert probe["healthy_stores"] == 1
                    assert probe["stores"][corrupt]["quarantined"] is True
                    with pytest.raises(ServeClientError) as failure:
                        client.query(QUERY, store=corrupt)
                    assert failure.value.status == 503
                    assert "quarantined" in str(failure.value)
                    # The untouched store answers byte-identically and
                    # the daemon's liveness never wavers.
                    assert client.query(QUERY, store=healthy) == baseline
                    assert client.health() == {"status": "ok"}
                    assert client.stats()["server"]["quarantines"] == 1

    def test_restored_store_recovers_via_readyz(self, store_pair):
        corrupt, healthy = store_pair
        with open(corrupt, "rb") as handle:
            pristine = handle.read()
        with QueryService([corrupt, healthy]) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url, max_retries=0) as client:
                    _flip_sidecar_byte(corrupt)
                    assert client.ready()["stores"][corrupt]["quarantined"]
                    with open(corrupt, "wb") as handle:
                        handle.write(pristine)
                    probe = client.ready()
                    assert probe["status"] == "ok"
                    assert probe["stores"][corrupt]["quarantined"] is False
                    assert client.query(QUERY, store=corrupt)

    def test_all_stores_quarantined_means_not_ready(self, store_path):
        with QueryService(store_path) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url, max_retries=0) as client:
                    _flip_sidecar_byte(store_path)
                    try:
                        probe = client.ready()
                        assert probe["ready"] is False
                        assert probe["status"] == "degraded"
                    finally:
                        _flip_sidecar_byte(store_path)  # restore for peers


class TestCircuitBreaker:
    def test_failures_open_the_breaker_and_shed_with_429(
        self, store_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "mmap_read_error:1.0:7")
        breaker = CircuitBreaker(
            window=8, threshold=0.5, min_samples=4, cooldown=30.0
        )
        with QueryService(
            store_path, breaker=breaker, quarantine_after=1000
        ) as service:
            statuses = []
            for attempt in range(6):
                with pytest.raises(ServeError) as failure:
                    service.execute({"query": QUERY, "top_k": attempt + 1})
                statuses.append(failure.value.status)
            assert statuses == [503, 503, 503, 503, 429, 429]
            assert failure.value.retry_after is not None
            stats = service.stats()
            assert stats["breaker"]["state"] == "open"
            assert stats["breaker"]["opens"] == 1
            assert stats["server"]["shed"] == 2
            # Shed requests also count as rejections: `rejected` stays
            # the single source of truth for every 429.
            assert stats["server"]["rejected"] == 2

    def test_half_open_trial_closes_the_breaker(
        self, store_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "mmap_read_error:1.0:7")
        breaker = CircuitBreaker(
            window=8, threshold=0.5, min_samples=2, cooldown=0.05
        )
        with QueryService(
            store_path, breaker=breaker, quarantine_after=1000
        ) as service:
            for attempt in range(2):
                with pytest.raises(ServeError):
                    service.execute({"query": QUERY, "top_k": attempt + 1})
            assert service.stats()["breaker"]["state"] == "open"
            monkeypatch.delenv("REPRO_FAULTS")
            time.sleep(0.06)
            # The cooldown elapsed and the backend is healthy again: the
            # half-open trial executes and re-closes the breaker.
            assert service.execute({"query": QUERY})["total"] >= 0
            assert service.stats()["breaker"]["state"] == "closed"

    def test_client_errors_never_move_the_breaker(self, store_path):
        breaker = CircuitBreaker(window=8, threshold=0.5, min_samples=2)
        with QueryService(store_path, breaker=breaker) as service:
            for _ in range(4):
                with pytest.raises(ServeError) as failure:
                    service.execute({"query": "//["})
                assert failure.value.status == 400
            assert service.stats()["breaker"]["state"] == "closed"

    def test_cache_hits_bypass_an_open_breaker(
        self, store_path, monkeypatch
    ):
        breaker = CircuitBreaker(
            window=8, threshold=0.5, min_samples=2, cooldown=30.0
        )
        with QueryService(
            store_path, breaker=breaker, quarantine_after=1000
        ) as service:
            expected = service.execute({"query": QUERY})  # populates cache
            monkeypatch.setenv("REPRO_FAULTS", "mmap_read_error:1.0:7")
            for attempt in range(2):
                with pytest.raises(ServeError):
                    service.execute({"query": QUERY, "top_k": attempt + 1})
            assert service.stats()["breaker"]["state"] == "open"
            # The hot set keeps serving from the cache even while every
            # uncached execution is shed.
            document = service.execute({"query": QUERY})
            assert document["matches"] == expected["matches"]
            assert document["cached"] is True

    def test_breaker_knob_validation(self):
        with pytest.raises(Exception):
            CircuitBreaker(threshold=0.0)
        with pytest.raises(Exception):
            CircuitBreaker(window=4, min_samples=8)


class TestCacheIntegrity:
    def test_poisoned_entries_are_dropped_and_reexecuted(
        self, store_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "cache_poison:1.0:5")
        with QueryService(store_path) as service:
            first = service.execute({"query": QUERY})
            # The cached entry was corrupted after its digest was taken;
            # the integrity check catches it and re-executes instead of
            # serving garbage.
            second = service.execute({"query": QUERY})
            assert second["matches"] == first["matches"]
            assert second["cached"] is False
            assert service.results.stats["integrity_failures"] >= 1

    def test_clean_entries_still_hit(self, store_path):
        with QueryService(store_path) as service:
            first = service.execute({"query": QUERY})
            second = service.execute({"query": QUERY})
            assert second["matches"] == first["matches"]
            assert second["cached"] is True
            assert service.results.stats["integrity_failures"] == 0


class TestClientBackoff:
    def test_socket_resets_are_retried_to_identical_answers(
        self, store_path, monkeypatch
    ):
        with QueryService(store_path) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url, max_retries=0) as plain:
                    baseline = plain.query(QUERY)
                monkeypatch.setenv("REPRO_FAULTS", "socket_reset:0.5:42")
                client = ServeClient(
                    server.url, max_retries=5, backoff_base=0.01
                )
                with client:
                    for _ in range(10):
                        assert client.query(QUERY) == baseline
                    assert client.health() == {"status": "ok"}
                assert client.reconnects + client.backoffs > 0

    def test_503_honors_retry_after_until_recovery(
        self, store_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "mmap_read_error:1.0:7")
        with QueryService(
            store_path, quarantine_after=1, store_retry_after=0.1
        ) as service:
            with QueryServer(service).start() as server:
                with ServeClient(
                    server.url, max_retries=0
                ) as impatient, pytest.raises(ServeClientError) as failure:
                    impatient.query(QUERY)
                assert failure.value.status == 503
                monkeypatch.delenv("REPRO_FAULTS")
                # A patient client rides out the quarantine: backoff +
                # Retry-After until the store re-verifies, then the rows.
                with ServeClient(
                    server.url, max_retries=6, backoff_base=0.02,
                    backoff_cap=0.3,
                ) as patient:
                    rows = patient.query(QUERY)
                    assert rows
                    assert patient.backoffs >= 1

    def test_permanent_errors_never_retry(self, store_path):
        with QueryService(store_path) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url, max_retries=5) as client:
                    with pytest.raises(ServeClientError) as failure:
                        client.query("//[")
                    assert failure.value.status == 400
                    assert failure.value.transient is False
                    assert client.backoffs == 0

    def test_stale_keepalive_reconnects_without_backoff(self):
        # A server that closes every connection after one exchange (a
        # restart, an idle timeout) leaves the client holding a stale
        # keep-alive; the free reconnect layer absorbs it even with the
        # backoff budget at zero.
        import socket
        import threading

        body = b'{"status": "ok"}'
        response = (
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode("ascii")
            + b"\r\n\r\n" + body
        )
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(2)
        port = listener.getsockname()[1]

        def serve_two_connections():
            for _ in range(2):
                connection, _address = listener.accept()
                connection.recv(65536)
                connection.sendall(response)
                connection.close()  # no Connection: close header first

        thread = threading.Thread(target=serve_two_connections, daemon=True)
        thread.start()
        try:
            with ServeClient(
                f"http://127.0.0.1:{port}", max_retries=0
            ) as client:
                assert client.health() == {"status": "ok"}
                # The kept-alive connection is already dead server-side.
                assert client.health() == {"status": "ok"}
                assert client.reconnects == 1
                assert client.backoffs == 0
        finally:
            listener.close()
            thread.join(timeout=5.0)

    def test_backoff_delay_schedule_is_deterministic(self, store_path):
        first = ServeClient("http://127.0.0.1:1", retry_seed=9)
        second = ServeClient("http://127.0.0.1:1", retry_seed=9)
        schedule = [first._backoff_delay(n, None) for n in range(5)]
        assert schedule == [second._backoff_delay(n, None) for n in range(5)]
        assert all(delay <= first.backoff_cap for delay in schedule)
        retry_after = first._backoff_delay(0, "0.25")
        assert retry_after >= 0.25
