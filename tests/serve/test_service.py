"""The query service and daemon against a live mmap store: responses
byte-identical to the in-process engine, pagination that tiles the result
set exactly, a result cache that answers repeats, admission control that
rejects (not queues unboundedly) under overload, and deadlines that turn
runaway queries into clean 504s."""

from __future__ import annotations

import threading
import time

import pytest

from repro import store
from repro.labeling.xpath_scheme import label_corpus as xpath_label_corpus
from repro.lpath import LPathEngine
from repro.serve import QueryService, ServeClient, ServeError, StoreSpec
from repro.serve.service import LATENCY_WINDOW, MAX_BATCH_QUERIES
from repro.xpath import XPathEngine

QUERIES = ("//NP", "//VP//NP", "//S//NP//WHPP", "//_[.//NP]//VB")


@pytest.fixture(scope="module")
def reference(store_path):
    with LPathEngine.open(store_path) as engine:
        yield {query: engine.query(query) for query in QUERIES}


class TestExecute:
    def test_rows_match_in_process_engine(self, service, reference):
        for query, expected in reference.items():
            page = service.execute({"query": query, "limit": 50_000})
            assert [tuple(pair) for pair in page["matches"]] == expected
            assert page["total"] == len(expected)

    def test_pivot_matches_in_process_engine(self, service, store_path):
        with LPathEngine.open(store_path) as engine:
            expected = engine.query("//VP//NP", pivot=True)
        page = service.execute(
            {"query": "//VP//NP", "pivot": True, "limit": 50_000}
        )
        assert [tuple(pair) for pair in page["matches"]] == expected

    def test_count_mode_ships_no_rows(self, service, reference):
        page = service.execute({"query": "//NP", "count": True})
        assert page["total"] == len(reference["//NP"])
        assert page["count"] == page["total"]
        assert "matches" not in page

    def test_pagination_tiles_the_result_set(self, service, reference):
        expected = reference["//NP"]
        assert len(expected) > 7  # the corpus must exercise >1 page
        rows, offset = [], 0
        while True:
            page = service.execute(
                {"query": "//NP", "limit": 7, "offset": offset}
            )
            assert len(page["matches"]) <= 7
            rows.extend(tuple(pair) for pair in page["matches"])
            if page["next_offset"] is None:
                break
            assert page["next_offset"] == offset + len(page["matches"])
            offset = page["next_offset"]
        assert rows == expected

    def test_offset_past_end_is_an_empty_page(self, service, reference):
        page = service.execute(
            {"query": "//NP", "offset": len(reference["//NP"]) + 10}
        )
        assert page["matches"] == []
        assert page["next_offset"] is None

    def test_string_flags_from_query_strings(self, service):
        page = service.execute({"q": "//NP", "count": "1", "limit": "5"})
        assert page["count"] == page["total"]


class TestResultCache:
    def test_repeat_query_is_a_cache_hit(self, service):
        first = service.execute({"query": "//VP//NP", "limit": 50_000})
        again = service.execute({"query": "//VP//NP", "limit": 50_000})
        assert first["cached"] is False
        assert again["cached"] is True
        assert again["matches"] == first["matches"]
        assert service.results.stats["hits"] == 1

    def test_pages_of_one_query_share_one_entry(self, service):
        service.execute({"query": "//NP", "limit": 5})
        page = service.execute({"query": "//NP", "limit": 5, "offset": 5})
        assert page["cached"] is True
        assert service.results.stats["misses"] == 1

    def test_pivot_is_a_distinct_entry(self, service):
        service.execute({"query": "//VP//NP"})
        page = service.execute({"query": "//VP//NP", "pivot": True})
        assert page["cached"] is False

    def test_oversize_results_are_not_cached(self, store_path):
        with QueryService(store_path, max_cached_rows=1) as service:
            first = service.execute({"query": "//NP"})
            again = service.execute({"query": "//NP"})
        assert first["total"] > 1
        assert again["cached"] is False
        assert service.results.stats["oversize"] == 2

    def test_count_and_rows_share_the_cache(self, service, reference):
        service.execute({"query": "//NP"})
        page = service.execute({"query": "//NP", "count": True})
        assert page["cached"] is True
        assert page["total"] == len(reference["//NP"])


class TestTopKAndAggregates:
    def test_top_k_is_the_sorted_prefix(self, service, reference):
        page = service.execute({"query": "//NP", "top_k": 5})
        expected = sorted(reference["//NP"])[:5]
        assert [tuple(pair) for pair in page["matches"]] == expected
        assert page["total"] == 5

    def test_aggregate_count_matches_row_count(self, service, reference):
        page = service.execute({"query": "//NP", "agg": "count"})
        assert page["agg"] == "count"
        assert dict(
            (group, count) for group, count in page["aggregate"]
        ) == {"count": len(reference["//NP"])}
        assert "matches" not in page

    def test_grouped_aggregate_sums_to_count(self, service, reference):
        page = service.execute({"query": "//VP//NP", "agg": "count_by_depth"})
        assert sum(count for _, count in page["aggregate"]) == \
            len(reference["//VP//NP"])

    def test_top_k_caches_only_the_truncated_rows(self, store_path):
        # The oversize guard sees the k truncated rows, not the full
        # result set: a top-k query stays cacheable even when its full
        # result would be rejected.
        with QueryService(store_path, max_cached_rows=5) as service:
            full = service.execute({"query": "//NP"})
            top = service.execute({"query": "//NP", "top_k": 3})
            again = service.execute({"query": "//NP", "top_k": 3})
        assert full["total"] > 5
        assert service.results.stats["oversize"] == 1
        assert top["cached"] is False
        assert again["cached"] is True
        assert again["matches"] == top["matches"]

    def test_top_k_and_full_results_never_collide(self, service):
        # Distinct cache keys: the truncated entry must never answer the
        # full query (nor the full entry get truncated to answer top-k).
        service.execute({"query": "//VP//NP", "top_k": 2})
        page = service.execute({"query": "//VP//NP"})
        assert page["cached"] is False
        assert page["total"] > 2

    @pytest.mark.parametrize(
        "params",
        [
            {"query": "//NP", "top_k": 1, "agg": "count"},
            {"query": "//NP", "count": True, "agg": "count"},
            {"query": "//NP", "agg": "sum"},
            {"query": "//NP", "top_k": -1},
            {"query": "//NP", "top_k": "many"},
        ],
        ids=["topk+agg", "count+agg", "bad-agg", "negative-k", "non-int-k"],
    )
    def test_bad_top_k_and_agg_are_400(self, service, params):
        with pytest.raises(ServeError) as failure:
            service.execute(params)
        assert failure.value.status == 400


class TestBatchExecution:
    def test_batch_matches_per_query_execution(self, service, reference):
        queries = [
            "//NP",
            {"query": "//VP//NP", "top_k": 3},
            {"query": "//NP", "agg": "count"},
        ]
        documents = list(service.execute_batch({"queries": queries}))
        summary = documents.pop()
        assert summary["done"] is True
        assert summary["completed"] == summary["queries"] == 3
        assert [d["index"] for d in documents] == [0, 1, 2]
        assert [tuple(p) for p in documents[0]["matches"]] == \
            reference["//NP"]
        assert [tuple(p) for p in documents[1]["matches"]] == \
            sorted(reference["//VP//NP"])[:3]
        assert dict(
            (group, count) for group, count in documents[2]["aggregate"]
        ) == {"count": len(reference["//NP"])}

    def test_batch_members_use_the_result_cache_individually(self, service):
        service.execute({"query": "//NP"})
        documents = list(
            service.execute_batch({"queries": ["//NP", "//VP//NP"]})
        )
        assert documents[0]["cached"] is True
        assert documents[1]["cached"] is False
        # ...and a batch populates the cache for later singles/batches.
        documents = list(service.execute_batch({"queries": ["//VP//NP"]}))
        assert documents[0]["cached"] is True

    def test_member_failure_is_a_document_not_an_abort(
        self, service, reference
    ):
        documents = list(
            service.execute_batch({"queries": ["//NP", "//(", "//VP//NP"]})
        )
        summary = documents.pop()
        assert summary["done"] is False
        assert summary["completed"] == 2
        assert documents[1]["index"] == 1
        assert "error" in documents[1]
        assert [tuple(p) for p in documents[2]["matches"]] == \
            reference["//VP//NP"]

    @pytest.mark.parametrize(
        "params",
        [
            {},
            {"queries": []},
            {"queries": "//NP"},
            {"queries": [7]},
            {"queries": ["//NP"] * (MAX_BATCH_QUERIES + 1)},
            {"queries": [{"query": "//NP", "top_k": 1, "agg": "count"}]},
        ],
        ids=["missing", "empty", "not-a-list", "bad-entry", "too-many",
             "bad-member"],
    )
    def test_bad_batches_are_400_before_streaming(self, service, params):
        with pytest.raises(ServeError) as failure:
            service.execute_batch(params)
        assert failure.value.status == 400

    def test_batch_is_admitted_as_one_unit(self, store_path):
        with QueryService(
            store_path, max_inflight=1, max_queue=0
        ) as service:
            stream = service.execute_batch({"queries": ["//NP", "//VP//NP"]})
            next(stream)
            # The in-flight batch holds the only slot...
            with pytest.raises(ServeError) as failure:
                service.execute({"query": "//S//NP//WHPP"})
            assert failure.value.status == 429
            assert list(stream)[-1]["done"] is True
            # ...and releases it when the stream completes.
            assert service.execute({"query": "//S//NP//WHPP"})["total"] >= 0


class TestEndpointLatency:
    def test_latency_percentiles_surface_in_stats(self, service):
        for milliseconds in (1.0, 2.0, 3.0):
            service.record_latency("/query", milliseconds / 1000.0)
        service.record_latency("/batch", 0.004)
        endpoints = service.stats()["endpoints"]
        assert endpoints["/query"]["count"] == 3
        assert endpoints["/query"]["p50_ms"] == 2.0
        assert endpoints["/query"]["p99_ms"] >= endpoints["/query"]["p50_ms"]
        assert endpoints["/batch"] == {
            "count": 1, "p50_ms": 4.0, "p99_ms": 4.0,
        }

    def test_latency_window_is_bounded_but_counts_everything(self, service):
        for _ in range(LATENCY_WINDOW + 100):
            service.record_latency("/healthz", 0.001)
        endpoints = service.stats()["endpoints"]
        assert endpoints["/healthz"]["count"] == LATENCY_WINDOW + 100
        assert len(service._latency["/healthz"][1]) == LATENCY_WINDOW


class TestValidation:
    @pytest.mark.parametrize(
        "params",
        [
            {},                                        # no query at all
            {"query": "   "},                          # blank
            {"query": "//NP", "dialect": "sql"},       # unknown dialect
            {"query": "//NP", "limit": 0},             # below floor
            {"query": "//NP", "limit": 100_000},       # above ceiling
            {"query": "//NP", "offset": -1},
            {"query": "//NP", "offset": "soon"},
            {"query": "//NP", "timeout_ms": 0},
            {"query": "//NP", "timeout_ms": "fast"},
            {"query": "//NP", "pivot": "maybe"},
        ],
    )
    def test_bad_requests_are_400(self, service, params):
        with pytest.raises(ServeError) as failure:
            service.execute(params)
        assert failure.value.status == 400

    def test_unknown_store_is_404(self, service):
        with pytest.raises(ServeError) as failure:
            service.execute({"query": "//NP", "store": "/no/such.lpdb"})
        assert failure.value.status == 404
        assert "not served here" in str(failure.value)

    def test_parse_error_is_400_not_a_crash(self, service):
        with pytest.raises(ServeError) as failure:
            service.execute({"query": "//NP[@"})
        assert failure.value.status == 400

    def test_invalid_kernels_env_is_400(self, service, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "bogus")
        with pytest.raises(ServeError) as failure:
            service.execute({"query": "//NP"})
        assert failure.value.status == 400
        assert "REPRO_KERNELS" in str(failure.value)

    def test_dialect_mismatch_is_400(self, service):
        with pytest.raises(ServeError) as failure:
            service.execute({"query": "//NP", "dialect": "xpath"})
        assert failure.value.status == 400
        assert "dialect" in str(failure.value)

    def test_bad_service_knobs_fail_fast(self, store_path):
        from repro.lpath.errors import LPathError

        for kwargs in (
            {"max_inflight": 0},
            {"max_queue": -1},
            {"timeout": 0},
        ):
            with pytest.raises(LPathError):
                QueryService(store_path, **kwargs)
        with pytest.raises(LPathError):
            QueryService([])
        with pytest.raises(LPathError):
            QueryService(StoreSpec(store_path, dialect="sql"))


class TestXPathDialect:
    def test_xpath_store_serves_xpath_queries(self, trees, tmp_path):
        path = str(tmp_path / "xpath.lpdb")
        with open(path, "wb") as stream:
            store.save_labels(
                list(xpath_label_corpus(trees)), stream, segments=2,
                format="lpdb0004",
            )
        with XPathEngine.from_store_mmap(path) as engine:
            expected = engine.query("//NP")
        with QueryService(StoreSpec(path, dialect="xpath")) as service:
            page = service.execute(
                {"query": "//NP", "dialect": "xpath", "limit": 50_000}
            )
            assert [tuple(pair) for pair in page["matches"]] == expected
            with pytest.raises(ServeError) as failure:
                service.execute({"query": "//NP"})  # lpath against xpath
            assert failure.value.status == 400

    def test_pre_mmap_store_refuses_xpath_dialect(self, trees, tmp_path):
        # Only the zero-copy LPDB0004 layout can back the xpath engine's
        # mmap path; an older-revision store gets a clean refusal.
        from repro.lpath.errors import LPathError

        path = str(tmp_path / "old.lpdb")
        store.save_corpus(trees, path, segments=2, format="lpdb0003")
        with pytest.raises(LPathError) as failure:
            QueryService(StoreSpec(path, dialect="xpath"))
        assert "LPDB0004" in str(failure.value)


class _SlowEngine:
    """Wraps a served engine so queries block until released."""

    def __init__(self, engine, delay: float) -> None:
        self._engine = engine
        self._delay = delay
        self.entered = threading.Event()

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def query(self, *args, **kwargs):
        self.entered.set()
        time.sleep(self._delay)
        return self._engine.query(*args, **kwargs)


def _slow_service(store_path, delay, **kwargs):
    service = QueryService(store_path, **kwargs)
    handle = service._stores[store_path]
    handle.engine = _SlowEngine(handle.engine, delay)
    return service


class TestAdmissionControl:
    def test_overload_rejects_with_429(self, store_path):
        with _slow_service(
            store_path, delay=1.0, max_inflight=1, max_queue=0
        ) as service:
            slow = service._stores[store_path].engine
            runner = threading.Thread(
                target=service.execute, args=({"query": "//NP"},)
            )
            runner.start()
            try:
                assert slow.entered.wait(timeout=5.0)
                with pytest.raises(ServeError) as failure:
                    service.execute({"query": "//VP//NP"})
                assert failure.value.status == 429
                assert service.rejected == 1
            finally:
                runner.join()

    def test_deadline_expiry_is_504(self, store_path):
        with _slow_service(store_path, delay=1.0) as service:
            started = time.monotonic()
            with pytest.raises(ServeError) as failure:
                service.execute({"query": "//NP", "timeout_ms": 50})
            assert failure.value.status == 504
            assert time.monotonic() - started < 0.9  # gave up, not slept
            assert service.timeouts == 1
            # The abandoned query must never have populated the cache.
            time.sleep(1.2)
            assert service.results.stats["size"] == 0

    def test_queued_query_expires_while_waiting(self, store_path):
        with _slow_service(
            store_path, delay=1.0, max_inflight=1, max_queue=4
        ) as service:
            slow = service._stores[store_path].engine
            runner = threading.Thread(
                target=service.execute, args=({"query": "//NP"},)
            )
            runner.start()
            try:
                assert slow.entered.wait(timeout=5.0)
                with pytest.raises(ServeError) as failure:
                    service.execute({"query": "//VP//NP", "timeout_ms": 50})
                assert failure.value.status == 504
                assert "queued" in str(failure.value)
            finally:
                runner.join()

    def test_cache_hits_bypass_admission(self, store_path):
        # Fill the cache, then wedge the only execution slot: the cached
        # query must still answer instantly.
        with _slow_service(
            store_path, delay=0.0, max_inflight=1, max_queue=0
        ) as service:
            service.execute({"query": "//NP"})
            slow = service._stores[store_path].engine
            slow._delay = 1.0
            slow.entered.clear()
            runner = threading.Thread(
                target=service.execute, args=({"query": "//VP//NP"},)
            )
            runner.start()
            try:
                assert slow.entered.wait(timeout=5.0)
                page = service.execute({"query": "//NP"})
                assert page["cached"] is True
            finally:
                runner.join()


class TestStats:
    def test_stats_shape_and_counters(self, service):
        service.execute({"query": "//NP"})
        service.execute({"query": "//NP"})
        stats = service.stats()
        assert stats["server"]["served"] == 1
        assert stats["server"]["inflight"] == 0
        assert stats["server"]["draining"] is False
        assert stats["result_cache"]["hits"] == 1
        assert stats["result_cache"]["misses"] == 1
        assert stats["kernels"]["backend"] in ("python", "native")
        (described,) = stats["stores"]
        assert described["dialect"] == "lpath"
        assert described["fingerprint"].startswith("lpdb0004-")
        assert described["plan_cache"]["misses"] >= 1

    def test_health_reports_ok(self, service):
        assert service.health() == {"status": "ok"}
