"""Lifecycle discipline for long-lived serving: close is idempotent at
every layer (engine, service, daemon), a closed service answers with a
clean draining error instead of a crash, and shutdown drains in-flight
queries rather than cutting them off mid-scan."""

from __future__ import annotations

import threading
import time

import pytest

from repro.lpath import LPathEngine
from repro.serve import (
    QueryServer,
    QueryService,
    ServeClient,
    ServeClientError,
    ServeError,
)


class TestIdempotentClose:
    def test_engine_double_close(self, store_path):
        engine = LPathEngine.open(store_path)
        assert engine.query("//NP")
        engine.close()
        engine.close()  # second close must be a no-op, not a crash

    def test_service_double_close(self, store_path):
        service = QueryService(store_path)
        service.execute({"query": "//NP"})
        service.close()
        service.close()

    def test_server_double_close(self, store_path):
        service = QueryService(store_path)
        server = QueryServer(service).start()
        with ServeClient(server.url) as client:
            assert client.health() == {"status": "ok"}
        server.close()
        server.close()

    def test_server_close_without_ever_serving(self, store_path):
        # close() before start() must not deadlock on the serve_forever
        # handshake that never happened.
        service = QueryService(store_path)
        server = QueryServer(service)
        server.close()

    def test_context_managers_close_on_exit(self, store_path):
        with QueryService(store_path) as service:
            with QueryServer(service).start() as server:
                with ServeClient(server.url) as client:
                    client.query_page("//NP")
        # An *uncached* query against the exited service hits the
        # draining gate (cache hits stay answerable by design).
        with pytest.raises(ServeError):
            service.execute({"query": "//VP//NP"})


class TestClosedService:
    def test_execute_after_close_is_503(self, store_path):
        service = QueryService(store_path)
        service.close()
        with pytest.raises(ServeError) as failure:
            service.execute({"query": "//VP//NP"})
        assert failure.value.status == 503
        assert "draining" in str(failure.value)

    def test_closed_engine_behind_a_live_daemon_is_clean(self, store_path):
        # The operator closed the engine out from under the daemon (or a
        # reload raced a request): the client sees one clean error line,
        # never a traceback, and the daemon keeps answering.
        service = QueryService(store_path)
        with QueryServer(service).start() as server:
            with ServeClient(server.url) as client:
                assert client.query("//NP")
                for handle in service._stores.values():
                    handle.engine.close()
                service.results.clear()
                with pytest.raises(ServeClientError) as failure:
                    client.query("//VP//NP")
                assert failure.value.status in (400, 503)
                assert "Traceback" not in str(failure.value)
                assert client.health() == {"status": "ok"}

    def test_daemon_after_service_close_is_503(self, store_path):
        service = QueryService(store_path)
        with QueryServer(service).start() as server:
            with ServeClient(server.url) as client:
                assert client.health() == {"status": "ok"}
                service.close()
                with pytest.raises(ServeClientError) as failure:
                    client.query("//NP")
                assert failure.value.status == 503
                assert client.health() == {"status": "draining"}


class TestDrain:
    def test_close_waits_for_inflight_queries(self, store_path):
        service = QueryService(store_path)
        handle = next(iter(service._stores.values()))
        inner_query = handle.engine.query
        entered = threading.Event()
        finished = threading.Event()

        def slow_query(*args, **kwargs):
            entered.set()
            time.sleep(0.3)
            rows = inner_query(*args, **kwargs)
            finished.set()
            return rows

        handle.engine.query = slow_query
        outcome = {}

        def run():
            outcome["rows"] = service.execute(
                {"query": "//NP", "limit": 50_000}
            )

        runner = threading.Thread(target=run)
        runner.start()
        assert entered.wait(timeout=5.0)
        service.close(drain_timeout=10.0)
        runner.join(timeout=5.0)
        # The in-flight query ran to completion before the engines went
        # away: it finished, returned rows, and was never cut off.
        assert finished.is_set()
        assert outcome["rows"]["total"] > 0

    def test_drain_timeout_bounds_the_wait(self, store_path):
        service = QueryService(store_path)
        handle = next(iter(service._stores.values()))
        entered = threading.Event()

        def wedged_query(*args, **kwargs):
            entered.set()
            time.sleep(5.0)
            return ()

        handle.engine.query = wedged_query

        def run():
            # The wedged query may still complete (close only stopped
            # waiting for it) or fail against closed engines; the test
            # only cares that close() returned promptly.
            try:
                service.execute({"query": "//NP"})
            except Exception:
                pass

        runner = threading.Thread(target=run)
        runner.start()
        assert entered.wait(timeout=5.0)
        started = time.monotonic()
        service.close(drain_timeout=0.2)
        assert time.monotonic() - started < 2.0
        runner.join(timeout=10.0)

    def test_new_queries_rejected_while_draining(self, server, client):
        server.service.close(drain_timeout=0.0)
        with pytest.raises(ServeClientError) as failure:
            client.query("//NP")
        assert failure.value.status == 503
