"""The HTTP daemon and client over a real socket: the wire adds nothing
and loses nothing — rows byte-identical to the in-process engine, every
failure a JSON error document with the right status, connections kept
alive across requests."""

from __future__ import annotations

import http.client
import json

import pytest

from repro.lpath import LPathEngine
from repro.serve import ServeClientError


@pytest.fixture(scope="module")
def expected(store_path):
    with LPathEngine.open(store_path) as engine:
        yield {
            "//NP": engine.query("//NP"),
            "//VP//NP": engine.query("//VP//NP"),
        }


class TestQueryEndpoint:
    def test_post_rows_match_in_process_engine(self, client, expected):
        assert client.query("//NP") == expected["//NP"]

    def test_get_form_matches_post_form(self, client, expected):
        page = client.get_query(q="//VP//NP", limit=50_000)
        assert [tuple(pair) for pair in page["matches"]] == \
            expected["//VP//NP"]

    def test_client_pagination_reassembles_exactly(self, client, expected):
        assert client.query("//NP", limit=3) == expected["//NP"]

    def test_count_round_trip(self, client, expected):
        assert client.count("//NP") == len(expected["//NP"])

    def test_keep_alive_reuses_one_connection(self, client):
        client.query_page("//NP")
        connection = client._connection
        client.query_page("//VP//NP")
        client.stats()
        assert client._connection is connection

    def test_repeat_query_is_served_from_cache(self, client):
        first = client.query_page("//NP")
        again = client.query_page("//NP")
        assert first["cached"] is False
        assert again["cached"] is True
        assert again["matches"] == first["matches"]


class TestErrorDocuments:
    def test_missing_query_is_400(self, client):
        with pytest.raises(ServeClientError) as failure:
            client.query_page("")
        assert failure.value.status == 400

    def test_parse_error_is_400_with_clean_message(self, client):
        with pytest.raises(ServeClientError) as failure:
            client.query("//NP[@")
        assert failure.value.status == 400
        assert "Traceback" not in str(failure.value)

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServeClientError) as failure:
            client._request("GET", "/nope")
        assert failure.value.status == 404

    def test_unknown_store_is_404(self, client):
        with pytest.raises(ServeClientError) as failure:
            client.query("//NP", store="/no/such.lpdb")
        assert failure.value.status == 404

    def test_bad_dialect_is_400(self, client):
        with pytest.raises(ServeClientError) as failure:
            client.query("//NP", dialect="sql")
        assert failure.value.status == 400

    def test_invalid_json_body_is_400(self, server):
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )
        try:
            connection.request(
                "POST", "/query", b"{not json",
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            document = json.loads(response.read())
            assert response.status == 400
            assert "invalid JSON" in document["error"]
        finally:
            connection.close()

    def test_non_object_json_body_is_400(self, server):
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )
        try:
            connection.request(
                "POST", "/query", b"[1, 2]",
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
        finally:
            connection.close()

    def test_oversized_body_is_refused(self, server):
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=10
        )
        try:
            connection.request(
                "POST", "/query", b" " * (2 << 20),
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            document = json.loads(response.read())
            assert response.status == 400
            assert "too large" in document["error"]
        finally:
            connection.close()

    def test_errors_never_leak_tracebacks(self, client):
        for exercise in (
            lambda: client.query_page(""),
            lambda: client.query("//NP[@"),
            lambda: client._request("GET", "/nope"),
        ):
            with pytest.raises(ServeClientError) as failure:
                exercise()
            assert "Traceback" not in str(failure.value)


class TestBatchEndpoint:
    def test_batch_round_trip_matches_per_query(self, client, expected):
        documents = client.query_batch([
            "//NP",
            {"query": "//VP//NP", "top_k": 3},
            {"query": "//NP", "agg": "count"},
        ])
        assert [d["index"] for d in documents] == [0, 1, 2]
        assert [tuple(p) for p in documents[0]["matches"]] == \
            expected["//NP"]
        assert [tuple(p) for p in documents[1]["matches"]] == \
            sorted(expected["//VP//NP"])[:3]
        assert dict(documents[2]["aggregate"]) == \
            {"count": len(expected["//NP"])}

    def test_batch_wire_format_is_chunked_ndjson(self, server):
        connection = http.client.HTTPConnection(server.host, server.port)
        try:
            connection.request(
                "POST", "/batch",
                json.dumps({"queries": ["//NP", "//VP//NP"]}),
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == \
                "application/x-ndjson"
            assert response.getheader("Transfer-Encoding") == "chunked"
            documents = [
                json.loads(line)
                for line in response.read().decode("utf-8").splitlines()
                if line
            ]
            assert len(documents) == 3
            assert documents[-1]["done"] is True
        finally:
            connection.close()

    def test_invalid_batch_member_is_400(self, client):
        with pytest.raises(ServeClientError) as failure:
            client.query_batch([
                {"query": "//NP", "top_k": 1, "agg": "count"}
            ])
        assert failure.value.status == 400

    def test_member_parse_error_streams_an_error_document(self, client):
        documents = client._request_ndjson(
            "POST", "/batch", {"queries": ["//NP", "//("]}
        )
        assert "error" in documents[1]
        assert documents[-1]["done"] is False
        # The strict client surface turns the partial batch into an error.
        with pytest.raises(ServeClientError):
            client.query_batch(["//NP", "//("])

    def test_top_k_and_agg_round_trip_on_query_endpoint(
        self, client, expected
    ):
        assert client.query("//NP", top_k=4) == sorted(expected["//NP"])[:4]
        assert client.aggregate("//NP") == {"count": len(expected["//NP"])}


class TestObservability:
    def test_healthz(self, client):
        assert client.health() == {"status": "ok"}

    def test_stats_counts_the_traffic_it_saw(self, client):
        client.query_page("//NP")
        client.query_page("//NP")
        stats = client.stats()
        assert stats["server"]["served"] == 1
        assert stats["result_cache"]["hits"] == 1
        assert stats["result_cache"]["misses"] == 1
        (described,) = stats["stores"]
        assert described["fingerprint"].startswith("lpdb0004-")
        assert stats["kernels"]["backend"] in ("python", "native")

    def test_stats_reports_per_endpoint_latency(self, client):
        client.query_page("//NP")
        client.query_batch(["//VP//NP"])
        endpoints = client.stats()["endpoints"]
        assert endpoints["/query"]["count"] >= 1
        assert endpoints["/batch"]["count"] >= 1
        for entry in endpoints.values():
            assert entry["p99_ms"] >= entry["p50_ms"] >= 0.0

    def test_stats_is_json_clean(self, client):
        # Everything in /stats must survive a JSON round trip untouched.
        stats = client.stats()
        assert json.loads(json.dumps(stats)) == stats


class TestClientTransport:
    def test_client_rejects_non_http_urls(self):
        from repro.serve import ServeClient

        with pytest.raises(ServeClientError):
            ServeClient("ftp://example.org")

    def test_unreachable_daemon_is_a_clean_error(self):
        from repro.serve import ServeClient

        with ServeClient("http://127.0.0.1:9") as client:
            with pytest.raises(ServeClientError) as failure:
                client.health()
        assert "cannot reach daemon" in str(failure.value)

    def test_client_retries_a_dead_keep_alive(self, client):
        client.query_page("//NP")
        # Kill the idle connection out from under the client; the next
        # request must transparently reconnect.
        client._connection.close()
        assert client.query_page("//NP")["cached"] is True
