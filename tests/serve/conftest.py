"""Shared fixtures for the serving-layer tests: one compiled corpus, a
fresh service/daemon/client per test (daemon startup is an ephemeral-port
bind plus an mmap open — milliseconds, so per-test isolation is cheap)."""

from __future__ import annotations

import pytest

from repro import store
from repro.corpus import generate_corpus
from repro.serve import QueryServer, QueryService, ServeClient


@pytest.fixture(scope="session")
def trees():
    return list(generate_corpus("wsj", sentences=40, seed=3))


@pytest.fixture(scope="session")
def store_path(tmp_path_factory, trees) -> str:
    path = tmp_path_factory.mktemp("serve") / "corpus.lpdb"
    store.save_corpus(trees, str(path), segments=2, format="lpdb0004")
    return str(path)


@pytest.fixture()
def service(store_path):
    with QueryService(store_path) as built:
        yield built


@pytest.fixture()
def server(service):
    with QueryServer(service).start() as built:
        yield built


@pytest.fixture()
def client(server):
    with ServeClient(server.url) as built:
        yield built
