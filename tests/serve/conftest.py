"""Shared fixtures for the serving-layer tests: one compiled corpus, a
fresh service/daemon/client per test (daemon startup is an ephemeral-port
bind plus an mmap open — milliseconds, so per-test isolation is cheap)."""

from __future__ import annotations

import pytest

from repro import store
from repro.corpus import generate_corpus
from repro.serve import QueryServer, QueryService, ServeClient


@pytest.fixture(scope="session")
def trees():
    return list(generate_corpus("wsj", sentences=40, seed=3))


@pytest.fixture(scope="session")
def store_path(tmp_path_factory, trees) -> str:
    path = tmp_path_factory.mktemp("serve") / "corpus.lpdb"
    store.save_corpus(trees, str(path), segments=2, format="lpdb0004")
    return str(path)


@pytest.fixture()
def service(store_path):
    with QueryService(store_path) as built:
        yield built


@pytest.fixture()
def server(service):
    with QueryServer(service).start() as built:
        yield built


@pytest.fixture()
def client(server):
    # max_retries=0 pins single-attempt semantics: tests that assert on
    # exact statuses and counter books must not have 429/503 responses
    # silently absorbed by the client's backoff layer.
    with ServeClient(server.url, max_retries=0) as built:
        yield built
