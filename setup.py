"""Shim for editable installs in environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517 --no-build-isolation`` offline.
"""

from setuptools import setup

setup()
