"""Shim for editable installs in environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517 --no-build-isolation`` offline, and —
when cffi is present — pre-builds the native columnar kernels so the
first query does not pay the compile (the extension also self-builds on
first import, so installs without cffi still work end to end).
"""

from setuptools import setup

try:
    import cffi  # noqa: F401

    extras = {"cffi_modules": ["src/repro/columnar/kernels/build.py:ffibuilder"]}
except ImportError:
    extras = {}

setup(**extras)
