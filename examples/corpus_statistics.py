#!/usr/bin/env python3
"""Dataset characteristics: regenerate Figures 6(a) and 6(b) at any scale.

Generates WSJ-like and SWB-like corpora, prints their characteristics and
top-10 tag tables, round-trips the WSJ corpus through bracketed text
(the Treebank-3 interchange format), and compiles it into a zero-copy
``LPDB0004`` store whose collected statistics are printed straight from
the sidecar via ``repro store info`` — no column data is read.

Run:  python examples/corpus_statistics.py [sentences]
"""

import io
import os
import shutil
import sys
import tempfile

from repro.cli import main as repro_main
from repro.corpus import (
    corpus_stats,
    format_stats_table,
    format_top_tags_table,
    generate_corpus,
    top_tags,
)
from repro.store import save_corpus
from repro.tree import read_trees, write_trees


def main() -> None:
    sentences = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print(f"Generating {sentences} sentences per profile...\n")
    wsj = generate_corpus("wsj", sentences=sentences, seed=6)
    swb = generate_corpus("swb", sentences=sentences, seed=6)

    print("Figure 6(a): dataset characteristics")
    print(format_stats_table({
        "WSJ-like": corpus_stats(wsj),
        "SWB-like": corpus_stats(swb),
    }))

    print("\nFigure 6(b): top 10 frequent tags")
    print(format_top_tags_table({
        "WSJ-like": top_tags(wsj, 10),
        "SWB-like": top_tags(swb, 10),
    }))

    buffer = io.StringIO()
    write_trees(wsj, buffer)
    text = buffer.getvalue()
    back = list(read_trees(io.StringIO(text)))
    print(f"\nBracketed round-trip: wrote {len(text)} bytes, "
          f"read back {len(back)} trees "
          f"({'OK' if len(back) == len(wsj) else 'MISMATCH'})")
    print("First tree:")
    print(" ", text.splitlines()[0][:100], "...")

    directory = tempfile.mkdtemp(prefix="repro-stats-")
    try:
        path = os.path.join(directory, "wsj.lpdb")
        save_corpus(wsj, path, segments=4, format="lpdb0004")
        print("\nCompiled to a zero-copy LPDB0004 store; `repro store info` "
              "reads these statistics from the sidecar alone:")
        repro_main(["store", "info", path, "--top", "10"])
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
