#!/usr/bin/env python3
"""Linguistic search over a treebank: the paper's motivating workload.

Generates a WSJ-like treebank, loads it into the LPath engine, and walks
through the kinds of questions linguists ask (Section 2 of the paper),
printing matched sentences with the matched constituent highlighted.

Run:  python examples/treebank_search.py [sentences]
"""

import sys

from repro.corpus import generate_corpus
from repro.lpath import LPathEngine

INVESTIGATIONS = [
    ("//VB->NP", "Which constituents immediately follow a verb?"),
    ("//VP{/VB-->NN}",
     "Nouns after the verb, but only inside the same verb phrase"),
    ("//VP{//NP$}", "Noun phrases flush against the right edge of their VP"),
    ("//NP[not(//JJ)]", "Noun phrases with no adjective anywhere inside"),
    ("//S[//_[@lex=saw]]", "Sentences containing the word 'saw'"),
    ("//NP/NP/NP", "Deeply stacked noun phrases (PP-attachment chains)"),
    ("//VP[{//^VB->NP->PP$}]",
     "VPs that consist exactly of verb + object + PP (edge-aligned)"),
]


def highlight(tree, node) -> str:
    words = []
    for leaf in tree.leaves():
        word = leaf.word or ""
        if node.left <= leaf.left and leaf.right <= node.right:
            word = f"[{word}]"
        words.append(word)
    return " ".join(words)


def main() -> None:
    sentences = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    print(f"Generating a WSJ-like treebank with {sentences} sentences...")
    corpus = generate_corpus("wsj", sentences=sentences, seed=1)
    engine = LPathEngine(corpus)
    trees = {tree.tid: tree for tree in corpus}

    for query, question in INVESTIGATIONS:
        matches = engine.query(query)
        print(f"\n{question}")
        print(f"  LPath: {query}")
        print(f"  {len(matches)} matches", end="")
        if not matches:
            print()
            continue
        print("; first examples:")
        for tid, node_id in matches[:3]:
            tree = trees[tid]
            node = tree.node_by_id(node_id)
            print(f"    ({node.label}) {highlight(tree, node)}")


if __name__ == "__main__":
    main()
