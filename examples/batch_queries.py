#!/usr/bin/env python3
"""Batch execution, aggregation pushdown and top-k early termination.

Builds a small generated treebank, then shows the three batch-era query
surfaces side by side:

* ``query_batch`` — a suite of related queries compiled into one shared
  DAG; scan/join prefixes common to several queries execute once.
* ``aggregate`` — ``count`` / ``count_by_name`` / ``count_by_depth``
  evaluated without materializing the match list.
* ``limit=k`` — the first k results in sorted order, with the
  structural-join sweeps stopping early instead of materializing
  everything and slicing.

``explain_batch`` renders the shared DAG with reuse annotations so you
can see exactly which steps are shared with which earlier query.

Run:  python examples/batch_queries.py
"""

from repro import LPathEngine
from repro.bench.datasets import generate_corpus


def main() -> None:
    trees = list(generate_corpus("wsj", sentences=200, seed=7))
    engine = LPathEngine(trees, keep_trees=False, executor="columnar")

    # A fig. 6c-style suite: one expensive shared spine, cheap tails.
    suite = ["//S//VP//NP", "//S//VP//NP//NN", "//S//VP//NP//DT"]
    print("Batch over a shared //S//VP//NP spine:")
    for query, rows in zip(suite, engine.query_batch(suite)):
        print(f"  {query:<18} {len(rows)} matches")

    print("\nThe shared DAG (steps annotated with their reuse):")
    print(engine.explain_batch(suite))

    # Mixed batch entries: plain rows, top-k and aggregates together.
    mixed = [
        "//S//VP//NP",
        {"query": "//S//VP//NP", "limit": 5},
        {"query": "//S//VP//NP", "agg": "count_by_name"},
    ]
    rows, topk, by_name = engine.query_batch(mixed)
    print("\nMixed batch over the same query:")
    print(f"  all rows        : {len(rows)} matches")
    print(f"  limit=5         : {topk}")
    print(f"  count_by_name   : {dict(sorted(by_name.items()))}")
    assert topk == sorted(rows)[:5]
    assert sum(by_name.values()) == len(rows)

    # Aggregates straight off the engine, no batch required.
    print("\nAggregation pushdown (no match list materialized):")
    print(f"  count          : {engine.aggregate('//NP')}")
    print(f"  count_by_depth : {engine.aggregate('//NP', agg='count_by_depth')}")

    # Top-k early termination: identical to sorting the full result and
    # slicing, but the sweeps stop once k rows are in hand.
    full = engine.query("//S//NP//NN")
    first = engine.query("//S//NP//NN", limit=3)
    assert first == sorted(full)[:3]
    print(f"\nTop-3 of //S//NP//NN ({len(full)} total): {first}")


if __name__ == "__main__":
    main()
