#!/usr/bin/env python3
"""Peek inside the engine: LPath -> SQL translation and physical plans.

Shows, for a few representative queries, the SQL text the translation
module emits (Section 4 of the paper) and the physical plan the mini
relational engine executes, then cross-checks both backends.

Run:  python examples/sql_translation.py
"""

from repro import LPathEngine, figure1_tree
from repro.corpus import generate_corpus

QUERIES = [
    "//V->NP",                      # immediate-following: equality join on labels
    "//VP{//NP$}",                  # scoping + right edge alignment
    "//NP[not(//Adj)]",             # NOT EXISTS
    "//S[//_[@lex=saw]]",           # value predicate via the value index
    "//V/following-sibling::_[position()=1][self::NP]",  # XPath rewrite
]


def main() -> None:
    engine = LPathEngine([figure1_tree()])
    for query in QUERIES:
        print("=" * 72)
        print("LPath :", query)
        print("\n-- emitted SQL " + "-" * 40)
        print(engine.to_sql(query))
        print("\n-- physical plan " + "-" * 38)
        print(engine.explain(query))
        plan = engine.query(query, backend="plan")
        sqlite = engine.query(query, backend="sqlite")
        print(f"\nplan backend = sqlite backend = {plan == sqlite}  "
              f"({len(plan)} results)")
        print()

    print("=" * 72)
    print("Same query, larger corpus — the value-seeded plan at work:")
    corpus = generate_corpus("wsj", sentences=500, seed=3)
    big = LPathEngine(corpus, keep_trees=False)
    query = "//_[@lex=rapprochement]"
    print("LPath :", query)
    print(big.explain(query).splitlines()[0])
    print("results:", big.count(query))


if __name__ == "__main__":
    main()
