#!/usr/bin/env python3
"""Compare the four engines of the paper on the same corpus.

Runs a sample of the Figure 6(c) query set through the LPath engine,
TGrep2, CorpusSearch and the XPath-labeling engine, printing per-system
times — a miniature of Figures 7 and 10.

Run:  python examples/engine_comparison.py [sentences]
"""

import sys
import time

from repro.baselines.corpussearch import CorpusSearchEngine
from repro.baselines.tgrep2 import TGrep2Engine
from repro.bench.queries import QUERY_SET
from repro.corpus import generate_corpus
from repro.lpath import LPathCompileError, LPathEngine
from repro.xpath import XPathEngine

SAMPLE = (1, 2, 6, 9, 12, 18)  # value, horizontal, scoped, negation, rare, deep


def timed(run) -> tuple[float, object]:
    started = time.perf_counter()
    result = run()
    return time.perf_counter() - started, result


def main() -> None:
    sentences = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    print(f"Generating a WSJ-like treebank with {sentences} sentences...")
    corpus = generate_corpus("wsj", sentences=sentences, seed=2)

    print("Loading engines (LPath / TGrep2 / CorpusSearch / XPath-labels)...")
    load, lpath = timed(lambda: LPathEngine(corpus, keep_trees=False))
    print(f"  LPath engine loaded in {load:.2f}s "
          f"({len(lpath.node_table)} label rows)")
    tgrep = TGrep2Engine(corpus)
    corpussearch = CorpusSearchEngine(corpus)
    xpath = XPathEngine(corpus)

    header = f"{'query':<34}{'LPath':>10}{'TGrep2':>10}{'CorpusS.':>10}{'XPath':>10}"
    print("\n" + header)
    print("-" * len(header))
    for query in QUERY_SET:
        if query.qid not in SAMPLE:
            continue
        lpath_seconds, size = timed(lambda: lpath.count(query.lpath))
        tgrep_seconds, _ = timed(lambda: tgrep.count(query.tgrep2))
        corpussearch_seconds, _ = timed(
            lambda: corpussearch.count(query.corpussearch)
        )
        try:
            xpath_seconds, _ = timed(lambda: xpath.count(query.lpath))
            xpath_cell = f"{xpath_seconds * 1000:>8.1f}ms"
        except LPathCompileError:
            xpath_cell = f"{'n/a':>10}"
        print(
            f"{query.lpath:<34}{lpath_seconds * 1000:>8.1f}ms"
            f"{tgrep_seconds * 1000:>8.1f}ms"
            f"{corpussearch_seconds * 1000:>8.1f}ms{xpath_cell}"
            f"   ({size} results)"
        )

    print("\n'n/a' marks LPath-only features (Lemma 3.1: immediate axes,")
    print("scoping and edge alignment are not expressible in XPath).")


if __name__ == "__main__":
    main()
