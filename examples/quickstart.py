#!/usr/bin/env python3
"""Quickstart: the paper's running example (Figures 1, 2 and 5).

Builds the Figure 1 syntax tree for "I saw the old man with a dog today",
shows its label relation (Figure 5), and runs every example query of
Figure 2 on all three backends.

Run:  python examples/quickstart.py
"""

from repro import LPathEngine, figure1_tree
from repro.labeling import label_tree
from repro.tree import format_tree


def main() -> None:
    tree = figure1_tree()
    print("Figure 1 tree:")
    print(" ", format_tree(tree))
    print("\nSentence:", " ".join(tree.words()))

    print("\nFigure 5: the label relation (left right depth id pid name value)")
    for row in label_tree(tree):
        value = row.value if row.value is not None else ""
        print(f"  {row.left:>4} {row.right:>5} {row.depth:>5} {row.id:>3} "
              f"{row.pid:>3}  {row.name:<6} {value}")

    engine = LPathEngine([tree])
    figure2 = [
        ("//S[//_[@lex=saw]]", "sentences containing the word 'saw'"),
        ("//V==>NP", "NPs that are immediate following siblings of a verb"),
        ("//V->NP", "NPs that immediately follow a verb"),
        ("//VP/V-->N", "nouns following a verb that is a child of a VP"),
        ("//VP{/V-->N}", "ditto, scoped inside the verb phrase"),
        ("//VP{/NP$}", "NPs that are the rightmost child of a VP"),
        ("//VP{//NP$}", "NPs that are the rightmost descendant of a VP"),
    ]
    print("\nFigure 2 queries:")
    for query, description in figure2:
        nodes = engine.nodes(query)
        rendered = ", ".join(f"{n.label}[{n.left},{n.right}]" for n in nodes)
        print(f"  {query:<22} {{{rendered}}}")
        print(f"    ({description})")
        for backend in ("plan", "sqlite", "treewalk"):
            assert engine.query(query, backend=backend) == engine.query(query)

    print("\nTranslated SQL for //V->NP:")
    print(engine.to_sql("//V->NP"))


if __name__ == "__main__":
    main()
