"""Physical operators (iterator / Volcano model).

Every operator is an iterable of row tuples.  Joins concatenate tuples, so a
pipeline over k joined relations yields tuples of width ``k * arity``;
callers track offsets.  ``*Probe*`` joins follow the index-nested-loop
pattern that dominates label-scheme query plans: for each outer tuple, an
access-path function derives an index probe from the outer tuple's values.

The shared plan executor (:mod:`repro.plan.executor`) compiles the logical
IR of both query dialects into trees of these operators; operators stay
stateless across iterations, so compiled plans are re-iterable and safe to
keep in the per-engine plan cache.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional, Sequence

from .expression import Predicate
from .schema import Row

#: For each outer tuple, produce the matching inner rows (usually via index).
ProbeFunction = Callable[[Row], Iterable[Row]]


class Operator:
    """Base class so plans can be introspected and explained."""

    def __iter__(self) -> Iterator[Row]:  # pragma: no cover - abstract
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


class Source(Operator):
    """Wrap any row iterable (table scan, index scan, literal rows)."""

    def __init__(self, rows: Callable[[], Iterable[Row]], description: str) -> None:
        self.rows = rows
        self.description = description

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    def explain(self, indent: int = 0) -> str:
        return " " * indent + f"Source({self.description})"


class Select(Operator):
    """Filter rows by a predicate."""

    def __init__(self, child: Operator, predicate: Predicate) -> None:
        self.child = child
        self.predicate = predicate

    def __iter__(self) -> Iterator[Row]:
        predicate = self.predicate
        return (row for row in self.child if predicate(row))

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Select({self.predicate.explain()})\n{self.child.explain(indent + 2)}"


class Project(Operator):
    """Keep only the given positions, in order."""

    def __init__(self, child: Operator, positions: Sequence[int]) -> None:
        self.child = child
        self.positions = tuple(positions)

    def __iter__(self) -> Iterator[Row]:
        positions = self.positions
        for row in self.child:
            yield tuple(row[position] for position in positions)

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Project{self.positions!r}\n{self.child.explain(indent + 2)}"


class IndexNestedLoopJoin(Operator):
    """For each outer tuple, append every probed inner row.

    ``residual`` (if given) filters the *combined* tuple — used for the
    label comparisons an index probe cannot cover (e.g. ``right <= c.right``
    after a range probe on ``left``).
    """

    def __init__(
        self,
        outer: Operator,
        probe: ProbeFunction,
        description: str,
        residual: Optional[Predicate] = None,
    ) -> None:
        self.outer = outer
        self.probe = probe
        self.description = description
        self.residual = residual

    def __iter__(self) -> Iterator[Row]:
        probe, residual = self.probe, self.residual
        for outer_row in self.outer:
            for inner_row in probe(outer_row):
                combined = outer_row + inner_row
                if residual is None or residual(combined):
                    yield combined

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        extra = f" residual={self.residual.explain()}" if self.residual else ""
        return (
            f"{pad}IndexNestedLoopJoin({self.description}{extra})\n"
            f"{self.outer.explain(indent + 2)}"
        )


class NestedLoopJoin(Operator):
    """Materialized inner relation, scanned per outer tuple (fallback path)."""

    def __init__(self, outer: Operator, inner: Operator, predicate: Predicate) -> None:
        self.outer = outer
        self.inner = inner
        self.predicate = predicate

    def __iter__(self) -> Iterator[Row]:
        inner_rows = list(self.inner)
        predicate = self.predicate
        for outer_row in self.outer:
            for inner_row in inner_rows:
                combined = outer_row + inner_row
                if predicate(combined):
                    yield combined

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}NestedLoopJoin({self.predicate.explain()})\n"
            f"{self.outer.explain(indent + 2)}\n{self.inner.explain(indent + 2)}"
        )


class HashJoin(Operator):
    """Equi-join: build a hash table on the inner, probe with the outer."""

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        outer_positions: Sequence[int],
        inner_positions: Sequence[int],
        residual: Optional[Predicate] = None,
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.outer_positions = tuple(outer_positions)
        self.inner_positions = tuple(inner_positions)
        self.residual = residual

    def __iter__(self) -> Iterator[Row]:
        buckets: dict[tuple, list[Row]] = {}
        inner_positions = self.inner_positions
        for row in self.inner:
            key = tuple(row[position] for position in inner_positions)
            buckets.setdefault(key, []).append(row)
        outer_positions, residual = self.outer_positions, self.residual
        for outer_row in self.outer:
            key = tuple(outer_row[position] for position in outer_positions)
            for inner_row in buckets.get(key, ()):
                combined = outer_row + inner_row
                if residual is None or residual(combined):
                    yield combined

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return (
            f"{pad}HashJoin(outer{self.outer_positions!r} = inner{self.inner_positions!r})\n"
            f"{self.outer.explain(indent + 2)}\n{self.inner.explain(indent + 2)}"
        )


class SemiJoin(Operator):
    """Keep outer tuples for which the probe yields at least one row (EXISTS)."""

    def __init__(self, outer: Operator, probe: ProbeFunction, description: str) -> None:
        self.outer = outer
        self.probe = probe
        self.description = description

    def __iter__(self) -> Iterator[Row]:
        probe = self.probe
        for outer_row in self.outer:
            for _ in probe(outer_row):
                yield outer_row
                break

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}SemiJoin({self.description})\n{self.outer.explain(indent + 2)}"


class AntiJoin(Operator):
    """Keep outer tuples for which the probe yields no rows (NOT EXISTS)."""

    def __init__(self, outer: Operator, probe: ProbeFunction, description: str) -> None:
        self.outer = outer
        self.probe = probe
        self.description = description

    def __iter__(self) -> Iterator[Row]:
        probe = self.probe
        for outer_row in self.outer:
            for _ in probe(outer_row):
                break
            else:
                yield outer_row

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}AntiJoin({self.description})\n{self.outer.explain(indent + 2)}"


class Distinct(Operator):
    """Drop duplicates, optionally keyed on a subset of positions.

    When ``positions`` is given, the yielded rows are projected to it.
    """

    def __init__(self, child: Operator, positions: Optional[Sequence[int]] = None) -> None:
        self.child = child
        self.positions = tuple(positions) if positions is not None else None

    def __iter__(self) -> Iterator[Row]:
        seen: set = set()
        positions = self.positions
        for row in self.child:
            key = row if positions is None else tuple(row[p] for p in positions)
            if key not in seen:
                seen.add(key)
                yield key if positions is not None else row

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Distinct({self.positions!r})\n{self.child.explain(indent + 2)}"


class Sort(Operator):
    """Materializing sort on the given positions."""

    def __init__(self, child: Operator, positions: Sequence[int], reverse: bool = False) -> None:
        self.child = child
        self.positions = tuple(positions)
        self.reverse = reverse

    def __iter__(self) -> Iterator[Row]:
        positions = self.positions
        rows = sorted(
            self.child,
            key=lambda row: tuple(row[p] for p in positions),
            reverse=self.reverse,
        )
        return iter(rows)

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Sort{self.positions!r}\n{self.child.explain(indent + 2)}"


class Limit(Operator):
    """Stop after ``count`` rows."""

    def __init__(self, child: Operator, count: int) -> None:
        self.child = child
        self.count = count

    def __iter__(self) -> Iterator[Row]:
        remaining = self.count
        if remaining <= 0:
            return
        for row in self.child:
            yield row
            remaining -= 1
            if remaining == 0:
                return

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return f"{pad}Limit({self.count})\n{self.child.explain(indent + 2)}"


def count(plan: Operator) -> int:
    """Number of rows a plan yields."""
    total = 0
    for _ in plan:
        total += 1
    return total
