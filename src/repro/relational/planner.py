"""Heuristic access-path selection.

The shared plan lowerer (:mod:`repro.plan`) knows, per query step, which
columns of the label relation are equality-constrained (``name``, ``tid``,
sometimes ``id`` or ``pid``) and which single column carries a range
constraint (``left`` or ``start``, or ``right`` when the ablation index
exists).  The planner picks the index whose key prefix covers the most of
those constraints, modelling the clustered-index-first behaviour of the
paper's commercial RDBMS; both labeling schemes' probes and the
optimizer's pushdown upgrades go through :func:`choose_access_path`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .index import SortedIndex
from .table import Table


class AccessPath:
    """A chosen index plus how much of its prefix the constraints cover."""

    __slots__ = ("index", "eq_columns", "range_column", "score")

    def __init__(
        self,
        index: SortedIndex,
        eq_columns: tuple[str, ...],
        range_column: Optional[str],
        score: float,
    ) -> None:
        self.index = index
        self.eq_columns = eq_columns
        self.range_column = range_column
        self.score = score

    def explain(self) -> str:
        parts = [f"index={self.index.name}", f"eq={list(self.eq_columns)}"]
        if self.range_column:
            parts.append(f"range={self.range_column}")
        return " ".join(parts)


def match_index(
    index: SortedIndex, eq_columns: Sequence[str], range_column: Optional[str]
) -> Optional[AccessPath]:
    """How well one index serves the constraints; ``None`` when useless."""
    available = set(eq_columns)
    usable: list[str] = []
    for column in index.columns:
        if column in available:
            usable.append(column)
        else:
            break
    next_position = len(usable)
    range_usable = (
        range_column is not None
        and next_position < len(index.columns)
        and index.columns[next_position] == range_column
    )
    if not usable and not range_usable:
        return None
    score = len(usable) + (0.5 if range_usable else 0.0)
    return AccessPath(index, tuple(usable), range_column if range_usable else None, score)


def choose_access_path(
    table: Table, eq_columns: Sequence[str], range_column: Optional[str] = None
) -> Optional[AccessPath]:
    """The best access path over all of the table's indexes.

    Prefers the highest score; ties go to the clustered index (sequential
    access), then to the index declared first.
    """
    best: Optional[AccessPath] = None
    for index in table.all_indexes():
        candidate = match_index(index, eq_columns, range_column)
        if candidate is None:
            continue
        if best is None or candidate.score > best.score:
            best = candidate
    return best
