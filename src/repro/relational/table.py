"""Tables with clustered storage and secondary indexes."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from .index import SortedIndex
from .schema import Row, Schema, SchemaError


class Table:
    """A relation with one clustered order and any number of secondary indexes.

    The clustered key determines physical row order (the paper clusters the
    label relation by ``{name, tid, left, right, depth, id, pid}``); it is
    exposed as :attr:`clustered`, a :class:`SortedIndex` whose scans model
    sequential access to contiguous disk pages.
    """

    def __init__(self, name: str, schema: Schema, clustered_key: Sequence[str]) -> None:
        self.name = name
        self.schema = schema
        self.clustered = SortedIndex(f"{name}_clustered", schema, clustered_key)
        self.indexes: dict[str, SortedIndex] = {}
        self._rows: list[Row] = []

    # -- loading -------------------------------------------------------------

    def load(self, rows: Iterable[Row]) -> int:
        """Bulk-load rows (replacing current contents); rebuilds all indexes."""
        materialized = []
        for row in rows:
            if not isinstance(row, tuple):
                row = tuple(row)
            self.schema.check_row(row)
            materialized.append(row)
        self.clustered.build(materialized)
        # Store rows in clustered order: scans in that order are "sequential".
        self._rows = list(self.clustered.scan_eq(()))
        for index in self.indexes.values():
            index.build(self._rows)
        return len(self._rows)

    def create_index(self, name: str, columns: Sequence[str]) -> SortedIndex:
        """Create (and build) a secondary index."""
        if name in self.indexes:
            raise SchemaError(f"index {name!r} already exists on table {self.name!r}")
        index = SortedIndex(name, self.schema, columns)
        index.build(self._rows)
        self.indexes[name] = index
        return index

    # -- access ---------------------------------------------------------------

    def scan(self) -> Iterator[Row]:
        """Full scan in clustered order."""
        return iter(self._rows)

    def index(self, name: str) -> SortedIndex:
        """Look up a secondary index by name."""
        try:
            return self.indexes[name]
        except KeyError:
            raise SchemaError(
                f"no index {name!r} on table {self.name!r}; "
                f"have {sorted(self.indexes)!r}"
            ) from None

    def all_indexes(self) -> list[SortedIndex]:
        """The clustered index plus all secondary indexes."""
        return [self.clustered, *self.indexes.values()]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name} rows={len(self)} indexes={sorted(self.indexes)}>"
