"""Schemas and key encoding for the mini relational engine.

Rows are plain tuples; a :class:`Schema` names their positions.  Key
components are *encoded* before they enter an index so that heterogeneous
values (``None`` < integers < strings) have a total order — the label
relation's ``value`` column is ``None`` on element rows and text on
attribute rows.
"""

from __future__ import annotations

from typing import Any, Sequence

Row = tuple
#: Encoded key component sentinel greater than every real component.
TOP = (9, 0)


class SchemaError(ValueError):
    """Raised for unknown columns or malformed rows."""


class Schema:
    """An ordered set of column names for one relation."""

    __slots__ = ("columns", "_positions")

    def __init__(self, columns: Sequence[str]) -> None:
        if len(set(columns)) != len(columns):
            raise SchemaError(f"duplicate column names in {columns!r}")
        self.columns: tuple[str, ...] = tuple(columns)
        self._positions = {name: position for position, name in enumerate(self.columns)}

    def position(self, column: str) -> int:
        """0-based position of ``column``; raises :class:`SchemaError`."""
        try:
            return self._positions[column]
        except KeyError:
            raise SchemaError(
                f"unknown column {column!r}; have {self.columns!r}"
            ) from None

    def positions(self, columns: Sequence[str]) -> tuple[int, ...]:
        """Positions for several columns."""
        return tuple(self.position(column) for column in columns)

    def check_row(self, row: Row) -> None:
        """Validate arity."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity {len(self.columns)}"
            )

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema{self.columns!r}"


def encode_component(value: Any) -> tuple:
    """Encode one key component into the totally ordered space."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):  # bools are ints but keep them distinct
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    raise SchemaError(f"unsupported key component type: {type(value).__name__}")


def encode_key(values: Sequence[Any]) -> tuple:
    """Encode a composite key."""
    return tuple(encode_component(value) for value in values)
