"""Row predicates for filters and joins.

Predicates are small composable objects evaluating over a single tuple
(possibly the concatenation of several joined rows — callers track column
offsets).  They exist as objects rather than bare lambdas so that plans can
be inspected, explained, and counted in tests.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

from .schema import Row

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate:
    """Base class: a callable ``row -> bool``."""

    def __call__(self, row: Row) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def explain(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


class Const(Predicate):
    """A constant truth value."""

    def __init__(self, value: bool) -> None:
        self.value = value

    def __call__(self, row: Row) -> bool:
        return self.value

    def explain(self) -> str:
        return "true" if self.value else "false"


class ColConst(Predicate):
    """``row[position] <op> constant``."""

    def __init__(self, position: int, op: str, constant: Any) -> None:
        self.position = position
        self.op = op
        self.constant = constant
        self._fn = _OPS[op]

    def __call__(self, row: Row) -> bool:
        return self._fn(row[self.position], self.constant)

    def explain(self) -> str:
        return f"col[{self.position}] {self.op} {self.constant!r}"


class ColCol(Predicate):
    """``row[left] <op> row[right]`` — a join condition on a combined row."""

    def __init__(self, left: int, op: str, right: int) -> None:
        self.left = left
        self.op = op
        self.right = right
        self._fn = _OPS[op]

    def __call__(self, row: Row) -> bool:
        return self._fn(row[self.left], row[self.right])

    def explain(self) -> str:
        return f"col[{self.left}] {self.op} col[{self.right}]"


class And(Predicate):
    """Conjunction of predicates; empty conjunction is true."""

    def __init__(self, parts: Sequence[Predicate]) -> None:
        self.parts = list(parts)

    def __call__(self, row: Row) -> bool:
        return all(part(row) for part in self.parts)

    def explain(self) -> str:
        if not self.parts:
            return "true"
        return " AND ".join(f"({part.explain()})" for part in self.parts)


class Or(Predicate):
    """Disjunction of predicates; empty disjunction is false."""

    def __init__(self, parts: Sequence[Predicate]) -> None:
        self.parts = list(parts)

    def __call__(self, row: Row) -> bool:
        return any(part(row) for part in self.parts)

    def explain(self) -> str:
        if not self.parts:
            return "false"
        return " OR ".join(f"({part.explain()})" for part in self.parts)


class Not(Predicate):
    """Negation."""

    def __init__(self, part: Predicate) -> None:
        self.part = part

    def __call__(self, row: Row) -> bool:
        return not self.part(row)

    def explain(self) -> str:
        return f"NOT ({self.part.explain()})"


class Func(Predicate):
    """Escape hatch for conditions not expressible with the classes above."""

    def __init__(self, fn: Callable[[Row], bool], description: str) -> None:
        self.fn = fn
        self.description = description

    def __call__(self, row: Row) -> bool:
        return self.fn(row)

    def explain(self) -> str:
        return self.description
