"""SQLite backend: executes the SQL text the LPath compiler emits.

The paper feeds its translated SQL to a commercial RDBMS.  We keep our own
mini engine as the primary backend (full control over physical design), and
use the standard library's SQLite as an *independent executor of the same
SQL text* — a differential oracle: for every query,
``mini_engine(plan) == sqlite(emitted SQL)`` must hold.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Sequence

from .database import NODE_COLUMNS, NODE_SECONDARY_INDEXES
from .schema import Row

_COLUMN_TYPES = {
    "tid": "INTEGER",
    "left": "INTEGER",
    "right": "INTEGER",
    "depth": "INTEGER",
    "id": "INTEGER",
    "pid": "INTEGER",
    "name": "TEXT",
    "value": "TEXT",
}


def quote_identifier(name: str) -> str:
    """Quote an SQL identifier (``left``/``right`` are SQLite keywords)."""
    return '"' + name.replace('"', '""') + '"'


class SQLiteBackend:
    """An in-memory SQLite database holding the label relation."""

    def __init__(self, rows: Iterable[Row], table_name: str = "node") -> None:
        self.table_name = table_name
        self.connection = sqlite3.connect(":memory:")
        columns_sql = ", ".join(
            f"{quote_identifier(column)} {_COLUMN_TYPES[column]}"
            for column in NODE_COLUMNS
        )
        quoted_table = quote_identifier(table_name)
        self.connection.execute(f"CREATE TABLE {quoted_table} ({columns_sql})")
        placeholders = ", ".join("?" for _ in NODE_COLUMNS)
        self.connection.executemany(
            f"INSERT INTO {quoted_table} VALUES ({placeholders})", rows
        )
        # The paper's physical design, as ordinary SQLite indexes.
        clustered = ", ".join(
            quote_identifier(c)
            for c in ("name", "tid", "left", "right", "depth", "id", "pid")
        )
        self.connection.execute(
            f"CREATE INDEX idx_clustered ON {quoted_table} ({clustered})"
        )
        for index_name, index_columns in NODE_SECONDARY_INDEXES.items():
            body = ", ".join(quote_identifier(c) for c in index_columns)
            self.connection.execute(
                f"CREATE INDEX {index_name} ON {quoted_table} ({body})"
            )
        self.connection.commit()

    def execute(self, sql: str, parameters: Sequence = ()) -> list[tuple]:
        """Run a query and fetch all rows."""
        cursor = self.connection.execute(sql, parameters)
        return cursor.fetchall()

    def count(self, sql: str, parameters: Sequence = ()) -> int:
        """Number of rows a query returns."""
        return len(self.execute(sql, parameters))

    def close(self) -> None:
        """Release the connection."""
        self.connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
