"""A named collection of tables, plus the paper's physical design for labels."""

from __future__ import annotations

from typing import Iterable, Sequence

from .schema import Row, Schema, SchemaError
from .table import Table

#: Section 5 schema of the label relation.
NODE_COLUMNS = ("tid", "left", "right", "depth", "id", "pid", "name", "value")
#: Section 5 clustering: {name, tid, left, right, depth, id, pid}.
NODE_CLUSTERED_KEY = ("name", "tid", "left", "right", "depth", "id", "pid")
#: Section 5 secondary indexes.
NODE_SECONDARY_INDEXES = {
    "idx_tid_value_id": ("tid", "value", "id"),
    "idx_value_tid_id": ("value", "tid", "id"),
    "idx_tid_id": ("tid", "id", "left", "right", "depth", "pid"),
}


class Database:
    """Named tables with creation/lookup."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.tables: dict[str, Table] = {}

    def create_table(
        self, name: str, columns: Sequence[str], clustered_key: Sequence[str]
    ) -> Table:
        """Create an empty table."""
        if name in self.tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, Schema(columns), clustered_key)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table."""
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(
                f"no table {name!r}; have {sorted(self.tables)!r}"
            ) from None

    def drop_table(self, name: str) -> None:
        """Remove a table."""
        self.table(name)
        del self.tables[name]


def create_node_table(
    db: Database, rows: Iterable[Row], name: str = "node",
    extra_indexes: bool = False,
) -> Table:
    """Create and load the label relation with the paper's physical design.

    ``extra_indexes=True`` additionally builds a ``(name, tid, right)``
    index, an extension the paper does not use; it accelerates the reverse
    horizontal axes and is measured by the ablation benchmark.
    """
    table = db.create_table(name, NODE_COLUMNS, NODE_CLUSTERED_KEY)
    table.load(rows)
    for index_name, columns in NODE_SECONDARY_INDEXES.items():
        table.create_index(index_name, columns)
    if extra_indexes:
        table.create_index("idx_name_tid_right", ("name", "tid", "right", "left", "depth", "id", "pid"))
    return table
