"""Sorted composite-key indexes with prefix-equality + range scans.

A :class:`SortedIndex` over columns ``(c1, ..., ck)`` supports the access
pattern the LPath compiler needs: fix an equality prefix ``c1..cj`` and scan
a (possibly unbounded) range on ``c(j+1)``.  This models both a clustered
B-tree (the paper clusters the relation by ``{name, tid, left, right,
depth, id, pid}``) and secondary indexes (``{tid, value, id}`` etc.).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, Optional, Sequence

from .schema import Row, Schema, SchemaError, TOP, encode_component, encode_key


class SortedIndex:
    """An index over ``columns`` of rows that share ``schema``."""

    __slots__ = ("name", "schema", "columns", "_positions", "_keys", "_rows")

    def __init__(self, name: str, schema: Schema, columns: Sequence[str]) -> None:
        if not columns:
            raise SchemaError("an index needs at least one column")
        self.name = name
        self.schema = schema
        self.columns: tuple[str, ...] = tuple(columns)
        self._positions = schema.positions(columns)
        self._keys: list[tuple] = []
        self._rows: list[Row] = []

    # -- construction -------------------------------------------------------

    def build(self, rows: Sequence[Row]) -> None:
        """(Re)build from scratch; sorts once."""
        positions = self._positions
        pairs = sorted(
            (encode_key([row[p] for p in positions]), row) for row in rows
        )
        self._keys = [key for key, _ in pairs]
        self._rows = [row for _, row in pairs]

    def __len__(self) -> int:
        return len(self._rows)

    # -- access -------------------------------------------------------------

    def _check_prefix(self, prefix: Sequence[Any], with_range: bool) -> None:
        limit = len(self.columns) - (1 if with_range else 0)
        if len(prefix) > limit:
            raise SchemaError(
                f"prefix of length {len(prefix)} too long for index on {self.columns!r}"
            )

    def scan_eq(self, prefix: Sequence[Any]) -> Iterator[Row]:
        """Rows whose first ``len(prefix)`` index columns equal ``prefix``."""
        self._check_prefix(prefix, with_range=False)
        key = encode_key(prefix)
        low = bisect_left(self._keys, key)
        high = bisect_left(self._keys, key + (TOP,))
        return iter(self._rows[low:high])

    def scan_range(
        self,
        prefix: Sequence[Any],
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Row]:
        """Prefix-equality scan with a range on the next index column.

        ``low``/``high`` bound the column after the prefix; ``None`` means
        unbounded on that side.
        """
        self._check_prefix(prefix, with_range=True)
        key = encode_key(prefix)
        if low is None:
            start_key = key
        elif include_low:
            start_key = key + (encode_component(low),)
        else:
            start_key = key + (encode_component(low), TOP)
        if high is None:
            end_key = key + (TOP,)
        elif include_high:
            end_key = key + (encode_component(high), TOP)
        else:
            end_key = key + (encode_component(high),)
        start = bisect_left(self._keys, start_key)
        end = bisect_left(self._keys, end_key)
        return iter(self._rows[start:end])

    def first(self, prefix: Sequence[Any]) -> Optional[Row]:
        """The first row matching the equality prefix, if any."""
        for row in self.scan_eq(prefix):
            return row
        return None

    def count_eq(self, prefix: Sequence[Any]) -> int:
        """Number of rows matching the equality prefix (two bisects)."""
        self._check_prefix(prefix, with_range=False)
        key = encode_key(prefix)
        low = bisect_left(self._keys, key)
        high = bisect_left(self._keys, key + (TOP,))
        return high - low

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SortedIndex {self.name} on {self.columns!r} rows={len(self)}>"
