"""A mini relational engine: tables, indexes, iterator operators, planning."""

from . import expression, operators
from .database import (
    Database,
    NODE_CLUSTERED_KEY,
    NODE_COLUMNS,
    NODE_SECONDARY_INDEXES,
    create_node_table,
)
from .index import SortedIndex
from .planner import AccessPath, choose_access_path, match_index
from .schema import Row, Schema, SchemaError, encode_component, encode_key
from .sqlite_backend import SQLiteBackend, quote_identifier
from .table import Table

__all__ = [
    "AccessPath",
    "Database",
    "NODE_CLUSTERED_KEY",
    "NODE_COLUMNS",
    "NODE_SECONDARY_INDEXES",
    "Row",
    "Schema",
    "SchemaError",
    "SortedIndex",
    "SQLiteBackend",
    "Table",
    "choose_access_path",
    "create_node_table",
    "encode_component",
    "encode_key",
    "expression",
    "match_index",
    "operators",
    "quote_identifier",
]
