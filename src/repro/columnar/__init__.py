"""Columnar backend: parallel-array storage + batch plan execution.

A second physical layer for the shared logical IR in :mod:`repro.plan`:
:class:`ColumnStore` holds the label relation as clustered parallel
arrays, :class:`ColumnarRuntime`/:func:`compile_plan` execute optimized
plans batch-at-a-time over row ids, and :class:`ColumnarCatalog` lets the
lowerer compile against a store with no row table at all.  Engines expose
it behind ``executor="columnar"``.
"""

from .catalog import ColumnarCatalog
from .executor import ColumnarPlan, ColumnarRuntime, compile_plan
from .store import ColumnStore

__all__ = [
    "ColumnStore",
    "ColumnarCatalog",
    "ColumnarPlan",
    "ColumnarRuntime",
    "compile_plan",
]
