"""Columnar backend: parallel-array storage + batch plan execution.

A second physical layer for the shared logical IR in :mod:`repro.plan`:
:class:`ColumnStore` holds the label relation as clustered parallel
arrays, :class:`ColumnarRuntime`/:func:`compile_plan` execute optimized
plans batch-at-a-time over row ids, and :class:`ColumnarCatalog` lets the
lowerer compile against a store with no row table at all.  Engines expose
it behind ``executor="columnar"``.

Hierarchical joins additionally come in a *set-at-a-time* flavor
(:mod:`repro.columnar.structural`): merge-eligible axis steps evaluate as
structural merge joins over the sorted span columns when the optimizer's
statistics-driven cost model picks them (``REPRO_FORCE_JOIN`` forces a
side for differential testing).
"""

from .catalog import ColumnarCatalog
from .executor import ColumnarPlan, ColumnarRuntime, compile_plan
from .store import ColumnStore, MappedColumnStore, NameStats, StringColumn
from .structural import MergeJoinStep, MergeSpec, choose_join, merge_spec

__all__ = [
    "ColumnStore",
    "ColumnarCatalog",
    "ColumnarPlan",
    "ColumnarRuntime",
    "MappedColumnStore",
    "MergeJoinStep",
    "MergeSpec",
    "NameStats",
    "StringColumn",
    "choose_join",
    "compile_plan",
    "merge_spec",
]
