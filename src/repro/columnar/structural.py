"""Set-at-a-time structural joins over the clustered span columns.

The batch executor's default ``Join`` step is *binding-at-a-time*: every
left-side binding triggers an independent binary-search probe of the
``(name, tid)`` partition, so a query touching ``k`` hierarchical steps
does ``O(|bindings| * k * log n)`` probe work plus per-binding closure
overhead.  Classic XML-DB structural-join results (stack-tree, staircase)
show that sorted span columns admit *merge-based* evaluation: sort the
bindings once by their probe bound, then answer the whole axis step in a
single forward pass over the partition.  This module brings that to the
columnar executor:

* ``sweep`` — the sort-merge join for every probe with a lower span bound
  (child / descendant / following / sibling axes, scoped variants
  included): bindings sorted by ``(tid, low)`` make the partition start
  pointer monotone, so finding each candidate range costs amortized O(1)
  instead of two binary searches, and the residual Table 2 comparisons run
  inline over the raw arrays;
* ``stack`` — the stack-tree variant for the ancestor axes: a stack of
  "open" spans replaces the per-binding prefix scan, so each partition row
  is pushed and popped exactly once per tid group (boundary-sharing LPath
  labels only ever leave stale entries that the residual conditions
  filter);
* ``prefix`` — the merge variant for the preceding axes, whose matches
  genuinely are a prefix of the partition: a monotone end pointer replaces
  the per-binding binary search.

Which joins are *eligible* is a pure IR-shape question (:func:`merge_spec`);
whether a merge join is *worth it* is a cost question answered from
collected statistics (:func:`choose_join`), shared by the optimizer's
annotation pass and the per-segment physical compile so both always agree
on the model.  ``REPRO_FORCE_JOIN=merge|probe`` overrides the choice for
differential testing.
"""

from __future__ import annotations

import operator as _operator
import os
from array import array
from itertools import repeat
from math import log2
from typing import NamedTuple, Optional

from ..lpath.axes import Axis
from ..plan.ir import (
    Col,
    Const,
    IndexProbe,
    Join,
    PlanNode,
    Scan,
    TableScan,
    ValueSeed,
    L, R, T,
)

SWEEP, STACK, PREFIX = "sweep", "stack", "prefix"

_ANCESTOR_AXES = (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF)
_CHILD_LIKE = (Axis.CHILD, Axis.IMMEDIATE_FOLLOWING_SIBLING, Axis.IMMEDIATE_FOLLOWING)

#: Cost-model units, calibrated to CPython's actual constants: a probe
#: pays per binding for the binding-list build, the access closures, one
#: dict lookup and two bisects; a merge pays a sort (C-level tuple sort,
#: hence the small per-element unit), a flat per-binding bookkeeping cost
#: and an amortized pointer advance over each touched partition.
PROBE_SETUP = 5.0
PROBE_BINDING = 12.0
MERGE_SETUP = 40.0
MERGE_BINDING = 5.0
SORT_UNIT = 0.2
ADVANCE_UNIT = 0.1

FORCE_ENV = "REPRO_FORCE_JOIN"


def force_mode() -> Optional[str]:
    """The forced physical-join mode from the environment, if any.

    An unset or empty variable means "let the cost model decide"; any
    other value than ``merge``/``probe`` is a configuration error and
    raises, so a typo'd override can never silently fall back to the
    cost-based choice mid-differential-run."""
    mode = os.environ.get(FORCE_ENV)
    if not mode:
        return None
    if mode in ("merge", "probe"):
        return mode
    from ..lpath.errors import LPathError

    raise LPathError(
        f"invalid {FORCE_ENV} value {mode!r}; use 'merge' or 'probe'"
    )


def decide_join(node: Join, estimates: dict, stats,
                force: Optional[str]) -> tuple[Optional[MergeSpec], str, float]:
    """The one join-selection decision shared by the optimizer's
    annotation pass and the columnar physical compile: analyze the shape,
    look up the chain estimate, and cost the alternatives (or obey the
    force override).  Returns ``(spec, choice, est_in)`` with ``spec``
    ``None`` (and ``choice`` ``"probe"``) for merge-ineligible joins."""
    spec = merge_spec(node)
    if spec is None:
        return None, "probe", 0.0
    est_in = estimates.get(id(node), 0.0)
    if force is not None:
        return spec, force, est_in
    return spec, choose_join(est_in, spec.name, stats), est_in


class MergeSpec(NamedTuple):
    """The analyzed shape of a merge-eligible join."""

    strategy: str                     # SWEEP / STACK / PREFIX
    name: str                         # candidate partition name
    tid_slot: int                     # binding slot supplying the tree id
    low: Optional[tuple[int, int]]    # (slot, column) of the lower bound
    high: Optional[tuple[int, int]]   # (slot, column) of the upper bound
    include_low: bool
    include_high: bool
    self_slot: Optional[int]          # or-self context slot
    self_name: Optional[str]


def _bound(operand) -> tuple[Optional[tuple[int, int]], bool]:
    if operand is None:
        return None, True
    if isinstance(operand, Col) and operand.col in (L, R):
        return (operand.slot, operand.col), True
    return None, False


def merge_spec(node: PlanNode) -> Optional[MergeSpec]:
    """A :class:`MergeSpec` when ``node`` is a structural-join-eligible
    ``Join`` (clustered ``(name, tid)`` probe with span-column bounds),
    else ``None``."""
    if not isinstance(node, Join):
        return None
    access = node.access
    if not isinstance(access, IndexProbe):
        return None
    if access.index != "clustered" and not access.index.endswith("_clustered"):
        return None
    if len(access.eq) != 2:
        return None
    name_op, tid_op = access.eq
    if not isinstance(name_op, Const) or not isinstance(name_op.value, str):
        return None
    if not isinstance(tid_op, Col) or tid_op.col != T:
        return None
    low, low_ok = _bound(access.low)
    high, high_ok = _bound(access.high)
    if not low_ok or not high_ok:
        return None
    if low is None and high is None:
        return None  # a bare partition scan needs no probe to beat
    if low is not None:
        strategy = SWEEP
    elif node.axis in _ANCESTOR_AXES:
        strategy = STACK
    else:
        strategy = PREFIX
    return MergeSpec(
        strategy,
        name_op.value,
        tid_op.slot,
        low,
        high,
        access.include_low,
        access.include_high,
        access.self_slot,
        access.self_name,
    )


# -- cardinality estimation ---------------------------------------------------


def _avg_partition(stats, name: str) -> float:
    ns = stats.name_stats(name)
    return ns.rows / ns.partitions if ns.partitions else 0.0


def scan_estimate(node: Scan, stats) -> float:
    """Estimated cardinality of a pipeline's first step."""
    access = node.access
    if isinstance(access, TableScan):
        return float(stats.size())
    if isinstance(access, ValueSeed):
        # Value seeds hit the {value, tid, id} index: typically a small
        # fraction of the attribute rows; the square root keeps the guess
        # between "constant" and "everything" without per-value stats.
        return max(1.0, float(stats.frequency(access.attr)) ** 0.5)
    if isinstance(access, IndexProbe) and access.eq and isinstance(access.eq[0], Const):
        return float(stats.frequency(access.eq[0].value))
    return float(stats.size())


def join_fanout(node: Join, stats) -> float:
    """Expected matches per input binding for one join step."""
    access = node.access
    if isinstance(access, IndexProbe):
        if access.eq and isinstance(access.eq[0], Const) and isinstance(
            access.eq[0].value, str
        ):
            name = access.eq[0].value
            ns = stats.name_stats(name)
            avg_part = _avg_partition(stats, name)
            if node.axis in _CHILD_LIKE:
                return min(avg_part, 2.0)
            if node.axis in _ANCESTOR_AXES:
                depth_range = float(ns.max_depth - ns.min_depth + 1)
                return min(avg_part, depth_range)
            return avg_part * 0.5
        if len(access.eq) >= 2:
            return 1.5   # (tid, id) family: a handful of rows per node
        trees = max(1, stats.tree_count())
        return max(1.0, stats.size() / trees * 0.5)   # whole-tree scan
    if isinstance(access, ValueSeed):
        trees = max(1, stats.tree_count())
        return max(1.0, float(stats.frequency(access.attr)) / trees * 0.5)
    return 1.0


def chain_estimates(chain, stats) -> dict[int, float]:
    """``id(join) -> estimated input cardinality`` along a main pipeline."""
    estimates: dict[int, float] = {}
    current: Optional[float] = None
    for node in chain:
        if isinstance(node, Scan):
            current = scan_estimate(node, stats)
        elif isinstance(node, Join):
            if current is None:
                break  # Context-rooted subplans are evaluated per binding
            estimates[id(node)] = current
            current = current * join_fanout(node, stats)
    return estimates


def choose_join(est_in: float, name: str, stats) -> str:
    """Pick the cheaper physical join under the module's cost units."""
    ns = stats.name_stats(name)
    avg_part = _avg_partition(stats, name)
    probe = PROBE_SETUP + est_in * (PROBE_BINDING + log2(avg_part + 2.0))
    touched = min(est_in, float(ns.partitions))
    merge = (
        MERGE_SETUP
        + est_in * (MERGE_BINDING + SORT_UNIT * log2(est_in + 2.0))
        + touched * avg_part * ADVANCE_UNIT
    )
    return "merge" if merge < probe else "probe"


# -- the physical operator ----------------------------------------------------


class Cutoff:
    """A per-execution row budget for structural joins (top-k early
    termination).  Once a join has emitted ``max_rows`` pairs it stops
    *before starting the next tree*, so its output always covers a
    complete prefix of the ascending tid groups; ``hit`` records that a
    truncation happened so the driver can fall back to an uncapped run.

    A fresh ``Cutoff`` is passed per execution — never stored on a step —
    because compiled plans are cached and shared across threads."""

    __slots__ = ("max_rows", "hit")

    def __init__(self, max_rows: int) -> None:
        self.max_rows = max_rows
        self.hit = False


_EMPTY = (0, 0)
#: Span positions are small ints; this sentinel keeps the scan loops to a
#: single bound comparison when the probe has no upper bound.
_NO_LIMIT = 1 << 62

#: Comparison functions the executor's vector filters use, mapped back to
#: source tokens so the sweep loop can be generated with *native*
#: comparisons — a C function call per candidate per condition is the
#: difference between parity and a 2x win at corpus scale.
_OP_TOKEN = {
    _operator.eq: "==",
    _operator.ne: "!=",
    _operator.lt: "<",
    _operator.le: "<=",
    _operator.gt: ">",
    _operator.ge: ">=",
}

_SWEEP_CACHE: dict[tuple, object] = {}


def _compile_sweep(spec: MergeSpec, checks) -> Optional[object]:
    """Generate (and cache per shape) the flat sweep loop for one join
    shape, with the bound arithmetic and every vector comparison inlined.
    Returns ``None`` when a condition uses an operator outside the fixed
    comparison set — the generic interpreted sweep handles those."""
    tokens = []
    for _column, opf, rhs_slot, _payload in checks:
        token = _OP_TOKEN.get(opf)
        if token is None:
            return None
        tokens.append((token, rhs_slot is None))
    shape = (
        tuple(tokens),
        spec.include_low,
        spec.high is not None,
        spec.include_high,
    )
    cached = _SWEEP_CACHE.get(shape)
    if cached is not None:
        return cached

    unpack, resolve, conds = [], [], []
    for k, (token, is_const) in enumerate(tokens):
        unpack.append(f"    c{k}, _o{k}, s{k}, p{k} = checks[{k}]")
        if is_const:
            resolve.append(f"        v{k} = p{k}")
        else:
            unpack.append(f"    b{k} = batch[s{k}]")
            resolve.append(f"        v{k} = p{k}[b{k}[i]]")
        conds.append(f"c{k}[j] {token} v{k}")
    start = "low_val" if spec.include_low else "low_val + 1"
    if spec.high is None:
        limit = f"        limit = {_NO_LIMIT}"
    elif spec.include_high:
        limit = "        limit = high_arr[high_col[i]] + 1"
    else:
        limit = "        limit = high_arr[high_col[i]]"
    if conds:
        body = (
            f"            if {' and '.join(conds)}:\n"
            "                res_append(j)\n"
            "                src_append(i)\n"
            "            j += 1"
        )
    else:
        body = (
            "            res_append(j)\n"
            "            src_append(i)\n"
            "            j += 1"
        )
    # The loop emits (source binding, candidate) index pairs; the caller
    # gathers them into replicated output columns with one C-level map
    # per slot — two list appends per match beat an extend/repeat pair
    # per binding for the typical 1-3 matches a binding produces.
    source = f"""\
def sweep(keyed, batch, bounds, lefts, name, high_col, high_arr, checks, max_rows):
{chr(10).join(unpack) if unpack else '    pass'}
    src = []
    src_append = src.append
    res = []
    res_append = res.append
    current_tid = None
    truncated = False
    lo = hi = ptr = 0
    for tid_val, low_val, i in keyed:
        if tid_val != current_tid:
            if max_rows is not None and len(res) >= max_rows:
                truncated = True
                break
            current_tid = tid_val
            lo, hi = bounds.get((name, tid_val), (0, 0))
            ptr = lo
        start = {start}
        while ptr < hi and lefts[ptr] < start:
            ptr += 1
{limit}
{chr(10).join(resolve) if resolve else ''}
        j = ptr
        while j < hi and lefts[j] < limit:
{body}
    return src, res, truncated
"""
    namespace: dict = {}
    exec(source, namespace)  # tokens come from the fixed comparison set
    compiled = namespace["sweep"]
    _SWEEP_CACHE[shape] = compiled
    return compiled


class MergeJoinStep:
    """One structural merge join in a columnar pipeline.

    Drop-in peer of the executor's probe ``_JoinStep``: consumes and
    produces the same slot-per-array batches and applies the same
    classified conditions, but enumerates candidates by merging the sorted
    binding bounds against the sorted partition instead of re-probing per
    binding.  Construction is done by :func:`repro.columnar.executor.
    compile_plan`, which passes in the classified condition lists so both
    join flavors share one condition compiler.
    """

    def __init__(self, node: Join, runtime, spec: MergeSpec,
                 vector, binding, row) -> None:
        store = runtime.store
        self.slot = node.slot
        self.label = node.label
        self.access = node.access
        self.spec = spec
        self.store = store
        self.bounds = store.name_tid_bounds
        self.lefts = store.left
        self.rights = store.right
        self.tids = store.tid
        self.names = store.names
        self.binding = binding
        self.row = row
        # Vector filters pre-resolved to raw column sequences, split by
        # operand kind: constants bind once here, binding-column
        # comparisons resolve once per binding inside run().
        self.vector_specs = list(vector)
        self.const_checks = [
            (column, opf, payload)
            for column, opf, rhs_slot, payload in vector
            if rhs_slot is None
        ]
        self.col_checks = [
            (column, opf, rhs_slot, payload)
            for column, opf, rhs_slot, payload in vector
            if rhs_slot is not None
        ]
        self.low_arr = None if spec.low is None else store.col(spec.low[1])
        self.high_arr = None if spec.high is None else store.col(spec.high[1])
        self._sweep_loop = (
            _compile_sweep(spec, self.vector_specs)
            if spec.strategy == SWEEP
            else None
        )
        # The native (cffi) kernel handles exactly the shapes the
        # generated sweep handles — no binding prunes, no per-row
        # residuals, no or-self prepend — for all three strategies, when
        # every column involved is a fixed-width integer buffer.  The
        # backend is bound at construction; the plan cache keys on it.
        self._native = None
        if not binding and not row and spec.self_slot is None:
            from .kernels.api import native_join

            self._native = native_join(spec, self.vector_specs, store)

    # -- candidate enumeration ------------------------------------------------

    def run(self, batch: list, cutoff: Optional[Cutoff] = None) -> list:
        if self._native is not None:
            return self._native.run(batch, cutoff)
        width = len(batch)
        out = [array("q") for _ in range(width + 1)]
        count = len(batch[0]) if batch else 0
        if count == 0:
            return out
        spec = self.spec
        tids, tid_col = self.tids, batch[spec.tid_slot]
        if spec.strategy == SWEEP:
            key_slot, key_arr = spec.low[0], self.low_arr
        else:
            key_slot, key_arr = spec.high[0], self.high_arr
        key_col = batch[key_slot]
        # One C-level build-and-sort replaces per-binding binary searches.
        keyed = list(
            zip(
                map(tids.__getitem__, tid_col),
                map(key_arr.__getitem__, key_col),
                range(count),
            )
        )
        keyed.sort()
        if spec.strategy == SWEEP:
            self._run_sweep(batch, keyed, out, width, cutoff)
        elif spec.strategy == STACK:
            self._run_stack(batch, keyed, out, width, cutoff)
        else:
            self._run_prefix(batch, keyed, out, width, cutoff)
        return out

    def _resolved_checks(self, batch, i):
        col_checks = self.col_checks
        if not col_checks:
            return self.const_checks
        return self.const_checks + [
            (column, opf, payload[batch[rhs_slot][i]])
            for column, opf, rhs_slot, payload in col_checks
        ]

    def _emit(self, batch, i, width, out, matched):
        """Replicate binding ``i`` for every matched candidate, applying
        or-self and the residual per-row checks."""
        spec = self.spec
        if spec.self_slot is not None:
            self_row = batch[spec.self_slot][i]
            if self.names[self_row] == spec.self_name:
                checks = self._resolved_checks(batch, i)
                if all(opf(column[self_row], value) for column, opf, value in checks):
                    matched = [self_row] + matched
        if self.row and matched:
            b = [batch[s][i] for s in range(width)]
            row_checks = self.row
            matched = [
                j for j in matched
                if all(check(b + [j]) for check in row_checks)
            ]
        if not matched:
            return
        m = len(matched)
        for s in range(width):
            out[s].extend(repeat(batch[s][i], m))
        out[width].extend(matched)

    def _prune(self, batch, i, width) -> bool:
        """Binding-only conditions (no candidate column involved)."""
        checks = self.binding
        if not checks:
            return True
        b = [batch[s][i] for s in range(width)]
        return all(check(b) for check in checks)

    def _run_sweep(self, batch, keyed, out, width, cutoff=None) -> None:
        spec = self.spec
        checks = self.vector_specs
        if (
            self._sweep_loop is not None
            and not self.binding
            and not self.row
            and spec.self_slot is None
        ):
            high_col = None if spec.high is None else batch[spec.high[0]]
            src, res, truncated = self._sweep_loop(
                keyed, batch, self.bounds, self.lefts,
                spec.name, high_col, self.high_arr, checks,
                None if cutoff is None else cutoff.max_rows,
            )
            if truncated:
                cutoff.hit = True
            for s in range(width):
                out[s] = array("q", map(batch[s].__getitem__, src))
            out[width] = array("q", res)
            return
        lefts, bounds, name = self.lefts, self.bounds, spec.name
        include_low, include_high = spec.include_low, spec.include_high
        high = spec.high
        high_arr = self.high_arr
        high_col = None if high is None else batch[high[0]]
        current_tid = None
        lo = hi = ptr = 0
        for tid_val, low_val, i in keyed:
            if not self._prune(batch, i, width):
                continue
            if tid_val != current_tid:
                if cutoff is not None and len(out[width]) >= cutoff.max_rows:
                    cutoff.hit = True
                    break
                current_tid = tid_val
                lo, hi = bounds.get((name, tid_val), _EMPTY)
                ptr = lo
            start = low_val if include_low else low_val + 1
            while ptr < hi and lefts[ptr] < start:
                ptr += 1
            if high is None:
                limit = _NO_LIMIT
            else:
                high_val = high_arr[high_col[i]]
                limit = high_val + 1 if include_high else high_val
            matched = self._scan(batch, i, ptr, hi, limit)
            self._emit(batch, i, width, out, matched)

    def _scan(self, batch, i, start, hi, limit) -> list:
        """Collect candidates from ``start`` up to the span limit, running
        the pre-resolved comparisons inline (specialized for the common
        0/1/2-condition shapes so the hot loop stays call-free)."""
        lefts = self.lefts
        checks = self._resolved_checks(batch, i)
        matched: list[int] = []
        append = matched.append
        j = start
        n_checks = len(checks)
        if n_checks == 0:
            while j < hi and lefts[j] < limit:
                append(j)
                j += 1
        elif n_checks == 1:
            c0, o0, v0 = checks[0]
            while j < hi and lefts[j] < limit:
                if o0(c0[j], v0):
                    append(j)
                j += 1
        elif n_checks == 2:
            (c0, o0, v0), (c1, o1, v1) = checks
            while j < hi and lefts[j] < limit:
                if o0(c0[j], v0) and o1(c1[j], v1):
                    append(j)
                j += 1
        else:
            while j < hi and lefts[j] < limit:
                if all(opf(column[j], value) for column, opf, value in checks):
                    append(j)
                j += 1
        return matched

    def _run_stack(self, batch, keyed, out, width, cutoff=None) -> None:
        """Stack-tree ancestors: spans still open at the context's left
        edge are the only possible ancestors; each partition row is pushed
        once per tid group and popped once its span closes (spans are
        strict — ``right > left`` in both labeling schemes — so a span
        ending at the context edge can never contain it)."""
        spec = self.spec
        lefts, rights, bounds, name = self.lefts, self.rights, self.bounds, spec.name
        include_high = spec.include_high
        current_tid = None
        lo = hi = ptr = 0
        stack: list[int] = []
        push = stack.append
        for tid_val, edge, i in keyed:
            if not self._prune(batch, i, width):
                continue
            if tid_val != current_tid:
                if cutoff is not None and len(out[width]) >= cutoff.max_rows:
                    cutoff.hit = True
                    break
                current_tid = tid_val
                lo, hi = bounds.get((name, tid_val), _EMPTY)
                ptr = lo
                del stack[:]
            limit = edge + 1 if include_high else edge
            while ptr < hi and lefts[ptr] < limit:
                push(ptr)
                ptr += 1
            while stack and rights[stack[-1]] <= edge:
                stack.pop()
            checks = self._resolved_checks(batch, i)
            matched = [
                j for j in stack
                if all(opf(column[j], value) for column, opf, value in checks)
            ]
            self._emit(batch, i, width, out, matched)

    def _run_prefix(self, batch, keyed, out, width, cutoff=None) -> None:
        spec = self.spec
        lefts, bounds, name = self.lefts, self.bounds, spec.name
        include_high = spec.include_high
        current_tid = None
        lo = hi = end = 0
        for tid_val, edge, i in keyed:
            if not self._prune(batch, i, width):
                continue
            if tid_val != current_tid:
                if cutoff is not None and len(out[width]) >= cutoff.max_rows:
                    cutoff.hit = True
                    break
                current_tid = tid_val
                lo, hi = bounds.get((name, tid_val), _EMPTY)
                end = lo
            limit = edge + 1 if include_high else edge
            while end < hi and lefts[end] < limit:
                end += 1
            matched = self._scan(batch, i, lo, end, _NO_LIMIT)
            self._emit(batch, i, width, out, matched)

    def describe(self) -> str:
        kernel = "native" if self._native is not None else "python"
        return (
            f"StructuralMergeJoin(s{self.slot} <- {self.access}: {self.label}"
            f" | strategy={self.spec.strategy} kernel={kernel}"
            f" vector={len(self.const_checks) + len(self.col_checks)}"
            f" row={len(self.row)})"
        )
