"""Batch-at-a-time physical compiler for the shared logical IR.

This is the second physical backend for :mod:`repro.plan` (the first is
the tuple-at-a-time Volcano interpreter in :mod:`repro.plan.executor`).
Both compile the *same* optimized IR; the difference is entirely physical:

* a pipeline intermediate is a **batch** — one ``array('q')`` of row ids
  per bound slot — instead of a stream of concatenated 8-wide tuples;
* :class:`~repro.plan.ir.IndexProbe` becomes binary-search range slicing
  over the clustered column arrays (a candidate set is usually a plain
  ``range`` of row ids);
* residual conditions that compare one candidate column against an
  already-bound value are evaluated as **vector filters** — one pass over
  the candidate ids reading a single column array, with the right-hand
  operand pre-resolved per step — rather than per-row closure calls over
  wide tuples;
* merge-eligible hierarchical joins additionally choose (per store, from
  collected statistics, or via ``REPRO_FORCE_JOIN``) the set-at-a-time
  structural merge join of :mod:`repro.columnar.structural` over the
  per-binding probe join;
* wildcard child steps read the store's CSR children index instead of
  scanning a whole tree per binding;
* only genuinely row-wise predicates (correlated subplans, positional
  checks, mixed and/or trees) fall back to per-row evaluation, on
  bindings that are short lists of row ids.

Compiled plans are stateless and re-iterable, so they are safe to keep in
the per-engine plan cache alongside Volcano plans (the cache keys on the
executor choice).

Operand access is **sequence-protocol only** — a deliberate contract
since the zero-copy store arrived: every column reference compiled here
(``store.col(...)``, the bitmap filters, the probe bound getters, the
string columns) must go through ``__getitem__``/``len``/iteration and
never assume ``array('q')`` concretely, because a
:class:`~repro.columnar.store.MappedColumnStore` hands back ``memoryview``
casts straight off an ``mmap`` and lazy
:class:`~repro.columnar.store.StringColumn` wrappers instead.  The same
rule binds :mod:`repro.columnar.structural`, whose generated sweep loops
index the raw views directly.  (A released view — the owning engine was
closed — raises ``ValueError`` on access, so stale plans fail loudly.)
"""

from __future__ import annotations

import operator
from bisect import bisect_left
from itertools import repeat
from math import inf
from typing import Callable, Iterable, Iterator, Optional, Sequence

from ..lpath.axes import Axis
from ..lpath.errors import LPathCompileError
from ..plan.ir import (
    AllPred,
    AnyPred,
    BoolConst,
    Cmp,
    Col,
    Const,
    Context,
    CountCmpPred,
    Distinct,
    ExistsPred,
    Filter,
    IndexProbe,
    IsAttr,
    IsElement,
    Join,
    NotPred,
    PlanNode,
    PositionPred,
    Pred,
    Project,
    RightEdge,
    Scan,
    TableScan,
    ValueCmpPred,
    ValueSeed,
    linearize,
    pred_slots,
    COLUMN_NAMES as IR_COLUMN_NAMES,
    I, L, N, P, R, T, V,
)
from ..plan.lower import as_float, numeric_compare
from .store import ColumnStore

from array import array

Binding = list          # row ids, indexed by slot
BindingCheck = Callable[[Binding], bool]
RowProbe = Callable[[Binding], Sequence[int]]

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}
_FLIPPED = {
    "=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<=",
}


class ColumnarRuntime:
    """One engine's columnar physical context."""

    def __init__(
        self,
        store: ColumnStore,
        scheme,
        root_right: Optional[dict[int, int]] = None,
        index_columns: Optional[dict[str, tuple[str, ...]]] = None,
    ) -> None:
        self.store = store
        self.scheme = scheme
        self.root_right = root_right if root_right is not None else store.root_right
        #: Secondary-index column layouts of the owning engine's row table,
        #: so probes against ablation indexes resolve to generic projections.
        self.index_columns = dict(index_columns or {})
        #: Hot-path string resolution: one closure with the column arrays
        #: and the per-tree ``@lex`` bounds pre-resolved, instead of
        #: re-walking store attributes and bound dictionaries per row.
        self.string_value = _make_string_value(
            store, scheme.element_string_values
        )


def _make_string_value(
    store: ColumnStore, element_values: bool
) -> Callable[[int], Optional[str]]:
    values, is_attr = store.values, store.is_attr
    lefts, rights, tids = store.left, store.right, store.tid
    bounds = store.name_tid_bounds
    lex_bounds: dict[int, tuple[int, int]] = {}

    def string_value(row: int) -> Optional[str]:
        if is_attr[row]:
            value = values[row]
            return value if value is not None else ""
        if not element_values:
            return None
        tid = tids[row]
        span = lex_bounds.get(tid)
        if span is None:
            span = lex_bounds[tid] = bounds.get(("@lex", tid), (0, 0))
        lo, hi = span
        if lo == hi:
            return ""
        low, high = lefts[row], rights[row]
        lo = bisect_left(lefts, low, lo, hi)
        hi = bisect_left(lefts, high, lo, hi)
        words = [
            values[leaf]
            for leaf in range(lo, hi)
            if rights[leaf] <= high and values[leaf] is not None
        ]
        return " ".join(words)

    return string_value


# -- plan compilation ---------------------------------------------------------


def compile_plan(node: PlanNode, runtime: ColumnarRuntime) -> "ColumnarPlan":
    """Compile a top-level IR plan into a re-iterable batch pipeline.

    Each ``Join`` picks its physical algorithm here, against *this*
    store's collected statistics (so every segment of a sharded corpus
    decides independently): merge-eligible joins run as set-at-a-time
    structural merge joins when the cost model favors them — or when
    ``REPRO_FORCE_JOIN`` forces a side — and fall back to per-binding
    index probes otherwise."""
    from .structural import MergeJoinStep, chain_estimates, decide_join, force_mode

    steps: list = []
    signatures: list = []
    signature = None
    output = None
    chain = linearize(node)
    force = force_mode()
    estimates = None
    for item in chain:
        if output is not None:
            raise LPathCompileError(
                "Distinct/Project must terminate a columnar pipeline"
            )
        if isinstance(item, Scan):
            steps.append(_ScanStep(item, runtime))
        elif isinstance(item, Join):
            if item.slot != len(steps):
                raise LPathCompileError(
                    f"columnar join expected slot {len(steps)}, got {item.slot}"
                )
            if estimates is None:
                estimates = chain_estimates(chain, runtime.store)
            spec, choice, _est = decide_join(item, estimates, runtime.store, force)
            if choice == "merge" and spec is not None:
                vector, binding, row = _classify(
                    item.conditions, item.slot, runtime
                )
                steps.append(
                    MergeJoinStep(item, runtime, spec, vector, binding, row)
                )
            else:
                steps.append(_JoinStep(item, runtime, expected_width=len(steps)))
        elif isinstance(item, Filter):
            steps.append(_FilterStep(item, runtime))
        elif isinstance(item, Distinct):
            output = ("distinct", item.key)
            continue
        elif isinstance(item, Project):
            output = ("project", item.cols)
            continue
        else:
            raise LPathCompileError(f"cannot execute {item!r} as a columnar plan")
        signature = (signature, _node_signature(item))
        signatures.append(signature)
    if not steps or not isinstance(steps[0], _ScanStep):
        raise LPathCompileError("a columnar pipeline must start at a Scan")
    return ColumnarPlan(steps, output, runtime, signatures=tuple(signatures))


def _pred_signature(pred: Pred) -> object:
    """A hashable structural fingerprint of one predicate.  ``str()``
    alone is not enough: subplan predicates render as ``exists{...}``,
    which would collide two different subplans."""
    if isinstance(pred, ExistsPred):
        return ("exists", _chain_signature(pred.subplan))
    if isinstance(pred, ValueCmpPred):
        return (
            "valuecmp", pred.op, repr(pred.value), pred.numeric,
            _chain_signature(pred.subplan),
        )
    if isinstance(pred, CountCmpPred):
        return ("countcmp", pred.op, pred.target, _chain_signature(pred.subplan))
    if isinstance(pred, (AllPred, AnyPred)):
        return (type(pred).__name__,) + tuple(
            _pred_signature(p) for p in pred.parts
        )
    if isinstance(pred, NotPred):
        return ("not", _pred_signature(pred.part))
    if isinstance(pred, PositionPred):
        return (
            "position", str(pred.axis), pred.test_name, pred.op,
            pred.target, pred.ctx_slot, pred.cand_slot,
        )
    return str(pred)


def _node_signature(node: PlanNode) -> object:
    """The structural fingerprint of one chain node — only fields that
    determine the node's *output* (slot layout, access, conditions), not
    annotations like ``label``/``step``/``est_in`` that vary between
    otherwise identical plans."""
    if isinstance(node, Context):
        return ("context",)
    if isinstance(node, Scan):
        return (
            "scan", node.slot, str(node.access),
            tuple(_pred_signature(c) for c in node.conditions),
        )
    if isinstance(node, Join):
        return (
            "join", node.slot, str(node.access), str(node.axis),
            node.ctx_slot, node.scope_slot,
            tuple(_pred_signature(c) for c in node.conditions),
        )
    if isinstance(node, Filter):
        return ("filter", tuple(_pred_signature(c) for c in node.conditions))
    return (type(node).__name__,)


def _chain_signature(node: PlanNode) -> object:
    signature = None
    for item in linearize(node):
        signature = (signature, _node_signature(item))
    return signature


class ColumnarPlan:
    """An executable batch pipeline; iterating yields result tuples.

    ``signatures[i]`` is the cumulative structural fingerprint of steps
    ``0..i`` — two plans whose prefixes carry equal signatures compute
    identical intermediate batches, which is what the batch executor
    (:mod:`repro.plan.batch`) exploits: :meth:`execute` can seed itself
    from a ``shared`` signature → batch cache and record every batch it
    produces there (batches are immutable by convention — every step
    returns fresh arrays — so sharing needs no copies)."""

    def __init__(
        self, steps, output, runtime: ColumnarRuntime, signatures=None
    ) -> None:
        self.steps = steps
        self.output = output
        self.runtime = runtime
        self.signatures = signatures
        self._native_gather = None
        if output is not None:
            from .kernels.api import native_output_gather

            self._native_gather = native_output_gather(
                output[1], runtime.store
            )

    def _pipeline(self, shared: Optional[dict] = None) -> list[array]:
        """Run the step pipeline, resuming from the longest shared prefix
        when a ``shared`` cache is supplied (and feeding it)."""
        batch: list[array] = []
        start = 0
        signatures = self.signatures
        if shared is not None and signatures:
            for index in range(len(self.steps), 0, -1):
                cached = shared.get(signatures[index - 1])
                if cached is not None:
                    batch = cached
                    start = index
                    break
        for index in range(start, len(self.steps)):
            batch = self.steps[index].run(batch)
            if shared is not None and signatures:
                shared[signatures[index]] = batch
        return batch

    def _gather(self, batch: list[array]):
        """Result-key tuples for a finished batch (unordered iterable)."""
        store = self.runtime.store
        kind, key = self.output
        if not batch or not len(batch[0]):
            return []
        # C-level gather: map each key column over its row-id array and
        # zip the streams into result tuples (no per-row Python frames);
        # integer-only keys gather through the native kernel when active.
        if self._native_gather is not None:
            return self._native_gather.run(batch)
        return zip(
            *(
                map(store.col(col).__getitem__, batch[slot])
                for slot, col in key
            )
        )

    def execute(self, shared: Optional[dict] = None) -> list[tuple]:
        batch = self._pipeline(shared)
        store = self.runtime.store
        if self.output is None:
            width = len(batch)
            columns = [store.col(position) for position in range(8)]
            count = len(batch[0]) if batch else 0
            return [
                tuple(
                    columns[c][batch[s][i]] for s in range(width) for c in range(8)
                )
                for i in range(count)
            ]
        kind = self.output[0]
        rows = self._gather(batch)
        if kind == "distinct":
            return list(set(rows))
        return list(rows)

    def count_rows(self) -> int:
        """The result cardinality without materializing a result list.

        A one-step plan whose scan resolves to an unfiltered contiguous
        clustered range (a name-block probe) is counted straight from the
        partition bounds; everything else counts the distinct gathered
        keys from the join output without building the sorted row list."""
        if len(self.steps) == 1 and isinstance(self.steps[0], _ScanStep):
            bounds = self.steps[0].cardinality()
            if bounds is not None:
                return bounds
        batch = self._pipeline()
        if self.output is None:
            return len(batch[0]) if batch else 0
        rows = self._gather(batch)
        if self.output[0] == "distinct":
            return len(set(rows))
        return sum(1 for _ in rows)

    def rows_limited(self, k: int) -> list[tuple]:
        """The first ``k`` distinct result keys in sorted order, without
        materializing the full result set.

        Every join correlates bindings within one tree, so the pipeline
        restricted to a subset of the scan's trees computes exactly that
        subset's results.  The driver groups the scan's candidates by
        tree, processes tid groups in ascending order in geometrically
        growing chunks, and stops after the first complete chunk that
        yields >= k distinct keys — all unprocessed trees can only
        produce larger ``(tid, ...)`` keys, so ``sorted(acc)[:k]`` is
        exact.  Structural merge joins inside a chunk run under a
        ``max_rows`` cutoff; a truncated chunk is re-run uncapped (rare:
        chunks start at 4 trees)."""
        from .structural import Cutoff, MergeJoinStep

        if k <= 0:
            return []
        output = self.output
        if (
            output is None
            or output[0] != "distinct"
            or not output[1]
            or output[1][0][1] != T
            or len(self.steps) < 2
        ):
            return sorted(set(self.execute()))[:k]
        seed = self.steps[0].run([])[0]
        if not len(seed):
            return []
        tids = self.runtime.store.tid
        # One key-based sort orders the candidates by owning tree (stable,
        # so within-tree seed order survives); tree boundaries are then
        # discovered lazily while assembling each chunk.  Only processed
        # rows ever pay per-row Python cost — an eager dict-of-groups
        # build here would touch the whole seed and dominate top-k time.
        ordered = sorted(seed, key=tids.__getitem__)
        total = len(ordered)
        rest = self.steps[1:]
        acc: set = set()
        chunk, position = 4, 0
        budget = max(1024, 32 * k)
        while position < total:
            seed_rows = array("q")
            trees = 0
            previous = -1
            while position < total:
                row = ordered[position]
                tid = tids[row]
                if tid != previous:
                    if trees == chunk:
                        break
                    trees += 1
                    previous = tid
                seed_rows.append(row)
                position += 1
            chunk *= 2
            for capped in (True, False):
                cutoff = Cutoff(budget) if capped else None
                batch: list[array] = [seed_rows]
                for step in rest:
                    if cutoff is not None and isinstance(step, MergeJoinStep):
                        batch = step.run(batch, cutoff=cutoff)
                    else:
                        batch = step.run(batch)
                if cutoff is None or not cutoff.hit:
                    break
                # The capped run dropped whole trees mid-chunk; its
                # partial output cannot be merged exactly — redo the
                # chunk without the cutoff.
            acc.update(self._gather(batch))
            if len(acc) >= k:
                break
        return sorted(acc)[:k]

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.execute())

    def explain(self, indent: int = 0) -> str:
        lines: list[str] = []
        if self.output is not None:
            kind, key = self.output
            cols = ", ".join(f"s{s}.{IR_COLUMN_NAMES[c]}" for s, c in key)
            lines.append(" " * indent + f"Columnar{kind.capitalize()}[{cols}]")
            indent += 2
        for step in reversed(self.steps):
            lines.append(" " * indent + step.describe())
            indent += 2
        return "\n".join(lines)


# -- pipeline steps -----------------------------------------------------------


def _classify(
    conditions: Sequence[Pred], cand_slot: int, runtime: ColumnarRuntime
) -> tuple[list, list[BindingCheck], list[BindingCheck]]:
    """Split a node's conditions into vector filters over the candidate
    column arrays, per-binding prunes, and per-row residual checks."""
    vector: list = []
    binding: list[BindingCheck] = []
    row: list[BindingCheck] = []
    for condition in conditions:
        if cand_slot not in pred_slots(condition):
            binding.append(compile_pred(condition, runtime))
            continue
        filt = _vector_filter(condition, cand_slot, runtime)
        if filt is not None:
            vector.append(filt)
        else:
            row.append(compile_pred(condition, runtime))
    return vector, binding, row


def _vector_filter(pred: Pred, cand_slot: int, runtime: ColumnarRuntime):
    """``(column, opfunc, rhs_slot, payload)`` for a condition that reads
    exactly one candidate column, or ``None``.  The right-hand side is
    pre-resolved once per step: ``rhs_slot is None`` means ``payload`` is a
    constant, otherwise ``payload`` is the column array the binding slot
    indexes into — no per-row getter closures on the hot path."""
    store = runtime.store
    if isinstance(pred, IsElement) and pred.slot == cand_slot:
        return store.is_attr, operator.eq, None, 0
    if isinstance(pred, IsAttr) and pred.slot == cand_slot:
        return store.is_attr, operator.eq, None, 1
    if isinstance(pred, RightEdge) and pred.slot == cand_slot:
        return store.right_edge, operator.eq, None, 1
    if not isinstance(pred, Cmp):
        return None
    left, right = pred.left, pred.right
    cand_left = isinstance(left, Col) and left.slot == cand_slot
    cand_right = isinstance(right, Col) and right.slot == cand_slot
    if cand_left and not cand_right:
        return (store.col(left.col), _OPS[pred.op]) + _operand_parts(right, store)
    if cand_right and not cand_left:
        return (
            store.col(right.col), _OPS[_FLIPPED[pred.op]]
        ) + _operand_parts(left, store)
    return None


def _operand_parts(operand, store: ColumnStore) -> tuple:
    """``(slot, column array)`` for a binding column, ``(None, value)``
    for a constant."""
    if isinstance(operand, Col):
        return operand.slot, store.col(operand.col)
    return None, operand.value


def _operand_getter(operand, store: ColumnStore) -> Callable[[Binding], object]:
    if isinstance(operand, Col):
        column = store.col(operand.col)
        slot = operand.slot
        return lambda b, column=column, slot=slot: column[b[slot]]
    value = operand.value
    return lambda b, value=value: value


def _apply_filters(cands, b: Binding, vector, row_checks) -> Sequence[int]:
    for column, opf, rhs_slot, payload in vector:
        wanted = payload if rhs_slot is None else payload[b[rhs_slot]]
        cands = [j for j in cands if opf(column[j], wanted)]
        if not cands:
            return cands
    if row_checks:
        cands = [j for j in cands if all(check(b + [j]) for check in row_checks)]
    return cands


class _ScanStep:
    """Materialize slot 0 from an access spec."""

    def __init__(self, node: Scan, runtime: ColumnarRuntime) -> None:
        if node.slot != 0:
            raise LPathCompileError("a columnar Scan must bind slot 0")
        self.probe = compile_access(node.access, runtime)
        self.vector, self.binding, self.row = _classify(
            node.conditions, node.slot, runtime
        )
        self.label = node.label
        self.access = node.access
        # Scan-side vector filters compare buffer columns against
        # constants (slot 0 binds first, so no binding-column operands
        # exist); when the native backend is active they run as one C
        # pass over the candidate range instead of a list comprehension
        # per condition.
        from .kernels.api import native_range_filter

        self._native_filter = native_range_filter(self.vector)

    def run(self, batch: list[array]) -> list[array]:
        empty: Binding = []
        if not all(check(empty) for check in self.binding):
            return [array("q")]
        cands = self.probe(empty)
        if (
            self._native_filter is not None
            and isinstance(cands, range)
            and cands.step == 1
        ):
            kept = self._native_filter.run(cands.start, cands.stop)
            if self.row:
                kept = array(
                    "q",
                    (
                        j for j in kept
                        if all(check([j]) for check in self.row)
                    ),
                )
            return [kept]
        cands = _apply_filters(cands, empty, self.vector, self.row)
        return [array("q", cands)]

    def cardinality(self) -> Optional[int]:
        """The scan's result count straight from the clustered partition
        bounds, or ``None`` when filters (or a non-contiguous access
        path) make the count data-dependent.  Rows of one name block are
        distinct ``(tid, id)`` pairs — a node carries exactly one label
        row per name — so the range length *is* the distinct count."""
        if self.vector or self.binding or self.row:
            return None
        if not (
            isinstance(self.access, IndexProbe)
            and (
                self.access.index == "clustered"
                or self.access.index.endswith("_clustered")
            )
        ):
            return None
        cands = self.probe([])
        if isinstance(cands, range):
            return len(cands)
        return None

    def describe(self) -> str:
        return (
            f"ColumnarScan(s0 <- {self.access}: {self.label}"
            f" | vector={len(self.vector)} row={len(self.row)})"
        )


def _children_probe(node: Join, runtime: ColumnarRuntime):
    """``(probe, remaining conditions)`` when a wildcard child step —
    a whole-tree ``idx_tid_id`` probe plus a ``cand.pid = ctx.id``
    condition — can instead read one slice of the store's CSR children
    index, or ``None``."""
    access = node.access
    if not (
        isinstance(access, IndexProbe)
        and access.index == "idx_tid_id"
        and len(access.eq) == 1
        and access.low is None
        and access.high is None
        and access.self_slot is None
        and isinstance(access.eq[0], Col)
        and access.eq[0].col == T
    ):
        return None
    cand = node.slot
    for condition in node.conditions:
        if not isinstance(condition, Cmp) or condition.op != "=":
            continue
        sides = (condition.left, condition.right)
        for mine, other in (sides, sides[::-1]):
            if (
                isinstance(mine, Col) and mine.slot == cand and mine.col == P
                and isinstance(other, Col) and other.slot != cand
                and other.col == I
            ):
                store = runtime.store
                tids, ids = store.tid, store.id
                children = store.children_rows
                tid_slot, id_slot = access.eq[0].slot, other.slot

                def probe(
                    b: Binding, children=children, tids=tids, ids=ids,
                    tid_slot=tid_slot, id_slot=id_slot,
                ) -> Sequence[int]:
                    return children(tids[b[tid_slot]], ids[b[id_slot]])

                remaining = tuple(c for c in node.conditions if c is not condition)
                return probe, remaining
    return None


class _JoinStep:
    """Extend every binding of the batch with matching candidate rows.

    Candidates come from binary-search slices of the clustered arrays (the
    per-tree ``(name, tid)`` partitions) — or, for wildcard child steps,
    one slice of the CSR children index — then shrink through the vector
    filters; surviving outer values are replicated into the output arrays.
    """

    def __init__(self, node: Join, runtime: ColumnarRuntime, expected_width: int) -> None:
        if node.slot != expected_width:
            raise LPathCompileError(
                f"columnar join expected slot {expected_width}, got {node.slot}"
            )
        self.slot = node.slot
        children = _children_probe(node, runtime)
        if children is not None:
            self.probe, conditions = children
            self.via_children = True
        else:
            self.probe = compile_access(node.access, runtime)
            conditions = node.conditions
            self.via_children = False
        self.vector, self.binding, self.row = _classify(
            conditions, node.slot, runtime
        )
        self.label = node.label
        self.access = node.access

    def run(self, batch: list[array]) -> list[array]:
        width = len(batch)
        out = [array("q") for _ in range(width + 1)]
        probe, vector, binding_checks, row_checks = (
            self.probe, self.vector, self.binding, self.row,
        )
        count = len(batch[0]) if batch else 0
        for i in range(count):
            b = [column[i] for column in batch]
            if binding_checks and not all(check(b) for check in binding_checks):
                continue
            cands = _apply_filters(probe(b), b, vector, row_checks)
            if not cands:
                continue
            matched = len(cands)
            for slot in range(width):
                out[slot].extend(repeat(b[slot], matched))
            out[width].extend(cands)
        return out

    def describe(self) -> str:
        via = " via=children-index" if self.via_children else ""
        return (
            f"ColumnarJoin(s{self.slot} <- {self.access}: {self.label}"
            f" | vector={len(self.vector)} row={len(self.row)}{via})"
        )


class _FilterStep:
    """Keep batch entries satisfying every condition."""

    def __init__(self, node: Filter, runtime: ColumnarRuntime) -> None:
        self.checks = [compile_pred(c, runtime) for c in node.conditions]
        self.label = node.label

    def run(self, batch: list[array]) -> list[array]:
        checks = self.checks
        count = len(batch[0]) if batch else 0
        keep = []
        for i in range(count):
            binding = [column[i] for column in batch]
            if all(check(binding) for check in checks):
                keep.append(i)
        return [array("q", (column[i] for i in keep)) for column in batch]

    def describe(self) -> str:
        return f"ColumnarFilter({self.label} | checks={len(self.checks)})"


# -- access paths -------------------------------------------------------------


def compile_access(access, runtime: ColumnarRuntime) -> RowProbe:
    if isinstance(access, TableScan):
        size = runtime.store.n
        return lambda b: range(size)
    if isinstance(access, IndexProbe):
        return _compile_index_probe(access, runtime)
    if isinstance(access, ValueSeed):
        return _compile_value_seed(access, runtime)
    raise LPathCompileError(f"unknown access spec {access!r}")


def _compile_index_probe(access: IndexProbe, runtime: ColumnarRuntime) -> RowProbe:
    store = runtime.store
    name = access.index
    if name == "clustered" or name.endswith("_clustered"):
        probe = _clustered_probe(access, store)
    elif name == "idx_tid_id":
        probe = _tid_id_probe(access, store)
    else:
        columns = runtime.index_columns.get(name)
        if columns is None:
            raise LPathCompileError(
                f"columnar executor cannot resolve index {name!r}"
            )
        probe = _projection_probe(access, store, columns)

    if access.self_slot is None:
        return probe

    names = store.names
    self_slot, self_name = access.self_slot, access.self_name

    def with_self(b: Binding) -> Sequence[int]:
        row = b[self_slot]
        base = list(probe(b))
        if names[row] == self_name:
            return [row] + base
        return base

    return with_self


def _clustered_probe(access: IndexProbe, store: ColumnStore) -> RowProbe:
    name_of = _operand_getter(access.eq[0], store)
    low = None if access.low is None else _operand_getter(access.low, store)
    high = None if access.high is None else _operand_getter(access.high, store)
    include_low, include_high = access.include_low, access.include_high

    if len(access.eq) == 1:
        if low is not None or high is not None:
            # The lowerer never ranges on the column after a bare name
            # prefix (ranges always follow a (name, tid) prefix).
            raise LPathCompileError(
                "unsupported clustered probe shape: name prefix with range"
            )
        return lambda b: store.name_block(name_of(b))

    tid_of = _operand_getter(access.eq[1], store)

    def probe(b: Binding) -> range:
        return store.clustered_range(
            name_of(b),
            tid_of(b),
            None if low is None else low(b),
            None if high is None else high(b),
            include_low,
            include_high,
        )

    return probe


def _tid_id_probe(access: IndexProbe, store: ColumnStore) -> RowProbe:
    if access.low is not None or access.high is not None:
        raise LPathCompileError("range probes on idx_tid_id are not supported")
    tid_of = _operand_getter(access.eq[0], store)
    if len(access.eq) == 1:
        return lambda b: store.tid_rows(tid_of(b))
    id_of = _operand_getter(access.eq[1], store)
    return lambda b: store.tid_id_rows(tid_of(b), id_of(b))


def _projection_probe(
    access: IndexProbe, store: ColumnStore, columns: tuple[str, ...]
) -> RowProbe:
    """Generic eq-prefix + range probe over a lazily built sorted
    projection (serves ablation indexes like ``{name, tid, right, ...}``;
    range columns must be numeric)."""
    positions = tuple(store.column_names.index(column) for column in columns)
    eq_getters = [_operand_getter(op, store) for op in access.eq]
    low = None if access.low is None else _operand_getter(access.low, store)
    high = None if access.high is None else _operand_getter(access.high, store)
    include_low, include_high = access.include_low, access.include_high

    def probe(b: Binding) -> Sequence[int]:
        keys, perm = store.projection(positions)
        prefix = tuple(getter(b) for getter in eq_getters)
        if low is None:
            start = bisect_left(keys, prefix)
        elif include_low:
            start = bisect_left(keys, prefix + (low(b),))
        else:
            start = bisect_left(keys, prefix + (low(b), inf))
        if high is None:
            end = bisect_left(keys, prefix + (inf,))
        elif include_high:
            end = bisect_left(keys, prefix + (high(b), inf))
        else:
            end = bisect_left(keys, prefix + (high(b),))
        return perm[start:end]

    return probe


def _compile_value_seed(access: ValueSeed, runtime: ColumnarRuntime) -> RowProbe:
    store = runtime.store
    attr, literal = access.attr, access.literal
    name_test, root_only = access.name_test, access.root_only
    names, tids, ids, pids, is_attr = (
        store.names, store.tid, store.id, store.pid, store.is_attr,
    )

    tid_of = None if access.tid is None else _operand_getter(access.tid, store)

    def rows(b: Binding) -> list[int]:
        out: list[int] = []
        tree = None if tid_of is None else tid_of(b)
        for attr_row in store.value_rows(literal, tree):
            if names[attr_row] != attr:
                continue
            for element in store.tid_id_rows(tids[attr_row], ids[attr_row]):
                if is_attr[element]:
                    continue
                if name_test is not None and names[element] != name_test:
                    continue
                if root_only and tree is None and pids[element] != 0:
                    continue
                out.append(element)
        return out

    return rows


# -- predicates ---------------------------------------------------------------


def compile_pred(pred: Pred, runtime: ColumnarRuntime) -> BindingCheck:
    """Compile a predicate to a check over a row-id binding list."""
    store = runtime.store
    if isinstance(pred, Cmp):
        compare = _OPS[pred.op]
        if isinstance(pred.left, Col) and isinstance(pred.right, Col):
            lcol, ls = store.col(pred.left.col), pred.left.slot
            rcol, rs = store.col(pred.right.col), pred.right.slot
            return lambda b: compare(lcol[b[ls]], rcol[b[rs]])
        if isinstance(pred.left, Col):
            lcol, ls = store.col(pred.left.col), pred.left.slot
            value = pred.right.value
            return lambda b: compare(lcol[b[ls]], value)
        if isinstance(pred.right, Col):
            rcol, rs = store.col(pred.right.col), pred.right.slot
            value = pred.left.value
            return lambda b: compare(value, rcol[b[rs]])
        outcome = compare(pred.left.value, pred.right.value)
        return lambda b: outcome
    if isinstance(pred, IsElement):
        is_attr, slot = store.is_attr, pred.slot
        return lambda b: not is_attr[b[slot]]
    if isinstance(pred, IsAttr):
        is_attr, slot = store.is_attr, pred.slot
        return lambda b: bool(is_attr[b[slot]])
    if isinstance(pred, BoolConst):
        value = pred.value
        return lambda b: value
    if isinstance(pred, AllPred):
        parts = [compile_pred(p, runtime) for p in pred.parts]
        return lambda b: all(part(b) for part in parts)
    if isinstance(pred, AnyPred):
        parts = [compile_pred(p, runtime) for p in pred.parts]
        return lambda b: any(part(b) for part in parts)
    if isinstance(pred, NotPred):
        inner = compile_pred(pred.part, runtime)
        return lambda b: not inner(b)
    if isinstance(pred, RightEdge):
        right_edge, slot = store.right_edge, pred.slot
        return lambda b: bool(right_edge[b[slot]])
    if isinstance(pred, ExistsPred):
        runner = compile_subplan(pred.subplan, runtime)
        return lambda b: next(runner(b), None) is not None
    if isinstance(pred, ValueCmpPred):
        return _compile_value_cmp(pred, runtime)
    if isinstance(pred, CountCmpPred):
        return _compile_count_cmp(pred, runtime)
    if isinstance(pred, PositionPred):
        return _compile_position(pred, runtime)
    raise LPathCompileError(f"unknown predicate {pred!r}")


# -- correlated subplans ------------------------------------------------------


def compile_subplan(node: PlanNode, runtime: ColumnarRuntime):
    """Compile a Context-rooted subplan to a lazy ``binding -> bindings``
    runner over row-id lists (slot numbering is dense, so appending a row
    id mirrors the lowerer's slot assignment exactly)."""
    steps: list[tuple] = []
    for item in linearize(node):
        if isinstance(item, Context):
            continue
        if isinstance(item, Join):
            children = _children_probe(item, runtime)
            if children is not None:
                probe, conditions = children
            else:
                probe = compile_access(item.access, runtime)
                conditions = item.conditions
            steps.append(
                (
                    "join",
                    probe,
                    [compile_pred(c, runtime) for c in conditions],
                )
            )
        elif isinstance(item, Filter):
            steps.append(
                ("filter", None, [compile_pred(c, runtime) for c in item.conditions])
            )
        else:
            raise LPathCompileError(f"cannot execute {item!r} inside a subplan")
    plan = tuple(steps)

    def run(binding: Binding) -> Iterator[Binding]:
        return _run_steps(binding, plan, 0)

    return run


def _run_steps(binding: Binding, plan: tuple, index: int) -> Iterator[Binding]:
    if index == len(plan):
        yield binding
        return
    kind, probe, checks = plan[index]
    if kind == "filter":
        if all(check(binding) for check in checks):
            yield from _run_steps(binding, plan, index + 1)
        return
    for row in probe(binding):
        extended = binding + [row]
        if all(check(extended) for check in checks):
            yield from _run_steps(extended, plan, index + 1)


def _compile_value_cmp(pred: ValueCmpPred, runtime: ColumnarRuntime) -> BindingCheck:
    runner = compile_subplan(pred.subplan, runtime)
    string_value = runtime.string_value
    op, wanted, numeric = pred.op, pred.value, pred.numeric
    target = None
    if numeric:
        target = float(wanted) if not isinstance(wanted, str) else as_float(wanted)
        if target is None:
            return lambda b: False

    def check(binding: Binding) -> bool:
        for extended in runner(binding):
            value = string_value(extended[-1])
            if value is None:
                continue
            if numeric:
                try:
                    number = float(value.strip())
                except ValueError:
                    continue
                if numeric_compare(number, op, target):
                    return True
            else:
                if (value == wanted) == (op == "="):
                    return True
        return False

    return check


def _compile_count_cmp(pred: CountCmpPred, runtime: ColumnarRuntime) -> BindingCheck:
    runner = compile_subplan(pred.subplan, runtime)
    store = runtime.store
    tids, ids, names = store.tid, store.id, store.names
    op, target = pred.op, pred.target

    def check(binding: Binding) -> bool:
        seen = set()
        for extended in runner(binding):
            row = extended[-1]
            seen.add((tids[row], ids[row], names[row]))
        return numeric_compare(float(len(seen)), op, target)

    return check


def _compile_position(pred: PositionPred, runtime: ColumnarRuntime) -> BindingCheck:
    store = runtime.store
    tids, lefts, rights, ids, pids, names, is_attr = (
        store.tid, store.left, store.right, store.id, store.pid,
        store.names, store.is_attr,
    )
    axis, op, target = pred.axis, pred.op, pred.target
    cand_slot, ctx_slot = pred.cand_slot, pred.ctx_slot
    if pred.test_name is None:
        name_matches = lambda row: not is_attr[row]
    else:
        name_matches = lambda row, name=pred.test_name: names[row] == name

    def check(binding: Binding) -> bool:
        candidate = binding[cand_slot]
        context = binding[ctx_slot]
        siblings = [
            row
            for row in store.tid_rows(tids[candidate])
            if pids[row] == pids[candidate] and name_matches(row)
        ]
        siblings.sort(key=lefts.__getitem__)
        if axis is Axis.CHILD:
            ordered = siblings
        elif axis in (Axis.FOLLOWING_SIBLING, Axis.IMMEDIATE_FOLLOWING_SIBLING):
            ordered = [row for row in siblings if lefts[row] >= rights[context]]
        else:
            ordered = [row for row in siblings if rights[row] <= lefts[context]]
            ordered.reverse()
        position = None
        for rank, row in enumerate(ordered, start=1):
            if ids[row] == ids[candidate]:
                position = rank
                break
        if position is None:
            return False
        wanted = float(len(ordered)) if target is None else target
        return numeric_compare(float(position), op, wanted)

    return check
