"""A lowering catalog backed by a :class:`~repro.columnar.store.ColumnStore`.

The shared lowerer only asks a catalog three things — relation size, name
frequency, and access-path selection (:class:`repro.plan.schemes.Catalog`'s
surface).  A column store can answer all three without a row table, which
is what lets :meth:`repro.lpath.engine.LPathEngine.from_columns` compile
queries without ever materializing row tuples.

Access paths are chosen with the same scoring as the relational planner
(:func:`repro.relational.planner.match_index`), over the two physical
layouts the store maintains: the clustered ``{name, tid, left, ...}``
order and the ``{tid, id, ...}`` permutation.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence

from ..relational.planner import AccessPath, match_index


class _IndexShim(NamedTuple):
    """Just enough of a SortedIndex for the planner's matcher."""

    name: str
    columns: tuple[str, ...]


class ColumnarCatalog:
    """Catalog interface over a column store (no row table required)."""

    def __init__(self, store) -> None:
        self.store = store
        names = store.column_names
        self._indexes = (
            _IndexShim("clustered", ("name",) + names[:6]),
            _IndexShim("idx_tid_id", (names[0], names[4], names[1], names[2], names[3], names[5])),
        )

    def size(self) -> int:
        return len(self.store)

    def frequency(self, name: Optional[str]) -> int:
        return self.store.frequency(name)

    def tree_count(self) -> int:
        return self.store.tree_count()

    def name_stats(self, name: Optional[str]):
        return self.store.name_stats(name)

    def access_path(
        self, eq_columns: Sequence[str], range_column: Optional[str] = None
    ) -> Optional[AccessPath]:
        best: Optional[AccessPath] = None
        for index in self._indexes:
            candidate = match_index(index, eq_columns, range_column)
            if candidate is not None and (best is None or candidate.score > best.score):
                best = candidate
        return best
