"""Backend dispatch and marshalling for the native columnar kernels.

The public surface the engine integrates against:

* :func:`kernel_mode` / :func:`kernels_backend` — parse and resolve the
  ``REPRO_KERNELS`` environment knob (``auto`` | ``native`` | ``python``,
  default ``auto``).  ``auto`` uses the cffi extension when it imports or
  builds, and silently stays pure-Python otherwise; ``native`` raises
  when the extension is unavailable (so a differential run can never
  silently cross backends); ``python`` never touches the extension.
  The resolved backend participates in the plan-cache key.
* :func:`native_join` — a pre-validated marshalling plan for one
  merge-join shape, or ``None`` when the shape (or backend) requires the
  interpreter: the native path covers exactly the shapes the generated
  sweep covers (no binding prunes, no per-row residuals, no or-self
  prepend) for all three strategies, with every residual condition over
  fixed-width integer buffers.
* :func:`native_range_filter` — the scan-side vectorized filter over a
  contiguous row-id range.
* :func:`native_output_gather` — the final emit's column gather.
* :func:`merge_packed_pairs` — the sorted disjoint k-way merge over the
  packed int64 ``(tid, id)`` blobs worker processes ship back.
* :func:`column_pointer` / ``ColumnStore.column_ptr`` — raw
  ``(pointer, length)`` access to a column buffer for the C side.

Lifecycle rule: every ``ffi.from_buffer`` cdata is created per ``run()``
call and dropped before it returns.  Nothing caches a pointer into an
``mmap``-backed view, so ``MappedCorpus.close()`` can always release its
views — a plan run after close fails loudly with ``ValueError`` exactly
like the interpreted path.
"""

from __future__ import annotations

import importlib
import importlib.util
import operator as _operator
import os
import tempfile
import threading
from array import array
from typing import NamedTuple, Optional

KERNELS_ENV = "REPRO_KERNELS"
KERNEL_MODES = ("auto", "native", "python")

#: Comparison opcodes shared with ``repro_check_t.op`` in build.py.
OPCODES = {
    _operator.eq: 0,
    _operator.ne: 1,
    _operator.lt: 2,
    _operator.le: 3,
    _operator.gt: 4,
    _operator.ge: 5,
}

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def kernel_mode() -> str:
    """The requested backend mode from the environment.

    Unset or empty means ``auto``; any value outside the fixed mode set
    is a configuration error and raises, so a typo'd override can never
    silently run the wrong backend mid-differential-run (the same
    contract as ``REPRO_FORCE_JOIN``)."""
    mode = os.environ.get(KERNELS_ENV)
    if not mode:
        return "auto"
    if mode in KERNEL_MODES:
        return mode
    from ...lpath.errors import LPathError

    raise LPathError(
        f"invalid {KERNELS_ENV} value {mode!r}; use 'native', 'python' or 'auto'"
    )


# -- loading the extension ----------------------------------------------------

_LOCK = threading.Lock()
_NATIVE: Optional["NativeKernels"] = None
_NATIVE_ERROR: Optional[str] = None
_LOADED = False


def native_kernels() -> Optional["NativeKernels"]:
    """The loaded native kernel bundle, or ``None`` when the extension
    neither imports nor builds (the failure reason is kept for
    :func:`kernel_info`).  First call may compile the extension; the
    outcome is cached for the process either way."""
    global _NATIVE, _NATIVE_ERROR, _LOADED
    if _LOADED:
        return _NATIVE
    with _LOCK:
        if _LOADED:
            return _NATIVE
        try:
            _NATIVE = _load()
        except Exception as exc:  # no compiler, no cffi, broken toolchain
            _NATIVE = None
            _NATIVE_ERROR = f"{type(exc).__name__}: {exc}"
        _LOADED = True
    return _NATIVE


def native_error() -> Optional[str]:
    """Why the native backend is unavailable, if it is."""
    return _NATIVE_ERROR


def _load() -> "NativeKernels":
    try:
        from . import _native  # pre-built by setup.py or a prior import

        return NativeKernels(_native.ffi, _native.lib)
    except ImportError:
        pass
    module = _build()
    return NativeKernels(module.ffi, module.lib)


def _build():
    """Compile the extension into a temporary directory, then atomically
    install the artifact next to this file so later imports (and worker
    processes) skip the build.  Concurrent builders race safely — each
    builds its own copy and ``os.replace`` is atomic; on a read-only
    checkout the artifact loads straight from the temporary directory
    (the mapped shared object outlives the file)."""
    from .build import ffibuilder

    package_dir = os.path.dirname(os.path.abspath(__file__))
    with tempfile.TemporaryDirectory(prefix="repro-kernels-") as tmp:
        built = ffibuilder.compile(tmpdir=tmp, verbose=False)
        path = os.path.join(package_dir, os.path.basename(built))
        try:
            os.replace(built, path)
        except OSError:
            path = built
        spec = importlib.util.spec_from_file_location(
            __package__ + "._native", path
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    return module


def kernels_backend() -> str:
    """The resolved backend for this process and environment: ``native``
    or ``python``.  Raises when ``REPRO_KERNELS=native`` but the
    extension is unavailable."""
    mode = kernel_mode()
    if mode == "python":
        return "python"
    if native_kernels() is not None:
        return "native"
    if mode == "native":
        from ...lpath.errors import LPathError

        raise LPathError(
            f"{KERNELS_ENV}=native but the cffi kernels are unavailable"
            f" ({_NATIVE_ERROR})"
        )
    return "python"


def active_kernels() -> Optional["NativeKernels"]:
    """The kernel bundle when the resolved backend is ``native``, else
    ``None`` (raises under a forced-but-unavailable ``native``)."""
    return native_kernels() if kernels_backend() == "native" else None


def kernel_info() -> dict:
    """A non-raising status snapshot for CLI output and bench metadata."""
    try:
        import cffi

        cffi_version = cffi.__version__
    except ImportError:  # pragma: no cover - cffi ships with the toolchain
        cffi_version = None
    mode = kernel_mode()
    available = native_kernels() is not None
    backend = "native" if mode != "python" and available else "python"
    return {
        "mode": mode,
        "backend": backend,
        "native_available": available,
        "error": _NATIVE_ERROR,
        "cffi": cffi_version,
    }


# -- buffer classification ----------------------------------------------------


def buffer_kind(column) -> Optional[str]:
    """``"i64"``/``"u8"`` when ``column`` is a fixed-width integer buffer
    the C side can read directly, else ``None`` (string columns, plain
    lists, and anything else stays on the interpreted path)."""
    if isinstance(column, array):
        return "i64" if column.typecode == "q" and column.itemsize == 8 else None
    if isinstance(column, (bytes, bytearray)):
        return "u8"
    if isinstance(column, memoryview):
        if column.ndim != 1:
            return None
        if column.format in ("q", "l") and column.itemsize == 8:
            return "i64"
        if column.format in ("B", "b") and column.itemsize == 1:
            return "u8"
    return None


class CheckSpec(NamedTuple):
    """One pre-validated residual condition, ready to pack per run."""

    column: object
    column_kind: str            # "i64" | "u8"
    op: int
    rhs_slot: Optional[int]     # None -> payload is an int constant
    payload: object


def classify_checks(vector, require_const: bool = False):
    """Pre-validate the executor's vector-filter tuples for the C side,
    or ``None`` when any condition needs the interpreter (non-buffer
    column, exotic operator, string/float constant, out-of-range int)."""
    specs: list[CheckSpec] = []
    for column, opf, rhs_slot, payload in vector:
        op = OPCODES.get(opf)
        if op is None:
            return None
        kind = buffer_kind(column)
        if kind is None:
            return None
        if rhs_slot is None:
            if not isinstance(payload, int):
                return None
            payload = int(payload)  # normalizes bool
            if not _INT64_MIN <= payload <= _INT64_MAX:
                return None
        else:
            if require_const or buffer_kind(payload) != "i64":
                return None
        specs.append(CheckSpec(column, kind, op, rhs_slot, payload))
    return specs


# -- the loaded bundle --------------------------------------------------------


class NativeKernels:
    """The ffi/lib pair plus the marshalling helpers every native plan
    shares.  One instance per process."""

    __slots__ = ("ffi", "lib")

    def __init__(self, ffi, lib) -> None:
        self.ffi = ffi
        self.lib = lib

    def i64(self, column):
        """A read cdata pointer over an int64 buffer (no copy)."""
        return self.ffi.from_buffer("int64_t[]", column)

    def u8(self, column):
        """A read cdata pointer over a byte bitmap (no copy)."""
        return self.ffi.from_buffer("uint8_t[]", column)

    def i64_out(self, column):
        """A writable cdata pointer over an ``array('q')`` output."""
        return self.ffi.from_buffer("int64_t[]", column, require_writable=True)

    def pack_checks(self, specs, batch):
        """Fill a ``repro_check_t[]`` from pre-validated specs.  Returns
        ``(cdata array, keepalive list)`` — the caller must hold the
        keepalive until the C call returns, because the struct pointers
        do not themselves keep the ``from_buffer`` views alive."""
        ffi = self.ffi
        checks = ffi.new("repro_check_t[]", max(1, len(specs)))
        keep = []
        for index, spec in enumerate(specs):
            entry = checks[index]
            if spec.column_kind == "i64":
                view = self.i64(spec.column)
                entry.i64 = view
                entry.u8 = ffi.NULL
            else:
                view = self.u8(spec.column)
                entry.u8 = view
                entry.i64 = ffi.NULL
            keep.append(view)
            entry.op = spec.op
            if spec.rhs_slot is None:
                entry.rhs_arr = ffi.NULL
                entry.rhs_col = ffi.NULL
                entry.rhs_const = spec.payload
            else:
                rhs_arr = self.i64(spec.payload)
                rhs_col = self.i64(batch[spec.rhs_slot])
                entry.rhs_arr = rhs_arr
                entry.rhs_col = rhs_col
                entry.rhs_const = 0
                keep.append(rhs_arr)
                keep.append(rhs_col)
        return checks, keep

    def merge_packed(self, blobs) -> list:
        """Merge packed sorted int64 ``(tid, id)`` blobs into one sorted
        pair list — the C twin of ``heapq.merge`` over unpacked pairs."""
        ffi, lib = self.ffi, self.lib
        k = len(blobs)
        counts = array("q", (len(blob) // 16 for blob in blobs))
        total = sum(counts)
        pointers = ffi.new("int64_t *[]", max(1, k))
        keep = []
        for index, blob in enumerate(blobs):
            if len(blob) == 0:
                pointers[index] = ffi.NULL
                continue
            view = ffi.from_buffer("int64_t[]", blob)
            keep.append(view)
            pointers[index] = view
        out = ffi.new("int64_t[]", max(1, 2 * total))
        counts_view = self.i64(counts) if k else ffi.NULL
        written = lib.repro_merge_pairs(pointers, counts_view, k, out)
        if written < 0:
            raise MemoryError("native pair merge allocation failed")
        flat = array("q")
        flat.frombytes(ffi.buffer(out, 16 * written)[:])
        del keep
        pairs = iter(flat)
        return list(zip(pairs, pairs))


# -- native plan objects ------------------------------------------------------


class NativeMergeJoin:
    """The marshalling recipe for one merge-join shape: everything static
    is resolved at construction; ``run`` only wraps buffers and copies the
    (src, cand) result out."""

    __slots__ = (
        "kern", "spec", "check_specs", "store",
        "name_lo", "name_hi", "key_slot", "key_column", "high_column",
    )

    def __init__(self, kern, spec, check_specs, store,
                 key_slot, key_column, high_column) -> None:
        self.kern = kern
        self.spec = spec
        self.check_specs = check_specs
        self.store = store
        self.name_lo, self.name_hi = store.name_bounds.get(spec.name, (0, 0))
        self.key_slot = key_slot
        self.key_column = key_column
        self.high_column = high_column

    def run(self, batch: list, cutoff=None) -> list:
        kern = self.kern
        ffi, lib = kern.ffi, kern.lib
        width = len(batch)
        out = [array("q") for _ in range(width + 1)]
        count = len(batch[0]) if batch else 0
        if count == 0:
            return out
        spec = self.spec
        store = self.store
        tids = kern.i64(store.tid)
        lefts = kern.i64(store.left)
        tid_col = kern.i64(batch[spec.tid_slot])
        key_col = kern.i64(batch[self.key_slot])
        key_arr = kern.i64(self.key_column)
        checks, keep = kern.pack_checks(self.check_specs, batch)
        n_checks = len(self.check_specs)
        src_out = ffi.new("int64_t **")
        cand_out = ffi.new("int64_t **")
        max_rows = -1 if cutoff is None else cutoff.max_rows
        truncated = ffi.new("int32_t *")
        if spec.strategy == "sweep":
            if spec.high is None:
                high_arr = high_col = ffi.NULL
            else:
                high_arr = kern.i64(self.high_column)
                high_col = kern.i64(batch[spec.high[0]])
            matched = lib.repro_sweep_join(
                tids, lefts, self.name_lo, self.name_hi,
                tid_col, key_col, count,
                key_arr, int(spec.include_low),
                high_arr, high_col, int(spec.include_high),
                checks, n_checks, max_rows, truncated,
                src_out, cand_out,
            )
        elif spec.strategy == "stack":
            rights = kern.i64(store.right)
            matched = lib.repro_stack_join(
                tids, lefts, rights, self.name_lo, self.name_hi,
                tid_col, key_col, count,
                key_arr, int(spec.include_high),
                checks, n_checks, max_rows, truncated,
                src_out, cand_out,
            )
        else:
            matched = lib.repro_prefix_join(
                tids, lefts, self.name_lo, self.name_hi,
                tid_col, key_col, count,
                key_arr, int(spec.include_high),
                checks, n_checks, max_rows, truncated,
                src_out, cand_out,
            )
        if matched < 0:
            raise MemoryError("native structural join allocation failed")
        if truncated[0] and cutoff is not None:
            cutoff.hit = True
        src, cand = src_out[0], cand_out[0]
        try:
            if matched:
                for slot in range(width):
                    column = array("q", bytes(8 * matched))
                    lib.repro_gather(
                        kern.i64(batch[slot]), src, matched,
                        kern.i64_out(column),
                    )
                    out[slot] = column
                result = array("q")
                result.frombytes(ffi.buffer(cand, 8 * matched)[:])
                out[width] = result
        finally:
            lib.repro_free(src)
            lib.repro_free(cand)
        del keep
        return out


def native_join(spec, vector, store) -> Optional[NativeMergeJoin]:
    """A :class:`NativeMergeJoin` for this shape, or ``None`` to stay on
    the interpreted path.  Eligibility mirrors the generated sweep's
    guard — the caller additionally requires no binding prunes, no
    per-row residuals and no or-self slot — plus buffer compatibility of
    every column the C side reads."""
    kern = active_kernels()
    if kern is None:
        return None
    check_specs = classify_checks(vector)
    if check_specs is None:
        return None
    structural = [store.tid, store.left]
    if spec.strategy == "stack":
        structural.append(store.right)
    if spec.strategy == "sweep":
        key_slot, key_position = spec.low
    else:
        key_slot, key_position = spec.high
    key_column = store.col(key_position)
    structural.append(key_column)
    high_column = None
    if spec.strategy == "sweep" and spec.high is not None:
        high_column = store.col(spec.high[1])
        structural.append(high_column)
    if any(buffer_kind(column) != "i64" for column in structural):
        return None
    return NativeMergeJoin(
        kern, spec, check_specs, store, key_slot, key_column, high_column
    )


class NativeRangeFilter:
    """The scan-side vectorized filter over a contiguous row-id range."""

    __slots__ = ("kern", "check_specs")

    def __init__(self, kern, check_specs) -> None:
        self.kern = kern
        self.check_specs = check_specs

    def run(self, start: int, stop: int):
        kern = self.kern
        ffi, lib = kern.ffi, kern.lib
        kept = array("q")
        if stop <= start:
            return kept
        checks, keep = kern.pack_checks(self.check_specs, ())
        out = ffi.new("int64_t[]", stop - start)
        survivors = lib.repro_filter_range(
            start, stop, checks, len(self.check_specs), out
        )
        kept.frombytes(ffi.buffer(out, 8 * survivors)[:])
        del keep
        return kept


def native_range_filter(vector) -> Optional[NativeRangeFilter]:
    """A :class:`NativeRangeFilter` when every vector condition is a
    buffer column against an int constant, else ``None``."""
    if not vector:
        return None
    kern = active_kernels()
    if kern is None:
        return None
    check_specs = classify_checks(vector, require_const=True)
    if check_specs is None:
        return None
    return NativeRangeFilter(kern, check_specs)


class NativeGather:
    """The final emit's column gather: one C pass per output column."""

    __slots__ = ("kern", "key", "columns")

    def __init__(self, kern, key, columns) -> None:
        self.kern = kern
        self.key = key
        self.columns = columns

    def run(self, batch):
        kern, lib = self.kern, self.kern.lib
        count = len(batch[0])
        gathered = []
        for (slot, _position), column in zip(self.key, self.columns):
            out = array("q", bytes(8 * count))
            lib.repro_gather(
                kern.i64(column), kern.i64(batch[slot]), count,
                kern.i64_out(out),
            )
            gathered.append(out)
        return zip(*gathered)


def native_output_gather(key, store) -> Optional[NativeGather]:
    """A :class:`NativeGather` for an output key over integer columns,
    or ``None`` (string output columns gather through the interpreter)."""
    if not key:
        return None
    kern = active_kernels()
    if kern is None:
        return None
    columns = [store.col(position) for _slot, position in key]
    if any(buffer_kind(column) != "i64" for column in columns):
        return None
    return NativeGather(kern, list(key), columns)


def merge_packed_pairs(blobs) -> Optional[list]:
    """Native k-way merge of the packed per-segment pair blobs, or
    ``None`` when the resolved backend is ``python``."""
    kern = active_kernels()
    if kern is None:
        return None
    return kern.merge_packed(blobs)


def column_pointer(column, length: int):
    """``(cdata pointer, length)`` over one column buffer for direct C
    consumption (``ColumnStore.column_ptr`` delegates here).  The pointer
    must not outlive the owning store — for an mmap-backed column it pins
    the view until dropped, and ``MappedCorpus.close()`` raises
    ``BufferError`` while such an export exists."""
    kern = native_kernels()
    if kern is None:
        raise RuntimeError(
            f"native kernels are unavailable ({_NATIVE_ERROR})"
        )
    kind = buffer_kind(column)
    if kind is None:
        raise TypeError(
            "column is not a fixed-width integer buffer"
        )
    view = kern.i64(column) if kind == "i64" else kern.u8(column)
    return view, length
