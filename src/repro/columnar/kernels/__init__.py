"""Native (cffi) kernels for the columnar hot loops.

See :mod:`repro.columnar.kernels.api` for backend selection
(``REPRO_KERNELS``) and the marshalling layer, and
:mod:`repro.columnar.kernels.build` for the C sources.
"""

from .api import (  # noqa: F401
    KERNELS_ENV,
    KERNEL_MODES,
    active_kernels,
    kernel_info,
    kernel_mode,
    kernels_backend,
    native_kernels,
)
