"""cffi build recipe for the native columnar kernels.

One translation unit implements the engine's hot inner loops over raw
int64 column buffers — the per-shape structural sweep join, the
stack-tree ancestor join, the prefix join, the vectorized range filter,
batch gather, and the sorted disjoint k-way pair merge.  The C code is
a line-for-line transcription of the pure-Python loops in
:mod:`repro.columnar.structural` and :mod:`repro.columnar.executor`
(same traversal order, same comparison semantics, same emit order), so
the two backends stay byte-identical by construction and the dual-backend
differential suite can hold them to it.

Build paths (both produce ``repro.columnar.kernels._native``):

* ``python setup.py build_ext`` — via ``cffi_modules`` in ``setup.py``;
* first import — :mod:`repro.columnar.kernels.api` compiles into a
  temporary directory and atomically installs the artifact next to this
  file (falling back to the temporary copy on read-only checkouts).

Residual conditions cross the boundary as an array of ``repro_check_t``:
a tagged column pointer (int64 column or uint8 bitmap), a comparison
opcode, and a right-hand side that is either an inline constant or a
per-binding lookup (``rhs_arr[rhs_col[i]]`` — the store column the
binding slot indexes into).
"""

from cffi import FFI

ffibuilder = FFI()

ffibuilder.cdef(
    """
typedef struct {
    const int64_t *i64;      /* candidate int64 column, or NULL        */
    const uint8_t *u8;       /* candidate uint8 bitmap when i64 NULL   */
    const int64_t *rhs_arr;  /* rhs store column for binding-resolved  */
    const int64_t *rhs_col;  /* batch column holding the binding rows  */
    int64_t rhs_const;       /* inline rhs when rhs_arr is NULL        */
    int32_t op;              /* 0 == 1 != 2 < 3 <= 4 > 5 >=            */
    int32_t pad;
} repro_check_t;

int64_t repro_sweep_join(
    const int64_t *tids, const int64_t *lefts,
    int64_t name_lo, int64_t name_hi,
    const int64_t *tid_col, const int64_t *key_col, int64_t count,
    const int64_t *key_arr, int include_low,
    const int64_t *high_arr, const int64_t *high_col, int include_high,
    const repro_check_t *checks, int32_t n_checks,
    int64_t max_rows, int32_t *out_truncated,
    int64_t **out_src, int64_t **out_cand);

int64_t repro_stack_join(
    const int64_t *tids, const int64_t *lefts, const int64_t *rights,
    int64_t name_lo, int64_t name_hi,
    const int64_t *tid_col, const int64_t *key_col, int64_t count,
    const int64_t *key_arr, int include_high,
    const repro_check_t *checks, int32_t n_checks,
    int64_t max_rows, int32_t *out_truncated,
    int64_t **out_src, int64_t **out_cand);

int64_t repro_prefix_join(
    const int64_t *tids, const int64_t *lefts,
    int64_t name_lo, int64_t name_hi,
    const int64_t *tid_col, const int64_t *key_col, int64_t count,
    const int64_t *key_arr, int include_high,
    const repro_check_t *checks, int32_t n_checks,
    int64_t max_rows, int32_t *out_truncated,
    int64_t **out_src, int64_t **out_cand);

int64_t repro_filter_range(
    int64_t start, int64_t end,
    const repro_check_t *checks, int32_t n_checks,
    int64_t *out);

void repro_gather(
    const int64_t *col, const int64_t *idx, int64_t n, int64_t *out);

int64_t repro_merge_pairs(
    int64_t **blobs, const int64_t *counts, int32_t k, int64_t *out);

void repro_free(int64_t *p);
"""
)

CSOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

typedef struct {
    const int64_t *i64;
    const uint8_t *u8;
    const int64_t *rhs_arr;
    const int64_t *rhs_col;
    int64_t rhs_const;
    int32_t op;
    int32_t pad;
} repro_check_t;

/* Mirrors structural._NO_LIMIT: above any span position, far from
   int64 overflow even after the +1 inclusive-bound adjustment. */
#define REPRO_NO_LIMIT (((int64_t)1) << 62)

static int repro_cmp_op(int64_t v, int32_t op, int64_t rhs)
{
    switch (op) {
        case 0: return v == rhs;
        case 1: return v != rhs;
        case 2: return v <  rhs;
        case 3: return v <= rhs;
        case 4: return v >  rhs;
        case 5: return v >= rhs;
        default: return 0;
    }
}

static int repro_checks_pass(const repro_check_t *checks, int32_t n_checks,
                             int64_t i, int64_t j)
{
    int32_t c;
    for (c = 0; c < n_checks; c++) {
        const repro_check_t *ch = &checks[c];
        int64_t rhs = ch->rhs_arr ? ch->rhs_arr[ch->rhs_col[i]]
                                  : ch->rhs_const;
        int64_t v = ch->i64 ? ch->i64[j] : (int64_t)ch->u8[j];
        if (!repro_cmp_op(v, ch->op, rhs))
            return 0;
    }
    return 1;
}

/* -- keyed binding order (the Python side's keyed.sort()) ----------------- */

typedef struct { int64_t tid; int64_t key; int64_t idx; } repro_keyed_t;

static int repro_keyed_cmp(const void *pa, const void *pb)
{
    const repro_keyed_t *a = (const repro_keyed_t *)pa;
    const repro_keyed_t *b = (const repro_keyed_t *)pb;
    if (a->tid != b->tid) return a->tid < b->tid ? -1 : 1;
    if (a->key != b->key) return a->key < b->key ? -1 : 1;
    if (a->idx != b->idx) return a->idx < b->idx ? -1 : 1;
    return 0;
}

static repro_keyed_t *repro_build_keyed(
    const int64_t *tids, const int64_t *tid_col,
    const int64_t *key_arr, const int64_t *key_col, int64_t count)
{
    int64_t i;
    repro_keyed_t *keyed =
        (repro_keyed_t *)malloc((size_t)count * sizeof(repro_keyed_t));
    if (!keyed)
        return NULL;
    for (i = 0; i < count; i++) {
        keyed[i].tid = tids[tid_col[i]];
        keyed[i].key = key_arr[key_col[i]];
        keyed[i].idx = i;
    }
    /* The comparator totally orders entries (idx tiebreak), so qsort's
       instability cannot reorder equal keys — emit order matches the
       interpreter's stable tuple sort exactly. */
    qsort(keyed, (size_t)count, sizeof(repro_keyed_t), repro_keyed_cmp);
    return keyed;
}

/* -- per-tree partition lookup -------------------------------------------- */

/* The clustered order sorts tids ascending inside a name block, so the
   (name, tid) partition is a binary-searched run — the C twin of the
   store's name_tid_bounds lookup.  ``base`` exploits the sorted binding
   order: later (larger) tids can only start at or after the previous
   partition's end, shrinking every search. */

static int64_t repro_lower(const int64_t *arr, int64_t value,
                           int64_t lo, int64_t hi)
{
    while (lo < hi) {
        int64_t mid = lo + ((hi - lo) >> 1);
        if (arr[mid] < value) lo = mid + 1; else hi = mid;
    }
    return lo;
}

static int64_t repro_upper(const int64_t *arr, int64_t value,
                           int64_t lo, int64_t hi)
{
    while (lo < hi) {
        int64_t mid = lo + ((hi - lo) >> 1);
        if (arr[mid] <= value) lo = mid + 1; else hi = mid;
    }
    return lo;
}

/* -- growable (src, cand) output ------------------------------------------ */

typedef struct { int64_t *src; int64_t *cand; int64_t n; int64_t cap; }
    repro_pairs_t;

static int repro_push(repro_pairs_t *p, int64_t src, int64_t cand)
{
    if (p->n == p->cap) {
        int64_t cap = p->cap ? p->cap * 2 : 256;
        int64_t *grown = (int64_t *)realloc(p->src,
                                            (size_t)cap * sizeof(int64_t));
        if (!grown) return -1;
        p->src = grown;
        grown = (int64_t *)realloc(p->cand, (size_t)cap * sizeof(int64_t));
        if (!grown) return -1;
        p->cand = grown;
        p->cap = cap;
    }
    p->src[p->n] = src;
    p->cand[p->n] = cand;
    p->n++;
    return 0;
}

/* -- the three structural join strategies --------------------------------- */

int64_t repro_sweep_join(
    const int64_t *tids, const int64_t *lefts,
    int64_t name_lo, int64_t name_hi,
    const int64_t *tid_col, const int64_t *key_col, int64_t count,
    const int64_t *key_arr, int include_low,
    const int64_t *high_arr, const int64_t *high_col, int include_high,
    const repro_check_t *checks, int32_t n_checks,
    int64_t max_rows, int32_t *out_truncated,
    int64_t **out_src, int64_t **out_cand)
{
    repro_pairs_t pairs = {NULL, NULL, 0, 0};
    int have_tid = 0;
    int64_t cur_tid = 0, lo = 0, hi = 0, ptr = 0, base = name_lo, k;
    repro_keyed_t *keyed =
        repro_build_keyed(tids, tid_col, key_arr, key_col, count);
    *out_truncated = 0;
    if (!keyed)
        return -1;
    for (k = 0; k < count; k++) {
        int64_t i = keyed[k].idx;
        int64_t tid = keyed[k].tid;
        int64_t low_val = keyed[k].key;
        int64_t start, limit, j;
        if (!have_tid || tid != cur_tid) {
            /* Top-k cutoff: stop before starting a new tree once the
               budget is spent, so the output covers a complete prefix
               of the ascending tid groups. */
            if (max_rows >= 0 && have_tid && pairs.n >= max_rows) {
                *out_truncated = 1;
                break;
            }
            have_tid = 1;
            cur_tid = tid;
            lo = repro_lower(tids, tid, base, name_hi);
            hi = repro_upper(tids, tid, lo, name_hi);
            base = hi;
            ptr = lo;
        }
        start = include_low ? low_val : low_val + 1;
        while (ptr < hi && lefts[ptr] < start)
            ptr++;
        if (!high_arr) {
            limit = REPRO_NO_LIMIT;
        } else {
            int64_t high_val = high_arr[high_col[i]];
            limit = include_high ? high_val + 1 : high_val;
        }
        for (j = ptr; j < hi && lefts[j] < limit; j++) {
            if (repro_checks_pass(checks, n_checks, i, j)
                && repro_push(&pairs, i, j))
                goto oom;
        }
    }
    free(keyed);
    *out_src = pairs.src;
    *out_cand = pairs.cand;
    return pairs.n;
oom:
    free(keyed);
    free(pairs.src);
    free(pairs.cand);
    return -1;
}

int64_t repro_stack_join(
    const int64_t *tids, const int64_t *lefts, const int64_t *rights,
    int64_t name_lo, int64_t name_hi,
    const int64_t *tid_col, const int64_t *key_col, int64_t count,
    const int64_t *key_arr, int include_high,
    const repro_check_t *checks, int32_t n_checks,
    int64_t max_rows, int32_t *out_truncated,
    int64_t **out_src, int64_t **out_cand)
{
    repro_pairs_t pairs = {NULL, NULL, 0, 0};
    int have_tid = 0;
    int64_t cur_tid = 0, lo = 0, hi = 0, ptr = 0, base = name_lo, k;
    int64_t block = name_hi - name_lo;
    int64_t *stack;
    int64_t stack_n = 0;
    repro_keyed_t *keyed =
        repro_build_keyed(tids, tid_col, key_arr, key_col, count);
    *out_truncated = 0;
    if (!keyed)
        return -1;
    /* A stack entry is only ever pushed once per partition, so the name
       block's row count bounds the stack depth. */
    stack = (int64_t *)malloc((size_t)(block > 0 ? block : 1)
                              * sizeof(int64_t));
    if (!stack) {
        free(keyed);
        return -1;
    }
    for (k = 0; k < count; k++) {
        int64_t i = keyed[k].idx;
        int64_t tid = keyed[k].tid;
        int64_t edge = keyed[k].key;
        int64_t limit, s;
        if (!have_tid || tid != cur_tid) {
            if (max_rows >= 0 && have_tid && pairs.n >= max_rows) {
                *out_truncated = 1;
                break;
            }
            have_tid = 1;
            cur_tid = tid;
            lo = repro_lower(tids, tid, base, name_hi);
            hi = repro_upper(tids, tid, lo, name_hi);
            base = hi;
            ptr = lo;
            stack_n = 0;
        }
        limit = include_high ? edge + 1 : edge;
        while (ptr < hi && lefts[ptr] < limit) {
            stack[stack_n++] = ptr;
            ptr++;
        }
        while (stack_n && rights[stack[stack_n - 1]] <= edge)
            stack_n--;
        for (s = 0; s < stack_n; s++) {
            int64_t j = stack[s];
            if (repro_checks_pass(checks, n_checks, i, j)
                && repro_push(&pairs, i, j))
                goto oom;
        }
    }
    free(stack);
    free(keyed);
    *out_src = pairs.src;
    *out_cand = pairs.cand;
    return pairs.n;
oom:
    free(stack);
    free(keyed);
    free(pairs.src);
    free(pairs.cand);
    return -1;
}

int64_t repro_prefix_join(
    const int64_t *tids, const int64_t *lefts,
    int64_t name_lo, int64_t name_hi,
    const int64_t *tid_col, const int64_t *key_col, int64_t count,
    const int64_t *key_arr, int include_high,
    const repro_check_t *checks, int32_t n_checks,
    int64_t max_rows, int32_t *out_truncated,
    int64_t **out_src, int64_t **out_cand)
{
    repro_pairs_t pairs = {NULL, NULL, 0, 0};
    int have_tid = 0;
    int64_t cur_tid = 0, lo = 0, hi = 0, end = 0, base = name_lo, k;
    repro_keyed_t *keyed =
        repro_build_keyed(tids, tid_col, key_arr, key_col, count);
    *out_truncated = 0;
    if (!keyed)
        return -1;
    for (k = 0; k < count; k++) {
        int64_t i = keyed[k].idx;
        int64_t tid = keyed[k].tid;
        int64_t edge = keyed[k].key;
        int64_t limit, j;
        if (!have_tid || tid != cur_tid) {
            if (max_rows >= 0 && have_tid && pairs.n >= max_rows) {
                *out_truncated = 1;
                break;
            }
            have_tid = 1;
            cur_tid = tid;
            lo = repro_lower(tids, tid, base, name_hi);
            hi = repro_upper(tids, tid, lo, name_hi);
            base = hi;
            end = lo;
        }
        limit = include_high ? edge + 1 : edge;
        while (end < hi && lefts[end] < limit)
            end++;
        for (j = lo; j < end; j++) {
            if (repro_checks_pass(checks, n_checks, i, j)
                && repro_push(&pairs, i, j))
                goto oom;
        }
    }
    free(keyed);
    *out_src = pairs.src;
    *out_cand = pairs.cand;
    return pairs.n;
oom:
    free(keyed);
    free(pairs.src);
    free(pairs.cand);
    return -1;
}

/* -- scan-side vector filter and batch gather ----------------------------- */

int64_t repro_filter_range(
    int64_t start, int64_t end,
    const repro_check_t *checks, int32_t n_checks,
    int64_t *out)
{
    int64_t j, n = 0;
    for (j = start; j < end; j++) {
        int32_t c;
        int ok = 1;
        for (c = 0; c < n_checks; c++) {
            const repro_check_t *ch = &checks[c];
            int64_t v = ch->i64 ? ch->i64[j] : (int64_t)ch->u8[j];
            if (!repro_cmp_op(v, ch->op, ch->rhs_const)) {
                ok = 0;
                break;
            }
        }
        if (ok)
            out[n++] = j;
    }
    return n;
}

void repro_gather(
    const int64_t *col, const int64_t *idx, int64_t n, int64_t *out)
{
    int64_t k;
    for (k = 0; k < n; k++)
        out[k] = col[idx[k]];
}

/* -- sorted disjoint k-way merge of packed (tid, id) pairs ---------------- */

int64_t repro_merge_pairs(
    int64_t **blobs, const int64_t *counts, int32_t k, int64_t *out)
{
    int64_t written = 0;
    int64_t *pos = (int64_t *)calloc((size_t)(k > 0 ? k : 1),
                                     sizeof(int64_t));
    if (!pos)
        return -1;
    for (;;) {
        int32_t best = -1, s;
        int64_t best_tid = 0, best_id = 0;
        for (s = 0; s < k; s++) {
            const int64_t *head;
            if (pos[s] >= counts[s])
                continue;
            head = blobs[s] + 2 * pos[s];
            /* Strict < keeps the lowest input index on ties, matching
               heapq.merge's stability. */
            if (best < 0 || head[0] < best_tid
                || (head[0] == best_tid && head[1] < best_id)) {
                best = s;
                best_tid = head[0];
                best_id = head[1];
            }
        }
        if (best < 0)
            break;
        out[2 * written] = best_tid;
        out[2 * written + 1] = best_id;
        written++;
        pos[best]++;
    }
    free(pos);
    return written;
}

void repro_free(int64_t *p)
{
    free(p);
}
"""

ffibuilder.set_source(
    "repro.columnar.kernels._native",
    CSOURCE,
    extra_compile_args=["-O2"],
)

if __name__ == "__main__":  # pragma: no cover - manual build entry point
    # Build straight into the source tree (the module name is dotted, so
    # cffi lays the artifact out under <tmpdir>/repro/columnar/kernels/).
    import os

    root = os.path.dirname(  # .../src
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )
    ffibuilder.compile(tmpdir=root, verbose=True)
