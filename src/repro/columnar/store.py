"""Column-oriented storage for the label relation.

The Volcano interpreter materializes every intermediate binding as a wide
Python tuple and probes sorted indexes of encoded key tuples.  This module
stores the relation ``node(tid, left, right, depth, id, pid, name, value)``
as parallel arrays instead:

* the six integer columns live in ``array('q')`` buffers, physically
  ordered by the paper's clustered key ``{name, tid, left, right, depth,
  id, pid}`` — so every clustered probe is a *contiguous range of row
  ids*, found by a dictionary lookup on ``(name, tid)`` plus two binary
  searches on the raw ``left`` array;
* ``name``/``value`` are interned-string columns;
* derived per-row bitmaps (``is_attr``, ``right_edge``) turn the
  element/attribute tests and LPath's root alignment (``$``) into plain
  array reads;
* secondary projections — a ``(tid, id)`` permutation for parent /
  attribute / whole-tree probes, a CSR-style ``(tid, pid)`` children
  index for wildcard child/parent steps, and per-value row lists for the
  ``[@attr = literal]`` seeds — are permutation arrays over the same
  columns, so no row is ever stored twice;
* per-name cardinality/partition/depth statistics (:class:`NameStats`)
  feed the optimizer's cost-based choice between per-binding probe joins
  and the structural merge joins of :mod:`repro.columnar.structural`.

Row ids index every column; a query binding is a short list of row ids
rather than a concatenation of 8-wide tuples.  The batch executor in
:mod:`repro.columnar.executor` consumes these primitives.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, NamedTuple, Optional

from ..faults import maybe_mmap_read_error
from ..labeling.lpath_scheme import ATTRIBUTE_PREFIX

#: Column positions, shared with :mod:`repro.plan.ir`.
T, L, R, D, I, P, N, V = range(8)

#: Default column names (the LPath relation; the start/end relation only
#: renames ``left``/``right`` to ``start``/``end`` — positions are equal).
COLUMN_NAMES = ("tid", "left", "right", "depth", "id", "pid", "name", "value")


class NameStats(NamedTuple):
    """Collected statistics for one name partition, feeding the
    optimizer's join cost model (:mod:`repro.plan.optimizer` /
    :mod:`repro.columnar.structural`)."""

    rows: int            # rows carrying the name across the corpus
    partitions: int      # distinct (name, tid) partitions
    max_partition: int   # rows in the largest per-tree partition
    min_depth: int       # shallowest occurrence (0 when absent)
    max_depth: int       # deepest occurrence (0 when absent)


class ColumnStore:
    """The label relation as clustered parallel arrays.

    Build with :meth:`from_rows` (any iterable of 8-tuples / ``Label``
    rows) or :meth:`from_columns` (pre-split arrays, e.g. straight from a
    compiled-corpus file via :func:`repro.store.load_label_columns`).
    """

    __slots__ = (
        "n",
        "tid",
        "left",
        "right",
        "depth",
        "id",
        "pid",
        "names",
        "values",
        "column_names",
        "is_attr",
        "right_edge",
        "root_right",
        "name_bounds",
        "name_tid_bounds",
        "tid_id_perm",
        "tid_bounds",
        "children_perm",
        "children_bounds",
        "_perm_ids",
        "_by_value",
        "_projections",
        "_name_stats",
    )

    def __init__(
        self,
        tid: Iterable[int],
        left: Iterable[int],
        right: Iterable[int],
        depth: Iterable[int],
        id: Iterable[int],
        pid: Iterable[int],
        names: Iterable[str],
        values: Iterable[Optional[str]],
        column_names: tuple[str, ...] = COLUMN_NAMES,
    ) -> None:
        tid = list(tid)
        left = list(left)
        right = list(right)
        depth = list(depth)
        id = list(id)
        pid = list(pid)
        names = list(names)
        values = list(values)
        n = len(tid)
        self.column_names = tuple(column_names)

        # Physical order: the clustered key {name, tid, left, right, depth,
        # id, pid}, so clustered probes are contiguous row-id ranges.
        order = sorted(
            range(n),
            key=lambda r: (names[r], tid[r], left[r], right[r], depth[r], id[r], pid[r]),
        )
        self.n = n
        self.tid = array("q", (tid[r] for r in order))
        self.left = array("q", (left[r] for r in order))
        self.right = array("q", (right[r] for r in order))
        self.depth = array("q", (depth[r] for r in order))
        self.id = array("q", (id[r] for r in order))
        self.pid = array("q", (pid[r] for r in order))
        intern: dict[str, str] = {}
        self.names = [intern.setdefault(names[r], names[r]) for r in order]
        self.values = [
            None if values[r] is None else intern.setdefault(values[r], values[r])
            for r in order
        ]

        self._build_clustered_bounds()
        self._build_bitmaps()
        self._build_tid_id_projection()
        self._build_children_index()
        self._by_value: Optional[dict] = None       # built on first value seed
        self._projections: dict[tuple, tuple] = {}  # generic index projections
        self._name_stats: dict[Optional[str], NameStats] = {}

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(
        cls, rows: Iterable, column_names: tuple[str, ...] = COLUMN_NAMES
    ) -> "ColumnStore":
        """Split row tuples (or ``Label`` instances) into columns."""
        cols: tuple[list, ...] = ([], [], [], [], [], [], [], [])
        for row in rows:
            for position in range(8):
                cols[position].append(row[position])
        return cls(*cols, column_names=column_names)

    @classmethod
    def from_columns(cls, columns, column_names: tuple[str, ...] = COLUMN_NAMES) -> "ColumnStore":
        """Adopt a pre-split column bundle (anything with the eight
        ``tid/left/right/depth/id/pid/names/values`` attributes, e.g.
        :class:`repro.store.LabelColumns`)."""
        return cls(
            columns.tid,
            columns.left,
            columns.right,
            columns.depth,
            columns.id,
            columns.pid,
            columns.names,
            columns.values,
            column_names=column_names,
        )

    # -- construction helpers ------------------------------------------------

    def _build_clustered_bounds(self) -> None:
        name_bounds: dict[str, tuple[int, int]] = {}
        name_tid_bounds: dict[tuple[str, int], tuple[int, int]] = {}
        names = self.names
        start = 0
        for row in range(1, self.n + 1):
            if row == self.n or names[row] != names[start]:
                self._close_name_block(names[start], start, row, name_tid_bounds)
                name_bounds[names[start]] = (start, row)
                start = row
        self.name_bounds = name_bounds
        self.name_tid_bounds = name_tid_bounds

    def _close_name_block(self, name, lo, hi, name_tid_bounds) -> None:
        tids = self.tid
        start = lo
        for row in range(lo + 1, hi + 1):
            if row == hi or tids[row] != tids[start]:
                name_tid_bounds[(name, tids[start])] = (start, row)
                start = row

    def _build_bitmaps(self) -> None:
        names, tids, rights, pids = self.names, self.tid, self.right, self.pid
        is_attr = bytearray(self.n)
        root_right: dict[int, int] = {}
        for row in range(self.n):
            if names[row].startswith(ATTRIBUTE_PREFIX):
                is_attr[row] = 1
            elif pids[row] == 0:
                # labeling.lpath_scheme.is_root_row over column arrays
                # (kept tuple-free: this runs on every cold start).
                root_right[tids[row]] = rights[row]
        right_edge = bytearray(self.n)
        for row in range(self.n):
            if rights[row] == root_right.get(tids[row]):
                right_edge[row] = 1
        self.is_attr = is_attr
        self.right_edge = right_edge
        self.root_right = root_right

    def _build_tid_id_projection(self) -> None:
        tids, ids = self.tid, self.id
        perm = array("q", sorted(range(self.n), key=lambda r: (tids[r], ids[r])))
        tid_bounds: dict[int, tuple[int, int]] = {}
        start = 0
        for slot in range(1, self.n + 1):
            if slot == self.n or tids[perm[slot]] != tids[perm[start]]:
                tid_bounds[tids[perm[start]]] = (start, slot)
                start = slot
        self.tid_id_perm = perm
        self.tid_bounds = tid_bounds
        self._perm_ids = array("q", (ids[r] for r in perm))

    def _build_children_index(self) -> None:
        """CSR-style children offsets: rows grouped by ``(tid, pid)`` in
        span order, so a node's children (element + attribute rows) are one
        contiguous slice of a permutation array — the wildcard child/parent
        steps become direct lookups instead of whole-tree scans."""
        tids, pids, lefts = self.tid, self.pid, self.left
        perm = array(
            "q", sorted(range(self.n), key=lambda r: (tids[r], pids[r], lefts[r], r))
        )
        bounds: dict[tuple[int, int], tuple[int, int]] = {}
        start = 0
        for slot in range(1, self.n + 1):
            if (
                slot == self.n
                or tids[perm[slot]] != tids[perm[start]]
                or pids[perm[slot]] != pids[perm[start]]
            ):
                key = (tids[perm[start]], pids[perm[start]])
                bounds[key] = (start, slot)
                start = slot
        self.children_perm = perm
        self.children_bounds = bounds

    def children_rows(self, tid: int, pid: int):
        """Rows whose parent is ``(tid, pid)`` in span order (attribute
        rows of the children included, exactly like a filtered tree scan)."""
        lo, hi = self.children_bounds.get((tid, pid), (0, 0))
        return self.children_perm[lo:hi]

    # -- column access -------------------------------------------------------

    def col(self, position: int):
        """The backing sequence for one column position."""
        return (
            self.tid, self.left, self.right, self.depth,
            self.id, self.pid, self.names, self.values,
        )[position]

    def column_ptr(self, position: int):
        """``(raw pointer, length)`` over one integer column for the
        native kernels — zero-copy for both heap arrays and the mmap
        views of a :class:`MappedColumnStore`, where the C side reads
        page-cache memory directly.  Raises ``TypeError`` for the string
        columns, ``RuntimeError`` when the cffi extension is unavailable,
        and ``ValueError`` once the owning corpus released its views.
        The pointer pins the underlying buffer: drop it before closing a
        mapped corpus, or ``close()`` raises ``BufferError``."""
        from .kernels.api import column_pointer

        return column_pointer(self.col(position), self.n)

    def iter_rows(self) -> Iterator[tuple]:
        """Yield plain row tuples in clustered order."""
        cols = tuple(self.col(position) for position in range(8))
        for row in range(self.n):
            yield tuple(column[row] for column in cols)

    def __len__(self) -> int:
        return self.n

    # -- clustered probes ----------------------------------------------------

    def name_block(self, name: str) -> range:
        """Row ids carrying ``name`` (the clustered name partition)."""
        lo, hi = self.name_bounds.get(name, (0, 0))
        return range(lo, hi)

    def name_tid_block(self, name: str, tid: int) -> tuple[int, int]:
        """The per-tree partition of one name block."""
        return self.name_tid_bounds.get((name, tid), (0, 0))

    def clustered_range(
        self,
        name: str,
        tid: int,
        low: Optional[int],
        high: Optional[int],
        include_low: bool = True,
        include_high: bool = True,
    ) -> range:
        """Rows of ``(name, tid)`` whose ``left`` falls in the bound range —
        two binary searches over the raw ``left`` array."""
        lo, hi = self.name_tid_bounds.get((name, tid), (0, 0))
        if lo == hi:
            return range(0, 0)
        lefts = self.left
        if low is not None:
            lo = (bisect_left if include_low else bisect_right)(lefts, low, lo, hi)
        if high is not None:
            hi = (bisect_right if include_high else bisect_left)(lefts, high, lo, hi)
        return range(lo, hi)

    # -- (tid, id) probes ----------------------------------------------------

    def tid_rows(self, tid: int):
        """All rows of one tree, ordered by ``id`` (an array of row ids)."""
        lo, hi = self.tid_bounds.get(tid, (0, 0))
        return self.tid_id_perm[lo:hi]

    def tid_id_rows(self, tid: int, node_id: int):
        """Rows with the exact ``(tid, id)`` (element + attribute rows)."""
        lo, hi = self.tid_bounds.get(tid, (0, 0))
        if lo == hi:
            return ()
        ids = self._perm_ids
        start = bisect_left(ids, node_id, lo, hi)
        end = bisect_right(ids, node_id, start, hi)
        return self.tid_id_perm[start:end]

    # -- value seeds ---------------------------------------------------------

    @property
    def by_value(self) -> dict:
        """``value -> (tids, row ids)`` over attribute rows, ordered by
        ``(tid, id)`` — the columnar twin of the ``{value, tid, id}``
        index.  Built on first use."""
        if self._by_value is None:
            table: dict[str, tuple[array, array]] = {}
            values, is_attr = self.values, self.is_attr
            tids = self.tid
            for slot in range(self.n):
                row = self.tid_id_perm[slot]
                if not is_attr[row] or values[row] is None:
                    continue
                entry = table.get(values[row])
                if entry is None:
                    entry = table[values[row]] = (array("q"), array("q"))
                entry[0].append(tids[row])
                entry[1].append(row)
            self._by_value = table
        return self._by_value

    def value_rows(self, literal: str, tid: Optional[int] = None):
        """Attribute rows whose value equals ``literal`` (optionally within
        one tree), ordered by ``(tid, id)``."""
        entry = self.by_value.get(literal)
        if entry is None:
            return ()
        tids, rows = entry
        if tid is None:
            return rows
        lo = bisect_left(tids, tid)
        hi = bisect_right(tids, tid, lo)
        return rows[lo:hi]

    # -- generic projections (ablation indexes) ------------------------------

    def projection(self, positions: tuple[int, ...]):
        """A sorted permutation over arbitrary column positions, for index
        probes outside the built-in clustered/(tid, id) layouts (e.g. the
        ablation index ``{name, tid, right, ...}``).  Built lazily, once
        per column tuple."""
        cached = self._projections.get(positions)
        if cached is None:
            cols = [self.col(position) for position in positions]
            keys = [tuple(column[row] for column in cols) for row in range(self.n)]
            perm = sorted(range(self.n), key=keys.__getitem__)
            keys.sort()
            cached = self._projections[positions] = (keys, array("q", perm))
        return cached

    # -- string values -------------------------------------------------------

    def string_value(self, row: int, element_values: bool = True) -> Optional[str]:
        """The string value of one row: attribute rows carry it directly;
        element rows concatenate their ``@lex`` leaf descendants (``None``
        when ``element_values`` is off — the start/end scheme loses leaf
        order)."""
        if self.is_attr[row]:
            value = self.values[row]
            return value if value is not None else ""
        if not element_values:
            return None
        lo, hi = self.name_tid_bounds.get(("@lex", self.tid[row]), (0, 0))
        if lo == hi:
            return ""
        lefts, rights, values = self.left, self.right, self.values
        low, high = lefts[row], rights[row]
        lo = bisect_left(lefts, low, lo, hi)
        hi = bisect_left(lefts, high, lo, hi)
        words = [
            values[leaf]
            for leaf in range(lo, hi)
            if rights[leaf] <= high and values[leaf] is not None
        ]
        return " ".join(words)

    def frequency(self, name: Optional[str]) -> int:
        """Rows carrying ``name`` (store size for the wildcard)."""
        if name is None:
            return self.n
        lo, hi = self.name_bounds.get(name, (0, 0))
        return hi - lo

    # -- statistics -----------------------------------------------------------

    def tree_count(self) -> int:
        """Distinct trees in the store."""
        return len(self.tid_bounds)

    def size(self) -> int:
        """Total rows (the catalog-protocol spelling of ``len``)."""
        return self.n

    def name_stats(self, name: Optional[str]) -> NameStats:
        """Per-name cardinality/partition/depth statistics for the join
        cost model; one linear pass over the name block, cached per name
        (``None`` summarizes the whole store)."""
        cached = self._name_stats.get(name)
        if cached is not None:
            return cached
        if name is None:
            lo, hi = 0, self.n
            partitions = len(self.tid_bounds)
            max_partition = max(
                (bounds[1] - bounds[0] for bounds in self.tid_bounds.values()),
                default=0,
            )
        else:
            lo, hi = self.name_bounds.get(name, (0, 0))
            partitions = 0
            max_partition = 0
            tids = self.tid
            start = lo
            for row in range(lo + 1, hi + 1):
                if row == hi or tids[row] != tids[start]:
                    partitions += 1
                    if row - start > max_partition:
                        max_partition = row - start
                    start = row
            if lo == hi:
                partitions = max_partition = 0
        if lo == hi:
            stats = NameStats(0, 0, 0, 0, 0)
        else:
            depths = self.depth
            min_depth = max_depth = depths[lo]
            for row in range(lo + 1, hi):
                d = depths[row]
                if d < min_depth:
                    min_depth = d
                elif d > max_depth:
                    max_depth = d
            stats = NameStats(hi - lo, partitions, max_partition, min_depth, max_depth)
        self._name_stats[name] = stats
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ColumnStore rows={self.n} names={len(self.name_bounds)}>"


# -- zero-copy adoption of an LPDB0004 segment ---------------------------------


class StringColumn:
    """A lazy string column: an int64 id view over the mapped file plus
    the decoded string table.  Rows resolve on access, so adopting the
    column is O(1) instead of an O(rows) list build; repeated lookups of
    one row return the *same* table entry (interning for free)."""

    __slots__ = ("ids", "table")

    def __init__(self, ids, table: list) -> None:
        self.ids = ids
        self.table = table

    def __getitem__(self, row: int):
        return self.table[self.ids[row]]

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self):
        table = self.table
        return (table[index] for index in self.ids)


class PartitionBounds:
    """The ``(name, tid) -> (row lo, row hi)`` mapping of a mapped store,
    answered from the sidecar's name directory plus two int64 views
    (partition tids and row starts, in clustered order) — a dict lookup
    and one binary search instead of an O(partitions) dict build at open.
    Implements the read surface the executor and the structural joins use
    (``get``/``[]``/``in``)."""

    __slots__ = ("_name_dir", "_tids", "_starts", "_n")

    def __init__(self, name_dir: dict, tids, starts, n: int) -> None:
        self._name_dir = name_dir   # name -> (part lo, part hi, row hi)
        self._tids = tids
        self._starts = starts
        self._n = n

    def _lookup(self, key):
        name, tid = key
        span = self._name_dir.get(name)
        if span is None:
            return None
        part_lo, part_hi, _row_hi = span
        tids = self._tids
        index = bisect_left(tids, tid, part_lo, part_hi)
        if index == part_hi or tids[index] != tid:
            return None
        starts = self._starts
        start = starts[index]
        end = starts[index + 1] if index + 1 < len(starts) else self._n
        return start, end

    def get(self, key, default=None):
        bounds = self._lookup(key)
        return default if bounds is None else bounds

    def __getitem__(self, key):
        bounds = self._lookup(key)
        if bounds is None:
            raise KeyError(key)
        return bounds

    def __contains__(self, key) -> bool:
        return self._lookup(key) is not None


class ChildrenBounds:
    """The ``(tid, pid) -> (slot lo, slot hi)`` mapping over a mapped
    store's children permutation: a per-tree group directory plus two
    int64 views (group pids and slot starts)."""

    __slots__ = ("_tid_dir", "_pids", "_starts")

    def __init__(self, tid_dir: dict, pids, starts) -> None:
        self._tid_dir = tid_dir     # tid -> (group lo, group hi)
        self._pids = pids
        self._starts = starts

    def get(self, key, default=None):
        tid, pid = key
        span = self._tid_dir.get(tid)
        if span is None:
            return default
        group_lo, group_hi = span
        pids = self._pids
        index = bisect_left(pids, pid, group_lo, group_hi)
        if index == group_hi or pids[index] != pid:
            return default
        return self._starts[index], self._starts[index + 1]

    def __getitem__(self, key):
        bounds = self.get(key)
        if bounds is None:
            raise KeyError(key)
        return bounds

    def __contains__(self, key) -> bool:
        return self.get(key) is not None


class MappedColumnStore(ColumnStore):
    """A :class:`ColumnStore` adopted zero-copy from one segment of an
    ``LPDB0004`` file (:class:`repro.store.MappedSegment`).

    Nothing is decoded, sorted or scanned: the integer columns and the
    derived permutations/bitmaps are ``memoryview``\\ s straight off the
    ``mmap``, the string columns resolve through the sidecar's table
    lazily, the partition/children bounds answer from sidecar directories
    plus binary search, and every :class:`NameStats` the cost model asks
    for was collected at save time — open cost is O(names + trees), not
    O(rows).  Closing the owning :class:`~repro.store.MappedCorpus`
    releases the views; a store used after that raises ``ValueError``."""

    __slots__ = ()

    def __init__(
        self, segment, column_names: tuple[str, ...] = COLUMN_NAMES
    ) -> None:
        self.n = segment.n
        self.column_names = tuple(column_names)
        self.tid = segment.tid
        self.left = segment.left
        self.right = segment.right
        self.depth = segment.depth
        self.id = segment.id
        self.pid = segment.pid
        table = segment.table
        self.names = StringColumn(segment.name_ids, table)
        self.values = StringColumn(segment.value_ids, table)
        self.is_attr = segment.is_attr
        self.right_edge = segment.right_edge
        self.root_right = segment.root_right
        self.tid_id_perm = segment.tid_id_perm
        self._perm_ids = segment.perm_ids
        self.tid_bounds = segment.tid_bounds
        self.children_perm = segment.children_perm
        self.children_bounds = ChildrenBounds(
            segment.child_tid_dir, segment.child_pids, segment.child_starts
        )

        name_bounds: dict[str, tuple[int, int]] = {}
        name_dir: dict[str, tuple[int, int, int]] = {}
        stats: dict[Optional[str], NameStats] = {}
        for name, lo, hi, part_lo, part_hi, collected in segment.name_entries:
            name_bounds[name] = (lo, hi)
            name_dir[name] = (part_lo, part_hi, hi)
            stats[name] = NameStats(*collected)
        self.name_bounds = name_bounds
        self.name_tid_bounds = PartitionBounds(
            name_dir, segment.part_tids, segment.part_starts, self.n
        )
        stats[None] = NameStats(*segment.store_stats)
        self._name_stats = stats
        self._by_value = None
        self._projections = {}

    # -- fault checkpoints ----------------------------------------------------
    #
    # The mapped store is the one physical layer whose reads can fail at
    # query time (the mapping is page-cache memory over a file another
    # process — or a dying disk — may invalidate).  The three probe
    # surfaces every plan passes through carry a ``mmap_read_error``
    # checkpoint so the serving layer's classify-and-quarantine path can
    # be driven deterministically; with REPRO_FAULTS unset each is one
    # extra dict lookup per plan step (never per row).

    def col(self, position: int):
        maybe_mmap_read_error()
        return ColumnStore.col(self, position)

    def name_block(self, name: str) -> range:
        maybe_mmap_read_error()
        return ColumnStore.name_block(self, name)

    def children_rows(self, tid: int, pid: int):
        maybe_mmap_read_error()
        return ColumnStore.children_rows(self, tid, pid)
