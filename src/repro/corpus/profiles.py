"""The WSJ-like and Switchboard-like grammar profiles.

These grammars are engineered so that the statistical drivers of the
paper's evaluation hold on generated corpora:

* every tag used by the Figure 6(c) query set occurs, with the paper's
  high/low selectivity split (``NP``/``VP``/``NN``/``IN`` frequent;
  ``WHPP``/``RRC``/``UCP-PRD``/``ADVP-LOC-CLR`` rare);
* recursive ``NP -> NP PP`` and auxiliary ``VP -> MD VP`` chains produce
  the deep vertical patterns of Q18/Q19; ditransitives and apposition
  produce the sibling chains of Q20-Q23;
* the SWB profile makes ``-DFL-`` (disfluency) the most frequent tag and
  sharply reduces the WSJ-heavy tags, reproducing the frequency shift the
  paper uses to explain Figure 8.
"""

from __future__ import annotations

from .grammar import Grammar, Production
from .lexicon import Lexicon, swb_lexicon, wsj_lexicon

#: Tags the Figure 6(c) query set mentions; tests assert all are generable.
QUERY_TAGS = [
    "S", "NP", "VP", "PP", "NN", "VB", "IN", "DT", "JJ", "NP-SBJ",
    "-NONE-", "ADJP", "ADVP", "SBAR", "RB", "PRP", "-DFL-",
    "WHPP", "RRC", "PP-TMP", "UCP-PRD", "ADJP-PRD", "ADVP-LOC-CLR",
]

_WSJ_POS = {
    "NN", "NNS", "NNP", "VB", "DT", "JJ", "IN", "RB", "PRP", "CD",
    "WP", "WDT", "MD", "CC", "UH", "-NONE-", "-DFL-", ".", ",",
}


def _p(lhs: str, rhs: str, weight: float) -> Production:
    return Production(lhs, tuple(rhs.split()), weight)


def _wsj_productions() -> list[Production]:
    return [
        # -- sentences -------------------------------------------------------
        _p("S", "NP-SBJ VP .", 46.0),
        _p("S", "NP-SBJ VP PP-TMP .", 5.0),
        _p("S", "NP-SBJ VP ADVP .", 3.0),
        _p("S", "PP S", 2.5),
        _p("S", "NP-SBJ PP VP .", 1.6),      # Q10: ... NP] [PP of][VP ...
        _p("S", "NP-SBJ VP VP .", 0.8),      # Q23: sibling VPs
        _p("S", "NP-SBJ UCP-PRD .", 0.35),   # Q17: UCP-PRD under S
        _p("S", "-NONE- VP .", 1.2),
        _p("S", "NP-SBJ VP", 4.0),
        _p("S", "PRP VB .", 0.8),          # shallow fallback at the depth cap
        # -- subjects ---------------------------------------------------------
        _p("NP-SBJ", "DT NN", 18.0),
        _p("NP-SBJ", "NP", 3.0),   # unary chain (exercises depth disambiguation)
        _p("NP-SBJ", "PRP", 14.0),
        _p("NP-SBJ", "NNP", 9.0),
        _p("NP-SBJ", "DT JJ NN", 7.0),
        _p("NP-SBJ", "-NONE-", 7.0),
        _p("NP-SBJ", "NP PP", 3.0),
        _p("NP-SBJ", "NNS", 4.0),
        # -- noun phrases ------------------------------------------------------
        _p("NP", "DT NN", 26.0),
        _p("NP", "NN", 9.0),
        _p("NP", "DT JJ NN", 11.0),
        _p("NP", "NNP", 7.0),
        _p("NP", "NNS", 6.0),
        _p("NP", "NP PP", 17.0),             # recursion: Q18 chains
        _p("NP", "NP SBAR", 2.5),
        _p("NP", "NP RRC", 0.35),            # Q16 host
        _p("NP", "DT ADJP NN", 4.0),         # Q8: ADJP child of NP
        _p("NP", "NP NP NP", 0.5),           # Q22: NP=>NP=>NP
        _p("NP", "NP NP", 1.6),
        _p("NP", "CD NN", 2.0),
        _p("NP", "DT NN NN", 3.5),
        _p("NP", "NP PP SBAR", 0.9),         # Q20: PP=>SBAR
        _p("NP", "-NONE-", 2.0),
        # -- verb phrases --------------------------------------------------------
        _p("VP", "VB NP", 30.0),
        _p("VP", "VB", 7.0),
        _p("VP", "VB NP PP", 11.0),
        _p("VP", "VB PP", 7.0),
        _p("VP", "MD VP", 5.5),              # Q19: VP under VP
        _p("VP", "VB VP", 3.0),              # and deeper chains
        _p("VP", "VB SBAR", 4.0),
        _p("VP", "VB NP NP", 2.0),           # ditransitive: NP=>NP
        _p("VP", "ADVP VB NP", 1.5),
        _p("VP", "VB ADVP ADJP", 0.28),      # Q21: ADVP=>ADJP
        _p("VP", "VB NP ADVP-LOC-CLR", 0.11),  # Q14 host
        _p("VP", "VB UCP-PRD", 0.25),
        # -- prepositional phrases --------------------------------------------------
        _p("PP", "IN NP", 55.0),
        _p("PP", "IN", 1.8),
        _p("PP-TMP", "IN NP", 5.0),
        _p("PP-TMP", "IN CD", 1.0),
        # -- clauses ------------------------------------------------------------------
        _p("SBAR", "IN S", 7.0),
        _p("SBAR", "WHNP S", 2.5),
        _p("SBAR", "-NONE- S", 3.5),
        _p("SBAR", "WHPP S", 0.5),           # Q15 host
        _p("SBAR", "IN", 0.4),
        # -- modifiers ------------------------------------------------------------------
        _p("ADJP", "JJ", 7.0),
        _p("ADJP", "RB JJ", 2.4),
        _p("ADJP", "JJ PP", 1.2),
        _p("ADJP-PRD", "JJ", 1.4),
        _p("ADJP-PRD", "JJ PP", 0.6),
        _p("ADVP", "RB", 8.0),
        _p("ADVP", "RB RB", 0.8),
        _p("ADVP-LOC-CLR", "RB", 0.6),
        _p("ADVP-LOC-CLR", "RB PP", 0.25),
        # -- rare constructions --------------------------------------------------------------
        _p("WHNP", "WDT", 2.0),
        _p("WHNP", "WP", 1.4),
        _p("WHNP", "WP NN", 0.8),            # Q11: "what building"
        _p("WHPP", "IN WHNP", 1.0),
        _p("WHPP", "IN WP", 0.3),
        _p("RRC", "VP PP-TMP", 0.45),        # Q16: RRC/PP-TMP
        _p("RRC", "ADJP PP", 0.4),
        _p("RRC", "JJ", 0.2),
        _p("UCP-PRD", "ADJP-PRD PP", 0.6),   # Q17: UCP-PRD/ADJP-PRD
        _p("UCP-PRD", "ADJP-PRD CC ADJP-PRD", 0.4),
        _p("UCP-PRD", "JJ", 0.15),
    ]


def _swb_productions() -> list[Production]:
    """Conversational profile: disfluencies everywhere, flatter syntax,
    WSJ-heavy tags (IN/NNP/DT chains, deep NPs) much rarer."""
    productions = [
        # -- sentences: disfluency markers dominate ---------------------------
        _p("S", "-DFL- NP-SBJ VP .", 16.0),
        _p("S", "NP-SBJ VP . -DFL-", 10.0),
        _p("S", "-DFL- S", 7.0),
        _p("S", "UH , S", 6.0),
        _p("S", "NP-SBJ VP .", 22.0),
        _p("S", "NP-SBJ VP", 9.0),
        _p("S", "NP-SBJ VP VP .", 1.6),       # Q23 more common in speech
        _p("S", "UH .", 4.0),
        _p("S", "NP-SBJ PP VP .", 0.5),
        _p("S", "NP-SBJ UCP-PRD .", 0.22),
        # -- subjects: pronouns rule ---------------------------------------------
        _p("NP-SBJ", "PRP", 30.0),
        _p("NP-SBJ", "NP", 2.0),   # unary chain
        _p("NP-SBJ", "DT NN", 6.0),
        _p("NP-SBJ", "-NONE-", 6.0),
        _p("NP-SBJ", "NNP", 1.2),
        _p("NP-SBJ", "NP -DFL- NP", 1.0),
        _p("NP-SBJ", "NNS", 2.0),
        # -- noun phrases: flatter, less recursion ----------------------------------
        _p("NP", "PRP", 10.0),
        _p("NP", "DT NN", 14.0),
        _p("NP", "NN", 8.0),
        _p("NP", "DT JJ NN", 4.0),
        _p("NP", "NNS", 4.5),
        _p("NP", "NP PP", 6.0),
        _p("NP", "NP SBAR", 1.6),
        _p("NP", "DT ADJP NN", 1.1),
        _p("NP", "NP NP NP", 0.35),
        _p("NP", "NP NP", 1.0),
        _p("NP", "CD NN", 1.2),
        _p("NP", "NP RRC", 0.16),
        _p("NP", "NP PP SBAR", 0.5),
        _p("NP", "-NONE-", 1.6),
        _p("NP", "NNP", 0.9),
        # -- verb phrases -------------------------------------------------------------
        _p("VP", "VB NP", 22.0),
        _p("VP", "VB", 9.0),
        _p("VP", "VB SBAR", 7.0),
        _p("VP", "VB NP PP", 4.5),
        _p("VP", "MD VP", 4.5),
        _p("VP", "VB VP", 3.2),
        _p("VP", "VB PP", 4.0),
        _p("VP", "VB NP NP", 1.2),
        _p("VP", "ADVP VB NP", 1.5),
        _p("VP", "VB ADVP ADJP", 0.5),
        _p("VP", "VB -DFL- NP", 2.2),
        _p("VP", "VB UCP-PRD", 0.18),
        # -- the rest, scaled down ------------------------------------------------------
        _p("PP", "IN NP", 18.0),
        _p("PP", "IN", 1.0),
        _p("PP-TMP", "IN NP", 1.1),
        _p("PP-TMP", "IN CD", 0.3),
        _p("SBAR", "IN S", 5.0),
        _p("SBAR", "WHNP S", 2.0),
        _p("SBAR", "-NONE- S", 3.0),
        _p("SBAR", "WHPP S", 0.18),
        _p("SBAR", "IN", 0.3),
        _p("ADJP", "JJ", 4.0),
        _p("ADJP", "RB JJ", 1.6),
        _p("ADJP", "JJ PP", 0.5),
        _p("ADJP-PRD", "JJ", 0.9),
        _p("ADJP-PRD", "JJ PP", 0.3),
        _p("ADVP", "RB", 9.0),
        _p("ADVP", "RB RB", 1.2),
        _p("ADVP-LOC-CLR", "RB", 0.25),
        _p("ADVP-LOC-CLR", "RB PP", 0.08),
        _p("WHNP", "WDT", 1.4),
        _p("WHNP", "WP", 1.6),
        _p("WHNP", "WP NN", 0.7),
        _p("WHPP", "IN WHNP", 1.0),
        _p("WHPP", "IN WP", 0.3),
        _p("RRC", "VP PP-TMP", 0.2),
        _p("RRC", "ADJP PP", 0.2),
        _p("RRC", "JJ", 0.1),
        _p("UCP-PRD", "ADJP-PRD PP", 0.3),
        _p("UCP-PRD", "ADJP-PRD CC ADJP-PRD", 0.2),
        _p("UCP-PRD", "JJ", 0.1),
    ]
    return productions


def wsj_profile() -> tuple[Grammar, Lexicon]:
    """Grammar + lexicon of the WSJ-like profile."""
    return Grammar("S", _wsj_productions(), _WSJ_POS), wsj_lexicon()


def swb_profile() -> tuple[Grammar, Lexicon]:
    """Grammar + lexicon of the Switchboard-like profile."""
    return Grammar("S", _swb_productions(), _WSJ_POS), swb_lexicon()


PROFILES = {"wsj": wsj_profile, "swb": swb_profile}
