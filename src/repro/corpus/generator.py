"""Seeded synthetic treebank generation."""

from __future__ import annotations

import random
from typing import Optional

from ..tree.node import Tree, TreeNode
from .grammar import Grammar
from .lexicon import Lexicon
from .profiles import PROFILES

#: Beyond this depth only shallow (POS-only) productions are chosen.
DEFAULT_MAX_DEPTH = 10


def generate_node(
    symbol: str,
    grammar: Grammar,
    lexicon: Lexicon,
    rng: random.Random,
    depth: int = 1,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> TreeNode:
    """Expand one grammar symbol into a subtree."""
    if symbol in grammar.pos_tags:
        return TreeNode(symbol, attributes={"lex": lexicon.sample(symbol, rng)})
    production = grammar.choose(symbol, rng, shallow_only=depth >= max_depth)
    node = TreeNode(symbol)
    for child_symbol in production.rhs:
        node.append(
            generate_node(child_symbol, grammar, lexicon, rng, depth + 1, max_depth)
        )
    return node


def generate_tree(
    grammar: Grammar,
    lexicon: Lexicon,
    rng: random.Random,
    tid: int = 0,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> Tree:
    """Generate one parse tree from the grammar's start symbol."""
    return Tree(generate_node(grammar.start, grammar, lexicon, rng, max_depth=max_depth), tid=tid)


def generate_corpus(
    profile: str = "wsj",
    sentences: int = 1000,
    seed: int = 0,
    start_tid: int = 0,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> list[Tree]:
    """Generate a corpus with a named profile (``"wsj"`` or ``"swb"``).

    Deterministic for a given ``(profile, sentences, seed)``.
    """
    try:
        build = PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown profile {profile!r}; available: {sorted(PROFILES)}"
        ) from None
    grammar, lexicon = build()
    rng = random.Random(seed)
    return [
        generate_tree(grammar, lexicon, rng, tid=start_tid + offset, max_depth=max_depth)
        for offset in range(sentences)
    ]


def replicate_corpus(trees: list[Tree], factor: float, seed: Optional[int] = None) -> list[Tree]:
    """Scale a corpus for Figure 9: repeat (or truncate) to ``factor`` × size.

    Replicated trees are structural copies with fresh tids, mirroring the
    paper's "replicated the WSJ dataset between 0.5 and 4 times".
    """
    target = max(1, int(round(len(trees) * factor)))
    result: list[Tree] = []
    for index in range(target):
        source = trees[index % len(trees)]
        result.append(Tree(_copy_node(source.root), tid=index))
    return result


def _copy_node(node: TreeNode) -> TreeNode:
    return TreeNode(
        node.label,
        children=[_copy_node(child) for child in node.children],
        attributes=dict(node.attributes),
    )
