"""Weighted lexicons for the synthetic treebank profiles.

Words required by the paper's query set are present with tuned
frequencies: ``saw`` (Q1: moderate), ``of`` (Q10: very frequent under
``IN``), ``what``/``building`` (Q11: co-occurring under WHNP),
``rapprochement`` (Q12: hapax-rare) and ``1929`` (Q13: rare, WSJ only).
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Mapping, Sequence


class WeightedChoice:
    """Sample from weighted alternatives with a ``random.Random``."""

    __slots__ = ("items", "_cumulative", "_total")

    def __init__(self, weighted: Sequence[tuple[object, float]]) -> None:
        if not weighted:
            raise ValueError("need at least one alternative")
        self.items = [item for item, _ in weighted]
        weights = [weight for _, weight in weighted]
        if min(weights) <= 0:
            raise ValueError("weights must be positive")
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random):
        point = rng.random() * self._total
        return self.items[bisect.bisect_right(self._cumulative, point)]


class Lexicon:
    """Per-POS weighted word distributions."""

    def __init__(self, entries: Mapping[str, Sequence[tuple[str, float]]]) -> None:
        self._choices = {pos: WeightedChoice(words) for pos, words in entries.items()}
        self.entries = {pos: list(words) for pos, words in entries.items()}

    def sample(self, pos: str, rng: random.Random) -> str:
        try:
            choice = self._choices[pos]
        except KeyError:
            raise KeyError(f"no lexicon for POS tag {pos!r}") from None
        return choice.sample(rng)

    def pos_tags(self) -> set[str]:
        return set(self._choices)


_COMMON_NOUNS = [
    ("company", 30.0), ("year", 28.0), ("market", 24.0), ("time", 20.0),
    ("group", 16.0), ("building", 12.0), ("price", 12.0), ("man", 10.0),
    ("government", 9.0), ("plan", 8.0), ("dog", 6.0), ("street", 6.0),
    ("analyst", 5.0), ("week", 5.0), ("rapprochement", 0.06),
]

_WSJ_ENTRIES: dict[str, list[tuple[str, float]]] = {
    "NN": _COMMON_NOUNS,
    "NNS": [("shares", 20.0), ("years", 15.0), ("sales", 12.0), ("prices", 10.0),
            ("analysts", 6.0), ("buildings", 4.0)],
    "NNP": [("Japan", 12.0), ("Congress", 10.0), ("Friday", 8.0), ("UAL", 6.0),
            ("Boeing", 6.0), ("October", 5.0), ("Wall", 5.0), ("Street", 5.0)],
    "VB": [("said", 25.0), ("saw", 4.0), ("rose", 8.0), ("expect", 7.0),
           ("buy", 7.0), ("sell", 6.0), ("make", 6.0), ("report", 5.0),
           ("close", 4.0), ("offer", 4.0)],
    "DT": [("the", 60.0), ("a", 30.0), ("an", 6.0), ("this", 5.0), ("that", 4.0)],
    "JJ": [("new", 20.0), ("last", 14.0), ("big", 8.0), ("major", 8.0),
           ("financial", 7.0), ("old", 6.0), ("federal", 5.0), ("strong", 4.0)],
    "IN": [("of", 40.0), ("in", 22.0), ("for", 12.0), ("on", 9.0),
           ("with", 8.0), ("at", 6.0), ("by", 6.0), ("from", 5.0), ("that", 4.0)],
    "RB": [("also", 12.0), ("now", 9.0), ("still", 7.0), ("already", 4.0),
           ("here", 4.0), ("abroad", 2.0), ("sharply", 3.0)],
    "PRP": [("it", 20.0), ("he", 15.0), ("they", 12.0), ("we", 8.0), ("I", 7.0)],
    "CD": [("10", 12.0), ("100", 8.0), ("50", 6.0), ("1987", 3.0),
           ("1929", 1.0), ("millions", 2.0)],
    "WP": [("what", 7.0), ("who", 3.0)],
    "WDT": [("which", 8.0), ("that", 4.0)],
    "MD": [("will", 10.0), ("would", 8.0), ("could", 5.0), ("may", 4.0)],
    "CC": [("and", 20.0), ("but", 6.0), ("or", 5.0)],
    "UH": [("yes", 2.0), ("well", 2.0), ("oh", 1.0)],
    "-NONE-": [("*T*", 10.0), ("*", 8.0), ("*U*", 3.0), ("0", 3.0)],
    "-DFL-": [("E_S", 10.0), ("N_S", 8.0), ("\\[", 3.0), ("\\]", 3.0), ("\\+", 2.0)],
    ".": [(".", 20.0), ("?", 2.0), ("!", 0.5)],
    ",": [(",", 1.0)],
}

_SWB_OVERRIDES: dict[str, list[tuple[str, float]]] = {
    # Conversational vocabulary: no '1929', no 'rapprochement'.
    "NN": [("thing", 20.0), ("time", 18.0), ("lot", 14.0), ("kid", 10.0),
           ("house", 9.0), ("building", 3.0), ("dog", 8.0), ("car", 8.0),
           ("job", 7.0), ("school", 6.0), ("man", 4.0)],
    "VB": [("know", 25.0), ("think", 20.0), ("got", 12.0), ("saw", 6.0),
           ("go", 10.0), ("mean", 8.0), ("like", 8.0), ("guess", 5.0)],
    "NNP": [("Texas", 8.0), ("Dallas", 5.0), ("Christmas", 3.0)],
    "CD": [("two", 10.0), ("three", 7.0), ("ten", 4.0), ("twenty", 3.0)],
    "IN": [("of", 22.0), ("in", 20.0), ("with", 12.0), ("for", 10.0),
           ("on", 9.0), ("about", 8.0), ("at", 6.0), ("like", 5.0)],
    "UH": [("uh", 20.0), ("yeah", 18.0), ("well", 12.0), ("um", 10.0),
           ("oh", 8.0), ("right", 6.0)],
    "PRP": [("I", 30.0), ("you", 25.0), ("it", 20.0), ("we", 12.0), ("they", 10.0)],
}


def wsj_lexicon() -> Lexicon:
    """Lexicon for the WSJ-like profile."""
    return Lexicon(_WSJ_ENTRIES)


def swb_lexicon() -> Lexicon:
    """Lexicon for the Switchboard-like profile."""
    entries = dict(_WSJ_ENTRIES)
    entries.update(_SWB_OVERRIDES)
    return Lexicon(entries)
