"""Synthetic treebank generation (the Treebank-3 substitute) and statistics."""

from .generator import (
    DEFAULT_MAX_DEPTH,
    generate_corpus,
    generate_tree,
    replicate_corpus,
)
from .grammar import Grammar, GrammarError, Production
from .lexicon import Lexicon, swb_lexicon, wsj_lexicon
from .profiles import PROFILES, QUERY_TAGS, swb_profile, wsj_profile
from .stats import (
    CorpusStats,
    corpus_stats,
    format_stats_table,
    format_top_tags_table,
    tag_frequencies,
    top_tags,
)

__all__ = [
    "CorpusStats",
    "DEFAULT_MAX_DEPTH",
    "Grammar",
    "GrammarError",
    "Lexicon",
    "PROFILES",
    "Production",
    "QUERY_TAGS",
    "corpus_stats",
    "format_stats_table",
    "format_top_tags_table",
    "generate_corpus",
    "generate_tree",
    "replicate_corpus",
    "swb_lexicon",
    "swb_profile",
    "tag_frequencies",
    "top_tags",
    "wsj_lexicon",
    "wsj_profile",
]
