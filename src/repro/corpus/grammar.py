"""Weighted context-free grammars for synthetic treebank generation."""

from __future__ import annotations

import random
from typing import NamedTuple, Sequence

from .lexicon import WeightedChoice


class Production(NamedTuple):
    """``lhs -> rhs`` with a selection weight."""

    lhs: str
    rhs: tuple[str, ...]
    weight: float


class GrammarError(ValueError):
    """Raised for ill-formed grammars."""


class Grammar:
    """A weighted CFG whose terminals are POS tags (words come from a lexicon).

    Every non-terminal must have at least one *shallow* production (an rhs
    of POS tags only); beyond the generation depth limit only shallow
    productions are used, which bounds tree depth without skewing shallow
    statistics.
    """

    def __init__(self, start: str, productions: Sequence[Production], pos_tags: set[str]) -> None:
        self.start = start
        self.pos_tags = set(pos_tags)
        self.productions: dict[str, list[Production]] = {}
        for production in productions:
            if production.lhs in self.pos_tags:
                raise GrammarError(f"POS tag {production.lhs!r} cannot be an lhs")
            self.productions.setdefault(production.lhs, []).append(production)
        self.nonterminals = set(self.productions)
        self._validate()
        self._any_choice = {
            lhs: WeightedChoice([(p, p.weight) for p in rules])
            for lhs, rules in self.productions.items()
        }
        self._shallow_choice = {}
        for lhs, rules in self.productions.items():
            shallow = [p for p in rules if self._is_shallow(p)]
            self._shallow_choice[lhs] = WeightedChoice(
                [(p, p.weight) for p in shallow]
            )

    def _is_shallow(self, production: Production) -> bool:
        return all(symbol in self.pos_tags for symbol in production.rhs)

    def _validate(self) -> None:
        if self.start not in self.productions:
            raise GrammarError(f"start symbol {self.start!r} has no productions")
        for lhs, rules in self.productions.items():
            for production in rules:
                if not production.rhs:
                    raise GrammarError(f"empty rhs in {lhs!r}")
                for symbol in production.rhs:
                    if symbol not in self.pos_tags and symbol not in self.productions:
                        raise GrammarError(
                            f"symbol {symbol!r} in {lhs} -> {production.rhs} is "
                            "neither a POS tag nor a defined non-terminal"
                        )
            if not any(self._is_shallow(p) for p in rules):
                raise GrammarError(
                    f"non-terminal {lhs!r} has no shallow (POS-only) production"
                )

    def choose(self, lhs: str, rng: random.Random, shallow_only: bool) -> Production:
        """Sample a production for ``lhs``."""
        table = self._shallow_choice if shallow_only else self._any_choice
        try:
            return table[lhs].sample(rng)
        except KeyError:
            raise GrammarError(f"unknown non-terminal {lhs!r}") from None

    def tags(self) -> set[str]:
        """Every tag the grammar can emit (non-terminals plus POS)."""
        return self.nonterminals | self.pos_tags
