"""Corpus characteristics: the data behind Figures 6(a) and 6(b)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from ..tree.bracket import format_tree
from ..tree.node import Tree


@dataclass(frozen=True)
class CorpusStats:
    """The Figure 6(a) row for one dataset."""

    file_size_bytes: int    # uncompressed bracketed-ASCII size
    tree_count: int
    tree_nodes: int         # element nodes (the paper's "Tree Nodes")
    word_count: int
    unique_tags: int
    max_depth: int

    def file_size_kb(self) -> int:
        return round(self.file_size_bytes / 1024)


def corpus_stats(trees: Sequence[Tree]) -> CorpusStats:
    """Compute dataset characteristics (Figure 6(a))."""
    file_size = 0
    node_count = 0
    word_count = 0
    tags: set[str] = set()
    max_depth = 0
    for tree in trees:
        file_size += len(format_tree(tree, wrap=True)) + 1  # newline
        node_count += len(tree.nodes)
        for node in tree.nodes:
            tags.add(node.label)
            if node.depth > max_depth:
                max_depth = node.depth
            if "lex" in node.attributes:
                word_count += 1
    return CorpusStats(
        file_size_bytes=file_size,
        tree_count=len(trees),
        tree_nodes=node_count,
        word_count=word_count,
        unique_tags=len(tags),
        max_depth=max_depth,
    )


def tag_frequencies(trees: Sequence[Tree]) -> Counter:
    """Occurrences of every tag (element nodes only)."""
    counter: Counter = Counter()
    for tree in trees:
        for node in tree.nodes:
            counter[node.label] += 1
    return counter


def top_tags(trees: Sequence[Tree], n: int = 10) -> list[tuple[str, int]]:
    """The Figure 6(b) list: the ``n`` most frequent tags."""
    return tag_frequencies(trees).most_common(n)


def format_stats_table(rows: dict[str, CorpusStats]) -> str:
    """Render a Figure 6(a)-style table for several datasets."""
    names = list(rows)
    lines = ["%-16s" % "" + "".join(f"{name:>14}" for name in names)]
    fields = [
        ("File Size", lambda s: f"{s.file_size_kb()}kB"),
        ("Trees", lambda s: str(s.tree_count)),
        ("Tree Nodes", lambda s: str(s.tree_nodes)),
        ("Words", lambda s: str(s.word_count)),
        ("Unique Tags", lambda s: str(s.unique_tags)),
        ("Maximum Depth", lambda s: str(s.max_depth)),
    ]
    for label, fetch in fields:
        lines.append("%-16s" % label + "".join(f"{fetch(rows[name]):>14}" for name in names))
    return "\n".join(lines)


def format_top_tags_table(rows: dict[str, Sequence[tuple[str, int]]]) -> str:
    """Render a Figure 6(b)-style table (rank, tag, frequency per dataset)."""
    names = list(rows)
    depth = max(len(tags) for tags in rows.values())
    header = "%-5s" % "#" + "".join(f"{name + ' tag':>16}{'freq':>9}" for name in names)
    lines = [header]
    for rank in range(depth):
        cells = ["%-5d" % (rank + 1)]
        for name in names:
            tags = rows[name]
            if rank < len(tags):
                tag, frequency = tags[rank]
                cells.append(f"{tag:>16}{frequency:>9}")
            else:
                cells.append(f"{'':>16}{'':>9}")
        lines.append("".join(cells))
    return "\n".join(lines)
