"""The CorpusSearch engine: unindexed per-tree scans."""

from __future__ import annotations

from typing import Sequence, Union

from ...tree.node import Tree
from ..tgrep2.matcher import TTree
from .ast import QueryExpr
from .matcher import TreeEvaluator
from .parser import parse_query

Query = Union[str, QueryExpr]


class CorpusSearchEngine:
    """Search a corpus with CorpusSearch-style queries.

    Unlike TGrep2 there is no corpus index: every query visits every tree
    (CorpusSearch streams its input files), which is the behaviour the
    paper's Figures 7-9 measure.
    """

    def __init__(self, trees: Sequence[Tree]) -> None:
        self.trees = [TTree(tree) for tree in trees]

    def query(self, query: Query) -> list[tuple[int, int]]:
        """Distinct, sorted ``(tid, node_id)`` of the first pattern's matches."""
        expr = parse_query(query) if isinstance(query, str) else query
        results: set[tuple[int, int]] = set()
        for view in self.trees:
            for node in TreeEvaluator(view, expr).matches():
                results.add((view.tid, node.node_id))
        return sorted(results)

    def count(self, query: Query) -> int:
        """Number of distinct matches."""
        return len(self.query(query))
