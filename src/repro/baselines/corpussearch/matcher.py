"""CorpusSearch evaluation: per-tree scans with pattern coreference.

CorpusSearch walks every tree and tests the boolean search condition for
each combination of nodes matching the query's patterns — no labeling
scheme, no indexes.  That per-node scan strategy is why the paper measures
it as the slowest system; we keep it, with the one pragmatic improvement
of pruning a candidate combination as soon as a fully-bound conjunct
fails.

Semantics:

* identical pattern texts corefer (bind to the same node);
* patterns that occur only under ``NOT`` are not enumerated; a negated
  condition with unbound patterns is an existential check, negated;
* the reported matches are the bindings of the first-mentioned pattern.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Iterator, Optional

from ..tgrep2.matcher import TNode, TTree
from .ast import AndExpr, Condition, NotExpr, OrExpr, QueryExpr

Bindings = dict[str, TNode]


@lru_cache(maxsize=512)
def _pattern_regex(pattern: str) -> re.Pattern:
    return re.compile(re.escape(pattern).replace(r"\*", ".*") + r"\Z")


def pattern_matches(pattern: str, label: str) -> bool:
    """Tag-pattern match with ``*`` wildcards (``NP*`` matches ``NP-SBJ``)."""
    if "*" not in pattern:
        return pattern == label
    return _pattern_regex(pattern).match(label) is not None


def check_relation(x: TNode, relation: str, y: TNode) -> bool:
    """One CorpusSearch relation between two bound nodes."""
    if relation == "iDoms":
        return y.parent is x
    if relation == "Doms":
        ancestor = y.parent
        while ancestor is not None:
            if ancestor is x:
                return True
            ancestor = ancestor.parent
        return False
    if relation == "iPrecedes":
        return x.right == y.left
    if relation == "Precedes":
        return y.left >= x.right
    if relation == "iDomsFirst":
        return y.parent is x and y.index_in_parent == 0
    if relation == "iDomsLast":
        return y.parent is x and y.index_in_parent == len(x.children) - 1
    if relation == "iDomsOnly":
        return y.parent is x and len(x.children) == 1
    if relation == "domsFirst":
        return check_relation(x, "Doms", y) and y.left == x.left
    if relation == "domsLast":
        return check_relation(x, "Doms", y) and y.right == x.right
    if relation == "hasSister":
        return x is not y and x.parent is not None and x.parent is y.parent
    raise ValueError(f"unknown relation {relation!r}")


def collect_conditions(expr: QueryExpr) -> Iterator[tuple[Condition, bool]]:
    """Yield every condition with whether it sits under an odd number of NOTs."""

    def walk(node: QueryExpr, negated: bool) -> Iterator[tuple[Condition, bool]]:
        if isinstance(node, Condition):
            yield node, negated
        elif isinstance(node, NotExpr):
            yield from walk(node.part, not negated)
        elif isinstance(node, (AndExpr, OrExpr)):
            for part in node.parts:
                yield from walk(part, negated)
        else:  # pragma: no cover
            raise TypeError(f"unexpected node {node!r}")

    yield from walk(expr, False)


def positive_variables(expr: QueryExpr) -> list[str]:
    """Variables mentioned outside negation, in order of first mention."""
    seen: list[str] = []
    for condition, negated in collect_conditions(expr):
        if negated:
            continue
        for variable in (condition.left_variable, condition.right_variable):
            if variable not in seen:
                seen.append(variable)
    if not seen:
        # Fully negated query: search from the first-mentioned variable.
        for condition, _negated in collect_conditions(expr):
            seen.append(condition.left_variable)
            break
    return seen


def variable_patterns(expr: QueryExpr) -> dict[str, list[str]]:
    """Every pattern each variable must match (usually one)."""
    patterns: dict[str, list[str]] = {}
    for condition, _negated in collect_conditions(expr):
        for variable, pattern in (
            (condition.left_variable, condition.left_pattern),
            (condition.right_variable, condition.right_pattern),
        ):
            bucket = patterns.setdefault(variable, [])
            if pattern not in bucket:
                bucket.append(pattern)
    return patterns


class TreeEvaluator:
    """Evaluate one query over one tree by candidate enumeration."""

    def __init__(self, tree: TTree, expr: QueryExpr) -> None:
        self.tree = tree
        self.expr = expr
        self.variables = positive_variables(expr)
        self.patterns = variable_patterns(expr)
        self.conjuncts = [
            (condition, negated)
            for condition, negated in collect_conditions(expr)
            if _is_required(expr, condition)
        ]

    def matches(self) -> Iterator[TNode]:
        """Bindings of the first-mentioned pattern that satisfy the query."""
        if not self.variables:
            return
        produced: set[int] = set()
        for bindings in self._enumerate(0, {}):
            target = bindings[self.variables[0]]
            if id(target) in produced:
                continue
            produced.add(id(target))
            yield target

    # -- enumeration ---------------------------------------------------------

    def _candidates(self, variable: str) -> list[TNode]:
        patterns = self.patterns.get(variable, [variable])
        return [
            node
            for node in self.tree.nodes
            if all(pattern_matches(pattern, node.label) for pattern in patterns)
        ]

    def _enumerate(self, position: int, bindings: Bindings) -> Iterator[Bindings]:
        if position == len(self.variables):
            if self._evaluate(self.expr, bindings):
                yield dict(bindings)
            return
        variable = self.variables[position]
        for node in self._candidates(variable):
            bindings[variable] = node
            if self._prune_ok(bindings):
                yield from self._enumerate(position + 1, bindings)
        bindings.pop(variable, None)

    def _prune_ok(self, bindings: Bindings) -> bool:
        """Check every required conjunct whose patterns are all bound."""
        for condition, negated in self.conjuncts:
            x = bindings.get(condition.left_variable)
            y = bindings.get(condition.right_variable)
            if x is None or y is None:
                continue
            holds = check_relation(x, condition.relation, y)
            if holds == negated:
                return False
        return True

    # -- boolean evaluation ------------------------------------------------------

    def _evaluate(self, expr: QueryExpr, bindings: Bindings) -> bool:
        if isinstance(expr, Condition):
            return self._condition(expr, bindings)
        if isinstance(expr, AndExpr):
            return all(self._evaluate(part, bindings) for part in expr.parts)
        if isinstance(expr, OrExpr):
            return any(self._evaluate(part, bindings) for part in expr.parts)
        if isinstance(expr, NotExpr):
            return not self._evaluate(expr.part, bindings)
        raise TypeError(f"unexpected node {expr!r}")  # pragma: no cover

    def _condition(self, condition: Condition, bindings: Bindings) -> bool:
        x = bindings.get(condition.left_variable)
        y = bindings.get(condition.right_variable)
        if x is not None and y is not None:
            return check_relation(x, condition.relation, y)
        if x is not None:
            return any(
                check_relation(x, condition.relation, node)
                for node in self._candidates(condition.right_variable)
            )
        if y is not None:
            return any(
                check_relation(node, condition.relation, y)
                for node in self._candidates(condition.left_variable)
            )
        return any(
            check_relation(x_node, condition.relation, y_node)
            for x_node in self._candidates(condition.left_variable)
            for y_node in self._candidates(condition.right_variable)
        )


def _is_required(expr: QueryExpr, condition: Condition) -> bool:
    """True when the condition is a positive conjunct on every path (safe to
    use for pruning)."""

    def walk(node: QueryExpr) -> Optional[bool]:
        if node is condition:
            return True
        if isinstance(node, AndExpr):
            return any(walk(part) for part in node.parts)
        return False

    return bool(walk(expr)) or expr is condition
