"""Parser for the CorpusSearch query dialect."""

from __future__ import annotations

import re

from .ast import AndExpr, Condition, NotExpr, OrExpr, QueryExpr, RELATION_LOOKUP


class CorpusSearchSyntaxError(ValueError):
    """Raised for malformed queries."""


_TOKEN = re.compile(r"\(|\)|[^\s()]+")


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _TOKEN.findall(text)
        self.index = 0

    def peek(self, offset: int = 0) -> str:
        position = self.index + offset
        return self.tokens[position] if position < len(self.tokens) else ""

    def advance(self) -> str:
        token = self.peek()
        if token:
            self.index += 1
        return token

    def fail(self, message: str) -> None:
        raise CorpusSearchSyntaxError(f"{message} in query {self.text!r}")

    def parse(self) -> QueryExpr:
        expr = self.parse_or()
        if self.peek():
            self.fail(f"unexpected trailing {self.peek()!r}")
        return expr

    def parse_or(self) -> QueryExpr:
        parts = [self.parse_and()]
        while self.peek().upper() == "OR":
            self.advance()
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else OrExpr(tuple(parts))

    def parse_and(self) -> QueryExpr:
        parts = [self.parse_unary()]
        while self.peek().upper() == "AND":
            self.advance()
            parts.append(self.parse_unary())
        return parts[0] if len(parts) == 1 else AndExpr(tuple(parts))

    def parse_unary(self) -> QueryExpr:
        token = self.peek()
        if token.upper() == "NOT":
            self.advance()
            return NotExpr(self.parse_unary())
        if token == "(":
            # Either a condition "(A rel B)" or a grouped expression.
            if self.peek(2).lower() in RELATION_LOOKUP:
                return self.parse_condition()
            self.advance()
            inner = self.parse_or()
            if self.advance() != ")":
                self.fail("expected ')'")
            return inner
        self.fail(f"expected '(' or NOT but found {token or 'end of query'!r}")
        raise AssertionError("unreachable")

    def parse_condition(self) -> Condition:
        if self.advance() != "(":
            self.fail("expected '('")
        left = self.advance()
        relation_token = self.advance()
        relation = RELATION_LOOKUP.get(relation_token.lower())
        if relation is None:
            self.fail(f"unknown relation {relation_token!r}")
        right = self.advance()
        if not left or not right:
            self.fail("a condition needs two arguments")
        if self.advance() != ")":
            self.fail("expected ')' after condition")
        return Condition(left, relation, right)


def parse_query(text: str) -> QueryExpr:
    """Parse a CorpusSearch query."""
    return _Parser(text).parse()
