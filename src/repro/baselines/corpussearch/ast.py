"""Query AST for the CorpusSearch reimplementation.

A query is a boolean combination of binary conditions between *tag
patterns* (literals with ``*`` wildcards).  As in CorpusSearch, identical
pattern texts corefer: every occurrence of ``NP*`` denotes the same node
within one match, and the first-mentioned pattern is the search target
whose matches are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Relation names (case-insensitive in queries).  ``domsFirst`` and
#: ``domsLast`` are our documented extensions for edge-aligned descendants;
#: everything else follows the CorpusSearch manual.
RELATIONS = (
    "iDoms",
    "Doms",
    "iPrecedes",
    "Precedes",
    "iDomsFirst",
    "iDomsLast",
    "iDomsOnly",
    "domsFirst",
    "domsLast",
    "hasSister",
)
RELATION_LOOKUP = {name.lower(): name for name in RELATIONS}


class QueryExpr:
    """Base class of query expressions."""


def split_argument(argument: str) -> tuple[str, str]:
    """Split ``var:pattern`` into (variable, pattern).

    Without an explicit variable the pattern text itself is the variable,
    which gives CorpusSearch's text-coreference behaviour; explicit
    variables (``a:NP``) let a query mention the same tag twice without
    coreference (needed for chain queries like Q18/Q19).
    """
    if ":" in argument:
        variable, pattern = argument.split(":", 1)
        if variable and pattern:
            return variable, pattern
    return argument, argument


@dataclass(frozen=True)
class Condition(QueryExpr):
    """``(left REL right)`` where each side is ``[var:]pattern``."""

    left: str
    relation: str
    right: str

    @property
    def left_variable(self) -> str:
        return split_argument(self.left)[0]

    @property
    def left_pattern(self) -> str:
        return split_argument(self.left)[1]

    @property
    def right_variable(self) -> str:
        return split_argument(self.right)[0]

    @property
    def right_pattern(self) -> str:
        return split_argument(self.right)[1]

    def __str__(self) -> str:
        return f"({self.left} {self.relation} {self.right})"


@dataclass(frozen=True)
class AndExpr(QueryExpr):
    parts: tuple[QueryExpr, ...]

    def __str__(self) -> str:
        return " AND ".join(f"{part}" for part in self.parts)


@dataclass(frozen=True)
class OrExpr(QueryExpr):
    parts: tuple[QueryExpr, ...]

    def __str__(self) -> str:
        return "(" + " OR ".join(f"{part}" for part in self.parts) + ")"


@dataclass(frozen=True)
class NotExpr(QueryExpr):
    part: QueryExpr

    def __str__(self) -> str:
        return f"NOT ({self.part})"
