"""CorpusSearch reimplementation (the paper's second comparator, [24])."""

from .ast import AndExpr, Condition, NotExpr, OrExpr, RELATIONS
from .engine import CorpusSearchEngine
from .matcher import TreeEvaluator, check_relation, pattern_matches
from .parser import CorpusSearchSyntaxError, parse_query

__all__ = [
    "AndExpr",
    "Condition",
    "CorpusSearchEngine",
    "CorpusSearchSyntaxError",
    "NotExpr",
    "OrExpr",
    "RELATIONS",
    "TreeEvaluator",
    "check_relation",
    "parse_query",
    "pattern_matches",
]
