"""Reimplementations of the paper's comparison systems."""

from .corpussearch import CorpusSearchEngine
from .tgrep2 import TGrep2Engine

__all__ = ["CorpusSearchEngine", "TGrep2Engine"]
