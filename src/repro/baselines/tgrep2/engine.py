"""The TGrep2 engine: compiled corpus + word index + pattern search."""

from __future__ import annotations

from typing import Sequence, Union

from ...tree.node import Tree
from .ast import Pattern
from .matcher import Matcher, TTree
from .parser import parse_pattern


class TGrep2Engine:
    """Search a corpus with TGrep2 patterns.

    Mirrors the tool's architecture: the constructor "compiles" the corpus
    (tree views plus *an index on the words in the trees* — the paper's
    Section 6 description).  Word-headed patterns (e.g. ``rapprochement``)
    prune to the trees containing the word; tag-headed patterns scan every
    tree with the backtracking matcher, which is why the tool's measured
    times are flat across tag selectivities in Figures 7-9.
    """

    def __init__(self, trees: Sequence[Tree]) -> None:
        self.trees = [TTree(tree) for tree in trees]
        # Word index: leaf word -> positions of trees containing it.
        self.word_index: dict[str, list[int]] = {}
        self.tag_labels: set[str] = set()
        for position, view in enumerate(self.trees):
            seen: set[str] = set()
            for node in view.nodes:
                if node.is_word:
                    if node.label not in seen:
                        seen.add(node.label)
                        self.word_index.setdefault(node.label, []).append(position)
                else:
                    self.tag_labels.add(node.label)

    def query(self, query) -> list[tuple[int, int]]:
        """Distinct, sorted ``(tid, node_id)`` pairs of matched head nodes."""
        pattern = parse_pattern(query) if isinstance(query, str) else query
        results: set[tuple[int, int]] = set()
        for view in self._candidate_trees(pattern):
            matcher = Matcher(view)
            for node in matcher.match_heads(pattern):
                results.add((view.tid, node.node_id))
        return sorted(results)

    def count(self, query) -> int:
        """Number of distinct matched nodes."""
        return len(self.query(query))

    def _candidate_trees(self, pattern: Pattern) -> list[TTree]:
        """Prune by the word index when the head matches only words."""
        spec = pattern.spec
        if spec.is_wildcard or spec.backreference is not None:
            return self.trees
        if any(name in self.tag_labels for name in spec.alternatives):
            return self.trees  # tag-headed: no index, full scan
        positions: set[int] = set()
        for name in spec.alternatives:
            positions.update(self.word_index.get(name, ()))
        return [self.trees[position] for position in sorted(positions)]
