"""Parser for the TGrep2 pattern dialect.

Dialect notes (a practical subset of the TGrep2 manual):

* relation operators (``< > << >> . , .. ,, $ $. $, $.. $,, <: <N >N <- >-``)
  must be separated from node names by whitespace or parentheses when the
  adjacent name could absorb them (names may contain ``.``, ``,``, ``$``
  and ``-``, as Penn tags and words do);
* ``A|B`` alternation on node names; ``__`` matches any node;
* ``=name`` after a node spec labels it; a bare ``=name`` target is a
  back-reference to the labelled node;
* ``!`` negates the following link; ``[ ... ]`` groups conjoined links.
"""

from __future__ import annotations

from typing import Optional

from .ast import Link, NodeSpec, Pattern


class TGrepSyntaxError(ValueError):
    """Raised for malformed patterns."""

    def __init__(self, message: str, pattern: str, position: int) -> None:
        pointer = " " * position + "^"
        super().__init__(f"{message}\n  {pattern}\n  {pointer}")
        self.position = position


_SPECIALS = set("()[]!=|&")
_RELATION_START = set("<>.,$")
#: Longest first, for maximal munch.
_RELATIONS = (
    "$..", "$,,", "$.", "$,", "<<", ">>", "..", ",,",
    "<:", "<-", ">-", "<", ">", ".", ",", "$",
)


class _Lexer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0
        self.tokens: list[tuple[str, str, int]] = []
        self._scan()
        self.index = 0

    def _scan(self) -> None:
        text, position = self.text, 0
        while position < len(text):
            char = text[position]
            if char.isspace():
                position += 1
                continue
            if char in "()[]!|&":
                self.tokens.append((char, char, position))
                position += 1
                continue
            if char == "=":
                start = position + 1
                end = start
                while end < len(text) and (text[end].isalnum() or text[end] == "_"):
                    end += 1
                if end == start:
                    raise TGrepSyntaxError("expected a label after '='", text, position)
                self.tokens.append(("LABEL", text[start:end], position))
                position = end
                continue
            if char in _RELATION_START:
                relation, advance = self._relation(position)
                self.tokens.append(("REL", relation, position))
                position += advance
                continue
            start = position
            while position < len(text) and not text[position].isspace() and \
                    text[position] not in _SPECIALS and text[position] not in "<>":
                position += 1
            if position == start:
                raise TGrepSyntaxError(f"unexpected character {char!r}", text, position)
            self.tokens.append(("NAME", text[start:position], start))
        self.tokens.append(("EOF", "", len(text)))

    def _relation(self, position: int) -> tuple[str, int]:
        text = self.text
        # <N / >N / <-N / >-N (numbered child relations).
        for head in ("<-", ">-", "<", ">"):
            if text.startswith(head, position):
                digits_at = position + len(head)
                end = digits_at
                while end < len(text) and text[end].isdigit():
                    end += 1
                if end > digits_at:
                    return text[position:end], end - position
        for relation in _RELATIONS:
            if text.startswith(relation, position):
                return relation, len(relation)
        raise TGrepSyntaxError(
            f"unknown relation at {text[position:position + 3]!r}", text, position
        )

    def peek(self) -> tuple[str, str, int]:
        return self.tokens[self.index]

    def advance(self) -> tuple[str, str, int]:
        token = self.tokens[self.index]
        if token[0] != "EOF":
            self.index += 1
        return token


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.lexer = _Lexer(text)

    def fail(self, message: str) -> None:
        raise TGrepSyntaxError(message, self.text, self.lexer.peek()[2])

    def parse(self) -> Pattern:
        pattern = self.parse_pattern()
        if self.lexer.peek()[0] != "EOF":
            self.fail(f"unexpected trailing {self.lexer.peek()[1]!r}")
        return pattern

    def parse_pattern(self) -> Pattern:
        spec = self.parse_spec()
        links: list[Link] = []
        while True:
            kind, _text, _pos = self.lexer.peek()
            if kind in ("REL", "!"):
                links.append(self.parse_link())
            elif kind == "[":
                self.lexer.advance()
                while self.lexer.peek()[0] != "]":
                    if self.lexer.peek()[0] == "&":
                        self.lexer.advance()
                        continue
                    links.append(self.parse_link())
                self.lexer.advance()
            else:
                break
        return Pattern(spec, tuple(links))

    def parse_spec(self) -> NodeSpec:
        kind, text, _pos = self.lexer.peek()
        if kind == "LABEL":
            self.lexer.advance()
            return NodeSpec((), backreference=text)
        if kind != "NAME":
            self.fail(f"expected a node name but found {text or 'end of pattern'!r}")
        self.lexer.advance()
        alternatives = [text]
        while self.lexer.peek()[0] == "|":
            self.lexer.advance()
            kind, more, _pos = self.lexer.advance()
            if kind != "NAME":
                self.fail("expected a name after '|'")
            alternatives.append(more)
        label = None
        if self.lexer.peek()[0] == "LABEL":
            label = self.lexer.advance()[1]
        return NodeSpec(tuple(alternatives), label=label)

    def parse_link(self) -> Link:
        negated = False
        if self.lexer.peek()[0] == "!":
            self.lexer.advance()
            negated = True
        kind, relation, _pos = self.lexer.advance()
        if kind != "REL":
            self.fail(f"expected a relation but found {relation!r}")
        relation, argument = _split_relation(relation)
        target = self.parse_target()
        return Link(relation, target, negated=negated, argument=argument)

    def parse_target(self) -> Pattern:
        kind, text, _pos = self.lexer.peek()
        if kind == "(":
            self.lexer.advance()
            pattern = self.parse_pattern()
            if self.lexer.peek()[0] != ")":
                self.fail("expected ')'")
            self.lexer.advance()
            return pattern
        if kind in ("NAME", "LABEL"):
            return Pattern(self.parse_spec())
        self.fail(f"expected a target but found {text or 'end of pattern'!r}")
        raise AssertionError("unreachable")


def _split_relation(text: str) -> tuple[str, Optional[int]]:
    """Normalize <N / >N / <- / >- / <-N / >-N into (relation, argument)."""
    if text in ("<-", ">-"):
        return text[0] + "N", -1
    if len(text) > 1 and text[0] in "<>":
        rest = text[1:]
        if rest.isdigit():
            return text[0] + "N", int(rest)
        if rest.startswith("-") and rest[1:].isdigit():
            return text[0] + "N", -int(rest[1:])
    return text, None


def parse_pattern(text: str) -> Pattern:
    """Parse a TGrep2 pattern."""
    return _Parser(text).parse()
