"""TGrep2 corpus view and backtracking matcher.

TGrep2's data model makes words real leaf nodes (children of their POS
tag).  The corpus view materializes that: every ``@lex`` attribute becomes
a word leaf.  Word leaves report the owning pre-terminal's ``node_id`` so
result counts line up with the label-relation engines.

Matching follows the tool's strategy: for each candidate head node, check
the links by scanning the tree with backtracking — no label scheme, no
join planning.  A word/tag index over the corpus (TGrep2 builds one in its
compiled corpus file) accelerates head-candidate retrieval.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ...tree.node import Tree, TreeNode
from .ast import Link, NodeSpec, Pattern


class TNode:
    """A node of the TGrep2 view of a tree."""

    __slots__ = ("label", "children", "parent", "left", "right",
                 "index_in_parent", "node_id", "is_word")

    def __init__(self, label: str, node_id: int, is_word: bool = False) -> None:
        self.label = label
        self.children: list[TNode] = []
        self.parent: Optional[TNode] = None
        self.left = 0
        self.right = 0
        self.index_in_parent = -1
        self.node_id = node_id
        self.is_word = is_word

    def descendants(self) -> Iterator["TNode"]:
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TNode {self.label}>"


class TTree:
    """One tree in the corpus view, with the orderings the matcher needs."""

    def __init__(self, tree: Tree) -> None:
        self.tid = tree.tid
        self.root = self._convert(tree.root)
        self.nodes: list[TNode] = [self.root, *self.root.descendants()]
        self._assign_spans()
        self.by_left: dict[int, list[TNode]] = {}
        self.by_right: dict[int, list[TNode]] = {}
        for node in self.nodes:
            self.by_left.setdefault(node.left, []).append(node)
            self.by_right.setdefault(node.right, []).append(node)

    def _convert(self, source: TreeNode) -> TNode:
        node = TNode(source.label, source.node_id)
        for child in source.children:
            converted = self._convert(child)
            converted.parent = node
            converted.index_in_parent = len(node.children)
            node.children.append(converted)
        word = source.attributes.get("lex")
        if word is not None:
            leaf = TNode(word, source.node_id, is_word=True)
            leaf.parent = node
            leaf.index_in_parent = len(node.children)
            node.children.append(leaf)
        return node

    def _assign_spans(self) -> None:
        next_left = 1

        def visit(node: TNode) -> None:
            nonlocal next_left
            if not node.children:
                node.left = next_left
                node.right = next_left + 1
                next_left += 1
                return
            for child in node.children:
                visit(child)
            node.left = node.children[0].left
            node.right = node.children[-1].right

        visit(self.root)


Bindings = dict[str, TNode]


class Matcher:
    """Backtracking evaluation of one pattern over one tree."""

    def __init__(self, tree: TTree) -> None:
        self.tree = tree

    def match_heads(self, pattern: Pattern) -> Iterator[TNode]:
        """Nodes of the tree at which the whole pattern matches."""
        for node in self.tree.nodes:
            if pattern.spec.matches_name(node.label):
                bindings: Bindings = {}
                if self._match_at(node, pattern, bindings):
                    yield node

    def match_at(self, node: TNode, pattern: Pattern) -> bool:
        """Does the pattern match with its head at ``node``?"""
        return self._match_at(node, pattern, {})

    # -- internals -----------------------------------------------------------

    def _match_at(self, node: TNode, pattern: Pattern, bindings: Bindings) -> bool:
        spec = pattern.spec
        if spec.backreference is not None:
            bound = bindings.get(spec.backreference)
            if bound is None or bound is not node:
                return False
        elif not spec.matches_name(node.label):
            return False
        if spec.label is not None:
            previous = bindings.get(spec.label)
            if previous is not None and previous is not node:
                return False
            bindings[spec.label] = node
        for link in pattern.links:
            if not self._match_link(node, link, bindings):
                if spec.label is not None:
                    bindings.pop(spec.label, None)
                return False
        return True

    def _match_link(self, node: TNode, link: Link, bindings: Bindings) -> bool:
        found = False
        for candidate in self._candidates(node, link):
            if self._match_at(candidate, link.target, bindings):
                found = True
                break
        return not found if link.negated else found

    def _candidates(self, node: TNode, link: Link) -> Iterator[TNode]:
        relation, argument = link.relation, link.argument
        tree = self.tree
        if relation == "<":
            yield from node.children
        elif relation == ">":
            if node.parent is not None:
                yield node.parent
        elif relation == "<<":
            yield from node.descendants()
        elif relation == ">>":
            ancestor = node.parent
            while ancestor is not None:
                yield ancestor
                ancestor = ancestor.parent
        elif relation == "<N":
            child = _nth(node.children, argument)
            if child is not None:
                yield child
        elif relation == ">N":
            parent = node.parent
            if parent is not None and _nth(parent.children, argument) is node:
                yield parent
        elif relation == "<:":
            if len(node.children) == 1:
                yield node.children[0]
        elif relation == ".":
            yield from tree.by_left.get(node.right, ())
        elif relation == ",":
            yield from tree.by_right.get(node.left, ())
        elif relation == "..":
            for candidate in tree.nodes:
                if candidate.left >= node.right:
                    yield candidate
        elif relation == ",,":
            for candidate in tree.nodes:
                if candidate.right <= node.left:
                    yield candidate
        elif relation in ("$", "$.", "$,", "$..", "$,,"):
            parent = node.parent
            if parent is None:
                return
            for sibling in parent.children:
                if sibling is node:
                    continue
                if relation == "$":
                    yield sibling
                elif relation == "$." and sibling.left == node.right:
                    yield sibling
                elif relation == "$," and sibling.right == node.left:
                    yield sibling
                elif relation == "$.." and sibling.left >= node.right:
                    yield sibling
                elif relation == "$,," and sibling.right <= node.left:
                    yield sibling
        else:  # pragma: no cover - parser restricts relations
            raise ValueError(f"unknown relation {relation!r}")


def _nth(children: list[TNode], argument: Optional[int]) -> Optional[TNode]:
    if argument is None or argument == 0:
        return None
    index = argument - 1 if argument > 0 else argument
    try:
        return children[index]
    except IndexError:
        return None
