"""TGrep2 reimplementation (the paper's first comparator, [25])."""

from .ast import Link, NodeSpec, Pattern
from .engine import TGrep2Engine
from .matcher import Matcher, TTree
from .parser import TGrepSyntaxError, parse_pattern

__all__ = [
    "Link",
    "Matcher",
    "NodeSpec",
    "Pattern",
    "TGrep2Engine",
    "TGrepSyntaxError",
    "TTree",
    "parse_pattern",
]
