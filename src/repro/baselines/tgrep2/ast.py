"""Pattern AST for the TGrep2 reimplementation.

A pattern is a head node specification plus a list of links; each link
relates the head to a target (which may itself be a full pattern), possibly
negated.  Node specifications are tag/word literals, alternations, the
``__`` wildcard, or back-references to labelled nodes (``=name``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

WILDCARD = "__"


@dataclass(frozen=True)
class NodeSpec:
    """What a pattern node matches: one of ``alternatives`` (or anything)."""

    alternatives: tuple[str, ...]
    label: Optional[str] = None        # `=name` binding
    backreference: Optional[str] = None  # pure `=name` target

    @property
    def is_wildcard(self) -> bool:
        return self.alternatives == (WILDCARD,)

    def matches_name(self, name: str) -> bool:
        return self.is_wildcard or name in self.alternatives

    def __str__(self) -> str:
        if self.backreference:
            return f"={self.backreference}"
        body = "|".join(self.alternatives)
        return body + (f"={self.label}" if self.label else "")


@dataclass(frozen=True)
class Link:
    """One relation from the current node to a target pattern."""

    relation: str            # "<", ">", "<<", ">>", ".", ",", "..", ",,",
                             # "$", "$.", "$,", "$..", "$,,", "<:", "<N", ">N"
    target: "Pattern"
    negated: bool = False
    argument: Optional[int] = None  # the N of <N / >N (negative = from right)

    def __str__(self) -> str:
        bang = "!" if self.negated else ""
        relation = self.relation
        if self.argument is not None:
            relation = relation[0] + str(self.argument)
        return f"{bang}{relation} {self.target}"


@dataclass(frozen=True)
class Pattern:
    """A node spec plus its links (implicitly conjoined)."""

    spec: NodeSpec
    links: tuple[Link, ...] = ()

    def __str__(self) -> str:
        if not self.links:
            return str(self.spec)
        body = " ".join(str(link) for link in self.links)
        return f"({self.spec} {body})"
