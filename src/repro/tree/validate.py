"""Structural validation of trees and of their Definition 4.1 spans."""

from __future__ import annotations

from .node import Tree, TreeError, TreeNode


def validate_structure(tree: Tree) -> None:
    """Check parent/child pointer consistency; raise :class:`TreeError`."""
    seen: set[int] = set()
    for node in tree.root.preorder():
        if id(node) in seen:
            raise TreeError("node appears twice in the tree (cycle or shared child)")
        seen.add(id(node))
        for position, child in enumerate(node.children):
            if child.parent is not node:
                raise TreeError(
                    f"child {child.label!r} of {node.label!r} has a stale parent pointer"
                )
            if child.index_in_parent != position:
                raise TreeError(
                    f"child {child.label!r} of {node.label!r} has a stale sibling index"
                )
    if tree.root.parent is not None:
        raise TreeError("root must not have a parent")


def validate_spans(tree: Tree) -> None:
    """Check the Definition 4.1 interval invariants; raise :class:`TreeError`.

    * leaves tile ``[1, n+1)`` with ``right = left + 1``;
    * every non-terminal spans exactly its children, which tile its interval;
    * ``depth`` increases by one per level, root depth is 1;
    * identifiers are unique and nonzero.
    """
    ids: set[int] = set()
    expected_left = 1
    for leaf in tree.leaves():
        if leaf.left != expected_left or leaf.right != leaf.left + 1:
            raise TreeError(
                f"leaf {leaf.label!r} has span [{leaf.left},{leaf.right}], "
                f"expected [{expected_left},{expected_left + 1}]"
            )
        expected_left = leaf.right
    for node in tree.nodes:
        if node.node_id == 0:
            raise TreeError(f"node {node.label!r} has a zero identifier")
        if node.node_id in ids:
            raise TreeError(f"duplicate node identifier {node.node_id}")
        ids.add(node.node_id)
        expected_depth = 1 if node.parent is None else node.parent.depth + 1
        if node.depth != expected_depth:
            raise TreeError(
                f"node {node.label!r} has depth {node.depth}, expected {expected_depth}"
            )
        if node.children:
            if node.left != node.children[0].left or node.right != node.children[-1].right:
                raise TreeError(
                    f"node {node.label!r} span [{node.left},{node.right}] does not "
                    "cover its children"
                )
            for before, after in zip(node.children, node.children[1:]):
                if before.right != after.left:
                    raise TreeError(
                        f"children of {node.label!r} do not tile its interval: "
                        f"[{before.left},{before.right}] then [{after.left},{after.right}]"
                    )
        if node.left >= node.right:
            raise TreeError(
                f"node {node.label!r} has an empty span [{node.left},{node.right}]"
            )


def validate(tree: Tree) -> None:
    """Run all validations."""
    validate_structure(tree)
    validate_spans(tree)
