"""Convenience constructors for trees, including the paper's Figure 1 tree."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from .node import Tree, TreeNode

Spec = Union[str, tuple]


def node(label: str, *children: TreeNode, lex: Optional[str] = None,
         attributes: Optional[Mapping[str, str]] = None) -> TreeNode:
    """Build a :class:`TreeNode` with optional ``@lex`` shorthand."""
    attrs = dict(attributes or {})
    if lex is not None:
        attrs["lex"] = lex
    return TreeNode(label, children=list(children), attributes=attrs)


def from_spec(spec: Spec) -> TreeNode:
    """Build a node from a nested-tuple spec.

    ``("NP", ("Det", "the"), ("N", "dog"))`` — a string in child position is
    the terminal word of its parent (stored as ``@lex``).
    """
    if isinstance(spec, str):
        raise TypeError("a bare string is a word, not a tree spec")
    label, *rest = spec
    if len(rest) == 1 and isinstance(rest[0], str):
        return node(label, lex=rest[0])
    children = [from_spec(child) for child in rest]
    return node(label, *children)


def tree_from_spec(spec: Spec, tid: int = 0) -> Tree:
    """Build a :class:`Tree` from a nested-tuple spec."""
    return Tree(from_spec(spec), tid=tid)


def figure1_tree(tid: int = 0) -> Tree:
    """The running example of the paper (Figure 1).

    The sentence *"I saw the old man with a dog today"* with the analysis::

        (S (NP I)
           (VP (V saw)
               (NP (NP (Det the) (Adj old) (N man))
                   (PP (Prep with) (NP (Det a) (N dog)))))
           (NP (N today)))

    Node identifiers assigned by :meth:`Tree.index` follow document order,
    so they can be compared against the label relation in Figure 5.
    """
    spec = (
        "S",
        ("NP", "I"),
        ("VP",
            ("V", "saw"),
            ("NP",
                ("NP", ("Det", "the"), ("Adj", "old"), ("N", "man")),
                ("PP", ("Prep", "with"), ("NP", ("Det", "a"), ("N", "dog"))))),
        ("NP", ("N", "today")),
    )
    return tree_from_spec(spec, tid=tid)


def sequences(trees: Sequence[Spec], start_tid: int = 0) -> list[Tree]:
    """Build a corpus (list of trees) from specs, assigning sequential tids."""
    return [tree_from_spec(spec, tid=start_tid + offset)
            for offset, spec in enumerate(trees)]
