"""Ordered linguistic trees: data model, bracketed I/O, validation."""

from .node import Tree, TreeError, TreeNode
from .bracket import (
    BracketParseError,
    format_tree,
    iter_trees,
    parse_tree,
    read_trees,
    write_trees,
)
from .builder import figure1_tree, from_spec, node, sequences, tree_from_spec
from .validate import validate, validate_spans, validate_structure

__all__ = [
    "Tree",
    "TreeError",
    "TreeNode",
    "BracketParseError",
    "format_tree",
    "iter_trees",
    "parse_tree",
    "read_trees",
    "write_trees",
    "figure1_tree",
    "from_spec",
    "node",
    "sequences",
    "tree_from_spec",
    "validate",
    "validate_spans",
    "validate_structure",
]
