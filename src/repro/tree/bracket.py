"""Penn-Treebank bracketed notation reader and writer.

Treebank-3 stores one parse per sentence in LISP-style bracketed form::

    ( (S (NP-SBJ (PRP I)) (VP (VBD saw) (NP (DT the) (NN dog))) (. .)) )

Words appear as bare tokens under their pre-terminal.  On parsing we convert
each word into a ``lex`` attribute of its pre-terminal node, matching the
paper's Figure 1 data model where words are ``@lex`` attributes.  The writer
is the exact inverse, so ``parse(write(tree)) == tree``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO

from .node import Tree, TreeError, TreeNode


class BracketParseError(TreeError):
    """Raised when bracketed input is malformed."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


_OPEN = "("
_CLOSE = ")"


def _tokenize(text: str) -> Iterator[tuple[str, int]]:
    """Yield ``(token, offset)`` pairs: parens and whitespace-free atoms."""
    index, length = 0, len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
        elif char in (_OPEN, _CLOSE):
            yield char, index
            index += 1
        else:
            start = index
            while index < length and not text[index].isspace() and text[index] not in (_OPEN, _CLOSE):
                index += 1
            yield text[start:index], start


def parse_tree(text: str, tid: int = 0) -> Tree:
    """Parse a single bracketed tree.

    Accepts both bare trees ``(S ...)`` and the Treebank-3 convention of an
    extra outer wrapper ``( (S ...) )``.
    """
    trees = list(iter_trees(text, start_tid=tid))
    if not trees:
        raise BracketParseError("no tree found in input", 0)
    if len(trees) > 1:
        raise BracketParseError("more than one tree in input; use iter_trees", 0)
    return trees[0]


def iter_trees(text: str, start_tid: int = 0) -> Iterator[Tree]:
    """Parse a sequence of bracketed trees from ``text``.

    Each top-level s-expression becomes one :class:`Tree`.  A top-level
    expression whose head is itself a parenthesis (the Treebank file
    convention ``( (S ...) )``) is unwrapped when it contains exactly one
    subtree; multi-rooted wrappers get a synthetic ``TOP`` node.
    """
    tokens = list(_tokenize(text))
    index = 0
    tid = start_tid

    def parse_node(position: int) -> tuple[TreeNode, int]:
        token, offset = tokens[position]
        if token != _OPEN:
            raise BracketParseError(f"expected '(' but found {token!r}", offset)
        position += 1
        if position >= len(tokens):
            raise BracketParseError("unexpected end of input after '('", offset)
        head, head_offset = tokens[position]
        if head == _CLOSE:
            raise BracketParseError("empty tree '()'", head_offset)
        children: list[TreeNode] = []
        words: list[str] = []
        if head == _OPEN:
            # Unlabeled wrapper: parse children, synthesize a label below.
            label = None
        else:
            label = head
            position += 1
        while position < len(tokens):
            token, offset = tokens[position]
            if token == _CLOSE:
                position += 1
                return _build_node(label, children, words, offset), position
            if token == _OPEN:
                child, position = parse_node(position)
                children.append(child)
            else:
                words.append(token)
                position += 1
        raise BracketParseError("unbalanced parentheses: missing ')'", len(text))

    while index < len(tokens):
        node, index = parse_node(index)
        yield Tree(node, tid=tid)
        tid += 1


def _build_node(
    label: str | None, children: list[TreeNode], words: list[str], offset: int
) -> TreeNode:
    if label is None:
        # Treebank-3 wrapper "( (S ...) )".
        if words:
            raise BracketParseError("words not allowed in an unlabeled wrapper", offset)
        if len(children) == 1:
            return children[0].detach()
        node = TreeNode("TOP")
        for child in children:
            node.append(child.detach() if child.parent else child)
        return node
    if words and children:
        raise BracketParseError(
            f"node {label!r} mixes words and subtrees", offset
        )
    if len(words) > 1:
        raise BracketParseError(
            f"pre-terminal {label!r} has multiple words {words!r}", offset
        )
    if words:
        return TreeNode(label, attributes={"lex": words[0]})
    return TreeNode(label, children)


def format_node(node: TreeNode) -> str:
    """Render one node (recursively) in bracketed notation."""
    if node.is_terminal:
        word = node.word
        if word is None:
            return f"({node.label} )"
        return f"({node.label} {word})"
    inner = " ".join(format_node(child) for child in node.children)
    return f"({node.label} {inner})"


def format_tree(tree: Tree, wrap: bool = False) -> str:
    """Render a tree; ``wrap=True`` adds the Treebank-3 outer parentheses."""
    body = format_node(tree.root)
    return f"( {body} )" if wrap else body


def write_trees(trees: Iterable[Tree], stream: TextIO, wrap: bool = True) -> int:
    """Write trees one per line; returns the number written."""
    count = 0
    for tree in trees:
        stream.write(format_tree(tree, wrap=wrap))
        stream.write("\n")
        count += 1
    return count


def read_trees(stream: TextIO, start_tid: int = 0) -> Iterator[Tree]:
    """Read every tree from a file-like object."""
    yield from iter_trees(stream.read(), start_tid=start_tid)
