"""Naive structural ground truth for every LPath axis.

These functions compute axis relations *directly from the tree structure*
(parent pointers, child lists, leaf order) without using the interval labels
of Definition 4.1.  They serve two purposes:

* reference semantics for the tree-walk evaluator, and
* an independent oracle for property tests of the labeling predicates
  (Table 2): for random trees, ``axis_by_labels(x, y)`` must agree with
  ``axis_by_structure(x, y)``.

Definitions follow Section 2/3 of the paper:

* ``follows(x, y)``: x's first leaf comes after y's last leaf (the XPath
  ``following`` axis restricted to linguistic trees).
* ``immediately_follows(x, y)`` (Definition 3.1): ``follows(x, y)`` and no
  node z exists with ``follows(x, z)`` and ``follows(z, y)``.  By the
  paper's adjacency property this is equivalent to leaf adjacency, which
  :func:`immediately_follows_adjacent` computes; the equivalence is
  property-tested.
"""

from __future__ import annotations

from .node import Tree, TreeNode


def _leaf_order(tree: Tree) -> dict[int, int]:
    """Map node_id of each terminal to its 0-based position in leaf order."""
    return {leaf.node_id: position for position, leaf in enumerate(tree.leaves())}


def first_leaf(node: TreeNode) -> TreeNode:
    """Leftmost terminal descendant (or the node itself when terminal)."""
    while node.children:
        node = node.children[0]
    return node


def last_leaf(node: TreeNode) -> TreeNode:
    """Rightmost terminal descendant (or the node itself when terminal)."""
    while node.children:
        node = node.children[-1]
    return node


def is_ancestor(x: TreeNode, y: TreeNode) -> bool:
    """True when ``x`` is a proper ancestor of ``y``."""
    return any(ancestor is x for ancestor in y.ancestors())


def is_descendant(x: TreeNode, y: TreeNode) -> bool:
    """True when ``x`` is a proper descendant of ``y``."""
    return is_ancestor(y, x)


def is_child(x: TreeNode, y: TreeNode) -> bool:
    """True when ``x`` is a child of ``y``."""
    return x.parent is y


def is_parent(x: TreeNode, y: TreeNode) -> bool:
    """True when ``x`` is the parent of ``y``."""
    return y.parent is x


def is_sibling(x: TreeNode, y: TreeNode) -> bool:
    """True when ``x`` and ``y`` are distinct and share a parent."""
    return x is not y and x.parent is not None and x.parent is y.parent


def follows(tree: Tree, x: TreeNode, y: TreeNode) -> bool:
    """True when ``x`` follows ``y``: x's leaves all come after y's."""
    order = _leaf_order(tree)
    return order[first_leaf(x).node_id] > order[last_leaf(y).node_id]


def precedes(tree: Tree, x: TreeNode, y: TreeNode) -> bool:
    """True when ``x`` precedes ``y`` (inverse of :func:`follows`)."""
    return follows(tree, y, x)


def immediately_follows_adjacent(tree: Tree, x: TreeNode, y: TreeNode) -> bool:
    """Adjacency form: x's first leaf is right after y's last leaf."""
    order = _leaf_order(tree)
    return order[first_leaf(x).node_id] == order[last_leaf(y).node_id] + 1


def immediately_follows(tree: Tree, x: TreeNode, y: TreeNode) -> bool:
    """Definition 3.1, computed literally (quadratic; for testing only).

    ``x`` immediately follows ``y`` iff ``x`` follows ``y`` and there is no
    node ``z`` with ``x`` follows ``z`` and ``z`` follows ``y``.
    """
    if not follows(tree, x, y):
        return False
    order = _leaf_order(tree)
    x_first = order[first_leaf(x).node_id]
    y_last = order[last_leaf(y).node_id]
    for z in tree.nodes:
        z_first = order[first_leaf(z).node_id]
        z_last = order[last_leaf(z).node_id]
        if x_first > z_last and z_first > y_last:
            return False
    return True


def immediately_precedes(tree: Tree, x: TreeNode, y: TreeNode) -> bool:
    """Inverse of :func:`immediately_follows`."""
    return immediately_follows(tree, y, x)


def is_following_sibling(tree: Tree, x: TreeNode, y: TreeNode) -> bool:
    """True when ``x`` is a sibling of ``y`` appearing after it."""
    return is_sibling(x, y) and x.index_in_parent > y.index_in_parent


def is_immediate_following_sibling(tree: Tree, x: TreeNode, y: TreeNode) -> bool:
    """True when ``x`` is the sibling right after ``y``."""
    return is_sibling(x, y) and x.index_in_parent == y.index_in_parent + 1


def is_preceding_sibling(tree: Tree, x: TreeNode, y: TreeNode) -> bool:
    """True when ``x`` is a sibling of ``y`` appearing before it."""
    return is_following_sibling(tree, y, x)


def is_immediate_preceding_sibling(tree: Tree, x: TreeNode, y: TreeNode) -> bool:
    """True when ``x`` is the sibling right before ``y``."""
    return is_immediate_following_sibling(tree, y, x)


def is_leftmost_in(scope: TreeNode, x: TreeNode) -> bool:
    """Left edge alignment: x's first leaf is scope's first leaf."""
    return first_leaf(x) is first_leaf(scope)


def is_rightmost_in(scope: TreeNode, x: TreeNode) -> bool:
    """Right edge alignment: x's last leaf is scope's last leaf."""
    return last_leaf(x) is last_leaf(scope)


def in_subtree(scope: TreeNode, x: TreeNode) -> bool:
    """Subtree scoping: ``x`` is ``scope`` itself or a descendant of it."""
    return x is scope or is_descendant(x, scope)
