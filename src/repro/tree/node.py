"""Ordered linguistic trees (the paper's Section 2.1 data model).

A linguistic tree is an ordered labeled tree whose terminals are units of a
linguistic artifact (words) and whose non-terminals are annotations.
Following Figure 1 of the paper, terminal words are not separate tree nodes:
they are ``@lex`` attributes attached to their pre-terminal node, so that
every tree node is an *element* and attributes ride along with elements
(Definition 4.1, items 8-9).

The module also implements the interval spans that underpin the labeling
scheme: every node carries ``left``/``right``/``depth`` positions computed in
a single depth-first traversal (Definition 4.1, items 1-5).
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence


class TreeError(ValueError):
    """Raised for structurally invalid trees or invalid tree operations."""


class TreeNode:
    """A node of an ordered linguistic tree.

    Parameters
    ----------
    label:
        The node tag (``S``, ``NP``, ``VP``, ``-NONE-``...).
    children:
        Ordered child nodes.  A node with no children is a terminal
        (pre-terminal carrying a word, or an empty category).
    attributes:
        Attribute name to value mapping.  The conventional attribute for a
        terminal's word is ``lex`` (rendered ``@lex`` in LPath).
    """

    __slots__ = (
        "label",
        "children",
        "attributes",
        "parent",
        "left",
        "right",
        "depth",
        "node_id",
        "_index_in_parent",
    )

    def __init__(
        self,
        label: str,
        children: Optional[Sequence["TreeNode"]] = None,
        attributes: Optional[Mapping[str, str]] = None,
    ) -> None:
        if not label:
            raise TreeError("node label must be a non-empty string")
        self.label = label
        self.children: list[TreeNode] = []
        self.attributes: dict[str, str] = dict(attributes or {})
        self.parent: Optional[TreeNode] = None
        # Span annotations; populated by Tree.index() in one DFS pass.
        self.left: int = 0
        self.right: int = 0
        self.depth: int = 0
        self.node_id: int = 0
        self._index_in_parent: int = -1
        for child in children or ():
            self.append(child)

    # -- structure ---------------------------------------------------------

    def append(self, child: "TreeNode") -> "TreeNode":
        """Attach ``child`` as the rightmost child and return it."""
        if child.parent is not None:
            raise TreeError("node already has a parent; detach it first")
        child.parent = self
        child._index_in_parent = len(self.children)
        self.children.append(child)
        return child

    def detach(self) -> "TreeNode":
        """Remove this node from its parent and return it."""
        parent = self.parent
        if parent is None:
            return self
        parent.children.remove(self)
        for position, sibling in enumerate(parent.children):
            sibling._index_in_parent = position
        self.parent = None
        self._index_in_parent = -1
        return self

    @property
    def is_terminal(self) -> bool:
        """True when the node has no children."""
        return not self.children

    @property
    def word(self) -> Optional[str]:
        """The terminal word (``@lex`` attribute) if present."""
        return self.attributes.get("lex")

    @property
    def index_in_parent(self) -> int:
        """0-based position among siblings (-1 for a detached root)."""
        return self._index_in_parent

    # -- navigation primitives (used by the tree-walk evaluator) -----------

    def ancestors(self) -> Iterator["TreeNode"]:
        """Yield proper ancestors, nearest first."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def descendants(self) -> Iterator["TreeNode"]:
        """Yield proper descendants in document (pre)order."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def preorder(self) -> Iterator["TreeNode"]:
        """Yield this node and all descendants in document order."""
        yield self
        yield from self.descendants()

    def leaves(self) -> Iterator["TreeNode"]:
        """Yield terminal descendants (or self when terminal) in order."""
        if self.is_terminal:
            yield self
            return
        for node in self.descendants():
            if node.is_terminal:
                yield node

    def next_sibling(self) -> Optional["TreeNode"]:
        """The immediately following sibling, if any."""
        if self.parent is None:
            return None
        siblings = self.parent.children
        position = self._index_in_parent + 1
        return siblings[position] if position < len(siblings) else None

    def previous_sibling(self) -> Optional["TreeNode"]:
        """The immediately preceding sibling, if any."""
        if self.parent is None or self._index_in_parent == 0:
            return None
        return self.parent.children[self._index_in_parent - 1]

    # -- rendering ----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        word = f" {self.word!r}" if self.word is not None else ""
        return f"<TreeNode {self.label}{word} children={len(self.children)}>"


class Tree:
    """A rooted ordered tree plus its span index.

    ``Tree`` owns the Definition 4.1 positional annotations: calling
    :meth:`index` (done automatically on construction) assigns ``left``,
    ``right``, ``depth`` and ``node_id`` to every node in one DFS pass.

    * the leftmost leaf has ``left = 1`` and every leaf has
      ``right = left + 1`` with consecutive leaves sharing a boundary
      (items 1-3);
    * a non-terminal spans from its first leaf's ``left`` to its last
      leaf's ``right`` (item 4);
    * the root has ``depth = 1`` (item 5);
    * ``node_id`` is a nonzero document-order identifier (item 6).
    """

    __slots__ = ("root", "tid", "_nodes", "_id_to_node")

    def __init__(self, root: TreeNode, tid: int = 0) -> None:
        if root.parent is not None:
            raise TreeError("tree root must not have a parent")
        self.root = root
        self.tid = tid
        self._nodes: list[TreeNode] = []
        self._id_to_node: dict[int, TreeNode] = {}
        self.index()

    def index(self) -> None:
        """(Re)compute spans, depths and identifiers in one DFS pass."""
        self._nodes = list(self.root.preorder())
        self._id_to_node = {}
        next_left = 1
        # Iterative post-order assignment of leaf boundaries, then spans.
        for node_id, node in enumerate(self._nodes, start=1):
            node.node_id = node_id
            node.depth = 1 if node.parent is None else node.parent.depth + 1
            self._id_to_node[node_id] = node
        for node in self._postorder():
            if node.is_terminal:
                node.left = next_left
                node.right = next_left + 1
                next_left = node.right
            else:
                node.left = node.children[0].left
                node.right = node.children[-1].right

    def _postorder(self) -> Iterator[TreeNode]:
        stack: list[tuple[TreeNode, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node.children):
                    stack.append((child, False))

    # -- access -------------------------------------------------------------

    @property
    def nodes(self) -> list[TreeNode]:
        """All nodes in document order."""
        return self._nodes

    def node_by_id(self, node_id: int) -> TreeNode:
        """Look up a node by its document-order identifier."""
        try:
            return self._id_to_node[node_id]
        except KeyError:
            raise TreeError(f"no node with id {node_id}") from None

    def leaves(self) -> list[TreeNode]:
        """Terminal nodes in order."""
        return [node for node in self._nodes if node.is_terminal]

    def words(self) -> list[str]:
        """The sentence: the ``@lex`` values of terminals, in order."""
        return [leaf.word for leaf in self.leaves() if leaf.word is not None]

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tree tid={self.tid} nodes={len(self._nodes)}>"
