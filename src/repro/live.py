"""Crash-safe live corpora: the ``LPDB0005`` directory layout.

Every store revision up to ``LPDB0004`` is immutable — compile once,
query forever.  This module adds the write path: a live corpus is a
*directory* whose contents are

``MANIFEST``
    ``LPDB0005`` magic + one length/CRC block (the same framing as
    ``LPDB0002``) over: generation number, the list of immutable base
    segment files with their row counts, the active WAL file name, the
    next free tree id, and the last recovery action.  The manifest is
    the single source of truth; a file not referenced by it does not
    exist (it is garbage, collected on the next writable open).
``seg-<generation>.lpdb``
    Immutable ``LPDB0004`` base segments, mmap-served exactly like a
    monolithic compiled corpus.
``wal-<generation>.log``
    An append-only write-ahead log: an 8-byte magic then framed row
    batches — ``<u32 length, u32 crc32>`` header + an ``LPDB0002``-style
    row payload — fsync'd **before** the append is acknowledged.
``LOCK``
    The exclusive writer lock (``O_EXCL`` + pid, stale locks reclaimed
    when the holder is dead).

Crash consistency rules:

* An append is acknowledged only after its full frame is written *and*
  fsync'd.  Recovery truncates a torn tail (partial frame or CRC
  mismatch) — so acknowledged rows always survive, unacknowledged
  tails always roll back.  A crash *between* fsync and acknowledgement
  leaves a complete, valid record the writer never confirmed: replay is
  therefore at-least-once (``acked ⊆ recovered ⊆ attempted``).
* The manifest is installed via write-temp → fsync → ``os.replace`` →
  fsync(directory) — readers see the old generation or the new one,
  never a mix.
* Compaction writes the new base segment and the rotated WAL under
  their final (generation-stamped) names *before* installing the
  manifest that references them.  A crash at any point leaves either
  the old generation (plus unreferenced files, GC'd on open) or the
  complete new one — there is nothing in between to repair.

The crash-oriented fault points (``torn_write``, ``fsync_fail``,
``disk_full``, ``compactor_kill``) and the deterministic
``REPRO_CRASH_POINT`` barriers from :mod:`repro.faults` are threaded
through every durability step; the kill-at-every-barrier matrix in
``tests/integration/test_crash_matrix.py`` drives them.
"""

from __future__ import annotations

import contextlib
import io
import os
import struct
import threading
import time
import zlib
from typing import NamedTuple, Optional

from . import faults
from .labeling.lpath_scheme import Label, label_corpus
from .store import (
    LIVE_MAGIC,
    StoreError,
    _checked_block,
    _decode_labels_into,
    _encode_payload,
    _read_mmap_sidecar,
    _read_varint,
    _write_varint,
    fsync_directory,
    open_mapped_corpus,
    save_mapped,
)
from .tree.bracket import iter_trees

MANIFEST_NAME = "MANIFEST"
LOCK_NAME = "LOCK"
WAL_MAGIC = b"LPWL0001"
_FRAME = struct.Struct("<II")

#: How long a retired engine survives after a swap before it is closed —
#: longer than any sane request, so an in-flight query that resolved the
#: old engine just before an append/compaction finishes cleanly.
ENGINE_GRACE_SECONDS = 30.0


# -- manifest ------------------------------------------------------------------


class LiveManifest(NamedTuple):
    """The decoded ``MANIFEST``: what the directory *is* right now."""

    generation: int
    segments: tuple[tuple[str, int], ...]  # (file name, row count)
    wal: str
    next_tid: int
    last_recovery: str


def _encode_manifest(manifest: LiveManifest) -> bytes:
    payload = io.BytesIO()
    _write_varint(payload, manifest.generation)
    _write_varint(payload, len(manifest.segments))
    for name, rows in manifest.segments:
        encoded = name.encode("utf-8")
        _write_varint(payload, len(encoded))
        payload.write(encoded)
        _write_varint(payload, rows)
    wal = manifest.wal.encode("utf-8")
    _write_varint(payload, len(wal))
    payload.write(wal)
    _write_varint(payload, manifest.next_tid)
    recovery = manifest.last_recovery.encode("utf-8")
    _write_varint(payload, len(recovery))
    payload.write(recovery)
    blob = payload.getvalue()
    header = io.BytesIO()
    _write_varint(header, len(blob))
    _write_varint(header, zlib.crc32(blob))
    return LIVE_MAGIC + header.getvalue() + blob


def _parse_manifest(data: bytes) -> LiveManifest:
    if not data.startswith(LIVE_MAGIC):
        raise StoreError(
            "not a live corpus manifest (bad magic; expected LPDB0005)"
        )
    payload, end = _checked_block(data, len(LIVE_MAGIC))
    if end != len(data):
        raise StoreError(f"{len(data) - end} trailing bytes after manifest")
    offset = 0
    generation, offset = _read_varint(payload, offset)
    count, offset = _read_varint(payload, offset)
    segments = []
    for _ in range(count):
        length, offset = _read_varint(payload, offset)
        name = payload[offset:offset + length].decode("utf-8")
        offset += length
        rows, offset = _read_varint(payload, offset)
        segments.append((name, rows))
    length, offset = _read_varint(payload, offset)
    wal = payload[offset:offset + length].decode("utf-8")
    offset += length
    next_tid, offset = _read_varint(payload, offset)
    length, offset = _read_varint(payload, offset)
    recovery = payload[offset:offset + length].decode("utf-8")
    offset += length
    if offset != len(payload):
        raise StoreError("trailing bytes inside the manifest payload")
    return LiveManifest(generation, tuple(segments), wal, next_tid, recovery)


def _read_manifest(root: str) -> tuple[LiveManifest, bytes]:
    path = os.path.join(root, MANIFEST_NAME)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        raise StoreError(
            f"not a live corpus: {root!r} has no {MANIFEST_NAME}"
        ) from None
    return _parse_manifest(data), data


def _barrier(name: str, compactor: bool = False) -> None:
    """Cross one durability barrier: the deterministic kill matrix
    (``REPRO_CRASH_POINT``) and, on compaction barriers, the
    probabilistic ``compactor_kill`` point."""
    faults.crash_point(name)
    if compactor:
        faults.maybe_kill_compactor()


def _install_manifest(
    root: str, manifest: LiveManifest, compactor: bool = False
) -> bytes:
    """Atomically install ``manifest``: write-temp → fsync →
    ``os.replace`` → fsync(dir).  Returns the installed bytes (the
    fingerprint digests them)."""
    blob = _encode_manifest(manifest)
    temp = os.path.join(
        root, f"tmp-manifest-{manifest.generation}-{os.getpid()}"
    )
    try:
        with open(temp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        _barrier("manifest_temp", compactor)
        os.replace(temp, os.path.join(root, MANIFEST_NAME))
    except OSError as error:
        with contextlib.suppress(OSError):
            os.unlink(temp)
        raise StoreError(f"manifest install failed: {error}") from error
    _barrier("manifest_replace", compactor)
    fsync_directory(root)
    _barrier("manifest_dirsync", compactor)
    return blob


# -- WAL -----------------------------------------------------------------------


class WalScan(NamedTuple):
    """One pass over a WAL file: the decoded valid prefix and how many
    bytes of torn tail follow it."""

    records: int
    rows: list[Label]
    record_rows: list[int]
    valid_size: int
    torn_bytes: int


def _scan_wal(path: str) -> WalScan:
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        raise StoreError(f"live corpus WAL missing: {path}") from None
    if not data.startswith(WAL_MAGIC):
        raise StoreError(f"bad WAL magic in {path}; expected LPWL0001")
    offset = len(WAL_MAGIC)
    rows: list[Label] = []
    record_rows: list[int] = []
    while offset < len(data):
        if len(data) - offset < _FRAME.size:
            break  # torn frame header
        length, crc = _FRAME.unpack_from(data, offset)
        end = offset + _FRAME.size + length
        if end > len(data):
            break  # torn payload
        blob = data[offset + _FRAME.size:end]
        if zlib.crc32(blob) != crc:
            break  # torn or bit-rotted payload
        before = len(rows)
        _decode_labels_into(blob, rows)
        record_rows.append(len(rows) - before)
        offset = end
    return WalScan(
        len(record_rows), rows, record_rows, offset, len(data) - offset
    )


# -- writer lock ---------------------------------------------------------------


def _lock_holder(path: str) -> Optional[int]:
    try:
        with open(path, "r", encoding="ascii") as handle:
            return int(handle.read().split()[0])
    except (OSError, ValueError, IndexError):
        return None


def acquire_writer_lock(root: str) -> str:
    """Take the exclusive writer lock, reclaiming it once if the
    recorded holder is dead (a crashed writer).  Raises
    :class:`StoreError` when a live holder exists."""
    path = os.path.join(root, LOCK_NAME)
    for attempt in range(2):
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            pid = _lock_holder(path)
            alive = False
            if pid is not None:
                try:
                    os.kill(pid, 0)
                    alive = True
                except ProcessLookupError:
                    alive = False
                except PermissionError:
                    alive = True  # exists, owned by someone else
            if not alive and attempt == 0:
                # Stale (holder dead, or it crashed between creating the
                # lock and writing its pid): reclaim once and retry.
                with contextlib.suppress(OSError):
                    os.unlink(path)
                continue
            holder = f"pid {pid}" if pid is not None else "an unknown writer"
            raise StoreError(
                f"live corpus {root!r} is locked by {holder}; a second "
                "writer would interleave WAL records (remove LOCK only if "
                "you know the holder is gone)"
            )
        os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        os.close(fd)
        return path
    raise StoreError(f"could not reclaim stale lock {path}")  # pragma: no cover


def release_writer_lock(path: str) -> None:
    with contextlib.suppress(OSError):
        os.unlink(path)


# -- creation ------------------------------------------------------------------


def _segment_file_name(generation: int) -> str:
    return f"seg-{generation:08d}.lpdb"


def _wal_file_name(generation: int) -> str:
    return f"wal-{generation:08d}.log"


def _write_segment_file(path: str, rows, segments: int = 1) -> int:
    """Write one immutable LPDB0004 base segment under its final name
    and fsync it.  Safe pre-manifest: until a manifest references the
    name, the file is garbage and recovery collects it."""
    with open(path, "wb") as handle:
        count = save_mapped(rows, handle, segments=segments)
        handle.flush()
        os.fsync(handle.fileno())
    return count


def _write_wal_file(path: str, tail: bytes = b"") -> None:
    with open(path, "wb") as handle:
        handle.write(WAL_MAGIC)
        if tail:
            handle.write(tail)
        handle.flush()
        os.fsync(handle.fileno())


def create_live_corpus(path: str, rows, segments: int = 1) -> int:
    """Create (or re-create) a live corpus directory at ``path`` from
    fully materialized label ``rows``; returns the row count.

    ``segments`` shards the base LPDB0004 file internally (the same knob
    as a monolithic compile).  Re-creating over an existing live corpus
    replaces it atomically-enough: the new manifest is installed last,
    and the old generation's files become garbage."""
    rows = list(rows)
    os.makedirs(path, exist_ok=True)
    existing = os.listdir(path)
    if existing and not os.path.exists(os.path.join(path, MANIFEST_NAME)):
        raise StoreError(
            f"refusing to create a live corpus in non-empty directory "
            f"{path!r} that is not already a live corpus"
        )
    lock = acquire_writer_lock(path)
    try:
        generation = 1
        if existing:
            with contextlib.suppress(StoreError):
                manifest, _ = _read_manifest(path)
                generation = manifest.generation + 1
        manifest_segments: tuple[tuple[str, int], ...] = ()
        if rows:
            seg_name = _segment_file_name(generation)
            count = _write_segment_file(
                os.path.join(path, seg_name), rows, segments=segments
            )
            manifest_segments = ((seg_name, count),)
        wal_name = _wal_file_name(generation)
        _write_wal_file(os.path.join(path, wal_name))
        fsync_directory(path)
        next_tid = max((row[0] for row in rows), default=-1) + 1
        _install_manifest(
            path,
            LiveManifest(generation, manifest_segments, wal_name, next_tid, ""),
        )
        # Old-generation files (if any) are now garbage; collect them.
        _collect_garbage(path, keep={MANIFEST_NAME, LOCK_NAME, wal_name}
                         | {name for name, _ in manifest_segments})
        fsync_directory(path)
    finally:
        release_writer_lock(lock)
    return len(rows)


def _collect_garbage(root: str, keep: set) -> list[str]:
    """Unlink files matching our naming patterns that no manifest
    references.  Foreign files are left alone."""
    removed = []
    for entry in sorted(os.listdir(root)):
        if entry in keep:
            continue
        if (
            entry.startswith("tmp-")
            or entry.startswith(".")  # atomic_write temps
            or (entry.startswith("seg-") and entry.endswith(".lpdb"))
            or (entry.startswith("wal-") and entry.endswith(".log"))
        ):
            with contextlib.suppress(OSError):
                os.unlink(os.path.join(root, entry))
                removed.append(entry)
    return removed


# -- the live corpus -----------------------------------------------------------


class LiveCorpus:
    """An open ``LPDB0005`` directory.

    Writable opens hold the exclusive writer lock for their lifetime and
    run recovery first (truncate torn WAL tails, collect unreferenced
    files, record what was done in the manifest).  Read-only opens take
    no lock, mutate nothing, and simply ignore a torn tail.

    All mutation is serialized on an internal lock; reads of the delta
    snapshot go through :meth:`snapshot` so engine builds never race an
    append."""

    def __init__(self, root: str, writable: bool = True) -> None:
        self.root = os.path.abspath(root)
        self.writable = writable
        self._lock = threading.RLock()
        self._closed = False
        self._poisoned: Optional[str] = None
        self._lock_path: Optional[str] = None
        self._wal_handle = None
        if not os.path.isdir(self.root):
            raise StoreError(f"not a live corpus directory: {root!r}")
        if writable:
            self._lock_path = acquire_writer_lock(self.root)
        try:
            self.manifest, self._manifest_bytes = _read_manifest(self.root)
            if writable:
                self._recover()
            self._load_wal()
            if writable:
                self._wal_handle = open(self.wal_path, "r+b")
                self._wal_handle.seek(self._wal_size)
        except BaseException:
            if self._lock_path is not None:
                release_writer_lock(self._lock_path)
            raise
        self._refresh_fingerprint()

    # -- open-time recovery ----------------------------------------------------

    def _recover(self) -> None:
        actions = []
        wal_path = os.path.join(self.root, self.manifest.wal)
        if not os.path.exists(wal_path):
            # The manifest's directory fsync makes the WAL entry durable
            # before the manifest references it; a missing WAL should be
            # impossible, but an empty one beats refusing to open.
            _write_wal_file(wal_path)
            actions.append(f"recreated missing WAL {self.manifest.wal}")
        scan = _scan_wal(wal_path)
        if scan.torn_bytes:
            with open(wal_path, "r+b") as handle:
                handle.truncate(scan.valid_size)
                handle.flush()
                os.fsync(handle.fileno())
            actions.append(
                f"truncated {scan.torn_bytes} torn byte(s) from "
                f"{self.manifest.wal}"
            )
        keep = {MANIFEST_NAME, LOCK_NAME, self.manifest.wal}
        keep.update(name for name, _ in self.manifest.segments)
        for entry in _collect_garbage(self.root, keep):
            actions.append(f"removed orphan {entry}")
        if actions:
            fsync_directory(self.root)
            recovered = self.manifest._replace(
                generation=self.manifest.generation + 1,
                last_recovery="; ".join(actions),
            )
            self._manifest_bytes = _install_manifest(self.root, recovered)
            self.manifest = recovered

    def _load_wal(self) -> None:
        scan = _scan_wal(self.wal_path)
        if self.writable and scan.torn_bytes:
            raise StoreError(
                f"torn WAL tail survived recovery in {self.wal_path}"
            )  # pragma: no cover
        self._wal_size = scan.valid_size
        self._wal_records = scan.records
        self._delta_rows = scan.rows
        self._torn_bytes = scan.torn_bytes
        base_next = max(
            (row[0] for row in scan.rows), default=self.manifest.next_tid - 1
        )
        self._next_tid = max(self.manifest.next_tid, base_next + 1)

    # -- cheap accessors -------------------------------------------------------

    @property
    def wal_path(self) -> str:
        return os.path.join(self.root, self.manifest.wal)

    @property
    def generation(self) -> int:
        return self.manifest.generation

    @property
    def next_tid(self) -> int:
        return self._next_tid

    @property
    def base_rows(self) -> int:
        return sum(rows for _, rows in self.manifest.segments)

    @property
    def delta_row_count(self) -> int:
        with self._lock:
            return len(self._delta_rows)

    @property
    def wal_records(self) -> int:
        return self._wal_records

    @property
    def fingerprint(self) -> str:
        return self._fingerprint

    def _refresh_fingerprint(self) -> None:
        digest = zlib.crc32(self._manifest_bytes)
        self._fingerprint = (
            f"lpdb0005-{self.manifest.generation}-{self._wal_size}"
            f"-{digest:08x}"
        )

    def base_segment_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.manifest.segments)

    def snapshot(self) -> tuple[tuple[str, ...], list[Label]]:
        """A consistent (base segment names, delta rows copy) pair for
        engine builds."""
        with self._lock:
            return self.base_segment_names(), list(self._delta_rows)

    def verify_on_disk(self) -> tuple[bool, Optional[str]]:
        """Does the directory on disk still match this open handle?
        Under the writer lock nothing else may write, so a mismatch is
        real corruption (or an operator bypassing the lock)."""
        with self._lock:
            if self._poisoned is not None:
                return False, f"store is poisoned: {self._poisoned}"
            try:
                disk = live_fingerprint(self.root)
            except (StoreError, OSError) as error:
                return False, str(error)
            if disk != self._fingerprint:
                return False, (
                    f"on-disk state {disk} diverged from the writer's view "
                    f"{self._fingerprint} despite the writer lock"
                )
            return True, None

    # -- append ----------------------------------------------------------------

    def _ensure_writable(self) -> None:
        if self._closed:
            raise StoreError("live corpus is closed")
        if not self.writable:
            raise StoreError(
                f"live corpus {self.root!r} was opened read-only"
            )
        if self._poisoned is not None:
            raise StoreError(
                f"live corpus is poisoned ({self._poisoned}); reopen the "
                "store to run recovery"
            )

    def append_rows(self, rows) -> int:
        """Durably append one batch of label rows; returns the row count
        acknowledged.  The batch's tids must all be >= :attr:`next_tid`
        (segments must stay tid-disjoint for the sorted merge)."""
        rows = list(rows)
        if not rows:
            raise StoreError("append needs at least one row")
        with self._lock:
            self._ensure_writable()
            low = min(row[0] for row in rows)
            if low < self._next_tid:
                raise StoreError(
                    f"appended tids must start at or above next_tid "
                    f"{self._next_tid} (got {low}); overlapping tids would "
                    "break the disjoint segment merge"
                )
            blob, count = _encode_payload(rows)
            frame = _FRAME.pack(len(blob), zlib.crc32(blob)) + blob
            handle = self._wal_handle
            start = self._wal_size
            try:
                faults.maybe_disk_full()
                if faults.maybe_torn_write():
                    handle.write(frame[: max(1, len(frame) // 2)])
                    handle.flush()
                    self._poisoned = "torn WAL write (torn_write)"
                    raise StoreError(
                        "append failed: torn write before the durability "
                        "barrier; rows were NOT acknowledged — reopen the "
                        "store to truncate the torn tail"
                    )
                handle.write(frame)
                handle.flush()
                faults.crash_point("wal_write")
                faults.maybe_fsync_fail()
                os.fsync(handle.fileno())
                faults.crash_point("wal_fsync")
            except OSError as error:
                self._rollback(start)
                raise StoreError(
                    f"append failed before acknowledgement "
                    f"({error}); rows were NOT acknowledged"
                ) from error
            # -- acknowledged: the frame is durable --------------------
            self._wal_size = start + len(frame)
            self._wal_records += 1
            self._delta_rows.extend(
                row if isinstance(row, Label) else Label(*row) for row in rows
            )
            self._next_tid = max(row[0] for row in rows) + 1
            self._refresh_fingerprint()
            return count

    def _rollback(self, size: int) -> None:
        """Remove unacknowledged bytes after a failed append so the
        in-memory view and the file agree again."""
        try:
            handle = self._wal_handle
            handle.flush()
            handle.truncate(size)
            handle.seek(size)
            os.fsync(handle.fileno())
        except OSError as error:
            self._poisoned = f"rollback of an unacknowledged append failed: {error}"

    def append_trees(self, text: str) -> dict:
        """Parse bracketed ``text`` and durably append every tree,
        assigning fresh tids from :attr:`next_tid`.  Returns a summary
        dict (trees/rows/first tid/next tid)."""
        with self._lock:
            self._ensure_writable()
            trees = list(iter_trees(text, start_tid=self._next_tid))
            if not trees:
                raise StoreError("no trees in append input")
            first_tid = trees[0].tid
            rows = list(label_corpus(trees))
            count = self.append_rows(rows)
            return {
                "trees": len(trees),
                "rows": count,
                "first_tid": first_tid,
                "next_tid": self._next_tid,
                "generation": self.manifest.generation,
                "wal_records": self._wal_records,
            }

    # -- compaction ------------------------------------------------------------

    def compact(self, segments: int = 1) -> dict:
        """Rewrite the accumulated delta rows into a fresh immutable
        LPDB0004 base segment and rotate the WAL, installing the result
        as a new manifest generation.

        The expensive segment build runs outside the corpus lock, so
        appends (and of course reads) proceed during it; rows appended
        mid-compaction have their raw WAL frames copied into the rotated
        WAL at cut-over.  Every durability barrier is a crash point —
        a kill anywhere leaves either the old complete generation or the
        new one."""
        started = time.monotonic()
        with self._lock:
            self._ensure_writable()
            if not self._delta_rows:
                return {
                    "compacted_rows": 0,
                    "generation": self.manifest.generation,
                    "remaining_delta_rows": 0,
                    "seconds": 0.0,
                }
            frozen = list(self._delta_rows)
            cut = self._wal_size
            generation = self.manifest.generation + 1
        # -- heavy phase, off-lock: build the new base segment ---------
        seg_name = _segment_file_name(generation)
        seg_path = os.path.join(self.root, seg_name)
        try:
            count = _write_segment_file(seg_path, frozen, segments=segments)
        except OSError as error:
            with contextlib.suppress(OSError):
                os.unlink(seg_path)
            raise StoreError(f"compaction segment write failed: {error}") from error
        _barrier("compact_segment", compactor=True)
        # -- cut-over, under the lock ----------------------------------
        with self._lock:
            self._ensure_writable()
            old_wal_path = self.wal_path
            with open(old_wal_path, "rb") as handle:
                handle.seek(cut)
                tail = handle.read(self._wal_size - cut)
            wal_name = _wal_file_name(generation)
            try:
                _write_wal_file(os.path.join(self.root, wal_name), tail)
                fsync_directory(self.root)
            except OSError as error:
                raise StoreError(
                    f"compaction WAL rotation failed: {error}"
                ) from error
            _barrier("compact_wal", compactor=True)
            manifest = LiveManifest(
                generation,
                self.manifest.segments + ((seg_name, count),),
                wal_name,
                self._next_tid,
                self.manifest.last_recovery,
            )
            self._manifest_bytes = _install_manifest(
                self.root, manifest, compactor=True
            )
            self.manifest = manifest
            self._wal_handle.close()
            self._wal_handle = open(self.wal_path, "r+b")
            self._wal_handle.seek(0, os.SEEK_END)
            self._wal_size = self._wal_handle.tell()
            remaining = self._delta_rows[len(frozen):]
            self._delta_rows = remaining
            # Recount the rotated WAL's records from its bytes — simpler
            # and safer than per-record bookkeeping across the
            # concurrent-append window.
            self._wal_records = _scan_wal(self.wal_path).records
            self._refresh_fingerprint()
        with contextlib.suppress(OSError):
            os.unlink(old_wal_path)
        _barrier("compact_gc", compactor=True)
        fsync_directory(self.root)
        return {
            "compacted_rows": count,
            "generation": generation,
            "segment": seg_name,
            "remaining_delta_rows": len(remaining),
            "seconds": time.monotonic() - started,
        }

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._wal_handle is not None:
                with contextlib.suppress(OSError):
                    self._wal_handle.close()
                self._wal_handle = None
            if self._lock_path is not None:
                release_writer_lock(self._lock_path)
                self._lock_path = None

    def __enter__(self) -> "LiveCorpus":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- path-level helpers (store.py dispatches here) -----------------------------


def live_corpus_format(path: str) -> str:
    manifest_path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(manifest_path, "rb") as handle:
            magic = handle.read(len(LIVE_MAGIC))
    except OSError:
        raise StoreError(
            f"not a live corpus: {path!r} has no readable {MANIFEST_NAME}"
        ) from None
    if magic != LIVE_MAGIC:
        raise StoreError(
            f"bad manifest magic in {path!r}; expected LPDB0005"
        )
    return LIVE_MAGIC.decode("ascii")


def live_fingerprint(path: str) -> str:
    """O(1) identity for a live directory: generation + WAL size + a CRC
    of the manifest bytes.  Changes on every acknowledged append (the
    WAL grows) and every installed generation (the manifest changes);
    stable across copies and re-opens."""
    manifest, data = _read_manifest(path)
    try:
        wal_size = os.path.getsize(os.path.join(path, manifest.wal))
    except OSError:
        wal_size = len(WAL_MAGIC)
    return (
        f"lpdb0005-{manifest.generation}-{wal_size}-{zlib.crc32(data):08x}"
    )


def live_segment_count(path: str) -> int:
    """Base LPDB0004 segments (counting internal shards) plus one for
    the in-memory delta when the WAL holds rows."""
    manifest, _ = _read_manifest(path)
    count = 0
    for name, _rows in manifest.segments:
        file_path = os.path.join(path, name)
        with open(file_path, "rb") as handle:
            header = _read_mmap_sidecar(handle, handle.read(8))
        count += len(header.segments)
    scan = _scan_wal(os.path.join(path, manifest.wal))
    if scan.rows or count == 0:
        count += 1
    return count


def live_info(path: str, top: int = 10) -> dict:
    """The :func:`repro.store.corpus_info` shape plus the live extras:
    generation, WAL record/row counts, delta vs base split, the last
    recovery action and any torn tail visible to this (read-only)
    scan."""
    manifest, manifest_bytes = _read_manifest(path)
    merged: dict[str, list] = {}

    def fold(name, rows, partitions, max_partition, min_depth, max_depth):
        entry = merged.get(name)
        if entry is None:
            merged[name] = [rows, partitions, max_partition,
                            min_depth, max_depth]
        else:
            entry[0] += rows
            entry[1] += partitions
            entry[2] = max(entry[2], max_partition)
            entry[3] = min(entry[3], min_depth)
            entry[4] = max(entry[4], max_depth)

    total_bytes = len(manifest_bytes)
    base_rows = 0
    base_trees = 0
    base_segments = 0
    for name, _rows in manifest.segments:
        file_path = os.path.join(path, name)
        total_bytes += os.path.getsize(file_path)
        with open(file_path, "rb") as handle:
            header = _read_mmap_sidecar(handle, handle.read(8))
        base_segments += len(header.segments)
        for meta in header.segments:
            base_rows += meta.n
            base_trees += len(meta.tid_dir)
            row_lo = part_lo = 0
            for sid, row_hi, part_hi, max_part, min_d, max_d in meta.names:
                fold(meta.strings[sid - 1], row_hi - row_lo,
                     part_hi - part_lo, max_part, min_d, max_d)
                row_lo, part_lo = row_hi, part_hi
    wal_path = os.path.join(path, manifest.wal)
    scan = _scan_wal(wal_path)
    total_bytes += os.path.getsize(wal_path)
    per_partition: dict[tuple[str, int], int] = {}
    depths: dict[str, tuple[int, int]] = {}
    delta_tids: set[int] = set()
    for row in scan.rows:
        delta_tids.add(row[0])
        key = (row[6], row[0])
        per_partition[key] = per_partition.get(key, 0) + 1
        span = depths.get(row[6])
        depths[row[6]] = (
            (row[3], row[3]) if span is None
            else (min(span[0], row[3]), max(span[1], row[3]))
        )
    delta_counts: dict[str, list] = {}
    for (name, _tid), count in per_partition.items():
        entry = delta_counts.setdefault(name, [0, 0, 0])
        entry[0] += count
        entry[1] += 1
        entry[2] = max(entry[2], count)
    for name, (total, partitions, max_partition) in delta_counts.items():
        min_depth, max_depth = depths[name]
        fold(name, total, partitions, max_partition, min_depth, max_depth)

    ranked = sorted(merged.items(), key=lambda item: (-item[1][0], item[0]))
    delta_rows = len(scan.rows)
    return {
        "path": path,
        "bytes": total_bytes,
        "format": LIVE_MAGIC.decode("ascii"),
        "segments": base_segments + (1 if (delta_rows or not base_segments)
                                     else 0),
        "rows": base_rows + delta_rows,
        "trees": base_trees + len(delta_tids),
        "distinct_names": len(merged),
        "top_names": [(name, tuple(stats)) for name, stats in ranked[:top]],
        "generation": manifest.generation,
        "base_segments": len(manifest.segments),
        "base_rows": base_rows,
        "delta_rows": delta_rows,
        "wal_records": scan.records,
        "wal_bytes": scan.valid_size,
        "wal_torn_bytes": scan.torn_bytes,
        "next_tid": max(
            manifest.next_tid,
            max((row[0] for row in scan.rows), default=-1) + 1,
        ),
        "last_recovery": manifest.last_recovery or None,
    }


def load_live_labels(path: str) -> list[Label]:
    """Materialize every row of a live corpus: base segments in file
    order, then the WAL delta — the monolithic-equivalence loaders
    (``repro.store.load_corpus_labels``) dispatch here."""
    from .store import load_labels

    manifest, _ = _read_manifest(path)
    rows: list[Label] = []
    for name, _count in manifest.segments:
        with open(os.path.join(path, name), "rb") as handle:
            rows.extend(load_labels(handle))
    rows.extend(_scan_wal(os.path.join(path, manifest.wal)).rows)
    return rows


# -- engine integration --------------------------------------------------------


class _LiveResources:
    """What a snapshot engine owns: the mapped base corpora and the
    read-only LiveCorpus view.  Quacks like ``engine._mapped`` (the
    engine's ``close`` calls ``.close()``)."""

    def __init__(self, corpora, corpus: Optional[LiveCorpus]) -> None:
        self.corpora = corpora
        self.corpus = corpus

    def close(self) -> None:
        for corpus in self.corpora:
            with contextlib.suppress(Exception):
                corpus.close()
        if self.corpus is not None:
            self.corpus.close()


def _build_live_engine(
    root: str,
    base_names,
    delta_rows,
    corpora_by_name: dict,
    plan_cache_size: int = 128,
    workers: Optional[int] = None,
):
    """Assemble an LPathEngine over mmap base segments + an in-memory
    delta ColumnStore.  ``corpora_by_name`` caches open MappedCorpus
    objects (the manager reuses them across engine swaps); missing
    entries are opened and added."""
    from .columnar.store import ColumnStore, MappedColumnStore
    from .lpath.engine import LPathEngine

    stores = []
    kinds = []
    for name in base_names:
        corpus = corpora_by_name.get(name)
        if corpus is None:
            corpus = open_mapped_corpus(os.path.join(root, name))
            corpora_by_name[name] = corpus
        for segment in corpus.segments:
            stores.append(MappedColumnStore(segment))
            kinds.append("base")
    if delta_rows or not stores:
        stores.append(ColumnStore.from_rows(list(delta_rows)))
        kinds.append("delta")
    engine = LPathEngine.from_columns(
        stores if len(stores) > 1 else stores[0],
        plan_cache_size=plan_cache_size,
        workers=workers,
    )
    compiler = engine._compiler
    if hasattr(compiler, "segments"):
        for segment, kind in zip(compiler.segments, kinds):
            segment.kind = kind
    return engine


def open_live_engine(
    path: str,
    plan_cache_size: int = 128,
    workers: Optional[int] = None,
    mode: Optional[str] = None,
):
    """Open a live corpus as a *snapshot* engine: base segments mmap'd
    zero-copy, the WAL replayed into an in-memory delta store, results
    merged through the ordinary sorted disjoint segment merge.

    The snapshot does not see later appends — re-open (or use
    :class:`LiveEngineManager`, which the daemon does) to follow the
    log.  ``mode="process"`` is rejected: process workers re-open stores
    by LPDB0004 path, which the in-memory delta does not have."""
    from .lpath.engine import LPathError

    if mode == "process":
        raise LPathError(
            "live corpora fan out on threads (the in-memory delta segment "
            "cannot be re-opened by path in a worker process); "
            "use mode='thread' or compact first and serve the base file"
        )
    corpus = LiveCorpus(path, writable=False)
    corpora_by_name: dict = {}
    try:
        base_names, delta_rows = corpus.snapshot()
        engine = _build_live_engine(
            corpus.root, base_names, delta_rows, corpora_by_name,
            plan_cache_size=plan_cache_size, workers=workers,
        )
    except BaseException:
        for mapped in corpora_by_name.values():
            with contextlib.suppress(Exception):
                mapped.close()
        corpus.close()
        raise
    engine._mapped = _LiveResources(list(corpora_by_name.values()), corpus)
    return engine


# -- serving: an engine that follows the log -----------------------------------


class LiveEngineManager:
    """Owns a writable :class:`LiveCorpus` plus the engine serving it,
    swapping in a rebuilt engine after every append/compaction
    (read-your-writes) while retired engines linger for a grace period
    so in-flight queries finish on the snapshot they resolved.

    The mapped base corpora are owned *here*, not by any engine
    (``engine._mapped`` stays a no-op for swapped engines), so a swap
    never unmaps pages a retired engine still reads."""

    def __init__(
        self,
        path: str,
        writable: bool = True,
        plan_cache_size: int = 128,
        workers: Optional[int] = None,
        compact_rows: int = 0,
        compact_interval: float = 0.25,
    ) -> None:
        self.corpus = LiveCorpus(path, writable=writable)
        self._plan_cache_size = plan_cache_size
        self._workers = workers
        self._lock = threading.RLock()
        self._compact_lock = threading.Lock()
        self._corpora: dict = {}
        self._retired: list[tuple[float, object]] = []
        self.appends = 0
        self.compactions = 0
        self.compacting = False
        self.last_compaction: Optional[dict] = None
        self.compact_rows = int(compact_rows)
        self._compact_interval = compact_interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        try:
            self.engine = self._build()
        except BaseException:
            self._close_corpora()
            self.corpus.close()
            raise
        if self.compact_rows > 0 and writable:
            self._thread = threading.Thread(
                target=self._compactor_loop,
                name="live-compactor",
                daemon=True,
            )
            self._thread.start()

    # -- engine builds ---------------------------------------------------------

    def _build(self):
        base_names, delta_rows = self.corpus.snapshot()
        engine = _build_live_engine(
            self.corpus.root, base_names, delta_rows, self._corpora,
            plan_cache_size=self._plan_cache_size, workers=self._workers,
        )
        return engine

    def _swap(self) -> None:
        """Build a fresh engine over the current snapshot and retire the
        old one (closed after the grace period)."""
        new_engine = self._build()
        now = time.monotonic()
        with self._lock:
            old = self.engine
            self.engine = new_engine
            self._retired.append((now, old))
            keep = []
            for retired_at, engine in self._retired:
                if now - retired_at >= ENGINE_GRACE_SECONDS:
                    with contextlib.suppress(Exception):
                        engine.close()
                else:
                    keep.append((retired_at, engine))
            self._retired = keep

    def fingerprint(self) -> str:
        return self.corpus.fingerprint

    # -- mutations -------------------------------------------------------------

    def append_trees(self, text: str) -> dict:
        with self._lock:
            result = self.corpus.append_trees(text)
            self._swap()
            self.appends += 1
            result["fingerprint"] = self.corpus.fingerprint
            return result

    def compact(self) -> dict:
        """Run one compaction (no-op when the delta is empty).  Only one
        compaction runs at a time; a second caller gets a skipped
        status instead of queueing."""
        if not self._compact_lock.acquire(blocking=False):
            return {"skipped": "compaction already running"}
        try:
            self.compacting = True
            try:
                status = self.corpus.compact()
            finally:
                self.compacting = False
            if status.get("compacted_rows"):
                with self._lock:
                    self._swap()
                    self.compactions += 1
            self.last_compaction = status
            return status
        finally:
            self._compact_lock.release()

    def _compactor_loop(self) -> None:
        while not self._stop.wait(self._compact_interval):
            try:
                if self.corpus.delta_row_count >= self.compact_rows:
                    self.compact()
            except StoreError as error:
                self.last_compaction = {"error": str(error)}

    # -- observability ---------------------------------------------------------

    def status(self) -> dict:
        with self._lock:
            return {
                "generation": self.corpus.generation,
                "base_rows": self.corpus.base_rows,
                "delta_rows": self.corpus.delta_row_count,
                "wal_records": self.corpus.wal_records,
                "next_tid": self.corpus.next_tid,
                "appends": self.appends,
                "compactions": self.compactions,
                "compacting": self.compacting,
                "auto_compact_rows": self.compact_rows or None,
                "last_compaction": self.last_compaction,
                "last_recovery": self.corpus.manifest.last_recovery or None,
                "retired_engines": len(self._retired),
            }

    def verify(self) -> tuple[bool, Optional[str]]:
        return self.corpus.verify_on_disk()

    # -- lifecycle -------------------------------------------------------------

    def _close_corpora(self) -> None:
        for mapped in self._corpora.values():
            with contextlib.suppress(Exception):
                mapped.close()
        self._corpora.clear()

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            engines = [engine for _, engine in self._retired]
            self._retired = []
            if getattr(self, "engine", None) is not None:
                engines.append(self.engine)
                self.engine = None
            for engine in engines:
                with contextlib.suppress(Exception):
                    engine.close()
            self._close_corpora()
            self.corpus.close()
