"""Compiled-corpus storage: persist label relations to a binary file.

TGrep2 queries a "binary file representation of the data"; the analogous
artifact for the LPath engine is the labeled relation itself.  This module
writes ``node(tid, left, right, depth, id, pid, name, value)`` rows to a
compact binary file so an engine can start without re-parsing and
re-labeling the treebank.  Three on-disk revisions exist:

* ``LPDB0001`` — magic + payload, no checksum (read-only legacy);
* ``LPDB0002`` — magic + payload length + CRC-32 + payload, where the
  payload is a row count, a string table (interned names and values —
  tags and words repeat heavily), then rows of seven varint-packed
  integers plus two string-table references;
* ``LPDB0003`` — the *segmented* format: magic + a manifest (segment
  count) followed by one block per segment, each block carrying its own
  length + CRC-32 header over an ``LPDB0002``-shaped payload.  Segments
  partition the corpus by tree (``tid``), so every block is a
  self-contained shard that one :class:`repro.columnar.ColumnStore` (or
  row table) can adopt independently and query in parallel.

Every revision is self-contained and versioned; the loaders verify the
magic, the declared lengths and the checksums, so truncation and bit
corruption fail loudly with :class:`StoreError` instead of decoding to
garbage.

Loaders share one payload parser: :func:`load_labels` materializes
``Label`` rows for the row-oriented engine, :func:`load_label_columns`
fills parallel arrays directly — the shape
:class:`repro.columnar.ColumnStore` adopts without ever building a
per-row object — and :func:`load_segment_columns` keeps the shards of an
``LPDB0003`` file apart (older single-store files load as one segment).
"""

from __future__ import annotations

import io
import zlib
from array import array
from dataclasses import dataclass, field
from typing import BinaryIO, Iterable, Optional, Sequence

from .labeling.lpath_scheme import Label

MAGIC = b"LPDB0002"
LEGACY_MAGIC = b"LPDB0001"
SEGMENTED_MAGIC = b"LPDB0003"
#: String-table index meaning "no value" (element rows).
_NO_VALUE = 0


class StoreError(ValueError):
    """Raised for unreadable or corrupt corpus files."""


def _write_varint(out: BinaryIO, value: int) -> None:
    if value < 0:
        raise StoreError(f"cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise StoreError("truncated varint")
        if shift > 63:
            raise StoreError("varint out of range")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            # No legitimate field exceeds a signed 64-bit value; anything
            # larger is corruption (and would otherwise overflow the
            # column arrays).
            if result >= 1 << 63:
                raise StoreError("varint out of range")
            return result, offset
        shift += 7


def _encode_payload(rows: Iterable) -> tuple[bytes, int]:
    """Encode rows into one LPDB payload blob; returns ``(blob, count)``."""
    strings: dict[str, int] = {}

    def intern(text: str) -> int:
        index = strings.get(text)
        if index is None:
            index = len(strings) + 1  # 0 is reserved for "no value"
            strings[text] = index
        return index

    body = io.BytesIO()
    count = 0
    for row in rows:
        tid, left, right, depth, node_id, pid, name, value = row
        _write_varint(body, tid)
        _write_varint(body, left)
        _write_varint(body, right)
        _write_varint(body, depth)
        _write_varint(body, node_id)
        _write_varint(body, pid)
        _write_varint(body, intern(name))
        _write_varint(body, _NO_VALUE if value is None else intern(value))
        count += 1

    payload = io.BytesIO()
    _write_varint(payload, count)
    _write_varint(payload, len(strings))
    for text in strings:  # insertion order == index order
        encoded = text.encode("utf-8")
        _write_varint(payload, len(encoded))
        payload.write(encoded)
    payload.write(body.getvalue())
    return payload.getvalue(), count


def _write_block(stream: BinaryIO, blob: bytes) -> None:
    """One length + CRC-32 header followed by the payload bytes."""
    header = io.BytesIO()
    _write_varint(header, len(blob))
    _write_varint(header, zlib.crc32(blob))
    stream.write(header.getvalue())
    stream.write(blob)


def partition_rows_by_tid(rows: Sequence, segments: int) -> list[list]:
    """Deal the trees of a label relation into ``segments`` disjoint shards.

    Trees stay whole (every row of one ``tid`` lands in the same shard);
    distinct tids are dealt round-robin in sorted order, so the split is
    deterministic and balanced for the common case of similar tree sizes.
    Shards may be empty when there are fewer trees than segments.
    """
    if segments < 1:
        raise StoreError(f"segment count must be >= 1, got {segments}")
    assignment = {
        tid: index % segments
        for index, tid in enumerate(sorted({row[0] for row in rows}))
    }
    shards: list[list] = [[] for _ in range(segments)]
    for row in rows:
        shards[assignment[row[0]]].append(row)
    return shards


def save_segments(
    segment_rows: Sequence[Sequence[Label]], stream: BinaryIO
) -> int:
    """Write an ``LPDB0003`` segmented corpus; returns total rows written.

    The caller controls the sharding — each element of ``segment_rows``
    becomes one block.  Use :func:`partition_rows_by_tid` for the standard
    tid-partitioned split (required for parallel query execution to return
    distinct results; this function does not re-check it).
    """
    stream.write(SEGMENTED_MAGIC)
    header = io.BytesIO()
    _write_varint(header, len(segment_rows))
    stream.write(header.getvalue())
    total = 0
    for rows in segment_rows:
        blob, count = _encode_payload(rows)
        _write_block(stream, blob)
        total += count
    return total


def save_labels(
    rows: Sequence[Label], stream: BinaryIO, checksum: bool = True,
    segments: int = 1,
) -> int:
    """Write label rows; returns the number of rows written.

    ``segments > 1`` writes the ``LPDB0003`` segmented layout with the
    corpus partitioned by tree (:func:`partition_rows_by_tid`).
    ``checksum=False`` writes the legacy ``LPDB0001`` layout (no length or
    CRC header) — kept for round-trip tests against old files; it has no
    segmented variant.
    """
    if segments < 1:
        raise StoreError(f"segment count must be >= 1, got {segments}")
    if segments > 1:
        if not checksum:
            raise StoreError("the segmented layout always carries checksums")
        return save_segments(partition_rows_by_tid(rows, segments), stream)
    blob, count = _encode_payload(rows)
    if not checksum:
        stream.write(LEGACY_MAGIC)
        stream.write(blob)
        return count
    stream.write(MAGIC)
    _write_block(stream, blob)
    return count


# -- parsing (shared by both loaders) -----------------------------------------


def _checked_block(data: bytes, offset: int) -> tuple[bytes, int]:
    """Verify one length + CRC-32 block at ``offset``; returns the payload
    bytes and the offset past the block."""
    length, offset = _read_varint(data, offset)
    expected_crc, offset = _read_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise StoreError(
            f"payload length mismatch: header says {length}, "
            f"file has {len(data) - offset}"
        )
    payload = data[offset:end]
    if zlib.crc32(payload) != expected_crc:
        raise StoreError("checksum mismatch: the file is corrupt")
    return payload, end


def _segment_payloads(data: bytes) -> list[bytes]:
    """Verify magics/lengths/CRCs and return one payload per segment.

    Single-store revisions (``LPDB0001``/``LPDB0002``) come back as one
    segment, so every caller sees the same shape regardless of the on-disk
    format generation.
    """
    if data.startswith(LEGACY_MAGIC):
        return [data[len(LEGACY_MAGIC):]]
    if data.startswith(MAGIC):
        payload, end = _checked_block(data, len(MAGIC))
        if end != len(data):
            raise StoreError(f"{len(data) - end} trailing bytes after payload")
        return [payload]
    if data.startswith(SEGMENTED_MAGIC):
        count, offset = _read_varint(data, len(SEGMENTED_MAGIC))
        payloads: list[bytes] = []
        for _ in range(count):
            payload, offset = _checked_block(data, offset)
            payloads.append(payload)
        if offset != len(data):
            raise StoreError(
                f"{len(data) - offset} trailing bytes after the last segment"
            )
        return payloads
    raise StoreError(
        "not a compiled corpus file (bad magic; expected LPDB0002/LPDB0003)"
    )


def _parse_string_table(payload: bytes) -> tuple[int, list[str], int]:
    """``(row count, string table, row-data offset)`` from the payload."""
    count, offset = _read_varint(payload, 0)
    table_size, offset = _read_varint(payload, offset)
    table: list[str] = [""]  # index 0: no value
    for _ in range(table_size):
        length, offset = _read_varint(payload, offset)
        end = offset + length
        if end > len(payload):
            raise StoreError("truncated string table")
        try:
            table.append(payload[offset:end].decode("utf-8"))
        except UnicodeDecodeError:
            raise StoreError("undecodable string-table entry") from None
        offset = end
    return count, table, offset


def load_labels(stream: BinaryIO) -> list[Label]:
    """Read label rows written by :func:`save_labels` (any revision;
    segmented files concatenate their shards in segment order)."""
    rows: list[Label] = []
    for payload in _segment_payloads(stream.read()):
        _decode_labels_into(payload, rows)
    return rows


def _decode_labels_into(payload: bytes, rows: list[Label]) -> None:
    count, table, offset = _parse_string_table(payload)
    for _ in range(count):
        tid, offset = _read_varint(payload, offset)
        left, offset = _read_varint(payload, offset)
        right, offset = _read_varint(payload, offset)
        depth, offset = _read_varint(payload, offset)
        node_id, offset = _read_varint(payload, offset)
        pid, offset = _read_varint(payload, offset)
        name_index, offset = _read_varint(payload, offset)
        value_index, offset = _read_varint(payload, offset)
        try:
            name = table[name_index]
            value = None if value_index == _NO_VALUE else table[value_index]
        except IndexError:
            raise StoreError("string-table reference out of range") from None
        rows.append(Label(tid, left, right, depth, node_id, pid, name, value))
    if offset != len(payload):
        raise StoreError(f"{len(payload) - offset} trailing bytes after rows")


@dataclass
class LabelColumns:
    """The label relation as parallel columns (no per-row objects)."""

    tid: array = field(default_factory=lambda: array("q"))
    left: array = field(default_factory=lambda: array("q"))
    right: array = field(default_factory=lambda: array("q"))
    depth: array = field(default_factory=lambda: array("q"))
    id: array = field(default_factory=lambda: array("q"))
    pid: array = field(default_factory=lambda: array("q"))
    names: list[str] = field(default_factory=list)
    values: list[Optional[str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tid)


def load_label_columns(stream: BinaryIO) -> LabelColumns:
    """Read a compiled corpus straight into parallel columns.

    Decodes the same byte layout as :func:`load_labels` but appends each
    field to its column array — no :class:`Label` (or any other per-row
    object) is ever created, which is what makes cold columnar-engine
    startup linear in the file size with tiny constant factors.  Segmented
    files merge their shards into one bundle; use
    :func:`load_segment_columns` to keep them apart.
    """
    columns = LabelColumns()
    for payload in _segment_payloads(stream.read()):
        _decode_columns_into(payload, columns)
    return columns


def load_segment_columns(stream: BinaryIO) -> list[LabelColumns]:
    """Read a compiled corpus as one column bundle *per segment*.

    The shard structure of an ``LPDB0003`` file survives loading — each
    bundle feeds one :class:`repro.columnar.ColumnStore`, which is what a
    segmented engine fans queries out over.  Single-store revisions load
    as one segment, so callers need no format-generation switch.
    """
    segments: list[LabelColumns] = []
    for payload in _segment_payloads(stream.read()):
        columns = LabelColumns()
        _decode_columns_into(payload, columns)
        segments.append(columns)
    return segments


def _decode_columns_into(payload: bytes, columns: LabelColumns) -> None:
    count, table, offset = _parse_string_table(payload)
    ints = (columns.tid, columns.left, columns.right,
            columns.depth, columns.id, columns.pid)
    names, values = columns.names, columns.values
    read = _read_varint
    for _ in range(count):
        for column in ints:
            value, offset = read(payload, offset)
            column.append(value)
        name_index, offset = read(payload, offset)
        value_index, offset = read(payload, offset)
        try:
            names.append(table[name_index])
            values.append(None if value_index == _NO_VALUE else table[value_index])
        except IndexError:
            raise StoreError("string-table reference out of range") from None
    if offset != len(payload):
        raise StoreError(f"{len(payload) - offset} trailing bytes after rows")


def partition_columns(columns: LabelColumns, segments: int) -> list[LabelColumns]:
    """Shard one column bundle by tree, mirroring
    :func:`partition_rows_by_tid` (same deterministic round-robin deal
    over sorted tids), without materializing row objects."""
    if segments < 1:
        raise StoreError(f"segment count must be >= 1, got {segments}")
    assignment = {
        tid: index % segments
        for index, tid in enumerate(sorted(set(columns.tid)))
    }
    shards = [LabelColumns() for _ in range(segments)]
    ints = ("tid", "left", "right", "depth", "id", "pid")
    for row in range(len(columns)):
        shard = shards[assignment[columns.tid[row]]]
        for name in ints:
            getattr(shard, name).append(getattr(columns, name)[row])
        shard.names.append(columns.names[row])
        shard.values.append(columns.values[row])
    return shards


# -- file helpers -------------------------------------------------------------


def save_corpus(trees: Iterable, path: str, segments: int = 1) -> int:
    """Label a corpus of trees and save it; returns the row count.

    ``segments > 1`` writes the ``LPDB0003`` segmented layout, sharded by
    tree."""
    from .labeling.lpath_scheme import label_corpus

    with open(path, "wb") as handle:
        return save_labels(list(label_corpus(trees)), handle, segments=segments)


def load_corpus_labels(path: str) -> list[Label]:
    """Load label rows from a compiled corpus file."""
    with open(path, "rb") as handle:
        return load_labels(handle)


def load_corpus_columns(path: str) -> LabelColumns:
    """Load a compiled corpus file straight into parallel columns."""
    with open(path, "rb") as handle:
        return load_label_columns(handle)


def load_corpus_segments(path: str) -> list[LabelColumns]:
    """Load a compiled corpus file as per-segment column bundles."""
    with open(path, "rb") as handle:
        return load_segment_columns(handle)


def corpus_segment_count(path: str) -> int:
    """How many segments the file declares (1 for single-store formats),
    from the header alone — no payload is read or verified."""
    with open(path, "rb") as handle:
        head = handle.read(len(SEGMENTED_MAGIC) + 10)
    if head.startswith((MAGIC, LEGACY_MAGIC)):
        return 1
    if head.startswith(SEGMENTED_MAGIC):
        count, _ = _read_varint(head, len(SEGMENTED_MAGIC))
        return count
    raise StoreError(
        "not a compiled corpus file (bad magic; expected LPDB0002/LPDB0003)"
    )


def is_compiled_corpus(path: str) -> bool:
    """Cheap sniff: does the file start with an LPDB magic?"""
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            return magic in (MAGIC, LEGACY_MAGIC, SEGMENTED_MAGIC)
    except OSError:
        return False
