"""Compiled-corpus storage: persist label relations to a binary file.

TGrep2 queries a "binary file representation of the data"; the analogous
artifact for the LPath engine is the labeled relation itself.  This module
writes ``node(tid, left, right, depth, id, pid, name, value)`` rows to a
compact binary file so an engine can start without re-parsing and
re-labeling the treebank:

* header: magic ``LPDB0002`` + payload length + CRC-32 of the payload,
* payload: row count, string table (interned names and values — tags and
  words repeat heavily), then rows of seven varint-packed integers plus
  two string-table references.

The format is self-contained and versioned; both loaders verify the magic,
the declared length and the checksum, so truncation and bit corruption
fail loudly with :class:`StoreError` instead of decoding to garbage.
Files written by the previous ``LPDB0001`` revision (no checksum) are
still readable.

Two loaders share one parser: :func:`load_labels` materializes ``Label``
rows for the row-oriented engine, while :func:`load_label_columns` fills
parallel arrays directly — the shape :class:`repro.columnar.ColumnStore`
adopts without ever building a per-row object.
"""

from __future__ import annotations

import io
import zlib
from array import array
from dataclasses import dataclass, field
from typing import BinaryIO, Iterable, Optional, Sequence

from .labeling.lpath_scheme import Label

MAGIC = b"LPDB0002"
LEGACY_MAGIC = b"LPDB0001"
#: String-table index meaning "no value" (element rows).
_NO_VALUE = 0


class StoreError(ValueError):
    """Raised for unreadable or corrupt corpus files."""


def _write_varint(out: BinaryIO, value: int) -> None:
    if value < 0:
        raise StoreError(f"cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise StoreError("truncated varint")
        if shift > 63:
            raise StoreError("varint out of range")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            # No legitimate field exceeds a signed 64-bit value; anything
            # larger is corruption (and would otherwise overflow the
            # column arrays).
            if result >= 1 << 63:
                raise StoreError("varint out of range")
            return result, offset
        shift += 7


def save_labels(
    rows: Sequence[Label], stream: BinaryIO, checksum: bool = True
) -> int:
    """Write label rows; returns the number of rows written.

    ``checksum=False`` writes the legacy ``LPDB0001`` layout (no length or
    CRC header) — kept for round-trip tests against old files.
    """
    strings: dict[str, int] = {}

    def intern(text: str) -> int:
        index = strings.get(text)
        if index is None:
            index = len(strings) + 1  # 0 is reserved for "no value"
            strings[text] = index
        return index

    body = io.BytesIO()
    count = 0
    for row in rows:
        _write_varint(body, row.tid)
        _write_varint(body, row.left)
        _write_varint(body, row.right)
        _write_varint(body, row.depth)
        _write_varint(body, row.id)
        _write_varint(body, row.pid)
        _write_varint(body, intern(row.name))
        _write_varint(body, _NO_VALUE if row.value is None else intern(row.value))
        count += 1

    payload = io.BytesIO()
    _write_varint(payload, count)
    _write_varint(payload, len(strings))
    for text in strings:  # insertion order == index order
        encoded = text.encode("utf-8")
        _write_varint(payload, len(encoded))
        payload.write(encoded)
    payload.write(body.getvalue())
    blob = payload.getvalue()

    if not checksum:
        stream.write(LEGACY_MAGIC)
        stream.write(blob)
        return count
    stream.write(MAGIC)
    header = io.BytesIO()
    _write_varint(header, len(blob))
    _write_varint(header, zlib.crc32(blob))
    stream.write(header.getvalue())
    stream.write(blob)
    return count


# -- parsing (shared by both loaders) -----------------------------------------


def _checked_payload(data: bytes) -> bytes:
    """Verify magic/length/CRC and return the payload bytes."""
    if data.startswith(LEGACY_MAGIC):
        return data[len(LEGACY_MAGIC):]
    if not data.startswith(MAGIC):
        raise StoreError(
            "not a compiled corpus file (bad magic; expected LPDB0002)"
        )
    offset = len(MAGIC)
    length, offset = _read_varint(data, offset)
    expected_crc, offset = _read_varint(data, offset)
    payload = data[offset:]
    if len(payload) != length:
        raise StoreError(
            f"payload length mismatch: header says {length}, file has {len(payload)}"
        )
    if zlib.crc32(payload) != expected_crc:
        raise StoreError("checksum mismatch: the file is corrupt")
    return payload


def _parse_string_table(payload: bytes) -> tuple[int, list[str], int]:
    """``(row count, string table, row-data offset)`` from the payload."""
    count, offset = _read_varint(payload, 0)
    table_size, offset = _read_varint(payload, offset)
    table: list[str] = [""]  # index 0: no value
    for _ in range(table_size):
        length, offset = _read_varint(payload, offset)
        end = offset + length
        if end > len(payload):
            raise StoreError("truncated string table")
        try:
            table.append(payload[offset:end].decode("utf-8"))
        except UnicodeDecodeError:
            raise StoreError("undecodable string-table entry") from None
        offset = end
    return count, table, offset


def load_labels(stream: BinaryIO) -> list[Label]:
    """Read label rows written by :func:`save_labels`."""
    payload = _checked_payload(stream.read())
    count, table, offset = _parse_string_table(payload)
    rows: list[Label] = []
    for _ in range(count):
        tid, offset = _read_varint(payload, offset)
        left, offset = _read_varint(payload, offset)
        right, offset = _read_varint(payload, offset)
        depth, offset = _read_varint(payload, offset)
        node_id, offset = _read_varint(payload, offset)
        pid, offset = _read_varint(payload, offset)
        name_index, offset = _read_varint(payload, offset)
        value_index, offset = _read_varint(payload, offset)
        try:
            name = table[name_index]
            value = None if value_index == _NO_VALUE else table[value_index]
        except IndexError:
            raise StoreError("string-table reference out of range") from None
        rows.append(Label(tid, left, right, depth, node_id, pid, name, value))
    if offset != len(payload):
        raise StoreError(f"{len(payload) - offset} trailing bytes after rows")
    return rows


@dataclass
class LabelColumns:
    """The label relation as parallel columns (no per-row objects)."""

    tid: array = field(default_factory=lambda: array("q"))
    left: array = field(default_factory=lambda: array("q"))
    right: array = field(default_factory=lambda: array("q"))
    depth: array = field(default_factory=lambda: array("q"))
    id: array = field(default_factory=lambda: array("q"))
    pid: array = field(default_factory=lambda: array("q"))
    names: list[str] = field(default_factory=list)
    values: list[Optional[str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tid)


def load_label_columns(stream: BinaryIO) -> LabelColumns:
    """Read a compiled corpus straight into parallel columns.

    Decodes the same byte layout as :func:`load_labels` but appends each
    field to its column array — no :class:`Label` (or any other per-row
    object) is ever created, which is what makes cold columnar-engine
    startup linear in the file size with tiny constant factors.
    """
    payload = _checked_payload(stream.read())
    count, table, offset = _parse_string_table(payload)
    columns = LabelColumns()
    ints = (columns.tid, columns.left, columns.right,
            columns.depth, columns.id, columns.pid)
    names, values = columns.names, columns.values
    read = _read_varint
    for _ in range(count):
        for column in ints:
            value, offset = read(payload, offset)
            column.append(value)
        name_index, offset = read(payload, offset)
        value_index, offset = read(payload, offset)
        try:
            names.append(table[name_index])
            values.append(None if value_index == _NO_VALUE else table[value_index])
        except IndexError:
            raise StoreError("string-table reference out of range") from None
    if offset != len(payload):
        raise StoreError(f"{len(payload) - offset} trailing bytes after rows")
    return columns


# -- file helpers -------------------------------------------------------------


def save_corpus(trees: Iterable, path: str) -> int:
    """Label a corpus of trees and save it; returns the row count."""
    from .labeling.lpath_scheme import label_corpus

    with open(path, "wb") as handle:
        return save_labels(list(label_corpus(trees)), handle)


def load_corpus_labels(path: str) -> list[Label]:
    """Load label rows from a compiled corpus file."""
    with open(path, "rb") as handle:
        return load_labels(handle)


def load_corpus_columns(path: str) -> LabelColumns:
    """Load a compiled corpus file straight into parallel columns."""
    with open(path, "rb") as handle:
        return load_label_columns(handle)


def is_compiled_corpus(path: str) -> bool:
    """Cheap sniff: does the file start with an LPDB magic?"""
    try:
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            return magic in (MAGIC, LEGACY_MAGIC)
    except OSError:
        return False
