"""Compiled-corpus storage: persist label relations to a binary file.

TGrep2 queries a "binary file representation of the data"; the analogous
artifact for the LPath engine is the labeled relation itself.  This module
writes ``node(tid, left, right, depth, id, pid, name, value)`` rows to a
compact binary file so an engine can start without re-parsing and
re-labeling the treebank:

* header: magic ``LPDB0001`` + row count,
* string table: interned names and values (tags and words repeat heavily),
* rows: seven varint-packed integers plus two string-table references.

The format is self-contained and versioned; :func:`load_labels` verifies
the magic and fails loudly on corruption.
"""

from __future__ import annotations

import io
from typing import BinaryIO, Iterable, Sequence

from .labeling.lpath_scheme import Label

MAGIC = b"LPDB0001"
#: String-table index meaning "no value" (element rows).
_NO_VALUE = 0


class StoreError(ValueError):
    """Raised for unreadable or corrupt corpus files."""


def _write_varint(out: BinaryIO, value: int) -> None:
    if value < 0:
        raise StoreError(f"cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise StoreError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def save_labels(rows: Sequence[Label], stream: BinaryIO) -> int:
    """Write label rows; returns the number of rows written."""
    strings: dict[str, int] = {}

    def intern(text: str) -> int:
        index = strings.get(text)
        if index is None:
            index = len(strings) + 1  # 0 is reserved for "no value"
            strings[text] = index
        return index

    body = io.BytesIO()
    count = 0
    for row in rows:
        _write_varint(body, row.tid)
        _write_varint(body, row.left)
        _write_varint(body, row.right)
        _write_varint(body, row.depth)
        _write_varint(body, row.id)
        _write_varint(body, row.pid)
        _write_varint(body, intern(row.name))
        _write_varint(body, _NO_VALUE if row.value is None else intern(row.value))
        count += 1

    stream.write(MAGIC)
    header = io.BytesIO()
    _write_varint(header, count)
    _write_varint(header, len(strings))
    for text in strings:  # insertion order == index order
        encoded = text.encode("utf-8")
        _write_varint(header, len(encoded))
        header.write(encoded)
    stream.write(header.getvalue())
    stream.write(body.getvalue())
    return count


def load_labels(stream: BinaryIO) -> list[Label]:
    """Read label rows written by :func:`save_labels`."""
    data = stream.read()
    if not data.startswith(MAGIC):
        raise StoreError(
            "not a compiled corpus file (bad magic; expected LPDB0001)"
        )
    offset = len(MAGIC)
    count, offset = _read_varint(data, offset)
    table_size, offset = _read_varint(data, offset)
    table: list[str] = [""]  # index 0: no value
    for _ in range(table_size):
        length, offset = _read_varint(data, offset)
        end = offset + length
        if end > len(data):
            raise StoreError("truncated string table")
        table.append(data[offset:end].decode("utf-8"))
        offset = end
    rows: list[Label] = []
    for _ in range(count):
        tid, offset = _read_varint(data, offset)
        left, offset = _read_varint(data, offset)
        right, offset = _read_varint(data, offset)
        depth, offset = _read_varint(data, offset)
        node_id, offset = _read_varint(data, offset)
        pid, offset = _read_varint(data, offset)
        name_index, offset = _read_varint(data, offset)
        value_index, offset = _read_varint(data, offset)
        try:
            name = table[name_index]
            value = None if value_index == _NO_VALUE else table[value_index]
        except IndexError:
            raise StoreError("string-table reference out of range") from None
        rows.append(Label(tid, left, right, depth, node_id, pid, name, value))
    if offset != len(data):
        raise StoreError(f"{len(data) - offset} trailing bytes after rows")
    return rows


def save_corpus(trees: Iterable, path: str) -> int:
    """Label a corpus of trees and save it; returns the row count."""
    from .labeling.lpath_scheme import label_corpus

    with open(path, "wb") as handle:
        return save_labels(list(label_corpus(trees)), handle)


def load_corpus_labels(path: str) -> list[Label]:
    """Load label rows from a compiled corpus file."""
    with open(path, "rb") as handle:
        return load_labels(handle)


def is_compiled_corpus(path: str) -> bool:
    """Cheap sniff: does the file start with the LPDB magic?"""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
