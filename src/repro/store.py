"""Compiled-corpus storage: persist label relations to a binary file.

TGrep2 queries a "binary file representation of the data"; the analogous
artifact for the LPath engine is the labeled relation itself.  This module
writes ``node(tid, left, right, depth, id, pid, name, value)`` rows to a
compact binary file so an engine can start without re-parsing and
re-labeling the treebank.  Four on-disk revisions exist:

* ``LPDB0001`` — magic + payload, no checksum (read-only legacy);
* ``LPDB0002`` — magic + payload length + CRC-32 + payload, where the
  payload is a row count, a string table (interned names and values —
  tags and words repeat heavily), then rows of seven varint-packed
  integers plus two string-table references;
* ``LPDB0003`` — the *segmented* format: magic + a manifest (segment
  count) followed by one block per segment, each block carrying its own
  length + CRC-32 header over an ``LPDB0002``-shaped payload.  Segments
  partition the corpus by tree (``tid``), so every block is a
  self-contained shard that one :class:`repro.columnar.ColumnStore` (or
  row table) can adopt independently and query in parallel;
* ``LPDB0004`` — the *zero-copy* layout: a small varint sidecar (string
  table, per-name directory with collected ``NameStats``, per-tree
  directories, blob offsets — everything O(segments + names + trees))
  followed by an 8-aligned data region holding each segment's columns as
  raw native-endian int64 blobs *in clustered order*, plus the derived
  structures a :class:`~repro.columnar.ColumnStore` otherwise builds at
  load time (``(tid, id)`` and children permutations, attribute/edge
  bitmaps, per-``(name, tid)`` partition bounds).  Opening the file
  (:func:`open_mapped_corpus`) ``mmap``\\ s it and adopts ``memoryview``\\ s
  straight off the map — no per-row decode, no sort, no statistics scan;
* ``LPDB0005`` — the *live* layout (:mod:`repro.live`): a **directory**
  of immutable base ``LPDB0004`` segment files, an append-only
  write-ahead log of row batches (length+CRC-framed, fsync'd before
  acknowledgement), and a generation-numbered manifest installed
  atomically (write-temp → fsync → ``os.replace`` → fsync(dir)).  The
  path-level helpers here (:func:`corpus_format`, :func:`corpus_info`,
  :func:`store_fingerprint`, ...) dispatch directories to that module.

Every *file* write goes through :func:`atomic_write`: the bytes land in
a same-directory temp file, are fsync'd, and only then atomically
renamed over the destination — a crash mid-save can leave a stray temp
file but can never truncate a previously good store.

Every revision is self-contained and versioned; the loaders verify the
magic, the declared lengths and the checksums, so truncation and bit
corruption fail loudly with :class:`StoreError` instead of decoding to
garbage.  (``LPDB0004`` checksums its sidecar and validates every blob
offset/length against the file size; the column blobs themselves are
trusted after those checks — re-checksumming gigabytes of columns on
every open would defeat the O(1) cold start.)

Loaders share one payload parser: :func:`load_labels` materializes
``Label`` rows for the row-oriented engine, :func:`load_label_columns`
fills parallel arrays directly — the shape
:class:`repro.columnar.ColumnStore` adopts without ever building a
per-row object — and :func:`load_segment_columns` keeps the shards of an
``LPDB0003``/``LPDB0004`` file apart (older single-store files load as
one segment).
"""

from __future__ import annotations

import contextlib
import io
import mmap as _mmap_module
import os
import sys
import zlib
from array import array
from dataclasses import dataclass, field
from typing import BinaryIO, Iterable, Iterator, Optional, Sequence

from .labeling.lpath_scheme import Label

MAGIC = b"LPDB0002"
LEGACY_MAGIC = b"LPDB0001"
SEGMENTED_MAGIC = b"LPDB0003"
MMAP_MAGIC = b"LPDB0004"
#: The live *directory* layout's manifest magic (:mod:`repro.live`).
LIVE_MAGIC = b"LPDB0005"

#: ``save_labels(format=...)`` spellings, newest last (``lpdb0005`` is a
#: directory layout, valid for :func:`save_corpus` but not for the
#: stream-oriented :func:`save_labels`).
FORMATS = ("lpdb0002", "lpdb0003", "lpdb0004")
LIVE_FORMAT = "lpdb0005"
#: String-table index meaning "no value" (element rows).
_NO_VALUE = 0


class StoreError(ValueError):
    """Raised for unreadable or corrupt corpus files."""


def fsync_directory(path: str) -> None:
    """fsync a directory so a just-renamed/created entry is durable.

    Best-effort on platforms whose directory handles refuse ``fsync``
    (the rename itself is still atomic there)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_write(path: str) -> Iterator[BinaryIO]:
    """Write ``path`` crash-safely: temp file in the same directory,
    flush + fsync, then ``os.replace`` over the destination and fsync
    the directory.

    A crash (or an exception — the temp file is removed) at any point
    before the rename leaves the previous contents of ``path``
    untouched; after the rename the new contents are complete.  There is
    no window in which ``path`` is truncated or half-written, which is
    what makes re-saving over a live store safe."""
    absolute = os.path.abspath(path)
    directory = os.path.dirname(absolute)
    temp = os.path.join(
        directory, f".{os.path.basename(absolute)}.tmp-{os.getpid()}"
    )
    handle = open(temp, "wb")
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        with contextlib.suppress(OSError):
            os.unlink(temp)
        raise
    handle.close()
    os.replace(temp, absolute)
    fsync_directory(directory)


def _write_varint(out: BinaryIO, value: int) -> None:
    if value < 0:
        raise StoreError(f"cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise StoreError("truncated varint")
        if shift > 63:
            raise StoreError("varint out of range")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            # No legitimate field exceeds a signed 64-bit value; anything
            # larger is corruption (and would otherwise overflow the
            # column arrays).
            if result >= 1 << 63:
                raise StoreError("varint out of range")
            return result, offset
        shift += 7


def _encode_payload(rows: Iterable) -> tuple[bytes, int]:
    """Encode rows into one LPDB payload blob; returns ``(blob, count)``."""
    strings: dict[str, int] = {}

    def intern(text: str) -> int:
        index = strings.get(text)
        if index is None:
            index = len(strings) + 1  # 0 is reserved for "no value"
            strings[text] = index
        return index

    body = io.BytesIO()
    count = 0
    for row in rows:
        tid, left, right, depth, node_id, pid, name, value = row
        _write_varint(body, tid)
        _write_varint(body, left)
        _write_varint(body, right)
        _write_varint(body, depth)
        _write_varint(body, node_id)
        _write_varint(body, pid)
        _write_varint(body, intern(name))
        _write_varint(body, _NO_VALUE if value is None else intern(value))
        count += 1

    payload = io.BytesIO()
    _write_varint(payload, count)
    _write_varint(payload, len(strings))
    for text in strings:  # insertion order == index order
        encoded = text.encode("utf-8")
        _write_varint(payload, len(encoded))
        payload.write(encoded)
    payload.write(body.getvalue())
    return payload.getvalue(), count


def _write_block(stream: BinaryIO, blob: bytes) -> None:
    """One length + CRC-32 header followed by the payload bytes."""
    header = io.BytesIO()
    _write_varint(header, len(blob))
    _write_varint(header, zlib.crc32(blob))
    stream.write(header.getvalue())
    stream.write(blob)


def partition_rows_by_tid(rows: Sequence, segments: int) -> list[list]:
    """Deal the trees of a label relation into ``segments`` disjoint shards.

    Trees stay whole (every row of one ``tid`` lands in the same shard);
    distinct tids are dealt round-robin in sorted order, so the split is
    deterministic and balanced for the common case of similar tree sizes.
    Shards may be empty when there are fewer trees than segments.
    """
    if segments < 1:
        raise StoreError(f"segment count must be >= 1, got {segments}")
    assignment = {
        tid: index % segments
        for index, tid in enumerate(sorted({row[0] for row in rows}))
    }
    shards: list[list] = [[] for _ in range(segments)]
    for row in rows:
        shards[assignment[row[0]]].append(row)
    return shards


def save_segments(
    segment_rows: Sequence[Sequence[Label]], stream: BinaryIO
) -> int:
    """Write an ``LPDB0003`` segmented corpus; returns total rows written.

    The caller controls the sharding — each element of ``segment_rows``
    becomes one block.  Use :func:`partition_rows_by_tid` for the standard
    tid-partitioned split (required for parallel query execution to return
    distinct results; this function does not re-check it).
    """
    stream.write(SEGMENTED_MAGIC)
    header = io.BytesIO()
    _write_varint(header, len(segment_rows))
    stream.write(header.getvalue())
    total = 0
    for rows in segment_rows:
        blob, count = _encode_payload(rows)
        _write_block(stream, blob)
        total += count
    return total


def save_labels(
    rows: Sequence[Label], stream: BinaryIO, checksum: bool = True,
    segments: int = 1, format: Optional[str] = None,
) -> int:
    """Write label rows; returns the number of rows written.

    ``format`` pins the on-disk revision (``"lpdb0002"``, ``"lpdb0003"``
    or the zero-copy ``"lpdb0004"``); the default (``None``) keeps the
    historical behavior — ``segments > 1`` writes the ``LPDB0003``
    segmented layout with the corpus partitioned by tree
    (:func:`partition_rows_by_tid`), one segment writes ``LPDB0002``.
    ``checksum=False`` writes the legacy ``LPDB0001`` layout (no length or
    CRC header) — kept for round-trip tests against old files; it has no
    segmented or pinned-format variant.
    """
    if segments < 1:
        raise StoreError(f"segment count must be >= 1, got {segments}")
    if format is not None:
        format = format.lower()
        if format not in FORMATS:
            raise StoreError(
                f"unknown store format {format!r}; choose from {FORMATS}"
            )
        if not checksum:
            raise StoreError("pinned formats always carry checksums")
        if format == "lpdb0004":
            return save_mapped(rows, stream, segments=segments)
        if format == "lpdb0003":
            return save_segments(partition_rows_by_tid(rows, segments), stream)
        if segments > 1:
            raise StoreError("lpdb0002 is a single-store layout; use "
                             "lpdb0003/lpdb0004 for segmented corpora")
    if segments > 1:
        if not checksum:
            raise StoreError("the segmented layout always carries checksums")
        return save_segments(partition_rows_by_tid(rows, segments), stream)
    blob, count = _encode_payload(rows)
    if not checksum:
        stream.write(LEGACY_MAGIC)
        stream.write(blob)
        return count
    stream.write(MAGIC)
    _write_block(stream, blob)
    return count


# -- parsing (shared by both loaders) -----------------------------------------


def _checked_block(data: bytes, offset: int) -> tuple[bytes, int]:
    """Verify one length + CRC-32 block at ``offset``; returns the payload
    bytes and the offset past the block."""
    length, offset = _read_varint(data, offset)
    expected_crc, offset = _read_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise StoreError(
            f"payload length mismatch: header says {length}, "
            f"file has {len(data) - offset}"
        )
    payload = data[offset:end]
    if zlib.crc32(payload) != expected_crc:
        raise StoreError("checksum mismatch: the file is corrupt")
    return payload, end


def _segment_payloads(data: bytes) -> list[bytes]:
    """Verify magics/lengths/CRCs and return one payload per segment.

    Single-store revisions (``LPDB0001``/``LPDB0002``) come back as one
    segment, so every caller sees the same shape regardless of the on-disk
    format generation.
    """
    if data.startswith(LEGACY_MAGIC):
        return [data[len(LEGACY_MAGIC):]]
    if data.startswith(MAGIC):
        payload, end = _checked_block(data, len(MAGIC))
        if end != len(data):
            raise StoreError(f"{len(data) - end} trailing bytes after payload")
        return [payload]
    if data.startswith(SEGMENTED_MAGIC):
        count, offset = _read_varint(data, len(SEGMENTED_MAGIC))
        payloads: list[bytes] = []
        for _ in range(count):
            payload, offset = _checked_block(data, offset)
            payloads.append(payload)
        if offset != len(data):
            raise StoreError(
                f"{len(data) - offset} trailing bytes after the last segment"
            )
        return payloads
    raise StoreError(
        "not a compiled corpus file (bad magic; expected LPDB0002/LPDB0003)"
    )


def _parse_string_table(payload: bytes) -> tuple[int, list[str], int]:
    """``(row count, string table, row-data offset)`` from the payload."""
    count, offset = _read_varint(payload, 0)
    table_size, offset = _read_varint(payload, offset)
    table: list[str] = [""]  # index 0: no value
    for _ in range(table_size):
        length, offset = _read_varint(payload, offset)
        end = offset + length
        if end > len(payload):
            raise StoreError("truncated string table")
        try:
            table.append(payload[offset:end].decode("utf-8"))
        except UnicodeDecodeError:
            raise StoreError("undecodable string-table entry") from None
        offset = end
    return count, table, offset


def load_labels(stream: BinaryIO) -> list[Label]:
    """Read label rows written by :func:`save_labels` (any revision;
    segmented files concatenate their shards in segment order; mapped
    files come back in clustered order)."""
    data = stream.read()
    rows: list[Label] = []
    if data.startswith(MMAP_MAGIC):
        for segment in _parse_mapped(data, []):
            _mapped_labels_into(segment, rows)
        return rows
    for payload in _segment_payloads(data):
        _decode_labels_into(payload, rows)
    return rows


def _decode_labels_into(payload: bytes, rows: list[Label]) -> None:
    count, table, offset = _parse_string_table(payload)
    for _ in range(count):
        tid, offset = _read_varint(payload, offset)
        left, offset = _read_varint(payload, offset)
        right, offset = _read_varint(payload, offset)
        depth, offset = _read_varint(payload, offset)
        node_id, offset = _read_varint(payload, offset)
        pid, offset = _read_varint(payload, offset)
        name_index, offset = _read_varint(payload, offset)
        value_index, offset = _read_varint(payload, offset)
        try:
            name = table[name_index]
            value = None if value_index == _NO_VALUE else table[value_index]
        except IndexError:
            raise StoreError("string-table reference out of range") from None
        rows.append(Label(tid, left, right, depth, node_id, pid, name, value))
    if offset != len(payload):
        raise StoreError(f"{len(payload) - offset} trailing bytes after rows")


@dataclass
class LabelColumns:
    """The label relation as parallel columns (no per-row objects)."""

    tid: array = field(default_factory=lambda: array("q"))
    left: array = field(default_factory=lambda: array("q"))
    right: array = field(default_factory=lambda: array("q"))
    depth: array = field(default_factory=lambda: array("q"))
    id: array = field(default_factory=lambda: array("q"))
    pid: array = field(default_factory=lambda: array("q"))
    names: list[str] = field(default_factory=list)
    values: list[Optional[str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tid)


def load_label_columns(stream: BinaryIO) -> LabelColumns:
    """Read a compiled corpus straight into parallel columns.

    Decodes the same byte layout as :func:`load_labels` but appends each
    field to its column array — no :class:`Label` (or any other per-row
    object) is ever created, which is what makes cold columnar-engine
    startup linear in the file size with tiny constant factors.  Segmented
    files merge their shards into one bundle; use
    :func:`load_segment_columns` to keep them apart.
    """
    data = stream.read()
    columns = LabelColumns()
    if data.startswith(MMAP_MAGIC):
        for segment in _parse_mapped(data, []):
            _mapped_columns_into(segment, columns)
        return columns
    for payload in _segment_payloads(data):
        _decode_columns_into(payload, columns)
    return columns


def load_segment_columns(stream: BinaryIO) -> list[LabelColumns]:
    """Read a compiled corpus as one column bundle *per segment*.

    The shard structure of an ``LPDB0003`` file survives loading — each
    bundle feeds one :class:`repro.columnar.ColumnStore`, which is what a
    segmented engine fans queries out over.  Single-store revisions load
    as one segment, so callers need no format-generation switch.
    """
    data = stream.read()
    segments: list[LabelColumns] = []
    if data.startswith(MMAP_MAGIC):
        for segment in _parse_mapped(data, []):
            columns = LabelColumns()
            _mapped_columns_into(segment, columns)
            segments.append(columns)
        return segments
    for payload in _segment_payloads(data):
        columns = LabelColumns()
        _decode_columns_into(payload, columns)
        segments.append(columns)
    return segments


def _decode_columns_into(payload: bytes, columns: LabelColumns) -> None:
    count, table, offset = _parse_string_table(payload)
    ints = (columns.tid, columns.left, columns.right,
            columns.depth, columns.id, columns.pid)
    names, values = columns.names, columns.values
    read = _read_varint
    for _ in range(count):
        for column in ints:
            value, offset = read(payload, offset)
            column.append(value)
        name_index, offset = read(payload, offset)
        value_index, offset = read(payload, offset)
        try:
            names.append(table[name_index])
            values.append(None if value_index == _NO_VALUE else table[value_index])
        except IndexError:
            raise StoreError("string-table reference out of range") from None
    if offset != len(payload):
        raise StoreError(f"{len(payload) - offset} trailing bytes after rows")


def partition_columns(columns: LabelColumns, segments: int) -> list[LabelColumns]:
    """Shard one column bundle by tree, mirroring
    :func:`partition_rows_by_tid` (same deterministic round-robin deal
    over sorted tids), without materializing row objects."""
    if segments < 1:
        raise StoreError(f"segment count must be >= 1, got {segments}")
    assignment = {
        tid: index % segments
        for index, tid in enumerate(sorted(set(columns.tid)))
    }
    shards = [LabelColumns() for _ in range(segments)]
    ints = ("tid", "left", "right", "depth", "id", "pid")
    for row in range(len(columns)):
        shard = shards[assignment[columns.tid[row]]]
        for name in ints:
            getattr(shard, name).append(getattr(columns, name)[row])
        shard.names.append(columns.names[row])
        shard.values.append(columns.values[row])
    return shards


# -- file helpers -------------------------------------------------------------


def save_corpus(
    trees: Iterable, path: str, segments: int = 1,
    format: Optional[str] = None,
) -> int:
    """Label a corpus of trees and save it; returns the row count.

    ``segments > 1`` writes a segmented layout, sharded by tree;
    ``format`` pins the on-disk revision (see :func:`save_labels`;
    ``"lpdb0005"`` creates a live *directory* via :mod:`repro.live`).
    File formats are written through :func:`atomic_write`, so a crash
    mid-save never destroys a previously good store at ``path``."""
    from .labeling.lpath_scheme import label_corpus

    rows = list(label_corpus(trees))
    if format is not None and format.lower() == LIVE_FORMAT:
        from .live import create_live_corpus

        create_live_corpus(path, rows, segments=segments)
        return len(rows)
    with atomic_write(path) as handle:
        return save_labels(rows, handle, segments=segments, format=format)


def load_corpus_labels(path: str) -> list[Label]:
    """Load label rows from a compiled corpus file (for a live
    directory: every base segment's rows plus the WAL delta)."""
    if os.path.isdir(path):
        from .live import load_live_labels

        return load_live_labels(path)
    with open(path, "rb") as handle:
        return load_labels(handle)


def load_corpus_columns(path: str) -> LabelColumns:
    """Load a compiled corpus file straight into parallel columns."""
    with open(path, "rb") as handle:
        return load_label_columns(handle)


def load_corpus_segments(path: str) -> list[LabelColumns]:
    """Load a compiled corpus file as per-segment column bundles."""
    with open(path, "rb") as handle:
        return load_segment_columns(handle)


def corpus_format(path: str) -> str:
    """The on-disk revision name (``"LPDB0001"`` .. ``"LPDB0005"``), from
    the magic alone (for the live directory layout, from its manifest's
    magic)."""
    if os.path.isdir(path):
        from .live import live_corpus_format

        return live_corpus_format(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
    if magic in (MAGIC, LEGACY_MAGIC, SEGMENTED_MAGIC, MMAP_MAGIC):
        return magic.decode("ascii")
    raise StoreError(
        "not a compiled corpus file (bad magic; expected LPDB0002/LPDB0003/"
        "LPDB0004, or an LPDB0005 directory)"
    )


def corpus_segment_count(path: str) -> int:
    """How many segments the file declares (1 for single-store formats;
    for live directories, base segments plus the in-memory delta when
    the WAL holds rows), from the header alone — no column payload is
    read or verified."""
    if os.path.isdir(path):
        from .live import live_segment_count

        return live_segment_count(path)
    with open(path, "rb") as handle:
        head = handle.read(len(SEGMENTED_MAGIC) + 10)
        if head.startswith((MAGIC, LEGACY_MAGIC)):
            return 1
        if head.startswith(SEGMENTED_MAGIC):
            count, _ = _read_varint(head, len(SEGMENTED_MAGIC))
            return count
        if head.startswith(MMAP_MAGIC):
            return len(_read_mmap_sidecar(handle, head).segments)
    raise StoreError(
        "not a compiled corpus file (bad magic; expected LPDB0002/LPDB0003/"
        "LPDB0004)"
    )


def is_compiled_corpus(path: str) -> bool:
    """Cheap sniff: does the file start with an LPDB magic (or is it a
    live-corpus directory with a manifest)?"""
    try:
        if os.path.isdir(path):
            from .live import MANIFEST_NAME

            with open(os.path.join(path, MANIFEST_NAME), "rb") as handle:
                return handle.read(len(LIVE_MAGIC)) == LIVE_MAGIC
        with open(path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            return magic in (MAGIC, LEGACY_MAGIC, SEGMENTED_MAGIC, MMAP_MAGIC)
    except OSError:
        return False


#: How much of a store file the fingerprint reads: the whole header region
#: (every revision keeps its length/CRC headers — for LPDB0004 the entire
#: sidecar, which itself checksums all metadata — inside the first 64 KiB
#: for any realistic corpus) plus a tail window, so both a metadata edit
#: and a truncation/append change the digest.
_FINGERPRINT_HEAD = 64 * 1024
_FINGERPRINT_TAIL = 4 * 1024


def store_fingerprint(path: str) -> str:
    """A cheap, content-derived identity for a compiled corpus file.

    The serving layer keys its result cache on this value, so it must
    change whenever the store's bytes change and must *not* change when
    the same file is copied, re-opened or served from another path.  It
    digests the format magic, the file size and a CRC-32 over the head
    and tail windows — O(1) in the corpus size, in keeping with the
    zero-copy open — rather than hashing gigabytes of column blobs; the
    head window covers every revision's own length/CRC headers (the
    whole LPDB0004 sidecar), so any re-save reshuffles it.  Live
    directories digest their manifest bytes plus the WAL size, so every
    acknowledged append and every installed generation changes the
    fingerprint (read-your-writes for the serving result cache).
    Raises :class:`StoreError` for files without an LPDB magic."""
    if os.path.isdir(path):
        from .live import live_fingerprint

        return live_fingerprint(path)
    revision = corpus_format(path)  # validates the magic
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        digest = zlib.crc32(handle.read(_FINGERPRINT_HEAD))
        if size > _FINGERPRINT_HEAD:
            handle.seek(max(_FINGERPRINT_HEAD, size - _FINGERPRINT_TAIL))
            digest = zlib.crc32(handle.read(), digest)
    return f"{revision.lower()}-{size}-{digest:08x}"


# -- the LPDB0004 zero-copy layout ---------------------------------------------
#
# magic | sidecar block (varint length + CRC-32 + payload) | pad to 8 | data
#
# The sidecar holds everything small (string table, directories, blob
# offsets); the data region holds the per-segment columns and derived
# permutations as raw native-endian int64 blobs, every blob starting on an
# 8-byte boundary so a ``memoryview.cast("q")`` adopts it in place.  Blob
# order per segment (offsets are relative to the data region):

#: 8n-byte int64 blobs, in clustered row order.
_INT64_BLOBS = (
    "tid", "left", "right", "depth", "id", "pid",
    "name_ids", "value_ids",           # string-table references per row
    "tid_id_perm", "perm_ids",         # the (tid, id) projection
    "children_perm",                   # the CSR children permutation
)
#: n-byte bitmap blobs.
_BYTE_BLOBS = ("is_attr", "right_edge")
#: Variable-length int64 blobs: per-(name, tid) partition bounds (P
#: entries each) and CSR children groups (G and G+1 entries).
_AUX_BLOBS = ("part_tids", "part_starts", "child_pids", "child_starts")
_BLOB_COUNT = len(_INT64_BLOBS) + len(_BYTE_BLOBS) + len(_AUX_BLOBS)


def _align8(value: int) -> int:
    return (value + 7) & ~7


@dataclass
class MmapSegmentMeta:
    """The sidecar record for one segment (round-trippable: parse →
    mutate → :func:`_encode_mmap_sidecar` is how corruption tests craft
    precisely broken files)."""

    n: int
    strings: list          # 1-based string table (index 0 means "no value")
    blobs: list            # (offset, length) per blob, `_BLOB_COUNT` entries
    root_right: list       # (tid, root right edge) pairs
    tid_dir: list          # (tid, slot hi) over tid_id_perm; lo chains
    child_tid_dir: list    # (tid, group hi) over the children groups
    store_stats: tuple     # (rows, partitions, max_partition, min/max depth)
    names: list            # (string id, row hi, partition hi,
                           #  max_partition, min_depth, max_depth); chained


@dataclass
class MmapHeader:
    """The parsed LPDB0004 sidecar."""

    byteorder: str
    data_length: int
    segments: list


def _encode_mmap_sidecar(header: MmapHeader) -> bytes:
    out = io.BytesIO()
    out.write(b"\x00" if header.byteorder == "little" else b"\x01")
    _write_varint(out, header.data_length)
    _write_varint(out, len(header.segments))
    for meta in header.segments:
        if len(meta.blobs) != _BLOB_COUNT:
            raise StoreError(
                f"segment declares {len(meta.blobs)} blobs, "
                f"expected {_BLOB_COUNT}"
            )
        _write_varint(out, meta.n)
        _write_varint(out, len(meta.strings))
        for text in meta.strings:
            encoded = text.encode("utf-8")
            _write_varint(out, len(encoded))
            out.write(encoded)
        for offset, length in meta.blobs:
            _write_varint(out, offset)
            _write_varint(out, length)
        for pairs in (meta.root_right, meta.tid_dir, meta.child_tid_dir):
            _write_varint(out, len(pairs))
            for first, second in pairs:
                _write_varint(out, first)
                _write_varint(out, second)
        for value in meta.store_stats:
            _write_varint(out, value)
        _write_varint(out, len(meta.names))
        for entry in meta.names:
            for value in entry:
                _write_varint(out, value)
    return out.getvalue()


def _parse_mmap_sidecar(payload: bytes) -> MmapHeader:
    if not payload:
        raise StoreError("empty LPDB0004 sidecar")
    byteorder = "little" if payload[0] == 0 else "big"
    data_length, offset = _read_varint(payload, 1)
    segment_count, offset = _read_varint(payload, offset)
    segments = []
    for _ in range(segment_count):
        n, offset = _read_varint(payload, offset)
        table_size, offset = _read_varint(payload, offset)
        strings: list[str] = []
        for _ in range(table_size):
            length, offset = _read_varint(payload, offset)
            end = offset + length
            if end > len(payload):
                raise StoreError("truncated string table")
            try:
                strings.append(payload[offset:end].decode("utf-8"))
            except UnicodeDecodeError:
                raise StoreError("undecodable string-table entry") from None
            offset = end
        blobs = []
        for _ in range(_BLOB_COUNT):
            blob_offset, offset = _read_varint(payload, offset)
            blob_length, offset = _read_varint(payload, offset)
            blobs.append((blob_offset, blob_length))
        directories = []
        for _ in range(3):
            count, offset = _read_varint(payload, offset)
            pairs = []
            for _ in range(count):
                first, offset = _read_varint(payload, offset)
                second, offset = _read_varint(payload, offset)
                pairs.append((first, second))
            directories.append(pairs)
        stats = []
        for _ in range(5):
            value, offset = _read_varint(payload, offset)
            stats.append(value)
        name_count, offset = _read_varint(payload, offset)
        names = []
        for _ in range(name_count):
            entry = []
            for _ in range(6):
                value, offset = _read_varint(payload, offset)
                entry.append(value)
            names.append(tuple(entry))
        segments.append(MmapSegmentMeta(
            n, strings, blobs, directories[0], directories[1],
            directories[2], tuple(stats), names,
        ))
    if offset != len(payload):
        raise StoreError(
            f"{len(payload) - offset} trailing bytes in the LPDB0004 sidecar"
        )
    return MmapHeader(byteorder, data_length, segments)


def _mapped_segment_parts(store) -> tuple[MmapSegmentMeta, list[bytes]]:
    """``(sidecar record, blob payloads)`` for one built
    :class:`~repro.columnar.ColumnStore` (blob offsets assigned later)."""
    intern: dict[str, int] = {}
    strings: list[str] = []

    def string_id(text: str) -> int:
        index = intern.get(text)
        if index is None:
            strings.append(text)
            index = intern[text] = len(strings)
        return index

    name_ids = array("q", map(string_id, store.names))
    value_ids = array(
        "q",
        (0 if value is None else string_id(value) for value in store.values),
    )

    part_tids, part_starts = array("q"), array("q")
    parts_per_name: dict[str, int] = {}
    for (name, tid), (lo, _hi) in store.name_tid_bounds.items():
        part_tids.append(tid)
        part_starts.append(lo)
        parts_per_name[name] = parts_per_name.get(name, 0) + 1

    names_meta = []
    part_hi = 0
    for name, (_lo, hi) in store.name_bounds.items():
        part_hi += parts_per_name.get(name, 0)
        stats = store.name_stats(name)
        names_meta.append((
            string_id(name), hi, part_hi,
            stats.max_partition, stats.min_depth, stats.max_depth,
        ))

    child_pids, child_starts = array("q"), array("q")
    child_tid_dir: list[tuple[int, int]] = []
    current_tid = None
    groups = 0
    for (tid, _pid), (lo, _hi) in store.children_bounds.items():
        if tid != current_tid:
            if current_tid is not None:
                child_tid_dir.append((current_tid, groups))
            current_tid = tid
        child_pids.append(_pid)
        child_starts.append(lo)
        groups += 1
    if current_tid is not None:
        child_tid_dir.append((current_tid, groups))
    child_starts.append(store.n)

    total = store.name_stats(None)
    meta = MmapSegmentMeta(
        n=store.n,
        strings=strings,
        blobs=[],
        root_right=sorted(store.root_right.items()),
        tid_dir=[(tid, hi) for tid, (_lo, hi) in store.tid_bounds.items()],
        child_tid_dir=child_tid_dir,
        store_stats=(total.rows, total.partitions, total.max_partition,
                     total.min_depth, total.max_depth),
        names=names_meta,
    )
    blobs = [
        store.tid.tobytes(), store.left.tobytes(), store.right.tobytes(),
        store.depth.tobytes(), store.id.tobytes(), store.pid.tobytes(),
        name_ids.tobytes(), value_ids.tobytes(),
        store.tid_id_perm.tobytes(), store._perm_ids.tobytes(),
        store.children_perm.tobytes(),
        bytes(store.is_attr), bytes(store.right_edge),
        part_tids.tobytes(), part_starts.tobytes(),
        child_pids.tobytes(), child_starts.tobytes(),
    ]
    return meta, blobs


def save_mapped(rows: Sequence, stream: BinaryIO, segments: int = 1) -> int:
    """Write the ``LPDB0004`` zero-copy layout; returns rows written.

    Saving is the expensive side on purpose: each shard is run through a
    full :class:`~repro.columnar.ColumnStore` build (clustered sort,
    projections, bitmaps, partition bounds, statistics) and the results
    are serialized, so *opening* the file needs none of that work."""
    from .columnar.store import ColumnStore

    if segments < 1:
        raise StoreError(f"segment count must be >= 1, got {segments}")
    rows = list(rows)
    shards = (
        partition_rows_by_tid(rows, segments) if segments > 1 else [rows]
    )
    metas, payloads = [], []
    offset = 0
    for shard in shards:
        meta, blobs = _mapped_segment_parts(ColumnStore.from_rows(shard))
        for blob in blobs:
            meta.blobs.append((offset, len(blob)))
            offset += _align8(len(blob))
        metas.append(meta)
        payloads.append(blobs)
    sidecar = _encode_mmap_sidecar(MmapHeader(sys.byteorder, offset, metas))
    head = io.BytesIO()
    _write_varint(head, len(sidecar))
    _write_varint(head, zlib.crc32(sidecar))
    prefix_length = len(MMAP_MAGIC) + head.getbuffer().nbytes + len(sidecar)
    stream.write(MMAP_MAGIC)
    stream.write(head.getvalue())
    stream.write(sidecar)
    stream.write(b"\x00" * (_align8(prefix_length) - prefix_length))
    for blobs in payloads:
        for blob in blobs:
            stream.write(blob)
            stream.write(b"\x00" * (_align8(len(blob)) - len(blob)))
    return len(rows)


class MappedSegment:
    """One segment of an opened ``LPDB0004`` corpus: directories decoded
    from the sidecar plus zero-copy views over the data region.  The
    integer views are ``memoryview``\\ s cast to int64; ``table`` is the
    1-based string table with ``table[0] is None``."""

    __slots__ = (
        "n", "table", "root_right", "tid_bounds", "child_tid_dir",
        "name_entries", "store_stats",
    ) + _INT64_BLOBS + _BYTE_BLOBS + _AUX_BLOBS

    def __init__(self, meta: MmapSegmentMeta, region, views: list) -> None:
        n = meta.n
        partitions = meta.names[-1][2] if meta.names else 0
        groups = meta.child_tid_dir[-1][1] if meta.child_tid_dir else 0
        expected = (
            [8 * n] * len(_INT64_BLOBS) + [n] * len(_BYTE_BLOBS)
            + [8 * partitions, 8 * partitions, 8 * groups, 8 * (groups + 1)]
        )
        names = _INT64_BLOBS + _BYTE_BLOBS + _AUX_BLOBS
        for attr, (offset, length), want in zip(names, meta.blobs, expected):
            if offset % 8:
                raise StoreError(
                    f"misaligned column blob {attr!r} at offset {offset}"
                )
            if length != want:
                raise StoreError(
                    f"column blob {attr!r} declares {length} bytes, "
                    f"expected {want}"
                )
            if offset + length > len(region):
                raise StoreError(
                    f"column blob {attr!r} overruns the data region"
                )
            view = region[offset:offset + length]
            if attr not in _BYTE_BLOBS:
                view = view.cast("q")
            views.append(view)
            setattr(self, attr, view)
        self.n = n
        self.table = [None] + meta.strings
        self.root_right = dict(meta.root_right)
        self.store_stats = meta.store_stats

        tid_bounds: dict[int, tuple[int, int]] = {}
        lo = 0
        for tid, hi in meta.tid_dir:
            if not lo <= hi <= n:
                raise StoreError("corrupt (tid, id) directory")
            tid_bounds[tid] = (lo, hi)
            lo = hi
        if lo != n:
            raise StoreError("corrupt (tid, id) directory")
        self.tid_bounds = tid_bounds

        child_tid_dir: dict[int, tuple[int, int]] = {}
        glo = 0
        for tid, ghi in meta.child_tid_dir:
            if not glo <= ghi <= groups:
                raise StoreError("corrupt children directory")
            child_tid_dir[tid] = (glo, ghi)
            glo = ghi
        self.child_tid_dir = child_tid_dir

        name_entries = []
        row_lo = part_lo = 0
        for sid, row_hi, part_hi, max_partition, min_depth, max_depth in meta.names:
            if not 1 <= sid <= len(meta.strings):
                raise StoreError("name directory references a bad string id")
            if not (row_lo < row_hi <= n and part_lo < part_hi <= partitions):
                raise StoreError("corrupt name directory")
            name_entries.append((
                self.table[sid], row_lo, row_hi, part_lo, part_hi,
                (row_hi - row_lo, part_hi - part_lo,
                 max_partition, min_depth, max_depth),
            ))
            row_lo, part_lo = row_hi, part_hi
        if row_lo != n or part_lo != partitions:
            raise StoreError("corrupt name directory")
        self.name_entries = name_entries


class MappedCorpus:
    """An opened ``LPDB0004`` file: the ``mmap``, its segments, and every
    view handed out.  :meth:`close` releases the views (queries through
    them then raise) and unmaps the file; idempotent."""

    def __init__(self, path, segments, views, mapping=None, handle=None):
        self.path = path
        self.segments = segments
        self._views = views
        self._mapping = mapping
        self._handle = handle

    def close(self) -> None:
        for view in self._views:
            view.release()
        self._views = []
        if self._mapping is not None:
            self._mapping.close()
            self._mapping = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "MappedCorpus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _parse_mapped(buffer, views: list) -> list[MappedSegment]:
    """Parse an ``LPDB0004`` buffer (bytes or an ``mmap``); every created
    view is appended to ``views`` so a caller owning an mmap can release
    them all on close (or on a parse failure)."""
    base = memoryview(buffer)
    views.append(base)
    if len(base) < len(MMAP_MAGIC) or bytes(base[:len(MMAP_MAGIC)]) != MMAP_MAGIC:
        raise StoreError("not an LPDB0004 corpus file (bad magic)")
    sidecar_length, offset = _read_varint(base, len(MMAP_MAGIC))
    expected_crc, offset = _read_varint(base, offset)
    end = offset + sidecar_length
    if end > len(base):
        raise StoreError(
            f"sidecar length mismatch: header says {sidecar_length}, "
            f"file has {len(base) - offset}"
        )
    sidecar = bytes(base[offset:end])
    if zlib.crc32(sidecar) != expected_crc:
        raise StoreError("checksum mismatch: the sidecar is corrupt")
    header = _parse_mmap_sidecar(sidecar)
    if header.byteorder != sys.byteorder:
        raise StoreError(
            f"foreign byte order: file is {header.byteorder}-endian, "
            f"host is {sys.byteorder}-endian"
        )
    region_start = _align8(end)
    if len(base) != region_start + header.data_length:
        raise StoreError(
            f"file size mismatch: expected {region_start + header.data_length}"
            f" bytes, found {len(base)} (truncated or trailing bytes)"
        )
    region = base[region_start:]
    views.append(region)
    return [MappedSegment(meta, region, views) for meta in header.segments]


def open_mapped_corpus(path: str) -> MappedCorpus:
    """``mmap`` an ``LPDB0004`` file and adopt its segments zero-copy.

    Verifies the magic, the sidecar checksum, the declared file size and
    every blob's offset/length/alignment — O(segments + names + trees)
    work total, independent of the row count.  The returned corpus owns
    the map; :meth:`MappedCorpus.close` invalidates all views."""
    handle = open(path, "rb")
    views: list = []
    mapping = None
    try:
        try:
            mapping = _mmap_module.mmap(
                handle.fileno(), 0, access=_mmap_module.ACCESS_READ
            )
        except ValueError:
            raise StoreError("not an LPDB0004 corpus file (empty)") from None
        segments = _parse_mapped(mapping, views)
    except BaseException:
        for view in views:
            view.release()
        if mapping is not None:
            mapping.close()
        handle.close()
        raise
    return MappedCorpus(path, segments, views, mapping, handle)


def _mapped_string_lookup(segment: MappedSegment):
    """A checked ``row -> (name, value)`` reader for the eager loaders
    (the mmap path trusts the data region; the eager decode validates)."""
    table = segment.table
    size = len(table)
    name_ids, value_ids = segment.name_ids, segment.value_ids

    def lookup(row: int) -> tuple[str, Optional[str]]:
        name_id, value_id = name_ids[row], value_ids[row]
        if not 1 <= name_id < size or not 0 <= value_id < size:
            raise StoreError("string-table reference out of range")
        return table[name_id], table[value_id]

    return lookup


def _mapped_labels_into(segment: MappedSegment, rows: list) -> None:
    lookup = _mapped_string_lookup(segment)
    tid, left, right = segment.tid, segment.left, segment.right
    depth, node_id, pid = segment.depth, segment.id, segment.pid
    for row in range(segment.n):
        name, value = lookup(row)
        rows.append(Label(
            tid[row], left[row], right[row], depth[row],
            node_id[row], pid[row], name, value,
        ))


def _mapped_columns_into(segment: MappedSegment, columns: LabelColumns) -> None:
    lookup = _mapped_string_lookup(segment)
    for attr in ("tid", "left", "right", "depth", "id", "pid"):
        getattr(columns, attr).frombytes(getattr(segment, attr).tobytes())
    for row in range(segment.n):
        name, value = lookup(row)
        columns.names.append(name)
        columns.values.append(value)


def _read_mmap_sidecar(handle: BinaryIO, head: bytes) -> MmapHeader:
    """Read and verify just the sidecar of an open ``LPDB0004`` file
    (``head`` is whatever prefix the caller already consumed)."""
    prefix = head + handle.read(max(0, 32 - len(head)))
    sidecar_length, offset = _read_varint(prefix, len(MMAP_MAGIC))
    expected_crc, offset = _read_varint(prefix, offset)
    sidecar = prefix[offset:offset + sidecar_length]
    missing = sidecar_length - len(sidecar)
    if missing > 0:
        sidecar += handle.read(missing)
    if len(sidecar) != sidecar_length:
        raise StoreError(
            f"sidecar length mismatch: header says {sidecar_length}, "
            f"file has {len(sidecar)}"
        )
    if zlib.crc32(sidecar) != expected_crc:
        raise StoreError("checksum mismatch: the sidecar is corrupt")
    return _parse_mmap_sidecar(sidecar)


# -- store inspection ----------------------------------------------------------


def corpus_info(path: str, top: int = 10) -> dict:
    """Summarize a compiled corpus: revision, segment/row/tree counts and
    the top-``top`` per-name statistics by row count.

    For ``LPDB0004`` everything comes from the sidecar — no column (let
    alone value) data is read.  Older revisions have no statistics on
    disk, so their payloads are decoded and scanned.  Live directories
    add their manifest generation, WAL record/row counts, delta vs base
    row split and last recovery action (:func:`repro.live.live_info`)."""
    if os.path.isdir(path):
        from .live import live_info

        return live_info(path, top=top)
    revision = corpus_format(path)
    size = os.path.getsize(path)
    merged: dict[str, list] = {}

    def fold(name: str, rows: int, partitions: int, max_partition: int,
             min_depth: int, max_depth: int) -> None:
        entry = merged.get(name)
        if entry is None:
            merged[name] = [rows, partitions, max_partition,
                            min_depth, max_depth]
        else:
            entry[0] += rows
            entry[1] += partitions
            entry[2] = max(entry[2], max_partition)
            entry[3] = min(entry[3], min_depth)
            entry[4] = max(entry[4], max_depth)

    if revision == MMAP_MAGIC.decode("ascii"):
        with open(path, "rb") as handle:
            header = _read_mmap_sidecar(handle, handle.read(len(MMAP_MAGIC)))
        segments = len(header.segments)
        rows = sum(meta.n for meta in header.segments)
        trees = sum(len(meta.tid_dir) for meta in header.segments)
        for meta in header.segments:
            row_lo = part_lo = 0
            for sid, row_hi, part_hi, max_part, min_d, max_d in meta.names:
                fold(meta.strings[sid - 1], row_hi - row_lo,
                     part_hi - part_lo, max_part, min_d, max_d)
                row_lo, part_lo = row_hi, part_hi
    else:
        shards = load_corpus_segments(path)
        segments = len(shards)
        rows = sum(len(shard) for shard in shards)
        tids: set[int] = set()
        for shard in shards:
            tids.update(shard.tid)
            per_partition: dict[tuple[str, int], int] = {}
            depths: dict[str, tuple[int, int]] = {}
            for row in range(len(shard)):
                name = shard.names[row]
                key = (name, shard.tid[row])
                per_partition[key] = per_partition.get(key, 0) + 1
                depth = shard.depth[row]
                span = depths.get(name)
                depths[name] = (
                    (depth, depth) if span is None
                    else (min(span[0], depth), max(span[1], depth))
                )
            counts: dict[str, list] = {}
            for (name, _tid), count in per_partition.items():
                entry = counts.setdefault(name, [0, 0, 0])
                entry[0] += count
                entry[1] += 1
                entry[2] = max(entry[2], count)
            for name, (total, partitions, max_partition) in counts.items():
                min_depth, max_depth = depths[name]
                fold(name, total, partitions, max_partition,
                     min_depth, max_depth)
        trees = len(tids)

    ranked = sorted(merged.items(), key=lambda item: (-item[1][0], item[0]))
    return {
        "path": path,
        "bytes": size,
        "format": revision,
        "segments": segments,
        "rows": rows,
        "trees": trees,
        "distinct_names": len(merged),
        "top_names": [(name, tuple(stats)) for name, stats in ranked[:top]],
    }
