"""Shared AST → logical-IR lowering for both query dialects.

One :class:`Lowerer` serves the LPath engine and the baseline XPath
engine: every dialect difference (axis inventory, probe shapes, value
semantics) is delegated to a :class:`~repro.plan.schemes.LabelScheme`
adapter, so the step/predicate/scope machinery exists exactly once.

Lowering follows Section 4 of the paper: every axis becomes a join whose
condition is the Table 2 label comparison, evaluated index-nested-loop
style against the paper's physical design.  A *binding* is the
concatenation of the label rows matched by the steps so far (one slot of 8
columns per step); slots are assigned at lowering time, so scoping and
edge alignment are plain column comparisons.  Predicates lower to
condition trees whose correlated subplans are themselves IR (rooted at
:class:`~repro.plan.ir.Context`).

Positional predicates (``position()``/``last()``) are supported in the
restricted forms needed by XPath rewrites — a positional predicate must be
the first predicate of its step and its axis must be child or a sibling
axis; the tree-walk evaluator covers the general semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..lpath.ast import (
    AndExpr,
    Comparison,
    FunctionCall,
    Literal,
    NodeTest,
    NotExpr,
    Number,
    OrExpr,
    Path,
    PathExists,
    PredicateExpr,
    Scope,
    Step,
)
from ..lpath.axes import Axis
from ..lpath.errors import LPathCompileError
from .ir import (
    AGGREGATE_OPS,
    Aggregate,
    AllPred,
    AnyPred,
    BoolConst,
    Cmp,
    Col,
    Const,
    Context,
    CountCmpPred,
    Distinct,
    ExistsPred,
    Filter,
    IndexProbe,
    IsAttr,
    IsElement,
    Join,
    Limit,
    NotPred,
    PlanNode,
    PositionPred,
    Pred,
    Scan,
    TableScan,
    ValueCmpPred,
    ValueSeed,
    D, I, L, N, P, R, T,
)
from .schemes import Catalog, DOWNWARD_AXES, LabelScheme

_FLIPPED_OPS = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}


@dataclass
class LoweredQuery:
    """The logical plan of one query plus its result bookkeeping."""

    root: PlanNode
    result_slot: int
    description: str


def lower_and_optimize(
    lowerer: "Lowerer", query, pivot: bool = False, executor: str = "volcano",
    limit: Optional[int] = None, agg: Optional[str] = None,
) -> tuple[PlanNode, LoweredQuery]:
    """The logical half of every compile: parse (if text), lower —
    pivoted when requested and applicable, plain otherwise — and
    optimize.  Shared by the monolithic compilers and the segmented
    driver so the pivot-fallback and optimizer invocation can never
    diverge between them.  ``executor`` reaches the optimizer so plans
    bound for the batch executor carry their physical-join annotations.

    ``limit`` wraps the optimized plan in a :class:`~repro.plan.ir.Limit`
    (top-k in output order); ``agg`` wraps it in an
    :class:`~repro.plan.ir.Aggregate` — the grouped forms extend the
    Distinct key with the grouping column, which is functionally
    dependent on ``(tid, id)`` and so never changes the distinct result
    cardinality.  The two are mutually exclusive (a truncated aggregate
    has no defined semantics)."""
    from ..lpath.parser import parse
    from .optimizer import optimize

    if limit is not None and agg is not None:
        raise LPathCompileError("limit and agg cannot be combined")
    if limit is not None and limit < 0:
        raise LPathCompileError(f"limit must be non-negative, got {limit}")
    if agg is not None and agg not in AGGREGATE_OPS:
        raise LPathCompileError(
            f"unknown aggregate {agg!r} (expected one of {', '.join(AGGREGATE_OPS)})"
        )
    path = parse(query) if isinstance(query, str) else query
    lowered = lowerer.lower_pivot(path) if pivot else None
    if lowered is None:
        lowered = lowerer.lower(path)
    root = optimize(lowered.root, lowerer, pivot=pivot, executor=executor)
    slot = lowered.result_slot
    if agg in ("count_by_name", "count_by_depth"):
        group_col = N if agg == "count_by_name" else D
        if isinstance(root, Distinct) and root.key == ((slot, T), (slot, I)):
            root.key = ((slot, T), (slot, I), (slot, group_col))
    if agg is not None:
        root = Aggregate(root, agg, slot)
    elif limit is not None:
        root = Limit(root, limit)
    return root, lowered


class Lowerer:
    """Lower parsed queries to the shared IR for one engine instance."""

    def __init__(self, scheme: LabelScheme, catalog: Catalog, dialect: str) -> None:
        self.scheme = scheme
        self.catalog = catalog
        self.dialect = dialect

    # -- entry points --------------------------------------------------------

    def lower(self, path: Path) -> LoweredQuery:
        """The straightforward left-to-right plan for ``path``."""
        items = list(path.items)
        if not items or isinstance(items[0], Scope):
            raise LPathCompileError("a query must begin with a step")
        self.scheme.validate(items)
        first = items[0]
        node: PlanNode = self.first_scan(first)
        node = self._first_step_filter(node, first)
        node = self._chain(node, items[1:], ctx=0, next_slot=1, scope=None)
        result_slot = self._result_slot(items)
        root = Distinct(node, key=((result_slot, T), (result_slot, I)))
        return LoweredQuery(root, result_slot, f"{self.dialect} plan for {path}")

    def lower_pivot(self, path: Path) -> Optional[LoweredQuery]:
        """Selectivity-pivoted plan for a plain step chain, or ``None``.

        When the query is a plain chain of invertible axes, the join starts
        at the step with the rarest tag and extends leftward through
        inverted axes — an optimization beyond the paper (see DESIGN.md
        ablations), generalized here to both labeling schemes.
        """
        items = list(path.items)
        steps = self._pivotable_chain(items, first_axes=(Axis.DESCENDANT, Axis.CHILD))
        if steps is None:
            return None
        pivot_index = self._pivot_index(steps)
        if pivot_index is None:
            return None
        self.scheme.validate(items)

        order = [pivot_index] + list(range(pivot_index - 1, -1, -1)) + list(
            range(pivot_index + 1, len(steps))
        )
        slot_of = {step_index: position for position, step_index in enumerate(order)}

        pivot_step = steps[pivot_index]
        seed = Step(Axis.DESCENDANT, pivot_step.test, predicates=pivot_step.predicates)
        node: PlanNode = self.first_scan(seed)
        node = self._first_step_filter(node, seed)
        for step_index in order[1:]:
            if step_index < pivot_index:
                # Extend left: invert the axis of the step to our right.
                axis = self.scheme.inverse(steps[step_index + 1].axis)
                ctx = slot_of[step_index + 1]
            else:
                axis = steps[step_index].axis
                ctx = slot_of[step_index - 1]
            original = steps[step_index]
            node = self._join_step(
                Step(axis, original.test, predicates=original.predicates),
                ctx=ctx,
                cand=slot_of[step_index],
                scope=None,
                node=node,
            )
            if step_index == 0 and steps[0].axis is Axis.CHILD:
                node = Filter(
                    node, (Cmp(Col(slot_of[0], P), "=", Const(0)),), "root step"
                )
        result_slot = slot_of[len(steps) - 1]
        root = Distinct(node, key=((result_slot, T), (result_slot, I)))
        return LoweredQuery(
            root,
            result_slot,
            f"{self.dialect} pivot plan for {path} (pivot step {pivot_index + 1})",
        )

    def lower_subchain_pivot(
        self, steps: Sequence[Step], ctx: int, free_slot: int
    ) -> Optional[PlanNode]:
        """Pivoted correlated subplan for a downward-only predicate chain.

        The composition of downward axes is again a descendant relation, so
        the subplan can be seeded by one descendant probe from the context
        at the rarest step, then extended leftward through inverted axes;
        the original first-step axis condition re-links step 0 to the
        context.  Used by the optimizer for ``exists`` predicates only
        (reordering changes which slot is materialized last, so value and
        count comparisons keep their original order).
        """
        if any(step.axis not in DOWNWARD_AXES for step in steps):
            return None
        chain = self._pivotable_chain(list(steps), first_axes=DOWNWARD_AXES)
        if chain is None:
            return None
        pivot_index = self._pivot_index(chain)
        if pivot_index is None:
            return None

        order = [pivot_index] + list(range(pivot_index - 1, -1, -1)) + list(
            range(pivot_index + 1, len(chain))
        )
        slot_of = {index: free_slot + position for position, index in enumerate(order)}
        strict = any(
            step.axis in (Axis.CHILD, Axis.DESCENDANT)
            for step in chain[: pivot_index + 1]
        )
        seed_axis = Axis.DESCENDANT if strict else Axis.DESCENDANT_OR_SELF
        pivot_step = chain[pivot_index]
        node: PlanNode = self._join_step(
            Step(seed_axis, pivot_step.test, predicates=pivot_step.predicates),
            ctx=ctx,
            cand=slot_of[pivot_index],
            scope=None,
            node=Context(),
        )
        for step_index in order[1:]:
            if step_index < pivot_index:
                axis = self.scheme.inverse(chain[step_index + 1].axis)
                step_ctx = slot_of[step_index + 1]
            else:
                axis = chain[step_index].axis
                step_ctx = slot_of[step_index - 1]
            original = chain[step_index]
            node = self._join_step(
                Step(axis, original.test, predicates=original.predicates),
                ctx=step_ctx,
                cand=slot_of[step_index],
                scope=None,
                node=node,
            )
            if step_index == 0:
                # Re-link the leftmost step to the context via its original axis.
                link = self.scheme.axis_conditions(chain[0].axis, ctx, slot_of[0])
                node.conditions = tuple(node.conditions) + tuple(link)
        return node

    # -- pivot applicability -------------------------------------------------

    def _pivotable_chain(self, items, first_axes) -> Optional[list[Step]]:
        steps: list[Step] = []
        for index, item in enumerate(items):
            if not isinstance(item, Step):
                return None
            if index > 0 and self.scheme.inverse(item.axis) is None:
                return None
            if item.left_aligned or item.right_aligned:
                return None
            if any(mentions_position(p) for p in item.predicates):
                return None  # positions are relative to the original axis
            steps.append(item)
        if len(steps) < 2:
            return None
        if steps[0].axis not in first_axes:
            return None
        return steps

    def _pivot_index(self, steps: Sequence[Step]) -> Optional[int]:
        frequency = [
            self.catalog.frequency(None if step.test.is_wildcard else step.test.name)
            for step in steps
        ]
        pivot_index = min(range(len(steps)), key=frequency.__getitem__)
        if pivot_index == 0:
            return None  # the default left-to-right plan is already optimal
        return pivot_index

    # -- first step ----------------------------------------------------------

    def first_scan(self, step: Step) -> Scan:
        if step.axis is Axis.DESCENDANT:
            root_only = False
        elif step.axis is Axis.CHILD:
            root_only = True
        else:
            raise LPathCompileError(
                f"a query cannot start with the {step.axis.value} axis"
            )
        found = find_attribute_equality(step.predicates)
        if found is not None:
            attr, literal = found
            name_test = None if step.test.is_wildcard else step.test.name
            return Scan(
                ValueSeed(attr, literal, name_test, root_only=root_only),
                (),
                f"value seed {attr}={literal!r}",
                step=step,
            )
        conditions: list[Pred] = []
        if step.test.is_wildcard:
            conditions.append(IsElement(0))
            if root_only:
                conditions.append(Cmp(Col(0, P), "=", Const(0)))
                label = "roots"
            else:
                label = "all elements"
            return Scan(TableScan(), tuple(conditions), label, step=step)
        name = step.test.name
        path = self.catalog.access_path(("name",), None)
        access = IndexProbe(path.index.name, (Const(name),))
        if root_only:
            conditions.append(Cmp(Col(0, P), "=", Const(0)))
            label = f"roots named {name}"
        else:
            label = f"elements named {name}"
        return Scan(access, tuple(conditions), label, step=step)

    def _first_step_filter(self, node: PlanNode, step: Step) -> PlanNode:
        """Alignment and predicates of the already-materialized first step."""
        checks = self.scheme.alignment_conditions(
            step.left_aligned, step.right_aligned, 0, None
        )
        for predicate in step.predicates:
            if mentions_position(predicate):
                raise LPathCompileError(
                    "positional predicates on the first step are not supported "
                    "by the relational backend"
                )
            checks.append(self._boolean(predicate, 0, 1, None))
        if checks:
            node = Filter(node, tuple(checks), "first step")
        return node

    # -- the step chain ------------------------------------------------------

    def _chain(
        self,
        node: PlanNode,
        items: Sequence,
        ctx: int,
        next_slot: int,
        scope: Optional[int],
    ) -> PlanNode:
        for item in items:
            if isinstance(item, Scope):
                # The context node becomes the scope; its row is already in
                # the binding at ``ctx``.
                return self._chain(
                    node, list(item.body.items), ctx, next_slot, scope=ctx
                )
            step = item
            if step.axis is Axis.SELF:
                node = self._self_filter(node, step, ctx, next_slot, scope)
                continue
            node = self._join_step(step, ctx, next_slot, scope, node)
            ctx = next_slot
            next_slot += 1
        return node

    def _result_slot(self, items: Sequence) -> int:
        """Slot of the result step (the last step, through scopes)."""
        slot = -1
        stack = list(items)
        while stack:
            item = stack.pop(0)
            if isinstance(item, Scope):
                stack = list(item.body.items)
                continue
            if item.axis is not Axis.SELF:
                slot += 1
        if slot < 0:
            raise LPathCompileError("query selects nothing")
        return slot

    def _self_filter(
        self,
        node: PlanNode,
        step: Step,
        ctx: int,
        next_slot: int,
        scope: Optional[int],
    ) -> PlanNode:
        checks: list[Pred] = []
        if not step.test.is_wildcard:
            checks.append(Cmp(Col(ctx, N), "=", Const(step.test.name)))
        checks.extend(
            self.scheme.alignment_conditions(
                step.left_aligned, step.right_aligned, ctx, scope
            )
        )
        for predicate in step.predicates:
            if mentions_position(predicate):
                raise LPathCompileError(
                    "positional predicates on self steps are unsupported"
                )
            checks.append(self._boolean(predicate, ctx, next_slot, scope))
        if not checks:
            return node
        return Filter(node, tuple(checks), "self step")

    def _join_step(
        self,
        step: Step,
        ctx: int,
        cand: int,
        scope: Optional[int],
        node: PlanNode,
    ) -> Join:
        access, conditions = self._probe(step, ctx, cand, scope)
        if scope is not None:
            conditions.extend(self.scheme.scope_conditions(cand, scope))
        conditions.extend(
            self.scheme.alignment_conditions(
                step.left_aligned, step.right_aligned, cand, scope
            )
        )
        conditions.extend(self._step_predicates(step, ctx, cand, scope))
        return Join(
            node,
            slot=cand,
            access=access,
            conditions=tuple(conditions),
            label=f"{step.axis.value}::{step.test}",
            axis=step.axis,
            step=step,
            ctx_slot=ctx,
            scope_slot=scope,
        )

    def _probe(
        self, step: Step, ctx: int, cand: int, scope: Optional[int]
    ) -> tuple[object, list[Pred]]:
        axis, test = step.axis, step.test
        if axis is Axis.ATTRIBUTE:
            access = IndexProbe("idx_tid_id", (Col(ctx, T), Col(ctx, I)))
            if test.is_wildcard:
                return access, [IsAttr(cand)]
            return access, [Cmp(Col(cand, N), "=", Const("@" + test.name))]

        if axis is not Axis.PARENT:
            # Value-driven probe: a step with a direct [@attr = literal]
            # predicate is answered from the {tid, value, id} index — the
            # optimization behind the paper's fast value-predicate queries.
            found = find_attribute_equality(step.predicates)
            if found is not None:
                attr, literal = found
                name_test = None if test.is_wildcard else test.name
                access = ValueSeed(attr, literal, name_test, tid=Col(ctx, T))
                return access, self.scheme.axis_conditions(axis, ctx, cand)

        if axis is Axis.PARENT:
            access = IndexProbe("idx_tid_id", (Col(ctx, T), Col(ctx, P)))
            if test.is_wildcard:
                return access, [IsElement(cand)]
            return access, [Cmp(Col(cand, N), "=", Const(test.name))]

        if test.is_wildcard:
            # No leading-name index applies: scan the tree's rows and filter
            # with the full Table 2 conditions.
            access = IndexProbe("idx_tid_id", (Col(ctx, T),))
            conditions: list[Pred] = [IsElement(cand)]
            conditions.extend(self.scheme.axis_conditions(axis, ctx, cand))
            return access, conditions

        access, conditions = self.scheme.named_probe(
            axis, test.name, ctx, cand, scope, self.catalog
        )
        return access, list(conditions)

    # -- predicates ----------------------------------------------------------

    def _step_predicates(
        self, step: Step, ctx: int, cand: int, scope: Optional[int]
    ) -> list[Pred]:
        checks: list[Pred] = []
        for index, predicate in enumerate(step.predicates):
            if mentions_position(predicate):
                if index != 0:
                    raise LPathCompileError(
                        "positional predicates must come first on their step "
                        "(use the tree-walk evaluator for full XPath semantics)"
                    )
                checks.append(self._positional(predicate, step, ctx, cand))
            else:
                checks.append(self._boolean(predicate, cand, cand + 1, scope))
        return checks

    def _boolean(
        self,
        expr: PredicateExpr,
        ctx: int,
        free_slot: int,
        scope: Optional[int],
    ) -> Pred:
        if isinstance(expr, OrExpr):
            return AnyPred(
                tuple(self._boolean(part, ctx, free_slot, scope) for part in expr.parts)
            )
        if isinstance(expr, AndExpr):
            return AllPred(
                tuple(self._boolean(part, ctx, free_slot, scope) for part in expr.parts)
            )
        if isinstance(expr, NotExpr):
            return NotPred(self._boolean(expr.part, ctx, free_slot, scope))
        if isinstance(expr, PathExists):
            return ExistsPred(self._subpath(expr.path, ctx, free_slot, scope))
        if isinstance(expr, Comparison):
            return self._comparison(expr, ctx, free_slot, scope)
        if isinstance(expr, FunctionCall):
            if expr.name == "true":
                return BoolConst(True)
            if expr.name == "false":
                return BoolConst(False)
            raise LPathCompileError(
                f"function {expr.name}() is not usable as a boolean here"
            )
        if isinstance(expr, Literal):
            return BoolConst(bool(expr.value))
        if isinstance(expr, Number):
            raise LPathCompileError(
                "bare numeric predicates are positional; unsupported here"
            )
        raise LPathCompileError(f"cannot compile predicate {expr!r}")

    def _comparison(
        self,
        expr: Comparison,
        ctx: int,
        free_slot: int,
        scope: Optional[int],
    ) -> Pred:
        left, op, right = expr.left, expr.op, expr.right
        # name() comparisons: a condition on the context row's name column.
        if (
            isinstance(left, FunctionCall)
            and left.name == "name"
            and isinstance(right, (Literal, Number))
        ):
            wanted = right.value if isinstance(right, Literal) else str(right.value)
            if op in ("=", "!="):
                return Cmp(Col(ctx, N), op, Const(wanted))
            raise LPathCompileError("name() only supports = and != comparisons")
        # count(path) op number.
        if isinstance(left, FunctionCall) and left.name == "count":
            return self._count(left, op, right, ctx, free_slot, scope)
        if isinstance(right, FunctionCall) and right.name == "count":
            return self._count(right, _FLIPPED_OPS[op], left, ctx, free_slot, scope)
        # path op literal/number (and the mirrored form).
        if isinstance(left, PathExists) and isinstance(right, (Literal, Number)):
            return self._value_comparison(left.path, op, right, ctx, free_slot, scope)
        if isinstance(right, PathExists) and isinstance(left, (Literal, Number)):
            return self._value_comparison(
                right.path, _FLIPPED_OPS[op], left, ctx, free_slot, scope
            )
        if isinstance(left, (Literal, Number)) and isinstance(right, (Literal, Number)):
            return BoolConst(static_compare(left, op, right))
        raise LPathCompileError(
            f"comparison {expr} is not supported by the relational backend"
        )

    def _count(
        self,
        call: FunctionCall,
        op: str,
        other: PredicateExpr,
        ctx: int,
        free_slot: int,
        scope: Optional[int],
    ) -> Pred:
        argument = call.args[0] if call.args else None
        if not isinstance(argument, PathExists):
            raise LPathCompileError("count() takes a path argument")
        if not isinstance(other, (Number, Literal)):
            raise LPathCompileError("count() comparisons need a numeric operand")
        try:
            target = float(other.value)
        except (TypeError, ValueError):
            raise LPathCompileError("count() comparisons need a numeric operand")
        subplan = self._subpath(argument.path, ctx, free_slot, scope)
        return CountCmpPred(subplan, op, target)

    def _value_comparison(
        self,
        path: Path,
        op: str,
        literal,
        ctx: int,
        free_slot: int,
        scope: Optional[int],
    ) -> Pred:
        subplan = self._subpath(path, ctx, free_slot, scope)
        numeric = isinstance(literal, Number) or op in ("<", "<=", ">", ">=")
        return ValueCmpPred(subplan, op, literal.value, numeric)

    def _subpath(
        self,
        path: Path,
        ctx: int,
        free_slot: int,
        scope: Optional[int],
    ) -> PlanNode:
        """A correlated subplan rooted at :class:`Context`."""
        node: PlanNode = Context()
        base = ctx
        free = free_slot
        items = list(path.items)
        index = 0
        while index < len(items):
            item = items[index]
            if isinstance(item, Scope):
                if index != len(items) - 1:
                    raise LPathCompileError("steps after a scope are not allowed")
                scope = base
                items = items[:index] + list(item.body.items)
                continue
            if item.axis is Axis.SELF:
                checks: list[Pred] = []
                if not item.test.is_wildcard:
                    checks.append(Cmp(Col(base, N), "=", Const(item.test.name)))
                checks.extend(
                    self.scheme.alignment_conditions(
                        item.left_aligned, item.right_aligned, base, scope
                    )
                )
                for predicate in item.predicates:
                    if mentions_position(predicate):
                        raise LPathCompileError(
                            "positional predicates on self steps are unsupported"
                        )
                    checks.append(self._boolean(predicate, base, free, scope))
                node = Filter(node, tuple(checks), "self step")
                index += 1
                continue
            node = self._join_step(item, base, free, scope, node)
            base = free
            free += 1
            index += 1
        return node

    # -- positional predicates ----------------------------------------------

    def _positional(
        self, predicate: PredicateExpr, step: Step, ctx: int, cand: int
    ) -> Pred:
        if step.axis not in self.scheme.positional_axes:
            raise LPathCompileError(
                f"positional predicates on the {step.axis.value} axis are not "
                "supported by the relational backend"
            )
        if not isinstance(predicate, Comparison):
            raise LPathCompileError("unsupported positional predicate form")
        left, op, right = predicate.left, predicate.op, predicate.right
        if not (isinstance(left, FunctionCall) and left.name == "position"):
            raise LPathCompileError("positional predicates must test position()")
        use_last = isinstance(right, FunctionCall) and right.name == "last"
        if not use_last and not isinstance(right, Number):
            raise LPathCompileError("position() must be compared to a number or last()")
        return PositionPred(
            step.axis,
            None if step.test.is_wildcard else step.test.name,
            op,
            None if use_last else float(right.value),
            ctx,
            cand,
        )


# -- shared AST helpers --------------------------------------------------------


def find_attribute_equality(
    predicates: Sequence[PredicateExpr],
) -> Optional[tuple[str, str]]:
    """Find a direct ``[@attr = literal]`` among a step's predicates."""
    stack = list(predicates)
    while stack:
        expr = stack.pop(0)
        if isinstance(expr, AndExpr):
            stack = list(expr.parts) + stack
            continue
        if not isinstance(expr, Comparison) or expr.op != "=":
            continue
        for path_side, other in ((expr.left, expr.right), (expr.right, expr.left)):
            if not isinstance(path_side, PathExists):
                continue
            if not isinstance(other, (Literal, Number)):
                continue
            items = path_side.path.items
            if len(items) != 1 or not isinstance(items[0], Step):
                continue
            step = items[0]
            if step.axis is not Axis.ATTRIBUTE or step.test.is_wildcard or step.predicates:
                continue
            if isinstance(other, Number):
                value = other.value
                text = str(int(value)) if value == int(value) else str(value)
            else:
                text = other.value
            return "@" + step.test.name, text
    return None


def mentions_position(expr: PredicateExpr) -> bool:
    if isinstance(expr, (OrExpr, AndExpr)):
        return any(mentions_position(part) for part in expr.parts)
    if isinstance(expr, NotExpr):
        return mentions_position(expr.part)
    if isinstance(expr, Comparison):
        return mentions_position(expr.left) or mentions_position(expr.right)
    if isinstance(expr, FunctionCall):
        return expr.name in ("position", "last")
    return False


def paths_in_predicate(expr: PredicateExpr) -> Iterator:
    """Every step nested in a predicate expression (for validation)."""
    if isinstance(expr, (OrExpr, AndExpr)):
        for part in expr.parts:
            yield from paths_in_predicate(part)
    elif isinstance(expr, NotExpr):
        yield from paths_in_predicate(expr.part)
    elif isinstance(expr, Comparison):
        yield from paths_in_predicate(expr.left)
        yield from paths_in_predicate(expr.right)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from paths_in_predicate(arg)
    elif isinstance(expr, PathExists):
        yield from expr.path.items


def numeric_compare(left: float, op: str, right: float) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def static_compare(left, op: str, right) -> bool:
    left_value = left.value
    right_value = right.value
    if isinstance(left, Number) or isinstance(right, Number):
        left_number = as_float(left_value)
        right_number = as_float(right_value)
        if left_number is None or right_number is None:
            return op == "!="
        return numeric_compare(left_number, op, right_number)
    if op == "=":
        return left_value == right_value
    if op == "!=":
        return left_value != right_value
    left_number, right_number = as_float(left_value), as_float(right_value)
    if left_number is None or right_number is None:
        return False
    return numeric_compare(left_number, op, right_number)


def as_float(value) -> Optional[float]:
    try:
        return float(str(value).strip())
    except (TypeError, ValueError):
        return None
