"""Shared logical-plan layer: one IR, one optimizer, one interpreter.

Both query dialects (LPath over Definition-4.1 labels, the baseline XPath
engine over start/end labels) lower their ASTs to the algebra in
:mod:`repro.plan.ir`, run the passes in :mod:`repro.plan.optimizer`, and
execute through :mod:`repro.plan.executor`.  Engines keep compiled plans
in a :class:`repro.plan.cache.PlanCache`.
"""

from .cache import PlanCache
from .executor import Runtime, compile_plan, compile_subplan
from .ir import render
from .lower import Lowerer, LoweredQuery, find_attribute_equality
from .optimizer import optimize
from .segmented import (
    Segment,
    SegmentPool,
    SegmentedCatalog,
    SegmentedPlanCompiler,
    SegmentedQuery,
    validate_segmentation,
)
from .schemes import (
    Catalog,
    LPathScheme,
    LabelScheme,
    StartEndScheme,
    VERTICAL_FRAGMENT,
    XPATH_AXES,
)

__all__ = [
    "Catalog",
    "LPathScheme",
    "LabelScheme",
    "LoweredQuery",
    "Lowerer",
    "PlanCache",
    "Runtime",
    "Segment",
    "SegmentPool",
    "SegmentedCatalog",
    "SegmentedPlanCompiler",
    "SegmentedQuery",
    "StartEndScheme",
    "VERTICAL_FRAGMENT",
    "XPATH_AXES",
    "compile_plan",
    "compile_subplan",
    "find_attribute_equality",
    "optimize",
    "render",
    "validate_segmentation",
]
