"""Labeling-scheme adapters: axis semantics for the shared lowerer.

The two engines store different labels in the same 8-column relation
(:data:`repro.plan.ir.COLUMN_NAMES` positions): the LPath Definition-4.1
scheme (shared leaf boundaries, so the immediate-* axes are equality
tests) and the start/end baseline scheme of [11] (strict containment
only).  Everything the shared lowerer must know per scheme lives here:

* which axes an engine supports (:meth:`LabelScheme.validate`),
* the access path and residual conditions of a named-test step
  (:meth:`LabelScheme.named_probe`), chosen through
  :func:`repro.relational.planner.choose_access_path` so ablation indexes
  (``idx_name_tid_right``) are picked up automatically,
* the full Table-2 residuals for probes the index cannot narrow
  (:meth:`LabelScheme.axis_conditions`),
* axis inverses for selectivity-driven join reordering.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..lpath.ast import Scope
from ..lpath.axes import Axis, CONDITIONS, OR_SELF_BASES
from ..lpath.errors import LPathCompileError
from ..relational.planner import choose_access_path
from ..relational.table import Table
from .ir import (
    Access,
    AllPred,
    AnyPred,
    Cmp,
    Col,
    Const,
    IndexProbe,
    IsElement,
    Pred,
    RightEdge,
    D, I, L, N, P, R, T,
)

#: Downward axes whose composition is again a (or-self) descendant step —
#: the precondition for pivoting correlated predicate subplans.
DOWNWARD_AXES = frozenset(
    {Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF}
)

#: Sibling-family axes that support restricted positional predicates.
POSITIONAL_AXES = frozenset(
    {
        Axis.CHILD,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
        Axis.IMMEDIATE_FOLLOWING_SIBLING,
        Axis.IMMEDIATE_PRECEDING_SIBLING,
    }
)

#: Every axis XPath can express over start/end labels.
XPATH_AXES = frozenset(
    {
        Axis.CHILD,
        Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF,
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
        Axis.FOLLOWING,
        Axis.PRECEDING,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
        Axis.SELF,
        Axis.ATTRIBUTE,
    }
)

#: The fragment the paper's [11]-based comparator actually implements —
#: "proposed to efficiently evaluate the descendant axis and the child
#: axis by testing label containment".  This is what makes Figure 10 an
#: 11-query comparison (Q3's following axis falls outside it).
VERTICAL_FRAGMENT = frozenset(
    {
        Axis.CHILD,
        Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF,
        Axis.PARENT,
        Axis.ANCESTOR,
        Axis.ANCESTOR_OR_SELF,
        Axis.SELF,
        Axis.ATTRIBUTE,
    }
)

_LPATH_INVERSES = {
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.DESCENDANT: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF: Axis.ANCESTOR_OR_SELF,
    Axis.ANCESTOR_OR_SELF: Axis.DESCENDANT_OR_SELF,
    Axis.IMMEDIATE_FOLLOWING: Axis.IMMEDIATE_PRECEDING,
    Axis.IMMEDIATE_PRECEDING: Axis.IMMEDIATE_FOLLOWING,
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.PRECEDING: Axis.FOLLOWING,
    Axis.FOLLOWING_OR_SELF: Axis.PRECEDING_OR_SELF,
    Axis.PRECEDING_OR_SELF: Axis.FOLLOWING_OR_SELF,
    Axis.IMMEDIATE_FOLLOWING_SIBLING: Axis.IMMEDIATE_PRECEDING_SIBLING,
    Axis.IMMEDIATE_PRECEDING_SIBLING: Axis.IMMEDIATE_FOLLOWING_SIBLING,
    Axis.FOLLOWING_SIBLING: Axis.PRECEDING_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.FOLLOWING_SIBLING,
    Axis.FOLLOWING_SIBLING_OR_SELF: Axis.PRECEDING_SIBLING_OR_SELF,
    Axis.PRECEDING_SIBLING_OR_SELF: Axis.FOLLOWING_SIBLING_OR_SELF,
}

_COLUMN_POSITIONS = {"tid": T, "left": L, "right": R, "depth": D, "id": I, "pid": P}


class Catalog:
    """What the lowerer and optimizer may ask about the physical side of
    one engine: sizes, access paths, and the collected per-name
    cardinality/partition/depth statistics behind the cost-based join
    selection."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self._tree_count: Optional[int] = None
        self._name_stats: dict = {}

    def size(self) -> int:
        return len(self.table)

    def frequency(self, name: Optional[str]) -> int:
        """Rows carrying ``name`` (table size for the wildcard)."""
        if name is None:
            return len(self.table)
        return self.table.clustered.count_eq((name,))

    def tree_count(self) -> int:
        """Distinct trees in the relation (one pass, cached)."""
        if self._tree_count is None:
            self._tree_count = len({row[0] for row in self.table.scan()})
        return self._tree_count

    def name_stats(self, name: Optional[str]):
        """Cardinality/partition/depth statistics for one name (or the
        whole relation for ``None``); one pass over the clustered name
        block, cached per name."""
        from ..columnar.store import NameStats

        cached = self._name_stats.get(name)
        if cached is not None:
            return cached
        count = max_partition = 0
        min_depth = max_depth = 0
        if name is None:
            per_tree: dict = {}
            for row in self.table.scan():
                count += 1
                depth = row[3]
                if count == 1:
                    min_depth = max_depth = depth
                elif depth < min_depth:
                    min_depth = depth
                elif depth > max_depth:
                    max_depth = depth
                per_tree[row[0]] = per_tree.get(row[0], 0) + 1
            partitions = len(per_tree)
            max_partition = max(per_tree.values(), default=0)
        else:
            partitions = run = 0
            current_tid = object()
            for row in self.table.clustered.scan_eq((name,)):
                count += 1
                depth = row[3]
                if count == 1:
                    min_depth = max_depth = depth
                elif depth < min_depth:
                    min_depth = depth
                elif depth > max_depth:
                    max_depth = depth
                if row[0] != current_tid:
                    current_tid = row[0]
                    partitions += 1
                    run = 0
                run += 1
                if run > max_partition:
                    max_partition = run
        stats = NameStats(count, partitions, max_partition, min_depth, max_depth)
        self._name_stats[name] = stats
        return stats

    def access_path(self, eq_columns: Sequence[str], range_column: Optional[str]):
        return choose_access_path(self.table, eq_columns, range_column)


class LabelScheme:
    """Base adapter; see :class:`LPathScheme` and :class:`StartEndScheme`."""

    name: str = "abstract"
    supports_scopes = False
    supports_alignment = False
    positional_axes: frozenset = frozenset()
    element_string_values = False
    #: Names of the first two columns of the range-carrying clustered key.
    low_column = "left"
    high_column = "right"

    def validate(self, items) -> None:
        """Reject query features this scheme cannot express."""

    def named_probe(
        self,
        axis: Axis,
        name: str,
        ctx: int,
        cand: int,
        scope: Optional[int],
        catalog: Catalog,
    ) -> tuple[Access, list[Pred]]:
        raise NotImplementedError

    def axis_conditions(self, axis: Axis, ctx: int, cand: int) -> list[Pred]:
        raise NotImplementedError

    def inverse(self, axis: Axis) -> Optional[Axis]:
        return None

    # -- shared helpers ------------------------------------------------------

    def _clustered_range(self, catalog: Catalog) -> str:
        path = catalog.access_path(("name", "tid"), self.low_column)
        if path is None:  # pragma: no cover - the clustered index always matches
            raise LPathCompileError("no access path for a named step")
        return path.index.name

    def scope_conditions(self, cand: int, scope: int) -> list[Pred]:
        """Containment of ``cand`` within the ``scope`` node's subtree."""
        return [
            Cmp(Col(scope, L), "<=", Col(cand, L)),
            Cmp(Col(cand, R), "<=", Col(scope, R)),
            Cmp(Col(cand, D), ">=", Col(scope, D)),
        ]

    def alignment_conditions(
        self, left_aligned: bool, right_aligned: bool, cand: int, scope: Optional[int]
    ) -> list[Pred]:
        checks: list[Pred] = []
        if left_aligned:
            if scope is None:
                checks.append(Cmp(Col(cand, L), "=", Const(1)))
            else:
                checks.append(Cmp(Col(cand, L), "=", Col(scope, L)))
        if right_aligned:
            if scope is None:
                checks.append(RightEdge(cand))
            else:
                checks.append(Cmp(Col(cand, R), "=", Col(scope, R)))
        return checks


class LPathScheme(LabelScheme):
    """Definition-4.1 labels: shared leaf boundaries, full axis inventory."""

    name = "lpath-4.1"
    supports_scopes = True
    supports_alignment = True
    positional_axes = POSITIONAL_AXES
    element_string_values = True

    def inverse(self, axis: Axis) -> Optional[Axis]:
        return _LPATH_INVERSES.get(axis)

    def axis_conditions(self, axis: Axis, ctx: int, cand: int) -> list[Pred]:
        base = OR_SELF_BASES.get(axis)
        if base is not None:
            base_checks = self.axis_conditions(base, ctx, cand)
            return [
                AnyPred((Cmp(Col(cand, I), "=", Col(ctx, I)), AllPred(tuple(base_checks))))
            ]
        checks: list[Pred] = []
        for condition in CONDITIONS[axis]:
            checks.append(
                Cmp(
                    Col(cand, _COLUMN_POSITIONS[condition.column]),
                    condition.op,
                    Col(ctx, _COLUMN_POSITIONS[condition.context_column]),
                )
            )
        return checks

    def named_probe(
        self,
        axis: Axis,
        name: str,
        ctx: int,
        cand: int,
        scope: Optional[int],
        catalog: Catalog,
    ) -> tuple[Access, list[Pred]]:
        clustered = self._clustered_range(catalog)
        eq = (Const(name), Col(ctx, T))
        scope_low = None if scope is None else Col(scope, L)
        scope_high = None if scope is None else Col(scope, R)
        conds: list[Pred] = []

        if axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            access = IndexProbe(
                clustered, eq, low=Col(ctx, L), high=Col(ctx, R), include_high=False
            )
            if axis is Axis.CHILD:
                conds.append(Cmp(Col(cand, P), "=", Col(ctx, I)))
            elif axis is Axis.DESCENDANT:
                conds += [Cmp(Col(cand, R), "<=", Col(ctx, R)), Cmp(Col(cand, D), ">", Col(ctx, D))]
            else:
                conds += [Cmp(Col(cand, R), "<=", Col(ctx, R)), Cmp(Col(cand, D), ">=", Col(ctx, D))]
        elif axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
            access = IndexProbe(clustered, eq, low=scope_low, high=Col(ctx, L))
            if axis is Axis.ANCESTOR:
                conds += [Cmp(Col(cand, R), ">=", Col(ctx, R)), Cmp(Col(cand, D), "<", Col(ctx, D))]
            else:
                conds += [Cmp(Col(cand, R), ">=", Col(ctx, R)), Cmp(Col(cand, D), "<=", Col(ctx, D))]
        elif axis is Axis.IMMEDIATE_FOLLOWING:
            access = IndexProbe(clustered, eq, low=Col(ctx, R), high=Col(ctx, R))
        elif axis in (
            Axis.FOLLOWING,
            Axis.FOLLOWING_OR_SELF,
            Axis.FOLLOWING_SIBLING_OR_SELF,
        ):
            access = IndexProbe(
                clustered,
                eq,
                low=Col(ctx, R),
                high=scope_high,
                include_high=False,
                self_slot=None if axis is Axis.FOLLOWING else ctx,
                self_name=None if axis is Axis.FOLLOWING else name,
            )
            if axis is Axis.FOLLOWING_SIBLING_OR_SELF:
                conds.append(Cmp(Col(cand, P), "=", Col(ctx, P)))
        elif axis in (Axis.PRECEDING_OR_SELF, Axis.PRECEDING_SIBLING_OR_SELF):
            access = self._preceding_probe(
                name, ctx, scope_low, equality=False, catalog=catalog,
                self_slot=ctx, self_name=name,
            )
            or_self = AnyPred(
                (Cmp(Col(cand, R), "<=", Col(ctx, L)), Cmp(Col(cand, I), "=", Col(ctx, I)))
            )
            if axis is Axis.PRECEDING_OR_SELF:
                conds.append(or_self)
            else:
                conds += [Cmp(Col(cand, P), "=", Col(ctx, P)), or_self]
        elif axis is Axis.IMMEDIATE_PRECEDING:
            access = self._preceding_probe(name, ctx, scope_low, equality=True, catalog=catalog)
            if not self._has_reverse_range(catalog):
                conds.append(Cmp(Col(cand, R), "=", Col(ctx, L)))
        elif axis is Axis.PRECEDING:
            access = self._preceding_probe(name, ctx, scope_low, equality=False, catalog=catalog)
            conds.append(Cmp(Col(cand, R), "<=", Col(ctx, L)))
        elif axis is Axis.IMMEDIATE_FOLLOWING_SIBLING:
            access = IndexProbe(clustered, eq, low=Col(ctx, R), high=Col(ctx, R))
            conds.append(Cmp(Col(cand, P), "=", Col(ctx, P)))
        elif axis is Axis.FOLLOWING_SIBLING:
            access = IndexProbe(clustered, eq, low=Col(ctx, R))
            conds.append(Cmp(Col(cand, P), "=", Col(ctx, P)))
        elif axis is Axis.IMMEDIATE_PRECEDING_SIBLING:
            access = self._preceding_probe(name, ctx, scope_low, equality=True, catalog=catalog)
            conds.append(Cmp(Col(cand, P), "=", Col(ctx, P)))
            if not self._has_reverse_range(catalog):
                conds.append(Cmp(Col(cand, R), "=", Col(ctx, L)))
        elif axis is Axis.PRECEDING_SIBLING:
            access = self._preceding_probe(name, ctx, scope_low, equality=False, catalog=catalog)
            conds += [Cmp(Col(cand, P), "=", Col(ctx, P)), Cmp(Col(cand, R), "<=", Col(ctx, L))]
        else:  # pragma: no cover - SELF/ATTRIBUTE/PARENT handled by the lowerer
            raise LPathCompileError(f"unsupported axis {axis.value}")
        return access, conds

    def _has_reverse_range(self, catalog: Catalog) -> bool:
        """Does an index lead on ``(name, tid, right)`` (the ablation index)?"""
        path = catalog.access_path(("name", "tid"), self.high_column)
        return path is not None and path.range_column == self.high_column

    def _preceding_probe(
        self,
        name: str,
        ctx: int,
        scope_low,
        equality: bool,
        catalog: Catalog,
        self_slot: Optional[int] = None,
        self_name: Optional[str] = None,
    ) -> Access:
        """Access path for the preceding axes.

        The paper's physical design has no index leading on ``right``, so
        preceding probes range-scan ``left < c.left`` and filter on
        ``right`` — unless the ablation index ``{name, tid, right}`` exists,
        in which case immediate-preceding becomes an equality probe.
        """
        if equality:
            path = catalog.access_path(("name", "tid"), self.high_column)
            if path is not None and path.range_column == self.high_column:
                return IndexProbe(
                    path.index.name,
                    (Const(name), Col(ctx, T)),
                    low=Col(ctx, L),
                    high=Col(ctx, L),
                )
        return IndexProbe(
            self._clustered_range(catalog),
            (Const(name), Col(ctx, T)),
            low=scope_low,
            high=Col(ctx, L),
            include_high=False,
            self_slot=self_slot,
            self_name=self_name,
        )


class StartEndScheme(LabelScheme):
    """Start/end labels of [11]: strict containment, vertical-first axes."""

    name = "start-end"
    supports_scopes = False
    supports_alignment = False
    positional_axes = frozenset()
    element_string_values = False
    low_column = "start"
    high_column = "end"

    def __init__(self, axes: frozenset = VERTICAL_FRAGMENT) -> None:
        self.axes = axes

    def inverse(self, axis: Axis) -> Optional[Axis]:
        inverse = _LPATH_INVERSES.get(axis)
        if inverse is None or inverse not in self.axes:
            return None
        return inverse

    def validate(self, items) -> None:
        """Reject LPath-only features (Lemma 3.1) and out-of-fragment axes."""
        from .lower import paths_in_predicate

        stack = list(items)
        while stack:
            item = stack.pop()
            if isinstance(item, Scope):
                raise LPathCompileError(
                    "subtree scoping is not expressible in XPath (Lemma 3.1)"
                )
            if item.axis not in self.axes:
                if item.axis in XPATH_AXES:
                    raise LPathCompileError(
                        f"the {item.axis.value} axis is outside the [11] "
                        "translation's vertical fragment"
                    )
                raise LPathCompileError(
                    f"the {item.axis.value} axis is not expressible in XPath "
                    "(Lemma 3.1)"
                )
            if item.left_aligned or item.right_aligned:
                raise LPathCompileError(
                    "edge alignment is not expressible in XPath over descendants"
                )
            for predicate in item.predicates:
                stack.extend(paths_in_predicate(predicate))

    def axis_conditions(self, axis: Axis, ctx: int, cand: int) -> list[Pred]:
        if axis is Axis.CHILD:
            return [Cmp(Col(cand, P), "=", Col(ctx, I))]
        if axis is Axis.DESCENDANT:
            return [Cmp(Col(ctx, L), "<", Col(cand, L)), Cmp(Col(cand, R), "<", Col(ctx, R))]
        if axis is Axis.DESCENDANT_OR_SELF:
            return [Cmp(Col(ctx, L), "<=", Col(cand, L)), Cmp(Col(cand, R), "<=", Col(ctx, R))]
        if axis is Axis.ANCESTOR:
            return [Cmp(Col(cand, L), "<", Col(ctx, L)), Cmp(Col(ctx, R), "<", Col(cand, R))]
        if axis is Axis.ANCESTOR_OR_SELF:
            return [Cmp(Col(cand, L), "<=", Col(ctx, L)), Cmp(Col(ctx, R), "<=", Col(cand, R))]
        if axis is Axis.FOLLOWING:
            return [Cmp(Col(cand, L), ">", Col(ctx, R))]
        if axis is Axis.PRECEDING:
            return [Cmp(Col(cand, R), "<", Col(ctx, L))]
        if axis is Axis.FOLLOWING_SIBLING:
            return [Cmp(Col(cand, P), "=", Col(ctx, P)), Cmp(Col(cand, L), ">", Col(ctx, R))]
        if axis is Axis.PRECEDING_SIBLING:
            return [Cmp(Col(cand, P), "=", Col(ctx, P)), Cmp(Col(cand, R), "<", Col(ctx, L))]
        raise LPathCompileError(f"unsupported axis {axis.value}")

    def named_probe(
        self,
        axis: Axis,
        name: str,
        ctx: int,
        cand: int,
        scope: Optional[int],
        catalog: Catalog,
    ) -> tuple[Access, list[Pred]]:
        clustered = self._clustered_range(catalog)
        eq = (Const(name), Col(ctx, T))
        conds: list[Pred] = []
        if axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            access = IndexProbe(
                clustered,
                eq,
                low=Col(ctx, L),
                high=Col(ctx, R),
                include_low=axis is Axis.DESCENDANT_OR_SELF,
                include_high=False,
            )
            if axis is Axis.CHILD:
                conds.append(Cmp(Col(cand, P), "=", Col(ctx, I)))
            elif axis is Axis.DESCENDANT:
                conds.append(Cmp(Col(cand, R), "<", Col(ctx, R)))
            else:
                conds.append(Cmp(Col(cand, R), "<=", Col(ctx, R)))
        elif axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
            access = IndexProbe(
                clustered,
                eq,
                high=Col(ctx, L),
                include_high=axis is Axis.ANCESTOR_OR_SELF,
            )
            if axis is Axis.ANCESTOR:
                conds.append(Cmp(Col(cand, R), ">", Col(ctx, R)))
            else:
                conds.append(Cmp(Col(cand, R), ">=", Col(ctx, R)))
        elif axis is Axis.FOLLOWING:
            access = IndexProbe(clustered, eq, low=Col(ctx, R), include_low=False)
        elif axis is Axis.PRECEDING:
            access = IndexProbe(clustered, eq, high=Col(ctx, L), include_high=False)
            conds.append(Cmp(Col(cand, R), "<", Col(ctx, L)))
        elif axis is Axis.FOLLOWING_SIBLING:
            access = IndexProbe(clustered, eq, low=Col(ctx, R), include_low=False)
            conds.append(Cmp(Col(cand, P), "=", Col(ctx, P)))
        elif axis is Axis.PRECEDING_SIBLING:
            access = IndexProbe(clustered, eq, high=Col(ctx, L), include_high=False)
            conds += [Cmp(Col(cand, P), "=", Col(ctx, P)), Cmp(Col(cand, R), "<", Col(ctx, L))]
        else:  # pragma: no cover - rejected by validate()
            raise LPathCompileError(f"unsupported axis {axis.value}")
        return access, conds
