"""The single physical interpreter for the logical IR.

One compiler turns IR plans into runnable form for both dialects:

* the main pipeline becomes a tree of the mini relational engine's
  physical operators (``Source`` → ``IndexNestedLoopJoin``/``Select`` →
  ``Distinct``), so ``explain()`` shows the familiar Volcano plan;
* correlated predicate subplans (rooted at :class:`~repro.plan.ir.Context`)
  compile to step lists driven by :func:`_run_steps` — the one recursive
  interpreter that replaced the per-dialect ``_run_plan``/``_run`` twins.

Everything runtime-specific (which table, which indexes, how to read an
element's string value) lives in :class:`Runtime`; compiled predicates and
probes are stateless closures, so compiled plans are re-iterable and safe
to keep in the plan cache.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Optional

from ..lpath.axes import Axis
from ..relational.expression import Func
from ..relational.operators import (
    Distinct as PhysicalDistinct,
    IndexNestedLoopJoin,
    Operator,
    Project as PhysicalProject,
    Select,
    Source,
)
from ..relational.table import Table
from .ir import (
    AllPred,
    AnyPred,
    BoolConst,
    Cmp,
    Col,
    Const,
    Context,
    CountCmpPred,
    Distinct,
    ExistsPred,
    Filter,
    IndexProbe,
    IsAttr,
    IsElement,
    Join,
    NotPred,
    PlanNode,
    PositionPred,
    Pred,
    Project,
    RightEdge,
    ROW_WIDTH,
    Scan,
    TableScan,
    ValueCmpPred,
    ValueSeed,
    linearize,
    I, L, N, P, R, T, V,
)
from .lower import as_float, numeric_compare
from .schemes import LabelScheme

BindingCheck = Callable[[tuple], bool]
RowProbe = Callable[[tuple], Iterable[tuple]]

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Runtime:
    """One engine's physical context: table, indexes, scheme semantics."""

    def __init__(
        self,
        table: Table,
        scheme: LabelScheme,
        root_right: Optional[dict[int, int]] = None,
    ) -> None:
        self.table = table
        self.scheme = scheme
        self.clustered = table.clustered
        self.by_tid_id = table.index("idx_tid_id")
        self.by_value_tid = table.index("idx_value_tid_id")
        self.by_tid_value = table.index("idx_tid_value_id")
        self.root_right = root_right

    def index_by_name(self, name: str):
        if name == self.clustered.name:
            return self.clustered
        return self.table.index(name)

    def string_value(self, row: tuple) -> Optional[str]:
        """The string value of one label row; ``None`` when the scheme
        cannot compute it (start/end labels lose leaf order)."""
        if row[N].startswith("@"):
            return row[V] if row[V] is not None else ""
        if not self.scheme.element_string_values:
            return None
        words = [
            r[V]
            for r in self.clustered.scan_range(
                ("@lex", row[T]), low=row[L], high=row[R], include_high=False
            )
            if r[R] <= row[R] and r[V] is not None
        ]
        return " ".join(words)


# -- the main pipeline --------------------------------------------------------


def compile_plan(node: PlanNode, runtime: Runtime) -> Operator:
    """Compile a top-level IR plan to physical operators."""
    if isinstance(node, Scan):
        probe = compile_access(node.access, runtime)
        checks = [compile_pred(c, runtime) for c in node.conditions]
        if checks:
            rows = lambda probe=probe, checks=checks: (
                row for row in probe(()) if all(check(row) for check in checks)
            )
        else:
            rows = lambda probe=probe: probe(())
        return Source(rows, node.label)
    if isinstance(node, Join):
        outer = compile_plan(node.input, runtime)
        matcher = _make_matcher(
            compile_access(node.access, runtime),
            [compile_pred(c, runtime) for c in node.conditions],
        )
        return IndexNestedLoopJoin(outer, matcher, node.label)
    if isinstance(node, Filter):
        child = compile_plan(node.input, runtime)
        check = _conjunction([compile_pred(c, runtime) for c in node.conditions])
        return Select(child, Func(check, node.label))
    if isinstance(node, Distinct):
        child = compile_plan(node.input, runtime)
        positions = tuple(slot * ROW_WIDTH + col for slot, col in node.key)
        return PhysicalDistinct(child, positions=positions)
    if isinstance(node, Project):
        child = compile_plan(node.input, runtime)
        positions = tuple(slot * ROW_WIDTH + col for slot, col in node.cols)
        return PhysicalProject(child, positions)
    raise TypeError(f"cannot execute {node!r} as a top-level plan")


def _make_matcher(probe: RowProbe, checks: list[BindingCheck]) -> RowProbe:
    if not checks:
        return probe

    def matches(binding: tuple) -> Iterable[tuple]:
        for row in probe(binding):
            combined = binding + row
            if all(check(combined) for check in checks):
                yield row

    return matches


def _conjunction(checks: list[BindingCheck]) -> BindingCheck:
    if len(checks) == 1:
        return checks[0]
    return lambda binding: all(check(binding) for check in checks)


# -- correlated subplans ------------------------------------------------------


def compile_subplan(node: PlanNode, runtime: Runtime):
    """Compile a Context-rooted subplan to a ``binding -> bindings`` runner."""
    steps: list[tuple] = []
    for item in linearize(node):
        if isinstance(item, Context):
            continue
        if isinstance(item, Join):
            steps.append(
                (
                    "join",
                    compile_access(item.access, runtime),
                    [compile_pred(c, runtime) for c in item.conditions],
                )
            )
        elif isinstance(item, Filter):
            steps.append(
                ("filter", None, [compile_pred(c, runtime) for c in item.conditions])
            )
        else:
            raise TypeError(f"cannot execute {item!r} inside a subplan")
    plan = tuple(steps)

    def run(binding: tuple) -> Iterable[tuple]:
        return _run_steps(binding, plan, 0)

    return run


def _run_steps(binding: tuple, plan: tuple, index: int) -> Iterable[tuple]:
    """Lazily run a compiled step list from ``binding`` — the one subplan
    interpreter shared by both dialects."""
    if index == len(plan):
        yield binding
        return
    kind, probe, checks = plan[index]
    if kind == "filter":
        if all(check(binding) for check in checks):
            yield from _run_steps(binding, plan, index + 1)
        return
    for row in probe(binding):
        combined = binding + row
        if all(check(combined) for check in checks):
            yield from _run_steps(combined, plan, index + 1)


# -- access paths -------------------------------------------------------------


def compile_access(access, runtime: Runtime) -> RowProbe:
    if isinstance(access, TableScan):
        table = runtime.table
        return lambda binding: table.scan()
    if isinstance(access, IndexProbe):
        return _compile_index_probe(access, runtime)
    if isinstance(access, ValueSeed):
        return _compile_value_seed(access, runtime)
    raise TypeError(f"unknown access spec {access!r}")


def _operand_getter(operand):
    if isinstance(operand, Col):
        position = operand.slot * ROW_WIDTH + operand.col
        return lambda binding, position=position: binding[position]
    value = operand.value
    return lambda binding, value=value: value


def _compile_index_probe(access: IndexProbe, runtime: Runtime) -> RowProbe:
    index = runtime.index_by_name(access.index)
    eq_getters = [_operand_getter(op) for op in access.eq]
    low = None if access.low is None else _operand_getter(access.low)
    high = None if access.high is None else _operand_getter(access.high)

    if low is None and high is None:
        probe = lambda b: index.scan_eq(tuple(g(b) for g in eq_getters))
    else:
        include_low, include_high = access.include_low, access.include_high

        def probe(b, index=index, eq_getters=eq_getters, low=low, high=high,
                  include_low=include_low, include_high=include_high):
            return index.scan_range(
                tuple(g(b) for g in eq_getters),
                low=None if low is None else low(b),
                high=None if high is None else high(b),
                include_low=include_low,
                include_high=include_high,
            )

    if access.self_slot is None:
        return probe

    base = access.self_slot * ROW_WIDTH
    name = access.self_name

    def with_self(binding: tuple) -> Iterable[tuple]:
        row = binding[base:base + ROW_WIDTH]
        if row[N] == name:
            yield row
        yield from probe(binding)

    return with_self


def _compile_value_seed(access: ValueSeed, runtime: Runtime) -> RowProbe:
    attr, literal = access.attr, access.literal
    name_test, root_only = access.name_test, access.root_only
    by_tid_id = runtime.by_tid_id

    if access.tid is None:
        by_value = runtime.by_value_tid

        def rows(binding: tuple) -> Iterable[tuple]:
            for attr_row in by_value.scan_eq((literal,)):
                if attr_row[N] != attr:
                    continue
                for element in by_tid_id.scan_eq((attr_row[T], attr_row[I])):
                    if element[N].startswith("@"):
                        continue
                    if name_test is not None and element[N] != name_test:
                        continue
                    if root_only and element[P] != 0:
                        continue
                    yield element

        return rows

    tid = _operand_getter(access.tid)
    by_tid_value = runtime.by_tid_value

    def correlated(binding: tuple) -> Iterable[tuple]:
        tree = tid(binding)
        for attr_row in by_tid_value.scan_eq((tree, literal)):
            if attr_row[N] != attr:
                continue
            for element in by_tid_id.scan_eq((tree, attr_row[I])):
                if element[N].startswith("@"):
                    continue
                if name_test is not None and element[N] != name_test:
                    continue
                yield element

    return correlated


# -- predicates ---------------------------------------------------------------


def compile_pred(pred: Pred, runtime: Runtime) -> BindingCheck:
    if isinstance(pred, Cmp):
        compare = _OPS[pred.op]
        if isinstance(pred.left, Col) and isinstance(pred.right, Col):
            x = pred.left.slot * ROW_WIDTH + pred.left.col
            c = pred.right.slot * ROW_WIDTH + pred.right.col
            return lambda b, x=x, c=c, compare=compare: compare(b[x], b[c])
        if isinstance(pred.left, Col):
            x = pred.left.slot * ROW_WIDTH + pred.left.col
            value = pred.right.value
            return lambda b, x=x, value=value, compare=compare: compare(b[x], value)
        if isinstance(pred.right, Col):
            c = pred.right.slot * ROW_WIDTH + pred.right.col
            value = pred.left.value
            return lambda b, c=c, value=value, compare=compare: compare(value, b[c])
        outcome = compare(pred.left.value, pred.right.value)
        return lambda b, outcome=outcome: outcome
    if isinstance(pred, IsElement):
        position = pred.slot * ROW_WIDTH + N
        return lambda b, position=position: not b[position].startswith("@")
    if isinstance(pred, IsAttr):
        position = pred.slot * ROW_WIDTH + N
        return lambda b, position=position: b[position].startswith("@")
    if isinstance(pred, BoolConst):
        value = pred.value
        return lambda b, value=value: value
    if isinstance(pred, AllPred):
        parts = [compile_pred(p, runtime) for p in pred.parts]
        return lambda b, parts=parts: all(part(b) for part in parts)
    if isinstance(pred, AnyPred):
        parts = [compile_pred(p, runtime) for p in pred.parts]
        return lambda b, parts=parts: any(part(b) for part in parts)
    if isinstance(pred, NotPred):
        inner = compile_pred(pred.part, runtime)
        return lambda b, inner=inner: not inner(b)
    if isinstance(pred, RightEdge):
        root_right = runtime.root_right
        if root_right is None:
            raise TypeError("right-edge alignment needs root spans")
        t = pred.slot * ROW_WIDTH + T
        r = pred.slot * ROW_WIDTH + R
        return lambda b, t=t, r=r, root_right=root_right: b[r] == root_right[b[t]]
    if isinstance(pred, ExistsPred):
        runner = compile_subplan(pred.subplan, runtime)
        return lambda b, runner=runner: next(iter(runner(b)), None) is not None
    if isinstance(pred, ValueCmpPred):
        return _compile_value_cmp(pred, runtime)
    if isinstance(pred, CountCmpPred):
        return _compile_count_cmp(pred, runtime)
    if isinstance(pred, PositionPred):
        return _compile_position(pred, runtime)
    raise TypeError(f"unknown predicate {pred!r}")


def _compile_value_cmp(pred: ValueCmpPred, runtime: Runtime) -> BindingCheck:
    runner = compile_subplan(pred.subplan, runtime)
    string_value = runtime.string_value
    op, wanted, numeric = pred.op, pred.value, pred.numeric
    target = None
    if numeric:
        target = float(wanted) if not isinstance(wanted, str) else as_float(wanted)
        if target is None:
            return lambda b: False

    def check(binding: tuple) -> bool:
        for extended in runner(binding):
            row = extended[-ROW_WIDTH:]
            value = string_value(row)
            if value is None:
                continue
            if numeric:
                try:
                    number = float(value.strip())
                except ValueError:
                    continue
                if numeric_compare(number, op, target):
                    return True
            else:
                if (value == wanted) == (op == "="):
                    return True
        return False

    return check


def _compile_count_cmp(pred: CountCmpPred, runtime: Runtime) -> BindingCheck:
    runner = compile_subplan(pred.subplan, runtime)
    op, target = pred.op, pred.target

    def check(binding: tuple) -> bool:
        seen = set()
        for extended in runner(binding):
            row = extended[-ROW_WIDTH:]
            seen.add((row[T], row[I], row[N]))
        return numeric_compare(float(len(seen)), op, target)

    return check


def _compile_position(pred: PositionPred, runtime: Runtime) -> BindingCheck:
    by_tid_id = runtime.by_tid_id
    axis, op, target = pred.axis, pred.op, pred.target
    cand_base = pred.cand_slot * ROW_WIDTH
    ctx_base = pred.ctx_slot * ROW_WIDTH
    if pred.test_name is None:
        name_matches = lambda row: not row[N].startswith("@")
    else:
        name_matches = lambda row, name=pred.test_name: row[N] == name

    def check(binding: tuple) -> bool:
        candidate = binding[cand_base:cand_base + ROW_WIDTH]
        context = binding[ctx_base:ctx_base + ROW_WIDTH]
        siblings = [
            row
            for row in by_tid_id.scan_eq((candidate[T],))
            if row[P] == candidate[P] and name_matches(row)
        ]
        siblings.sort(key=lambda row: row[L])
        if axis is Axis.CHILD:
            ordered = siblings
        elif axis in (Axis.FOLLOWING_SIBLING, Axis.IMMEDIATE_FOLLOWING_SIBLING):
            ordered = [row for row in siblings if row[L] >= context[R]]
        else:
            ordered = [row for row in siblings if row[R] <= context[L]]
            ordered.reverse()
        position = None
        for rank, row in enumerate(ordered, start=1):
            if row[I] == candidate[I]:
                position = rank
                break
        if position is None:
            return False
        wanted = float(len(ordered)) if target is None else target
        return numeric_compare(float(position), op, wanted)

    return check
