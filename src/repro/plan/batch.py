"""Shared-scan batch execution over the columnar executor.

A workload of related queries (the fig6/fig9 suites, a daemon's
concurrent clients) repeats leaf work constantly: the same name-block
scans, and often the same first joins — ``//S//VP//NP[...]`` and
``//S//VP//PP[...]`` agree on everything up to the last step.  The
columnar executor fingerprints every step prefix with a cumulative
structural signature (:func:`repro.columnar.executor.compile_plan`), and
two plans whose prefixes carry equal signatures compute identical
intermediate batches.  This module exploits that:

* :func:`run_batch` executes a list of compiled queries through one
  signature → batch cache, so each shared scan (and every shared join
  prefix) runs **once** and fans its output to every consumer.  Batches
  are immutable by convention — every step returns fresh arrays — so
  fan-out needs no copies.  Entries are dropped as soon as the last
  consumer has run, bounding the cache to the live working set.
* :func:`explain_batch` renders the implied DAG: each query's step list
  with reuse annotations pointing at the query that computes the shared
  prefix.

Plans without signatures (the Volcano interpreter, segmented engines)
participate transparently — they just execute standalone.  Results are
byte-identical to per-query execution: the cache only ever substitutes a
batch for a recomputation of the same step prefix.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence


def _signatures(compiled) -> Optional[tuple]:
    plan = getattr(compiled, "plan", None)
    signatures = getattr(plan, "signatures", None)
    if signatures and getattr(plan, "execute", None) is not None:
        return signatures
    return None


class BatchState:
    """The shared-prefix cache plus per-signature reference counts for
    one batch run.  A cached batch is dropped the moment its last
    consumer has run, bounding memory to the live working set."""

    __slots__ = ("shared", "remaining")

    def __init__(self, compiled: Sequence) -> None:
        self.shared: dict = {}
        self.remaining: Counter = Counter()
        for query in compiled:
            signatures = _signatures(query)
            if signatures:
                self.remaining.update(signatures)

    def execute_one(self, query):
        """Execute one member against the shared cache; returns exactly
        what the query would produce standalone — the sorted (and
        top-k-truncated) row list, or the aggregate dict."""
        signatures = _signatures(query)
        if signatures is None:
            if query.agg is not None:
                return query.aggregate()
            return [tuple(row) for row in query.rows()]
        plan, shared = query.plan, self.shared
        try:
            if query.agg is not None:
                if query.agg == "count" and len(plan.steps) == 1:
                    # Partition-bounds fast path beats any sharing.
                    return query.aggregate()
                rows = plan.execute(shared)
                if query.agg == "count":
                    return {"count": len(rows)}
                return dict(Counter(key[2] for key in rows))
            if query.limit is not None and not any(
                signature in shared for signature in signatures
            ):
                # Nothing to reuse: early termination beats materializing
                # the full result just to seed a cache nobody reads.
                return [tuple(row) for row in plan.rows_limited(query.limit)]
            rows = sorted(plan.execute(shared))
            if query.limit is not None:
                rows = rows[: query.limit]
            return [tuple(row) for row in rows]
        finally:
            self.remaining.subtract(signatures)
            for signature in signatures:
                if self.remaining[signature] <= 0:
                    shared.pop(signature, None)


def run_batch(compiled: Sequence) -> list:
    """Execute compiled queries through one shared-prefix batch cache;
    one result per query, in order."""
    state = BatchState(compiled)
    return [state.execute_one(query) for query in compiled]


def explain_batch(compiled: Sequence) -> str:
    """Render the shared-scan DAG of a batch: every query's pipeline,
    annotating each step prefix with the query that computes it."""
    seen: dict = {}
    total = reused = 0
    lines: list[str] = []
    for index, query in enumerate(compiled):
        header = f"[q{index}] {query.description}"
        extras = []
        if query.limit is not None:
            extras.append(f"top-k k={query.limit}")
        if query.agg is not None:
            extras.append(f"aggregate {query.agg}")
        if extras:
            header += f"  ({', '.join(extras)})"
        lines.append(header)
        signatures = _signatures(query)
        if signatures is None:
            lines.append("  (no shared-scan support; executes standalone)")
            continue
        plan = query.plan
        start = 0
        for prefix in range(len(signatures), 0, -1):
            owner = seen.get(signatures[prefix - 1])
            if owner is not None:
                start = prefix
                lines.append(
                    f"  steps 1..{prefix}: shared with q{owner}"
                )
                break
        total += len(plan.steps)
        reused += start
        for step in range(start, len(plan.steps)):
            seen.setdefault(signatures[step], index)
            lines.append(f"  {step + 1}. {plan.steps[step].describe()}")
    lines.insert(
        0,
        f"shared-scan batch: {len(compiled)} queries, "
        f"{total} pipeline steps, {reused} served from shared prefixes",
    )
    return "\n".join(lines)
